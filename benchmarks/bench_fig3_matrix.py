"""Bench: paper Fig. 3 — the three-process race matrix."""

from repro.experiments import fig3_race_matrix
from repro.intervals import fig3_matrix


def test_fig3_regenerate(once):
    result = once(fig3_race_matrix)
    matrix = result.data["matrix"]
    assert len(matrix) == 20
    # the Fig. 2a and Fig. 2b cells
    assert matrix[("get", "origin1", "load")]["inwindow"] == (0, 1)
    assert matrix[("get", "target", "get")]["inwindow"] == (1, 1)


def test_fig3_matrix_construction(benchmark):
    matrix = benchmark(fig3_matrix)
    assert len(matrix) == 20

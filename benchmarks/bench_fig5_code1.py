"""Bench: paper Fig. 5 / Code 1 — the lower-bound false negative."""

from repro.experiments import fig5_code1


def test_fig5_regenerate(once):
    result = once(fig5_code1)
    # the original tool misses the race; ours reports exactly one
    assert result.data["RMA-Analyzer"] == 0
    assert result.data["Our Contribution"] == 1

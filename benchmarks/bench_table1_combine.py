"""Bench: paper Table 1 — access-type combination.

Regenerates the table and micro-benchmarks the combination primitive,
which sits on the hot path of every fragmentation call.
"""

from repro.experiments import table1_combine
from repro.intervals import AccessType, combined_type

ALL = list(AccessType)


def test_table1_regenerate(once):
    result = once(table1_combine)
    rows = result.data["rows"]
    assert rows[3][1:] == ["x", "x", "x", "x"]  # RMA_W row
    assert rows[0][3] == "RMA_R-2"


def test_combined_type_hot_path(benchmark):
    def all_pairs():
        acc = 0
        for s in ALL:
            for n in ALL:
                t, which = combined_type(s, n)
                acc += which
        return acc

    total = benchmark(all_pairs)
    assert total > 0

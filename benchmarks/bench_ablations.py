"""Ablation benches for the design choices DESIGN.md calls out.

* **merge off** — §4.1 warns fragmentation alone can explode the node
  count (each insert: -1 node, +3 nodes); merging is what bounds it.
* **legacy vs interval search** — the lower-bound-only search is the
  false-negative source; the interval-tree search costs a balanced
  traversal but never misses.
* **alias filter off** — quantifies what the LLVM alias analysis saves
  RMA-Analyzer (and what MUST-RMA pays for not having it).
* **AVL balancing off** — §4.2's logarithmic-complexity claim rests on
  the balanced tree; ascending insertions degrade a plain BST to a list.
"""

import random

import pytest

from repro.aliasing import FilterPolicy
from repro.apps import (
    MiniViteConfig,
    MiniViteResult,
    default_graph,
    make_comm_plan,
    minivite_program,
)
from repro.bst import IntervalBST, legacy_find_overlapping
from repro.core import OurDetector, insert_access
from repro.intervals import Interval
from repro.mpi import World
from tests.conftest import LR, RW, acc


class TestMergeAblation:
    def test_fragmentation_only_explodes(self, once):
        def run(enable_merge):
            from repro.microbench import code2_program

            det = OurDetector(enable_merge=enable_merge)
            World(2, [det]).run(code2_program, 500)
            return det.node_stats().max_nodes_per_rank[0]

        frag_only = once(run, False)
        full = run(True)
        assert full == 2
        assert frag_only > 100 * full  # the explosion §4.1 warns about


class TestSearchAblation:
    @staticmethod
    def _workload(n=2000, seed=11):
        rng = random.Random(seed)
        return [
            acc(lo, lo + rng.randint(1, 24), LR, line=rng.randint(1, 4))
            for lo in (rng.randint(0, 4000) for _ in range(n))
        ]

    def test_legacy_search_misses_overlaps(self, benchmark):
        accesses = self._workload()
        bst = IntervalBST()
        for a in accesses:
            bst.insert(a)
        queries = [Interval(i * 16, i * 16 + 8) for i in range(250)]

        def run_legacy():
            return sum(len(legacy_find_overlapping(bst, q)) for q in queries)

        legacy_hits = benchmark(run_legacy)
        correct_hits = sum(len(bst.find_overlapping(q)) for q in queries)
        assert legacy_hits < correct_hits  # misses = false-negative risk

    def test_interval_search_cost(self, benchmark):
        accesses = self._workload()
        bst = IntervalBST()
        for a in accesses:
            bst.insert(a)
        queries = [Interval(i * 16, i * 16 + 8) for i in range(250)]
        hits = benchmark(lambda: sum(len(bst.find_overlapping(q)) for q in queries))
        assert hits > 0


class TestAliasFilterAblation:
    def test_filter_saves_work(self, once):
        config = MiniViteConfig(nvertices=2048)
        graph = default_graph(config)
        plan = make_comm_plan(graph, 4)

        def run(policy):
            det = OurDetector(filter_policy=policy)
            World(4, [det]).run(
                minivite_program, graph, plan, config, MiniViteResult()
            )
            return det.node_stats()

        unfiltered = once(run, FilterPolicy.ALL)
        filtered = run(FilterPolicy.ALIAS)
        assert filtered.accesses_processed < unfiltered.accesses_processed
        assert filtered.accesses_filtered > 0


class TestBalanceAblation:
    def test_unbalanced_tree_degrades_on_ascending_keys(self, benchmark):
        """Code-2-like ascending insertions: the paper's log-time claim
        needs the balanced tree."""
        N = 1500

        def run_balanced():
            bst = IntervalBST(balanced=True)
            for i in range(N):
                insert_access(acc(4 * i, 4 * i + 2, RW, line=i % 7), bst)
            return bst

        bst = benchmark(run_balanced)
        assert bst.height() <= 2 * (N.bit_length() + 1)

        import sys

        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(20 * N)  # the degenerate tree recurses per level
        try:
            unbalanced = IntervalBST(balanced=False)
            for i in range(N):
                insert_access(acc(4 * i, 4 * i + 2, RW, line=i % 7), unbalanced)
            # a plain BST degenerates towards a list on sorted input
            assert unbalanced.height() > 10 * bst.height()
        finally:
            sys.setrecursionlimit(old_limit)

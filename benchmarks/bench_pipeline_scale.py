"""Bench: sharded-pipeline scaling — events/s at jobs ∈ {1, 2, 4}.

Records a miniVite trace once, then analyzes it with the 'our' detector
serially and through the sharded multiprocessing pipeline, and writes
the throughput curve to ``BENCH_pipeline.json``.  Parity of the verdict
sets across all job counts is asserted unconditionally; the >=2x speedup
of ``--jobs 4`` over serial is asserted only on machines with at least
four cores (a single-core container physically cannot scale).

Also runnable directly::

    PYTHONPATH=src python benchmarks/bench_pipeline_scale.py
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from repro.pipeline import analyze_trace, record_app

JOBS = (1, 2, 4)
OUT = Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"


def run_scaling(out: Path = OUT, *, size: int = 512) -> dict:
    """Record one trace, sweep job counts, write and return the report."""
    with tempfile.TemporaryDirectory() as tmp:
        trace = Path(tmp) / "mv.trace"
        rec = record_app("minivite", nranks=4, size=size,
                         inject_race=True, out=trace, format="binary")

        runs = []
        for jobs in JOBS:
            result = analyze_trace(trace, detector="our", jobs=jobs)
            runs.append({
                "jobs": jobs,
                "dispatch": result.dispatch,
                "events_per_sec": round(result.events_per_sec, 1),
                "wall_seconds": round(result.wall_seconds, 4),
                "races": result.races,
                "verdicts_digest": json.dumps(result.verdicts,
                                              sort_keys=True),
            })

    serial = runs[0]["events_per_sec"]
    report = {
        "bench": "pipeline_scale",
        "app": "minivite",
        "detector": "our",
        "events": rec.events,
        "nranks": rec.nranks,
        "cpu_count": os.cpu_count(),
        "runs": [{k: v for k, v in r.items() if k != "verdicts_digest"}
                 for r in runs],
        "speedup_vs_serial": {
            str(r["jobs"]): round(r["events_per_sec"] / serial, 2)
            for r in runs if serial > 0
        },
    }
    out.write_text(json.dumps(report, indent=2) + "\n")

    # verdict parity across all job counts is unconditional
    digests = {r["verdicts_digest"] for r in runs}
    assert len(digests) == 1, "job counts disagree on verdicts"
    assert runs[0]["races"] > 0, "injected race not found"
    return report


def test_pipeline_scaling(once):
    report = once(run_scaling)
    print("\njobs -> events/s: " + ", ".join(
        f"{r['jobs']}: {r['events_per_sec']:,.0f}" for r in report["runs"]))

    # throughput is real at every job count
    assert all(r["events_per_sec"] > 0 for r in report["runs"])
    assert OUT.exists()

    if (os.cpu_count() or 1) >= 4:
        assert report["speedup_vs_serial"]["4"] >= 2.0, report


if __name__ == "__main__":
    rep = run_scaling()
    print(json.dumps(rep, indent=2))

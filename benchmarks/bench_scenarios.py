"""Bench: the scenario corpus — generation throughput and scoring cost.

Two numbers the gate workflow depends on:

* **generation throughput** (scenarios/s): composing labeled scenarios
  is pure in-memory construction and must stay cheap enough that CI can
  regenerate its corpus on every run instead of checking blobs in;
* **end-to-end score time**: recording the smoke corpus through the
  simulated runtime and replaying it into the full detector zoo plus
  the static checker — the wall-clock price of the ``scenario-gate``
  CI job.

Writes ``BENCH_scenarios.json`` at the repo root.  Also runnable
directly::

    PYTHONPATH=src python benchmarks/bench_scenarios.py
"""

from __future__ import annotations

import json
import os
import statistics
import time
from pathlib import Path

from repro.scenarios import (
    TOOL_NAMES,
    corpus_to_jsonl,
    generate_corpus,
    score_corpus,
)

_HERE = Path(__file__).resolve().parent
OUT = _HERE.parent / "BENCH_scenarios.json"

SEED = 7
GEN_N = 1000
SCORE_N = 60  # the CI smoke-corpus size
ROUNDS = 5


def _timed(fn):
    import gc

    gc.collect()
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out


def run_bench(out: Path = OUT, *, rounds: int = ROUNDS,
              gen_n: int = GEN_N, score_n: int = SCORE_N) -> dict:
    gen_times, jsonl_times = [], []
    for _ in range(rounds):
        dt, corpus = _timed(lambda: generate_corpus(SEED, gen_n))
        gen_times.append(dt)
        dt, _text = _timed(lambda: corpus_to_jsonl(corpus))
        jsonl_times.append(dt)

    smoke = generate_corpus(SEED, score_n)
    score_times = []
    report = None
    for _ in range(rounds):
        dt, report = _timed(lambda: score_corpus(smoke))
        score_times.append(dt)

    gen_s = statistics.median(gen_times)
    score_s = statistics.median(score_times)
    result = {
        "bench": "scenarios",
        "rounds": rounds,
        "cpu_count": os.cpu_count(),
        "generate": {
            "scenarios": gen_n,
            "seconds": round(gen_s, 6),
            "scenarios_per_second": round(gen_n / gen_s, 1),
            "jsonl_encode_seconds": round(
                statistics.median(jsonl_times), 6),
        },
        "score": {
            "scenarios": score_n,
            "tools": list(TOOL_NAMES),
            "seconds": round(score_s, 6),
            "scenarios_per_second": round(score_n / score_s, 1),
            "verdicts_per_second": round(
                score_n * len(TOOL_NAMES) / score_s, 1),
        },
        "note": (
            "generate = compose_scenario only (no simulation); score = "
            "record each scenario on the simulated runtime once, replay "
            "into every dynamic detector and lower onto the static "
            "checker; medians of perf_counter rounds"
        ),
    }
    if report is not None:
        ours = report["tools"]["our"]["overall"]
        result["score"]["our_precision"] = ours["precision"]
        result["score"]["our_recall"] = ours["recall"]
    out.write_text(json.dumps(result, indent=2) + "\n")
    return result


def test_bench_scenarios_report(tmp_path):
    """Tier-1-safe smoke: the report is generated and well-formed."""
    report = run_bench(tmp_path / "scenarios.json", rounds=1,
                       gen_n=60, score_n=12)
    assert report["generate"]["scenarios_per_second"] > 0
    assert report["score"]["verdicts_per_second"] > 0
    assert report["score"]["our_precision"] == 1.0
    assert report["score"]["our_recall"] == 1.0


if __name__ == "__main__":
    result = run_bench()
    print(json.dumps(result, indent=2))
    print(f"wrote {OUT}")

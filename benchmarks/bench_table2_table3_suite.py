"""Bench: paper Tables 2 and 3 — the microbenchmark validation suite."""

from repro.experiments import table2_named_codes, table3_confusion


def test_table2_regenerate(once):
    result = once(table2_named_codes)
    row = result.data["ll_get_load_inwindow_origin_race"]
    assert row["Our Contribution"] and row["RMA-Analyzer"]
    assert not row["MUST-RMA"]  # the stack-array miss


def test_table3_regenerate(once):
    result = once(table3_confusion)
    d = result.data
    assert d["Our Contribution"] == {"FP": 0, "FN": 0,
                                     "TP": d["Our Contribution"]["TP"],
                                     "TN": d["Our Contribution"]["TN"]}
    assert d["RMA-Analyzer"]["FP"] == 6
    assert d["MUST-RMA"]["FN"] == 15

"""Bench: paper Fig. 9 — the injected MiniVite MPI_Put race."""

from repro.experiments import fig9_minivite_race


def test_fig9_regenerate(once):
    result = once(fig9_minivite_race, nvertices=1024, nranks=4)
    assert result.data["races"] >= 1
    message = result.data["messages"][0]
    assert "RMA_WRITE" in message
    assert "./dspl.hpp:614" in message and "./dspl.hpp:612" in message

"""Micro-benchmarks of the insertion algorithms' raw throughput.

Four synthetic access streams characterize where each insertion strategy
wins:

* ``adjacent`` — the Code-2 / CFD-Proxy shape: same line, consecutive
  ranges.  The paper's algorithm keeps a constant-size tree (O(log 1)
  per insert) while the original grows it linearly (O(log n));
* ``strided``  — the MiniVite shape: constant stride, never adjacent.
  Neither baseline compresses it (StridedDetector's chains do);
* ``random``   — scattered disjoint accesses: both trees grow alike;
* ``repeated`` — the same ranges re-touched: fragmentation keeps one
  node per range, the multiset keeps them all.
"""

import random

import pytest

from repro.bst import IntervalBST
from repro.core import insert_access
from repro.intervals import is_race_legacy
from tests.conftest import LR, RW, acc

N = 2_000


def _adjacent():
    return [acc(i, i + 1, RW, line=1) for i in range(N)]


def _strided():
    return [acc(i * 3, i * 3 + 1, LR, line=1) for i in range(N)]


def _random():
    rng = random.Random(5)
    return [acc(lo * 40, lo * 40 + rng.randint(1, 16), LR, line=rng.randint(1, 4))
            for lo in (rng.randint(0, 5 * N) for _ in range(N))]


def _repeated():
    return [acc((i % 50) * 10, (i % 50) * 10 + 8, LR, line=1) for i in range(N)]


STREAMS = {
    "adjacent": _adjacent,
    "strided": _strided,
    "random": _random,
    "repeated": _repeated,
}


def _run_ours(stream):
    bst = IntervalBST()
    for a in stream:
        insert_access(a, bst)
    return bst


def _run_legacy(stream):
    bst = IntervalBST()
    for a in stream:
        # the original: path-limited check + plain multiset append
        from repro.bst import legacy_find_overlapping

        for stored in legacy_find_overlapping(bst, a.interval):
            if is_race_legacy(stored, a):
                break
        bst.insert(a)
    return bst


@pytest.mark.parametrize("shape", list(STREAMS), ids=list(STREAMS))
def test_ours_insert_throughput(benchmark, shape):
    stream = STREAMS[shape]()
    bst = benchmark.pedantic(_run_ours, args=(stream,), rounds=3,
                             iterations=1, warmup_rounds=1)
    if shape == "adjacent":
        assert len(bst) == 1
    if shape == "repeated":
        assert len(bst) == 50


@pytest.mark.parametrize("shape", list(STREAMS), ids=list(STREAMS))
def test_legacy_insert_throughput(benchmark, shape):
    stream = STREAMS[shape]()
    bst = benchmark.pedantic(_run_legacy, args=(stream,), rounds=3,
                             iterations=1, warmup_rounds=1)
    assert len(bst) == N  # nothing ever merges

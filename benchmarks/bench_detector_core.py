"""Bench: flat-array detector core vs legacy object core — serial events/s.

The flat core (``REPRO_CORE=flat``, the default) re-implements the §4
detector over struct-of-arrays interval stores, interned records and a
fused binary wire path; the object core (``REPRO_CORE=object``) is the
legacy implementation kept as the differential oracle.  This bench runs
both cores end to end (``analyze_trace``, serial) on the two recorded
workloads the paper reports — miniVite with an injected race and
CFD-Proxy — and writes ``BENCH_detector_core.json``.

Methodology notes, honestly earned on a 1-core CI container:

* obs is disabled for the timed runs (a disabled ``obs.scope``), so the
  wire fast path engages and neither core pays metrics overhead — same
  configuration the ROADMAP throughput baseline was measured in;
* runs are *interleaved* (object, flat, object, flat, ...) and the best
  of ``ROUNDS`` per core is kept: single-core container timers drift
  ±20% between runs, and interleaving keeps a frequency excursion from
  crediting one core only;
* verdict byte-parity across cores is asserted unconditionally — a
  throughput number for a core that disagrees is meaningless;
* the smoke gate asserts flat ≥ 3× object on every workload.  Measured
  ratios are ~4–5.5× (miniVite) and ~7–8× (CFD); the gate sits at 3×
  so container noise cannot flake CI while a real regression (losing
  the wire path, an accidental object fallback) still fails hard.

Also runnable directly::

    PYTHONPATH=src python benchmarks/bench_detector_core.py
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

from repro import obs
from repro.obs import Registry
from repro.pipeline import analyze_trace, record_app

OUT = Path(__file__).resolve().parent.parent / "BENCH_detector_core.json"

#: interleaved timing rounds per core (best-of is kept)
ROUNDS = 3

#: CI smoke gate: flat-core serial events/s over object-core, per
#: workload.  The paper target is 5x; 3x leaves margin for the ±20%
#: single-core container timer drift documented above.
MIN_SPEEDUP = 3.0

WORKLOADS = (
    {"app": "minivite", "nranks": 4, "size": 512, "inject_race": True},
    {"app": "cfd", "nranks": 4, "size": 8, "inject_race": False},
)


def _timed_run(trace: Path, core: str):
    env_before = os.environ.get("REPRO_CORE")
    os.environ["REPRO_CORE"] = core
    try:
        with obs.scope(Registry(enabled=False), merge=False):
            t0 = time.perf_counter()
            result = analyze_trace(trace, detector="our", jobs=1)
            wall = time.perf_counter() - t0
    finally:
        if env_before is None:
            os.environ.pop("REPRO_CORE", None)
        else:
            os.environ["REPRO_CORE"] = env_before
    return result, wall


def _bench_workload(spec: dict, tmp: str) -> dict:
    trace = Path(tmp) / f"{spec['app']}.trace"
    rec = record_app(spec["app"], nranks=spec["nranks"], size=spec["size"],
                     inject_race=spec["inject_race"], out=trace,
                     format="binary")

    walls = {"object": [], "flat": []}
    digests = {}
    races = {}
    for _ in range(ROUNDS):
        for core in ("object", "flat"):
            result, wall = _timed_run(trace, core)
            walls[core].append(wall)
            digests[core] = json.dumps(result.verdicts, sort_keys=True,
                                       default=str)
            races[core] = result.races

    assert digests["flat"] == digests["object"], \
        f"{spec['app']}: cores disagree on verdicts"
    if spec["inject_race"]:
        assert races["flat"] > 0, f"{spec['app']}: injected race not found"

    eps = {core: rec.events / min(w) for core, w in walls.items()}
    return {
        "app": spec["app"],
        "nranks": rec.nranks,
        "size": spec["size"],
        "events": rec.events,
        "races": races["flat"],
        "rounds": ROUNDS,
        "object_events_per_sec": round(eps["object"], 1),
        "flat_events_per_sec": round(eps["flat"], 1),
        "speedup_x": round(eps["flat"] / eps["object"], 2),
    }


def run_core_bench(out: Path = OUT) -> dict:
    """Record both workloads, race the two cores, write the report."""
    with tempfile.TemporaryDirectory() as tmp:
        workloads = [_bench_workload(spec, tmp) for spec in WORKLOADS]

    report = {
        "bench": "detector_core",
        "cores": ["object", "flat"],
        "detector": "our",
        "cpu_count": os.cpu_count(),
        "obs": "off",
        "min_speedup_gate": MIN_SPEEDUP,
        "workloads": workloads,
    }
    out.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_detector_core_speedup(once):
    report = once(run_core_bench)
    print("\ncore speedup: " + ", ".join(
        f"{w['app']}: {w['speedup_x']}x "
        f"({w['object_events_per_sec']:,.0f} -> "
        f"{w['flat_events_per_sec']:,.0f} ev/s)"
        for w in report["workloads"]))
    assert OUT.exists()
    for w in report["workloads"]:
        assert w["flat_events_per_sec"] > 0
        assert w["speedup_x"] >= MIN_SPEEDUP, (
            f"{w['app']}: flat core only {w['speedup_x']}x over object "
            f"(gate {MIN_SPEEDUP}x) — wire fast path regressed?")


if __name__ == "__main__":
    print(json.dumps(run_core_bench(), indent=2))

"""Bench: what resilience costs — supervision, recovery, salvage reads.

Four measurements on one recorded miniVite trace, written to
``BENCH_resilience.json``:

* ``supervised`` — a clean ``--jobs 2`` file-dispatch run under the full
  supervision machinery (heartbeats + liveness polling).  This is the
  steady-state price of never hanging.
* ``recovered`` — the same run with a seeded worker kill: one retry
  round re-runs the dead worker's shard-group.  Verdict parity with the
  clean run is asserted unconditionally.
* salvage vs strict read throughput on the intact trace — checksummed
  best-effort reading must be nearly free when nothing is damaged.
* ``checkpoint`` — paired serial runs with checkpointing off vs on
  (``--ckpt-every`` at the default cadence), interleaved A/B/A/B so
  machine drift hits both sides equally; the median of the per-pair
  on/off wall-time ratios is the checkpoint overhead (target ≤ 5%).

Also runnable directly::

    PYTHONPATH=src python benchmarks/bench_resilience_overhead.py
"""

from __future__ import annotations

import json
import os
import statistics
import tempfile
import time
from pathlib import Path

from repro.faultinject import FaultPlan, KillWorker
from repro.pipeline import TraceReader, analyze_trace, record_app

OUT = Path(__file__).resolve().parent.parent / "BENCH_resilience.json"


def _read_throughput(trace: Path, *, strict: bool) -> float:
    reader = TraceReader(trace, strict=strict)
    t0 = time.perf_counter()
    n = sum(1 for _ in reader)
    return n / (time.perf_counter() - t0)


def _ckpt_overhead(trace: Path, tmp: Path, *, pairs: int = 5) -> dict:
    """Median on/off wall-time ratio over interleaved paired runs."""
    ratios = []
    off_walls, on_walls = [], []
    for i in range(pairs):
        off = analyze_trace(trace, detector="our", jobs=1)
        ck = tmp / f"ck{i}"
        on = analyze_trace(trace, detector="our", jobs=1,
                           ckpt_dir=ck, ckpt_every=4)
        assert on.verdicts == off.verdicts, \
            "checkpointing changed the verdict set"
        assert on.checkpoint["written"] >= 0
        off_walls.append(off.wall_seconds)
        on_walls.append(on.wall_seconds)
        if off.wall_seconds > 0:
            ratios.append(on.wall_seconds / off.wall_seconds)
    return {
        "pairs": pairs,
        "wall_seconds_off_median": round(statistics.median(off_walls), 4),
        "wall_seconds_on_median": round(statistics.median(on_walls), 4),
        "overhead_ratio_median": round(statistics.median(ratios), 3),
        "overhead_ratios": [round(r, 3) for r in ratios],
    }


def run_overhead(out: Path = OUT, *, size: int = 512) -> dict:
    """Record one trace, measure clean/faulted/salvage runs, write report."""
    with tempfile.TemporaryDirectory() as tmp:
        trace = Path(tmp) / "mv.trace"
        rec = record_app("minivite", nranks=4, size=size,
                         inject_race=True, out=trace, format="binary")

        clean = analyze_trace(trace, detector="our", jobs=2,
                              dispatch="file", timeout=30.0)
        plan = FaultPlan((KillWorker(worker=0, after_batches=200),))
        recovered = analyze_trace(trace, detector="our", jobs=2,
                                  dispatch="file", timeout=30.0,
                                  fault_plan=plan, backoff_base=0.05)
        strict_eps = _read_throughput(trace, strict=True)
        salvage_eps = _read_throughput(trace, strict=False)
        checkpoint = _ckpt_overhead(trace, Path(tmp))

    assert recovered.verdicts == clean.verdicts, \
        "recovery changed the verdict set"
    assert recovered.retries == 1 and not recovered.degraded, recovered
    assert salvage_eps > 0 and strict_eps > 0

    report = {
        "bench": "resilience_overhead",
        "app": "minivite",
        "events": rec.events,
        "cpu_count": os.cpu_count(),
        "supervised": {
            "wall_seconds": round(clean.wall_seconds, 4),
            "events_per_sec": round(clean.events_per_sec, 1),
            "races": clean.races,
        },
        "recovered": {
            "wall_seconds": round(recovered.wall_seconds, 4),
            "events_per_sec": round(recovered.events_per_sec, 1),
            "retries": recovered.retries,
            "recovery_cost_x": round(
                recovered.wall_seconds / clean.wall_seconds, 2
            ) if clean.wall_seconds > 0 else None,
        },
        "read_events_per_sec": {
            "strict": round(strict_eps, 1),
            "salvage": round(salvage_eps, 1),
            "salvage_vs_strict": round(salvage_eps / strict_eps, 3),
        },
        "checkpoint": checkpoint,
    }
    out.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_resilience_overhead(once):
    report = once(run_overhead)
    print(f"\nrecovery cost: {report['recovered']['recovery_cost_x']}x, "
          f"salvage read: "
          f"{report['read_events_per_sec']['salvage_vs_strict']}x strict, "
          f"ckpt overhead: "
          f"{report['checkpoint']['overhead_ratio_median']}x")
    assert OUT.exists()
    # salvage-mode reading of an intact trace stays in the same ballpark
    # as strict reading (generous bound: timer noise on tiny traces)
    assert report["read_events_per_sec"]["salvage_vs_strict"] > 0.3, report
    # checkpoint cadence targets <= 5% median overhead; the CI bound is
    # generous because the traces here are seconds-long, not hours-long
    assert report["checkpoint"]["overhead_ratio_median"] < 1.30, report


if __name__ == "__main__":
    print(json.dumps(run_overhead(), indent=2))

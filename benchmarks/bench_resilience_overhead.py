"""Bench: what resilience costs — supervision, recovery, salvage reads.

Three measurements on one recorded miniVite trace, written to
``BENCH_resilience.json``:

* ``supervised`` — a clean ``--jobs 2`` file-dispatch run under the full
  supervision machinery (heartbeats + liveness polling).  This is the
  steady-state price of never hanging.
* ``recovered`` — the same run with a seeded worker kill: one retry
  round re-runs the dead worker's shard-group.  Verdict parity with the
  clean run is asserted unconditionally.
* salvage vs strict read throughput on the intact trace — checksummed
  best-effort reading must be nearly free when nothing is damaged.

Also runnable directly::

    PYTHONPATH=src python benchmarks/bench_resilience_overhead.py
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path

from repro.faultinject import FaultPlan, KillWorker
from repro.pipeline import TraceReader, analyze_trace, record_app

OUT = Path(__file__).resolve().parent.parent / "BENCH_resilience.json"


def _read_throughput(trace: Path, *, strict: bool) -> float:
    reader = TraceReader(trace, strict=strict)
    t0 = time.perf_counter()
    n = sum(1 for _ in reader)
    return n / (time.perf_counter() - t0)


def run_overhead(out: Path = OUT, *, size: int = 512) -> dict:
    """Record one trace, measure clean/faulted/salvage runs, write report."""
    with tempfile.TemporaryDirectory() as tmp:
        trace = Path(tmp) / "mv.trace"
        rec = record_app("minivite", nranks=4, size=size,
                         inject_race=True, out=trace, format="binary")

        clean = analyze_trace(trace, detector="our", jobs=2,
                              dispatch="file", timeout=30.0)
        plan = FaultPlan((KillWorker(worker=0, after_batches=200),))
        recovered = analyze_trace(trace, detector="our", jobs=2,
                                  dispatch="file", timeout=30.0,
                                  fault_plan=plan, backoff_base=0.05)
        strict_eps = _read_throughput(trace, strict=True)
        salvage_eps = _read_throughput(trace, strict=False)

    assert recovered.verdicts == clean.verdicts, \
        "recovery changed the verdict set"
    assert recovered.retries == 1 and not recovered.degraded, recovered
    assert salvage_eps > 0 and strict_eps > 0

    report = {
        "bench": "resilience_overhead",
        "app": "minivite",
        "events": rec.events,
        "supervised": {
            "wall_seconds": round(clean.wall_seconds, 4),
            "events_per_sec": round(clean.events_per_sec, 1),
            "races": clean.races,
        },
        "recovered": {
            "wall_seconds": round(recovered.wall_seconds, 4),
            "events_per_sec": round(recovered.events_per_sec, 1),
            "retries": recovered.retries,
            "recovery_cost_x": round(
                recovered.wall_seconds / clean.wall_seconds, 2
            ) if clean.wall_seconds > 0 else None,
        },
        "read_events_per_sec": {
            "strict": round(strict_eps, 1),
            "salvage": round(salvage_eps, 1),
            "salvage_vs_strict": round(salvage_eps / strict_eps, 3),
        },
    }
    out.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_resilience_overhead(once):
    report = once(run_overhead)
    print(f"\nrecovery cost: {report['recovered']['recovery_cost_x']}x, "
          f"salvage read: "
          f"{report['read_events_per_sec']['salvage_vs_strict']}x strict")
    assert OUT.exists()
    # salvage-mode reading of an intact trace stays in the same ballpark
    # as strict reading (generous bound: timer noise on tiny traces)
    assert report["read_events_per_sec"]["salvage_vs_strict"] > 0.3, report


if __name__ == "__main__":
    print(json.dumps(run_overhead(), indent=2))

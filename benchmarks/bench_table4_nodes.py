"""Bench: paper Table 4 — MiniVite BST node counts, legacy vs ours.

Expected shape: per-rank node counts fall with the rank count (less
work per process), the merging reduction is *small* on MiniVite
(non-adjacent attribute accesses; paper: 0.04%-6.29%) and grows with
the rank count.
"""

from repro.experiments import table4_bst_nodes


def test_table4_regenerate(once):
    result = once(
        table4_bst_nodes, small=4_000, large=8_000, rank_sweep=(4, 8, 16)
    )
    print("\n" + result.text)
    cells = result.data["cells"]

    reductions = {}
    for (nranks, nvertices), tools in cells.items():
        legacy = tools["RMA-Analyzer"]
        ours = tools["Our Contribution"]
        assert ours <= legacy
        red = (legacy - ours) / legacy
        assert red < 0.15  # "less than 4%" in the paper; small here too
        if nvertices == 4_000:
            reductions[nranks] = red

    # node counts decrease with rank count
    assert cells[(16, 4_000)]["RMA-Analyzer"] < cells[(4, 4_000)]["RMA-Analyzer"]
    # the reduction tends to grow with the rank count (Table 4 trend)
    assert reductions[16] >= reductions[4]

"""Shared configuration for the benchmark harness.

Every paper table/figure has one module here; each module's benchmark
regenerates the table/figure (at laptop-scale parameters) and asserts
the *shape* facts the paper reports, so ``pytest benchmarks/
--benchmark-only`` doubles as the reproduction run.

Benchmarks that run whole applications use ``benchmark.pedantic`` with
one round — the interesting numbers are the in-simulation measurements,
not micro-variance.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under the benchmark timer."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return _run

"""Bench: paper Fig. 8b / Code 2 — merging collapses the loop's BST.

Also times the two detectors on the same 1,000-iteration Get loop: the
original tool pays log(5,002)-deep operations on its ever-growing tree,
ours works on a 2-node tree.
"""

import pytest

from repro.core import OurDetector
from repro.detectors import RmaAnalyzerLegacy
from repro.experiments import fig8_code2
from repro.microbench import code2_program
from repro.mpi import World


def test_fig8_regenerate(once):
    result = once(fig8_code2)
    assert result.data["RMA-Analyzer"] == 5002
    assert result.data["Our Contribution"] == 2


@pytest.mark.parametrize("factory", [RmaAnalyzerLegacy, OurDetector],
                         ids=["legacy", "ours"])
def test_code2_analysis_speed(benchmark, factory):
    def run():
        det = factory()
        World(2, [det]).run(code2_program)
        return det

    det = benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=0)
    nodes = det.node_stats().max_nodes_per_rank[0]
    assert nodes == (2 if factory is OurDetector else 5002)

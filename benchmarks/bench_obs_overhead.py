"""Bench: observability overhead on the insertion hot path.

Replays the ``bench_insert_throughput`` access streams through
``insert_access`` three ways —

* ``off``  — registry disabled, as under ``REPRO_OBS=off`` (null
  instruments, zero clock reads),
* ``on``   — the default: counters + per-phase timing live,
* ``span`` — a worst-case variant wrapping every insert in a full
  ``with obs.span(...)`` (what the hot path deliberately avoids),

and writes the per-stream overhead of ``on`` vs ``off`` to
``BENCH_obs_overhead.json``.  The budget asserted when run directly:
median metrics-on overhead <= 5% (the DESIGN.md §Observability
contract); the pytest wrapper only smoke-checks the report shape so a
loaded CI box cannot flake tier-1 on a timing jitter.

Also runnable directly::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py
"""

from __future__ import annotations

import json
import os
import statistics
import sys
import time
from pathlib import Path

_HERE = Path(__file__).resolve().parent
for p in (str(_HERE), str(_HERE.parent)):
    if p not in sys.path:
        sys.path.insert(0, p)

from bench_insert_throughput import STREAMS  # noqa: E402

from repro import obs  # noqa: E402
from repro.bst import IntervalBST  # noqa: E402
from repro.core import insert_access  # noqa: E402

OUT = _HERE.parent / "BENCH_obs_overhead.json"
ROUNDS = 5


def _replay(stream) -> None:
    bst = IntervalBST()
    for a in stream:
        insert_access(a, bst)


def _replay_span(stream) -> None:
    bst = IntervalBST()
    for a in stream:
        with obs.span("insert"):
            insert_access(a, bst)


def _timed(fn, stream) -> float:
    t0 = time.perf_counter()
    fn(stream)
    return time.perf_counter() - t0


def run_overhead(out: Path = OUT, *, rounds: int = ROUNDS) -> dict:
    """Measure every stream in all three modes; write and return report.

    Modes are interleaved within each round (off, on, span back to
    back) so clock drift and scheduler noise on a shared box hit all
    three alike; best-of-rounds filters the remaining outliers.
    """
    prev = obs.active()
    streams = {}
    try:
        for shape, make in STREAMS.items():
            stream = make()
            t_off = t_on = t_span = float("inf")
            for _ in range(rounds):
                obs.reset(enabled=False)
                t_off = min(t_off, _timed(_replay, stream))
                obs.reset(enabled=True)
                t_on = min(t_on, _timed(_replay, stream))
                obs.reset(enabled=True)
                t_span = min(t_span, _timed(_replay_span, stream))
            streams[shape] = {
                "events": len(stream),
                "off_seconds": round(t_off, 6),
                "on_seconds": round(t_on, 6),
                "span_seconds": round(t_span, 6),
                "on_overhead_pct": round(100 * (t_on / t_off - 1), 2),
                "span_overhead_pct": round(100 * (t_span / t_off - 1), 2),
            }
    finally:
        obs.set_registry(prev)

    overheads = [s["on_overhead_pct"] for s in streams.values()]
    report = {
        "bench": "obs_overhead",
        "budget_pct": 5.0,
        "rounds": rounds,
        "cpu_count": os.cpu_count(),
        "streams": streams,
        "median_on_overhead_pct": round(statistics.median(overheads), 2),
        "max_on_overhead_pct": round(max(overheads), 2),
        "note": (
            "off = REPRO_OBS=off (null instruments, no clock reads); "
            "on = default counters + phase_ns timing; span = worst-case "
            "full span per insert, shown for contrast"
        ),
    }
    out.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_obs_overhead_report(tmp_path):
    """Tier-1-safe smoke: the report is generated and well-formed."""
    report = run_overhead(tmp_path / "obs_overhead.json", rounds=2)
    assert set(report["streams"]) == set(STREAMS)
    for stream in report["streams"].values():
        assert stream["off_seconds"] > 0
        assert stream["on_seconds"] > 0


if __name__ == "__main__":
    report = run_overhead()
    print(json.dumps(report, indent=2))
    assert report["median_on_overhead_pct"] <= 5.0, (
        f"metrics-on overhead {report['median_on_overhead_pct']}% "
        f"blows the 5% budget"
    )
    print(f"wrote {OUT}")

"""Bench: observability overhead — metrics on the insert hot path,
timeline on the end-to-end analysis pipeline.

Part one replays the ``bench_insert_throughput`` access streams through
``insert_access`` three ways —

* ``off``  — registry disabled, as under ``REPRO_OBS=off`` (null
  instruments, zero clock reads),
* ``on``   — the default: counters + per-phase timing live,
* ``span`` — a worst-case variant wrapping every insert in a full
  ``with obs.span(...)`` (what the hot path deliberately avoids).

Each round times the three modes back to back on the CPU clock and
the reported overhead is the median of the per-round paired ratios —
adjacent samples see the same box conditions, so frequency scaling
and scheduler drift cancel instead of landing on whichever mode ran
later (min-of-rounds across separately-timed modes flaked on loaded
single-CPU boxes).

Part two measures what ``REPRO_OBS_TIMELINE=on`` costs where the
timeline is actually fed: recording small app traces once, then timing
``analyze_trace`` end to end with the timeline off vs on (CPU time, so
scheduler noise on a shared box cancels).  The timeline's replay feed
appends event objects by reference — the measured cost is the fanout
call per event plus the bounded per-run snapshot.

Both parts write to ``BENCH_obs_overhead.json``.  The budgets asserted
when run directly: median metrics-on overhead <= 5% AND median
timeline-on overhead <= 5% (the DESIGN.md §Observability contract); the
pytest wrapper only smoke-checks the report shape so a loaded CI box
cannot flake tier-1 on a timing jitter.

Also runnable directly::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py
"""

from __future__ import annotations

import json
import os
import statistics
import sys
import time
from pathlib import Path

_HERE = Path(__file__).resolve().parent
for p in (str(_HERE), str(_HERE.parent)):
    if p not in sys.path:
        sys.path.insert(0, p)

from bench_insert_throughput import STREAMS  # noqa: E402

from repro import obs  # noqa: E402
from repro.bst import IntervalBST  # noqa: E402
from repro.core import insert_access  # noqa: E402

OUT = _HERE.parent / "BENCH_obs_overhead.json"
ROUNDS = 7


def _replay(stream) -> None:
    bst = IntervalBST()
    for a in stream:
        insert_access(a, bst)


def _replay_span(stream) -> None:
    bst = IntervalBST()
    for a in stream:
        with obs.span("insert"):
            insert_access(a, bst)


def _timed(fn, stream) -> float:
    import gc

    gc.collect()
    t0 = time.process_time()
    fn(stream)
    return time.process_time() - t0


def run_overhead(out: Path = OUT, *, rounds: int = ROUNDS) -> dict:
    """Measure every stream in all three modes; write and return report.

    Modes are interleaved within each round (off, on, span back to
    back) and each round contributes one paired on/off and span/off
    ratio; the stream's reported overhead is the median of those.
    """
    prev = obs.active()
    streams = {}
    try:
        for shape, make in STREAMS.items():
            stream = make()
            offs, ons, spans = [], [], []
            for _ in range(rounds):
                obs.reset(enabled=False)
                offs.append(_timed(_replay, stream))
                obs.reset(enabled=True)
                ons.append(_timed(_replay, stream))
                obs.reset(enabled=True)
                spans.append(_timed(_replay_span, stream))
            on_pct = statistics.median(
                100 * (on / off - 1) for off, on in zip(offs, ons))
            span_pct = statistics.median(
                100 * (sp / off - 1) for off, sp in zip(offs, spans))
            streams[shape] = {
                "events": len(stream),
                "off_seconds": round(statistics.median(offs), 6),
                "on_seconds": round(statistics.median(ons), 6),
                "span_seconds": round(statistics.median(spans), 6),
                "on_overhead_pct": round(on_pct, 2),
                "span_overhead_pct": round(span_pct, 2),
            }
        # the timeline part gets extra rounds when running the full
        # bench (its per-sample times are small, so the median needs
        # them); smoke runs keep their reduced count
        timeline = _run_timeline_overhead(
            rounds=max(rounds, TIMELINE_ROUNDS) if rounds >= ROUNDS
            else rounds)
    finally:
        obs.set_registry(prev)

    overheads = [s["on_overhead_pct"] for s in streams.values()]
    tl_overheads = [w["timeline_overhead_pct"] for w in timeline.values()]
    report = {
        "bench": "obs_overhead",
        "budget_pct": 5.0,
        "rounds": rounds,
        "cpu_count": os.cpu_count(),
        "streams": streams,
        "timeline": timeline,
        "median_on_overhead_pct": round(statistics.median(overheads), 2),
        "max_on_overhead_pct": round(max(overheads), 2),
        "median_timeline_overhead_pct": round(
            statistics.median(tl_overheads), 2),
        "max_timeline_overhead_pct": round(max(tl_overheads), 2),
        "note": (
            "off = REPRO_OBS=off (null instruments, no clock reads); "
            "on = default counters + phase_ns timing; span = worst-case "
            "full span per insert, shown for contrast; timeline = "
            "analyze_trace end to end with REPRO_OBS_TIMELINE on vs "
            "off; all overheads are medians of per-round paired "
            "CPU-time ratios"
        ),
    }
    out.write_text(json.dumps(report, indent=2) + "\n")
    return report


#: end-to-end timeline workloads: app traces recorded once, analyzed
#: with the timeline off vs on.  ``minivite_race`` is the worst case —
#: every detected race pays a forensics capture with timeline context.
TIMELINE_WORKLOADS = {
    "minivite": dict(app="minivite", nranks=4, size=128),
    "minivite_race": dict(app="minivite", nranks=4, size=128,
                          inject_race=True),
    "histogram": dict(app="histogram", nranks=4, size=512),
    "cfd": dict(app="cfd", nranks=4, size=8),
}


def _timed_analyze(path: str) -> float:
    """One fresh-registry analysis, on the CPU-time clock.

    ``obs.reset`` mirrors the CLI (one analysis per process registry);
    the ``gc.collect`` fence keeps one sample's garbage from being
    billed to the next; ``process_time`` keeps scheduler preemption on
    a shared box out of the measurement.
    """
    import gc

    from repro.pipeline import analyze_trace

    obs.reset(enabled=True)
    gc.collect()
    t0 = time.process_time()
    analyze_trace(path, detector="our", jobs=1)
    return time.process_time() - t0


TIMELINE_ROUNDS = 9


def _run_timeline_overhead(*, rounds: int = TIMELINE_ROUNDS) -> dict:
    """Per-workload analyze times with the timeline off vs on.

    Each round times off then on back to back and the reported
    overhead is the *median of the per-round paired ratios* — adjacent
    samples see the same box conditions, so drift cancels instead of
    landing on whichever mode ran later.
    """
    import statistics as stats
    import tempfile

    from repro.pipeline import record_app

    saved = os.environ.get("REPRO_OBS_TIMELINE")
    saved_wire = os.environ.get("REPRO_WIRE")
    # pin both legs to the decoded event path: with the timeline off
    # the engine would otherwise take the fused wire fast path, and the
    # ratio would price wire-path savings as "timeline cost"
    os.environ["REPRO_WIRE"] = "off"
    results = {}
    with tempfile.TemporaryDirectory() as tmp:
        try:
            for name, spec in TIMELINE_WORKLOADS.items():
                spec = dict(spec)
                path = os.path.join(tmp, f"{name}.trace")
                recorded = record_app(spec.pop("app"), out=path, **spec)
                offs, ons = [], []
                for _ in range(rounds):
                    os.environ["REPRO_OBS_TIMELINE"] = "off"
                    offs.append(_timed_analyze(path))
                    os.environ["REPRO_OBS_TIMELINE"] = "on"
                    ons.append(_timed_analyze(path))
                overhead = stats.median(
                    100 * (on / off - 1) for off, on in zip(offs, ons))
                results[name] = {
                    "events": recorded.events,
                    "off_seconds": round(stats.median(offs), 6),
                    "on_seconds": round(stats.median(ons), 6),
                    "timeline_overhead_pct": round(overhead, 2),
                }
        finally:
            if saved is None:
                os.environ.pop("REPRO_OBS_TIMELINE", None)
            else:
                os.environ["REPRO_OBS_TIMELINE"] = saved
            if saved_wire is None:
                os.environ.pop("REPRO_WIRE", None)
            else:
                os.environ["REPRO_WIRE"] = saved_wire
    return results


def test_obs_overhead_report(tmp_path):
    """Tier-1-safe smoke: the report is generated and well-formed."""
    report = run_overhead(tmp_path / "obs_overhead.json", rounds=2)
    assert set(report["streams"]) == set(STREAMS)
    for stream in report["streams"].values():
        assert stream["off_seconds"] > 0
        assert stream["on_seconds"] > 0
    assert set(report["timeline"]) == set(TIMELINE_WORKLOADS)
    for workload in report["timeline"].values():
        assert workload["events"] > 0
        assert workload["off_seconds"] > 0
        assert workload["on_seconds"] > 0


if __name__ == "__main__":
    report = run_overhead()
    print(json.dumps(report, indent=2))
    assert report["median_on_overhead_pct"] <= 5.0, (
        f"metrics-on overhead {report['median_on_overhead_pct']}% "
        f"blows the 5% budget"
    )
    assert report["median_timeline_overhead_pct"] <= 5.0, (
        f"timeline-on overhead {report['median_timeline_overhead_pct']}% "
        f"blows the 5% budget"
    )
    print(f"wrote {OUT}")

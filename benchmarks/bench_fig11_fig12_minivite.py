"""Bench: paper Figs 11 & 12 — MiniVite execution time vs rank count.

Paper setup: 32-256 ranks on 2-16 nodes; 640,000 vertices (Fig. 11) and
1,280,000 (Fig. 12).  The bench sweeps scaled-down inputs with the same
1:2 ratio.  Expected shapes:

* execution time falls as ranks are added, with diminishing returns at
  the high end (communication/computation overlap degrades),
* every tool sits above the baseline; ours tracks the original
  RMA-Analyzer closely ("the performance is substantially the same"),
* MUST-RMA has the largest overhead, and it worsens with more ranks
  (growing vector clocks).
"""

import pytest

from repro.experiments import minivite_rank_sweep

RANKS = (4, 8, 16)
TOOLS = ("Baseline", "RMA-Analyzer", "MUST-RMA", "Our Contribution")


def _check_shape(sweep):
    first, last = RANKS[0], RANKS[-1]
    for tool in TOOLS:
        assert sweep[last][tool].sim_elapsed_ms < sweep[first][tool].sim_elapsed_ms
    for nranks in RANKS:
        runs = sweep[nranks]
        base = runs["Baseline"].sim_elapsed_ms
        for tool in TOOLS[1:]:
            assert runs[tool].sim_elapsed_ms > base
        ours = runs["Our Contribution"].sim_elapsed_ms
        legacy = runs["RMA-Analyzer"].sim_elapsed_ms
        assert 0.5 < ours / legacy < 2.0
        assert runs["MUST-RMA"].accesses_processed > \
            runs["RMA-Analyzer"].accesses_processed
        assert runs["Our Contribution"].races == 0


def test_fig11_small_input(once):
    sweep = once(minivite_rank_sweep, 8_000, RANKS)
    _check_shape(sweep)


def test_fig12_large_input(once):
    sweep = once(minivite_rank_sweep, 16_000, RANKS)
    _check_shape(sweep)
    # the doubled input runs longer at every rank count
    small = minivite_rank_sweep(8_000, (RANKS[-1],), tools=("Baseline",))
    large_t = sweep[RANKS[-1]]["Baseline"].sim_elapsed_ms
    small_t = small[RANKS[-1]]["Baseline"].sim_elapsed_ms
    assert large_t > small_t

"""Bench: the §6(3) future-work extension — strided merging on MiniVite.

The paper's closing discussion: MiniVite's per-vertex attribute accesses
are constant-stride but never adjacent, so §4.2 merging barely helps
(Table 4, <7 % reduction).  With 1-D polyhedral (strided) chains the
same accesses collapse by an order of magnitude — the payoff the paper
anticipates from the Ketterlin & Clauss style compression.
"""

from repro.apps import (
    MiniViteConfig,
    MiniViteResult,
    default_graph,
    make_comm_plan,
    minivite_program,
)
from repro.core import OurDetector, StridedDetector
from repro.detectors import RmaAnalyzerLegacy
from repro.mpi import World


def test_strided_extension_on_minivite(once):
    config = MiniViteConfig(nvertices=4096)
    graph = default_graph(config)
    plan = make_comm_plan(graph, 8)

    def run(factory):
        det = factory()
        World(8, [det]).run(minivite_program, graph, plan, config,
                            MiniViteResult())
        assert det.reports_total == 0
        return det

    strided = once(run, StridedDetector)
    legacy = run(RmaAnalyzerLegacy)
    plain = run(OurDetector)

    n_legacy = legacy.node_stats().total_max_nodes
    n_plain = plain.node_stats().total_max_nodes
    n_strided = strided.node_stats().total_max_nodes
    print(f"\nMiniVite BST nodes: legacy={n_legacy:,}  "
          f"paper-merging={n_plain:,} "
          f"({100 * (1 - n_plain / n_legacy):.1f}% reduction)  "
          f"strided={n_strided:,} "
          f"({100 * (1 - n_strided / n_legacy):.1f}% reduction)")

    # paper merging: small reduction (Table 4); strided: order of magnitude
    assert n_plain > 0.9 * n_legacy
    assert n_strided < 0.25 * n_legacy
    assert strided.accesses_absorbed > 0.5 * plain.node_stats().accesses_processed

"""Bench: paper Fig. 10 — CFD-Proxy cumulative epoch time, four tools.

Paper setup: 1 node, 12 ranks, 50 iterations.  Expected shape: the
baseline is fastest; our contribution adds the least overhead (its BST
stays ~two orders of magnitude smaller than the original tool's —
90,004 -> 54 in the paper); the original RMA-Analyzer is next;
MUST-RMA, which instruments every access, is the slowest.
"""

from repro.apps import CfdConfig
from repro.experiments import fig10_cfd_epoch_time


def test_fig10_regenerate(once):
    result = once(
        fig10_cfd_epoch_time,
        nranks=12,
        config=CfdConfig(iterations=50),
    )
    runs = result.data
    print("\n" + result.text)

    base = runs["Baseline"].sim_elapsed_ms
    ours = runs["Our Contribution"].sim_elapsed_ms
    legacy = runs["RMA-Analyzer"].sim_elapsed_ms
    must = runs["MUST-RMA"].sim_elapsed_ms

    # ordering: Baseline < Ours < RMA-Analyzer and MUST-RMA slowest
    assert base < ours < legacy
    assert must == max(base, ours, legacy, must)

    # the headline: the new insertion algorithm reduces the analysis
    # overhead (paper: "by a factor up to two")
    overhead_ours = ours - base
    overhead_legacy = legacy - base
    assert overhead_ours < overhead_legacy

    # the BST collapse (paper: 99.94% reduction)
    assert runs["Our Contribution"].total_max_nodes < \
        0.02 * runs["RMA-Analyzer"].total_max_nodes

    # §6: the legacy tools report the flush false positive, ours is clean
    assert runs["Our Contribution"].races == 0
    assert runs["RMA-Analyzer"].races > 0
    assert runs["MUST-RMA"].races > 0

"""Bench: the daemon's submit→verdict latency, cold vs cached.

One in-process ``repro serve`` stack (scheduler + HTTP listener on an
ephemeral port), one recorded miniVite trace, three measurements
written to ``BENCH_serve.json``:

* ``direct`` — ``analyze_trace`` in this process: the floor any
  service path pays on top of.
* ``cold`` — first submission over HTTP: upload + admission + journal
  + checkpointed analysis + result fetch.
* ``cached`` — repeat submissions of the identical trace: answered
  from the content-hash verdict cache without running a detector
  (median of several rounds).
* ``incremental`` — a larger trace is analyzed, grown append-only by
  ~10%, and resubmitted: the daemon resumes from the ancestor's
  retained checkpoint cursor and analyzes only the new tail.  Measured
  against a from-scratch submission of the *same grown file* to a
  fresh daemon (identical HTTP/journal overhead, no cache), so the
  ratio isolates exactly what prefix-resume saves.

Verdict parity between the served result and the direct analysis is
asserted unconditionally — a fast wrong answer is not a benchmark win.

Also runnable directly::

    PYTHONPATH=src python benchmarks/bench_serve.py
"""

from __future__ import annotations

import json
import os
import statistics
import tempfile
import threading
import time
from pathlib import Path

from repro.pipeline import analyze_trace, record_app
from repro.serve import (
    ReproServer,
    Scheduler,
    ServeConfig,
    poll_job,
    request,
    submit_trace,
)

OUT = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

CACHED_ROUNDS = 5

#: the incremental leg uses a bigger recording so analysis time
#: dominates the fixed per-request overhead it is measured against
INCR_SIZE = 4096
INCR_GROW_FRACTION = 0.10


def _submit_to_verdict(base: str, trace: Path) -> tuple:
    """One submit→terminal round-trip; returns (seconds, job dict)."""
    t0 = time.perf_counter()
    status, _, job = submit_trace(base, trace)
    assert status == 202, (status, job)
    if job["state"] not in ("done", "failed", "quarantined"):
        job = poll_job(base, job["id"], timeout_s=120.0, interval_s=0.005)
    dt = time.perf_counter() - t0
    assert job["state"] == "done", job
    return dt, job


class _Stack:
    """One in-process daemon (scheduler + HTTP listener) on a state dir."""

    def __init__(self, state: Path):
        self.config = ServeConfig(state_dir=str(state), port=0, workers=1)
        self.sched = Scheduler(state, workers=1)
        self.sched.recover()
        self.sched.start()
        self.httpd = ReproServer(self.config, self.sched)
        threading.Thread(target=self.httpd.serve_forever,
                         kwargs={"poll_interval": 0.01},
                         daemon=True).start()
        host, port = self.httpd.server_address[:2]
        self.base = f"http://{host}:{port}"

    def close(self):
        self.httpd.shutdown()
        self.httpd.server_close()
        self.sched.drain(timeout=10.0)


def _incremental_leg(tmp: Path) -> dict:
    """Grow a trace ~10% and measure prefix-resume vs from-scratch."""
    from repro.faultinject import extend_trace

    trace = tmp / "incr.trace"
    rec = record_app("minivite", nranks=4, size=INCR_SIZE,
                     inject_race=True, out=trace, format="binary")
    stack = _Stack(tmp / "incr-svc")
    try:
        base_s, _ = _submit_to_verdict(stack.base, trace)
        grown = extend_trace(trace, fraction=INCR_GROW_FRACTION)
        incr_s, incr_job = _submit_to_verdict(stack.base, trace)
        assert incr_job["resumed_from"], incr_job
        assert incr_job["resumed"], "grown trace did not prefix-resume"
        chunks_skipped = incr_job["resumed"][0]["chunks_skipped"]
        assert chunks_skipped > 0, incr_job
        _, _, incr_result = request(
            f"{stack.base}/jobs/{incr_job['id']}/result")
    finally:
        stack.close()

    # from-scratch reference: the *same grown file* through a fresh
    # daemon with an empty cache — identical transport overhead
    scratch = _Stack(tmp / "scratch-svc")
    try:
        scratch_s, scratch_job = _submit_to_verdict(scratch.base, trace)
        assert not scratch_job["resumed"], scratch_job
        _, _, scratch_result = request(
            f"{scratch.base}/jobs/{scratch_job['id']}/result")
    finally:
        scratch.close()

    for key in ("verdicts", "forensics"):
        assert (json.dumps(incr_result[key], sort_keys=True)
                == json.dumps(scratch_result[key], sort_keys=True)), \
            f"incremental {key} diverged from from-scratch analysis"
    assert incr_result["events_total"] == scratch_result["events_total"]

    return {
        "events_base": rec.events,
        "events_appended": grown["events_appended"],
        "grow_fraction": INCR_GROW_FRACTION,
        "chunks_total": grown["chunks_after"],
        "chunks_skipped": chunks_skipped,
        "base_submit_to_verdict_s": round(base_s, 4),
        "fromscratch_submit_to_verdict_s": round(scratch_s, 4),
        "incremental_submit_to_verdict_s": round(incr_s, 4),
        "ratio_vs_fromscratch": round(incr_s / scratch_s, 3)
        if scratch_s > 0 else None,
        "speedup_x": round(scratch_s / incr_s, 1) if incr_s > 0 else None,
    }


def run_serve_bench(out: Path = OUT, *, size: int = 512) -> dict:
    with tempfile.TemporaryDirectory() as tmp:
        trace = Path(tmp) / "mv.trace"
        rec = record_app("minivite", nranks=4, size=size,
                         inject_race=True, out=trace, format="binary")

        t0 = time.perf_counter()
        direct = analyze_trace(trace, detector="our", jobs=1)
        direct_s = time.perf_counter() - t0

        state = Path(tmp) / "svc"
        config = ServeConfig(state_dir=str(state), port=0, workers=1)
        sched = Scheduler(state, workers=1)
        sched.recover()
        sched.start()
        httpd = ReproServer(config, sched)
        threading.Thread(target=httpd.serve_forever,
                         kwargs={"poll_interval": 0.01},
                         daemon=True).start()
        host, port = httpd.server_address[:2]
        base = f"http://{host}:{port}"
        try:
            cold_s, cold_job = _submit_to_verdict(base, trace)
            assert not cold_job["cached"]
            _, _, served = request(f"{base}/jobs/{cold_job['id']}/result")
            assert (json.dumps(served["verdicts"], sort_keys=True)
                    == json.dumps(direct.to_dict()["verdicts"],
                                  sort_keys=True)), \
                "served verdicts diverged from direct analysis"

            cached = []
            for _ in range(CACHED_ROUNDS):
                dt, job = _submit_to_verdict(base, trace)
                assert job["cached"], job
                cached.append(dt)
        finally:
            httpd.shutdown()
            httpd.server_close()
            sched.drain(timeout=10.0)

        incremental = _incremental_leg(Path(tmp))

    cached_median = statistics.median(cached)
    report = {
        "bench": "serve_latency",
        "app": "minivite",
        "events": rec.events,
        "cpu_count": os.cpu_count(),
        "races": direct.races,
        "direct_analyze_s": round(direct_s, 4),
        "cold": {
            "submit_to_verdict_s": round(cold_s, 4),
            "overhead_vs_direct_x": round(cold_s / direct_s, 2)
            if direct_s > 0 else None,
        },
        "cached": {
            "rounds": CACHED_ROUNDS,
            "submit_to_verdict_s_median": round(cached_median, 4),
            "submit_to_verdict_s": [round(d, 4) for d in cached],
            "speedup_vs_cold_x": round(cold_s / cached_median, 1)
            if cached_median > 0 else None,
        },
        "incremental": incremental,
    }
    out.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_serve_latency(once):
    report = once(run_serve_bench)
    print(f"\ncold submit→verdict: {report['cold']['submit_to_verdict_s']}s "
          f"({report['cold']['overhead_vs_direct_x']}x direct), "
          f"cached: {report['cached']['submit_to_verdict_s_median']}s "
          f"({report['cached']['speedup_vs_cold_x']}x faster)")
    assert OUT.exists()
    incr = report["incremental"]
    print(f"incremental re-analysis after +{incr['events_appended']} events: "
          f"{incr['incremental_submit_to_verdict_s']}s vs "
          f"{incr['fromscratch_submit_to_verdict_s']}s from scratch "
          f"({incr['ratio_vs_fromscratch']}x, "
          f"{incr['chunks_skipped']} chunk(s) skipped)")
    # a cache hit must be decisively cheaper than re-analysis
    assert (report["cached"]["submit_to_verdict_s_median"]
            < report["cold"]["submit_to_verdict_s"]), report
    # a ~10% grown trace must resume, not re-run: ≤0.3× from-scratch
    assert incr["chunks_skipped"] > 0, report
    assert incr["ratio_vs_fromscratch"] <= 0.3, report


if __name__ == "__main__":
    print(json.dumps(run_serve_bench(), indent=2))

"""Bench: the daemon's submit→verdict latency, cold vs cached.

One in-process ``repro serve`` stack (scheduler + HTTP listener on an
ephemeral port), one recorded miniVite trace, three measurements
written to ``BENCH_serve.json``:

* ``direct`` — ``analyze_trace`` in this process: the floor any
  service path pays on top of.
* ``cold`` — first submission over HTTP: upload + admission + journal
  + checkpointed analysis + result fetch.
* ``cached`` — repeat submissions of the identical trace: answered
  from the content-hash verdict cache without running a detector
  (median of several rounds).

Verdict parity between the served result and the direct analysis is
asserted unconditionally — a fast wrong answer is not a benchmark win.

Also runnable directly::

    PYTHONPATH=src python benchmarks/bench_serve.py
"""

from __future__ import annotations

import json
import os
import statistics
import tempfile
import threading
import time
from pathlib import Path

from repro.pipeline import analyze_trace, record_app
from repro.serve import (
    ReproServer,
    Scheduler,
    ServeConfig,
    poll_job,
    request,
    submit_trace,
)

OUT = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

CACHED_ROUNDS = 5


def _submit_to_verdict(base: str, trace: Path) -> tuple:
    """One submit→terminal round-trip; returns (seconds, job dict)."""
    t0 = time.perf_counter()
    status, _, job = submit_trace(base, trace)
    assert status == 202, (status, job)
    if job["state"] not in ("done", "failed", "quarantined"):
        job = poll_job(base, job["id"], timeout_s=120.0, interval_s=0.005)
    dt = time.perf_counter() - t0
    assert job["state"] == "done", job
    return dt, job


def run_serve_bench(out: Path = OUT, *, size: int = 512) -> dict:
    with tempfile.TemporaryDirectory() as tmp:
        trace = Path(tmp) / "mv.trace"
        rec = record_app("minivite", nranks=4, size=size,
                         inject_race=True, out=trace, format="binary")

        t0 = time.perf_counter()
        direct = analyze_trace(trace, detector="our", jobs=1)
        direct_s = time.perf_counter() - t0

        state = Path(tmp) / "svc"
        config = ServeConfig(state_dir=str(state), port=0, workers=1)
        sched = Scheduler(state, workers=1)
        sched.recover()
        sched.start()
        httpd = ReproServer(config, sched)
        threading.Thread(target=httpd.serve_forever,
                         kwargs={"poll_interval": 0.01},
                         daemon=True).start()
        host, port = httpd.server_address[:2]
        base = f"http://{host}:{port}"
        try:
            cold_s, cold_job = _submit_to_verdict(base, trace)
            assert not cold_job["cached"]
            _, _, served = request(f"{base}/jobs/{cold_job['id']}/result")
            assert (json.dumps(served["verdicts"], sort_keys=True)
                    == json.dumps(direct.to_dict()["verdicts"],
                                  sort_keys=True)), \
                "served verdicts diverged from direct analysis"

            cached = []
            for _ in range(CACHED_ROUNDS):
                dt, job = _submit_to_verdict(base, trace)
                assert job["cached"], job
                cached.append(dt)
        finally:
            httpd.shutdown()
            httpd.server_close()
            sched.drain(timeout=10.0)

    cached_median = statistics.median(cached)
    report = {
        "bench": "serve_latency",
        "app": "minivite",
        "events": rec.events,
        "cpu_count": os.cpu_count(),
        "races": direct.races,
        "direct_analyze_s": round(direct_s, 4),
        "cold": {
            "submit_to_verdict_s": round(cold_s, 4),
            "overhead_vs_direct_x": round(cold_s / direct_s, 2)
            if direct_s > 0 else None,
        },
        "cached": {
            "rounds": CACHED_ROUNDS,
            "submit_to_verdict_s_median": round(cached_median, 4),
            "submit_to_verdict_s": [round(d, 4) for d in cached],
            "speedup_vs_cold_x": round(cold_s / cached_median, 1)
            if cached_median > 0 else None,
        },
    }
    out.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_serve_latency(once):
    report = once(run_serve_bench)
    print(f"\ncold submit→verdict: {report['cold']['submit_to_verdict_s']}s "
          f"({report['cold']['overhead_vs_direct_x']}x direct), "
          f"cached: {report['cached']['submit_to_verdict_s_median']}s "
          f"({report['cached']['speedup_vs_cold_x']}x faster)")
    assert OUT.exists()
    # a cache hit must be decisively cheaper than re-analysis
    assert (report["cached"]["submit_to_verdict_s_median"]
            < report["cold"]["submit_to_verdict_s"]), report


if __name__ == "__main__":
    print(json.dumps(run_serve_bench(), indent=2))

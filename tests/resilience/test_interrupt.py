"""Interrupt cleanup: Ctrl-C or SIGTERM must never leak worker processes.

The engine's ``finally`` reaps every process it ever spawned, with
bounded waits; the CLI converts SIGTERM into ``SystemExit`` so that
path also runs when the process is terminated from outside.  These
tests interrupt the producer at every level — in-process exception,
signal to a library caller, signal to the CLI — and assert no orphans
and no leftover temp files.
"""

import multiprocessing as mp
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro.pipeline.engine as engine
from repro.pipeline import analyze_trace

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _no_children_left(deadline=5.0):
    """True once this process has no live multiprocessing children."""
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        if not mp.active_children():
            return True
        time.sleep(0.05)
    return not mp.active_children()


def _interrupt_producer(monkeypatch, exc_type, after=500):
    """Make the producer loop raise ``exc_type`` after ``after`` events.

    ``shards_of`` is the routing call the producer makes per event; in
    queue dispatch the workers never call it, so the patched copy only
    fires in the parent.
    """
    real = engine.shards_of
    seen = {"n": 0}

    def exploding(event, nranks):
        seen["n"] += 1
        if seen["n"] > after:
            raise exc_type()
        return real(event, nranks)

    monkeypatch.setattr(engine, "shards_of", exploding)


@pytest.mark.parametrize("exc_type", [KeyboardInterrupt, SystemExit])
def test_producer_interrupt_reaps_all_workers(mv_trace, monkeypatch,
                                              exc_type):
    _interrupt_producer(monkeypatch, exc_type)
    with pytest.raises(exc_type):
        analyze_trace(mv_trace, jobs=4, dispatch="queue", batch_size=32)
    assert _no_children_left()


def test_generic_producer_error_reaps_all_workers(mv_trace, monkeypatch):
    _interrupt_producer(monkeypatch, RuntimeError)
    with pytest.raises(RuntimeError):
        analyze_trace(mv_trace, jobs=4, dispatch="queue", batch_size=32)
    assert _no_children_left()


def test_sigterm_mid_analysis_leaves_no_orphans(mv_trace, tmp_path):
    """SIGTERM a supervising parent wedged on a stalled worker.

    The stall guarantees the parent is mid-collection when the signal
    lands; converting SIGTERM to SystemExit (as the CLI does) must run
    the engine's cleanup and take the whole process group down — the
    sleeping worker included.
    """
    script = (
        "import signal, sys\n"
        "from repro.pipeline import analyze_trace\n"
        "from repro.faultinject import FaultPlan, StallWorker\n"
        "signal.signal(signal.SIGTERM, lambda s, f: sys.exit(128 + s))\n"
        "print('go', flush=True)\n"
        f"analyze_trace({str(mv_trace)!r}, jobs=2, dispatch='file',\n"
        "              fault_plan=FaultPlan((StallWorker(0, attempt=None),)))\n"
    )
    proc = subprocess.Popen(
        [sys.executable, "-c", script],
        env={**os.environ, "PYTHONPATH": REPO_SRC},
        stdout=subprocess.PIPE, start_new_session=True,
    )
    try:
        assert proc.stdout.readline().strip() == b"go"
        time.sleep(1.0)  # let the workers fork and the stall bite
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 143
        # the whole session (parent + workers) must be gone
        end = time.monotonic() + 10
        while time.monotonic() < end:
            try:
                os.killpg(proc.pid, 0)
            except ProcessLookupError:
                break
            time.sleep(0.1)
        with pytest.raises(ProcessLookupError):
            os.killpg(proc.pid, 0)
    finally:
        try:
            os.killpg(proc.pid, signal.SIGKILL)
        except ProcessLookupError:
            pass
        proc.stdout.close()


def test_sigterm_mid_record_removes_temp_files(tmp_path):
    """``repro record`` killed mid-write leaves neither trace nor temp."""
    out = tmp_path / "mv.trace"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "record", "minivite",
         "--size", "32768", "--inject-race", "-o", str(out)],
        env={**os.environ, "PYTHONPATH": REPO_SRC},
        stderr=subprocess.DEVNULL, start_new_session=True,
    )
    tmp = out.with_name(out.name + ".tmp")
    try:
        end = time.monotonic() + 30
        while not tmp.exists() and time.monotonic() < end:
            if proc.poll() is not None:
                pytest.fail("recording finished before it could be killed; "
                            "raise --size")
            time.sleep(0.02)
        assert tmp.exists()
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 143
        assert not out.exists()
        assert not tmp.exists()
    finally:
        try:
            os.killpg(proc.pid, signal.SIGKILL)
        except ProcessLookupError:
            pass

"""The RSS probe degrades gracefully where ``resource`` is unusable.

The memory guard is telemetry, not correctness: on a platform where
``getrusage`` fails (or the module is missing), an analysis with
``--max-rss-mb`` must warn once, disable the guard, and run to a full
verdict — never die on the probe itself.
"""

import sys
import warnings

import pytest

import repro.pipeline.checkpoint as ckpt_mod
from repro.pipeline import analyze_trace


class _BrokenResource:
    RUSAGE_SELF = 0

    @staticmethod
    def getrusage(who):
        raise OSError("rusage unavailable on this platform")


@pytest.fixture
def broken_resource(monkeypatch):
    monkeypatch.setitem(sys.modules, "resource", _BrokenResource())
    monkeypatch.setattr(ckpt_mod, "_rss_unavailable_warned", False)


def test_probe_returns_none_and_warns_once(broken_resource):
    with pytest.warns(RuntimeWarning, match="memory guard is disabled"):
        assert ckpt_mod.current_rss_mb() is None
    # second read: still None, but silent — one warning per process
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert ckpt_mod.current_rss_mb() is None


def test_probe_works_on_this_platform():
    assert ckpt_mod.current_rss_mb() > 0


def test_memory_guard_disables_instead_of_dying(
        broken_resource, mv_trace, serial_verdicts, tmp_path):
    with pytest.warns(RuntimeWarning, match="memory guard is disabled"):
        result = analyze_trace(mv_trace, detector="our", jobs=1,
                               ckpt_dir=tmp_path / "ck", ckpt_every=1,
                               max_rss_mb=1)
    # an absurdly low watermark would stop every chunk if the guard were
    # live; with the probe gone the run completes — full, correct verdicts
    assert not result.partial
    assert result.verdicts == serial_verdicts

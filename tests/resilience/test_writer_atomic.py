"""Atomic trace finalize: a crashed recording never looks complete.

Writers stream to ``<path>.tmp`` and ``os.replace`` into place on a
clean close, so the final path either holds a complete, trailer-checked
trace or does not exist at all.  The :class:`WriterCrash` fault hook
simulates a recorder dying after any chunk flush or during finalize.
"""

import pytest

from repro.faultinject import SimulatedWriterCrash, WriterCrash
from repro.mpi.errors import TraceFormatError
from repro.pipeline import BinaryTraceWriter, JsonTraceWriter, TraceReader


@pytest.fixture(scope="module")
def events(mv_trace):
    return list(TraceReader(mv_trace))


def _tmp_of(path):
    return path.with_name(path.name + ".tmp")


def test_clean_close_is_atomic(tmp_path, events):
    path = tmp_path / "out.trace"
    writer = BinaryTraceWriter(path, nranks=4, events_per_chunk=100)
    for event in events[:300]:
        writer.write(event)
    # mid-recording: all bytes live in the temp file, none at the target
    assert not path.exists()
    assert _tmp_of(path).exists()
    writer.close()
    assert path.exists()
    assert not _tmp_of(path).exists()
    assert sum(1 for _ in TraceReader(path)) == 300


def test_abort_discards_the_recording(tmp_path, events):
    path = tmp_path / "out.trace"
    writer = BinaryTraceWriter(path, nranks=4)
    for event in events[:50]:
        writer.write(event)
    writer.abort()
    assert not path.exists()
    assert not _tmp_of(path).exists()


def test_exception_in_with_block_aborts(tmp_path, events):
    path = tmp_path / "out.trace"
    with pytest.raises(RuntimeError, match="app blew up"):
        with BinaryTraceWriter(path, nranks=4, events_per_chunk=10) as writer:
            for event in events[:100]:
                writer.write(event)
            raise RuntimeError("app blew up")
    assert not path.exists()
    assert not _tmp_of(path).exists()


def test_injected_crash_after_chunk_flush(tmp_path, events):
    path = tmp_path / "out.trace"
    crash = WriterCrash(after_chunks=2)
    with pytest.raises(SimulatedWriterCrash):
        with BinaryTraceWriter(path, nranks=4, events_per_chunk=50,
                               fault_hook=crash) as writer:
            for event in events[:500]:
                writer.write(event)
    assert crash.fired
    assert not path.exists()
    assert not _tmp_of(path).exists()


def test_injected_crash_during_finalize(tmp_path, events):
    """Dying in close() — after all chunks, before the rename — still
    never exposes the final path."""
    path = tmp_path / "out.trace"
    crash = WriterCrash(stage="close")
    with pytest.raises(SimulatedWriterCrash):
        with BinaryTraceWriter(path, nranks=4, events_per_chunk=50,
                               fault_hook=crash) as writer:
            for event in events[:200]:
                writer.write(event)
    assert not path.exists()


def test_json_writer_exception_aborts(tmp_path, events):
    path = tmp_path / "out.trace"
    with pytest.raises(RuntimeError):
        with JsonTraceWriter(path, nranks=4) as writer:
            for event in events[:50]:
                writer.write(event)
            raise RuntimeError("boom")
    assert not path.exists()
    assert not _tmp_of(path).exists()


def test_aborted_recording_is_unreadable_not_half_readable(tmp_path, events):
    """The reader can never mistake an interrupted recording for a trace:
    the final path simply is not there."""
    path = tmp_path / "out.trace"
    with pytest.raises(SimulatedWriterCrash):
        with BinaryTraceWriter(path, nranks=4, events_per_chunk=20,
                               fault_hook=WriterCrash(after_chunks=1)) as w:
            for event in events[:100]:
                w.write(event)
    with pytest.raises(TraceFormatError):
        TraceReader(path)

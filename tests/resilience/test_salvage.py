"""Trace salvage: damaged files are quarantined precisely, never papered over.

Strict mode (the default) must keep failing loudly — same exception,
file (and line, for v1) named.  Salvage mode must recover every intact
chunk and account the loss exactly: recovered + lost == recorded.
"""

import json
import struct

import pytest

from repro.faultinject import (
    chunk_index,
    corrupt_chunk_tag,
    flip_bytes,
    truncate_mid_chunk,
)
from repro.mpi.errors import TraceFormatError
from repro.pipeline import MAGIC_V2, TraceReader, analyze_trace


def _count(path, **kw):
    return sum(1 for _ in TraceReader(path, **kw))


# -- corrupt payload (checksum) -----------------------------------------------


def test_strict_read_raises_naming_file_and_chunk(rechunk, mv_trace):
    path = rechunk(mv_trace)
    flip_bytes(path, chunk=3, seed=7)
    with pytest.raises(TraceFormatError) as excinfo:
        _count(path)
    msg = str(excinfo.value)
    assert path.name in msg
    assert "chunk 3" in msg
    assert "checksum" in msg


def test_salvage_quarantines_exactly_the_flipped_chunk(rechunk, mv_trace):
    path = rechunk(mv_trace)
    index = chunk_index(path)
    total = sum(info.nevents for info in index)
    last = index[-1]  # last chunk: nothing after it to shadow
    flip_bytes(path, chunk=last.chunk, seed=7)

    reader = TraceReader(path, strict=False)
    recovered = sum(1 for _ in reader)
    assert reader.quarantined_chunks == [last.chunk]
    assert reader.events_lost == last.nevents
    assert recovered == total - last.nevents
    assert not reader.truncated
    assert reader.salvage_report() == {
        "quarantined_chunks": [last.chunk],
        "events_lost": last.nevents,
        "truncated": False,
    }


def test_salvage_accounting_is_exact_for_mid_file_damage(rechunk, mv_trace):
    """Recovered + lost == recorded even if quarantine shadows later chunks.

    A corrupt early chunk may have interned strings later chunks refer
    to, so more than one chunk can be lost — but the trailer reconciles
    the count, and nothing is double- or under-counted.
    """
    path = rechunk(mv_trace)
    total = sum(info.nevents for info in chunk_index(path))
    flip_bytes(path, chunk=3, seed=11)

    reader = TraceReader(path, strict=False)
    recovered = sum(1 for _ in reader)
    assert 3 in reader.quarantined_chunks
    assert reader.events_lost >= 1
    assert recovered + reader.events_lost == total


# -- truncation ---------------------------------------------------------------


def test_strict_read_raises_on_truncation(rechunk, mv_trace):
    path = rechunk(mv_trace)
    truncate_mid_chunk(path, chunk=5)
    with pytest.raises(TraceFormatError) as excinfo:
        _count(path)
    assert "truncated" in str(excinfo.value)


def test_salvage_recovers_everything_before_the_cut(rechunk, mv_trace):
    path = rechunk(mv_trace)
    index = chunk_index(path)
    before_cut = sum(info.nevents for info in index if info.chunk < 5)
    truncate_mid_chunk(path, chunk=5)

    reader = TraceReader(path, strict=False)
    recovered = sum(1 for _ in reader)
    assert recovered == before_cut
    assert reader.truncated
    assert 5 in reader.quarantined_chunks
    # no trailer survived the cut, so the loss count is the dead
    # chunk's own frame claim — a floor, not the full tail
    assert reader.events_lost >= index[4].nevents


# -- smashed framing ----------------------------------------------------------


def test_strict_read_raises_on_bad_tag(rechunk, mv_trace):
    path = rechunk(mv_trace)
    corrupt_chunk_tag(path, chunk=4)
    with pytest.raises(TraceFormatError) as excinfo:
        _count(path)
    assert "bad chunk tag" in str(excinfo.value)


def test_salvage_resyncs_past_a_smashed_tag(rechunk, mv_trace):
    path = rechunk(mv_trace)
    total = sum(info.nevents for info in chunk_index(path))
    corrupt_chunk_tag(path, chunk=4)

    reader = TraceReader(path, strict=False)
    recovered = sum(1 for _ in reader)
    assert reader.quarantined_chunks  # at least the smashed chunk
    assert recovered + reader.events_lost == total
    assert recovered >= 1


# -- v1 JSON lines ------------------------------------------------------------


def _mangle_line(path, lineno, junk="certainly not json\n"):
    lines = path.read_text().splitlines(keepends=True)
    lines[lineno - 1] = junk
    path.write_text("".join(lines))


def test_v1_strict_raises_with_line_number(cfd_json_trace, tmp_path):
    path = tmp_path / "cfd.trace"
    path.write_text(cfd_json_trace.read_text())
    _mangle_line(path, lineno=10)
    with pytest.raises(TraceFormatError) as excinfo:
        _count(path)
    assert "cfd.trace:10:" in str(excinfo.value)  # file:line prefix


def test_v1_salvage_skips_exactly_the_bad_line(cfd_json_trace, tmp_path):
    path = tmp_path / "cfd.trace"
    path.write_text(cfd_json_trace.read_text())
    total = _count(path)
    _mangle_line(path, lineno=10)

    reader = TraceReader(path, strict=False)
    recovered = sum(1 for _ in reader)
    assert recovered == total - 1
    assert reader.quarantined_chunks == [10]
    assert reader.events_lost == 1


# -- clean traces and old files -----------------------------------------------


def test_salvage_mode_is_a_noop_on_intact_traces(mv_trace):
    assert _count(mv_trace, strict=False) == _count(mv_trace)
    reader = TraceReader(mv_trace, strict=False)
    list(reader)
    assert reader.salvage_report() == {
        "quarantined_chunks": [], "events_lost": 0, "truncated": False,
    }


def _strip_crc(src, dst):
    """Rewrite a v2 trace in the pre-checksum layout (8-byte frames)."""
    raw = src.read_bytes()
    pos = len(MAGIC_V2)
    (hlen,) = struct.unpack_from("<I", raw, pos)
    header = json.loads(raw[pos + 4:pos + 4 + hlen])
    del header["chunk_crc32"]
    skip = 12 + (32 if header.pop("chunk_chain", None) else 0)
    blob = json.dumps(header).encode("utf-8")
    out = bytearray(MAGIC_V2 + struct.pack("<I", len(blob)) + blob)
    p = pos + 4 + hlen
    while True:
        tag = raw[p:p + 4]
        out += tag
        if tag == b"TEND":
            out += raw[p + 4:p + 12]
            break
        nbytes, nevents, _crc = struct.unpack_from("<III", raw, p + 4)
        out += struct.pack("<II", nbytes, nevents)
        out += raw[p + 4 + skip:p + 4 + skip + nbytes]
        p += 4 + skip + nbytes
    dst.write_bytes(bytes(out))


def test_pre_checksum_files_still_read(mv_trace, tmp_path):
    old = tmp_path / "old.trace"
    _strip_crc(mv_trace, old)
    assert _count(old) == _count(mv_trace)


# -- end to end through the engine --------------------------------------------


def test_salvage_parity_across_execution_modes(rechunk, mv_trace):
    """Serial, queue and file analysis agree on a damaged trace."""
    path = rechunk(mv_trace)
    last = chunk_index(path)[-1]
    flip_bytes(path, chunk=last.chunk, seed=3)

    serial = analyze_trace(path, jobs=1, salvage=True)
    queued = analyze_trace(path, jobs=4, dispatch="queue", salvage=True)
    filed = analyze_trace(path, jobs=4, dispatch="file", salvage=True)

    for result in (serial, queued, filed):
        assert result.verdicts == serial.verdicts
        assert result.salvage["quarantined_chunks"] == [last.chunk]
        assert result.salvage["events_lost"] == last.nevents
        assert not result.salvage["truncated"]


def test_strict_engine_still_raises_without_salvage(rechunk, mv_trace):
    path = rechunk(mv_trace)
    flip_bytes(path, chunk=2, seed=3)
    with pytest.raises(TraceFormatError):
        analyze_trace(path, jobs=2)


def test_open_salvage_reader_implies_salvage(rechunk, mv_trace):
    path = rechunk(mv_trace)
    last = chunk_index(path)[-1]
    flip_bytes(path, chunk=last.chunk, seed=3)
    result = analyze_trace(TraceReader(path, strict=False), jobs=1)
    assert result.salvage["quarantined_chunks"] == [last.chunk]

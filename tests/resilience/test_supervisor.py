"""Chaos tests: worker kills and stalls under the supervised engine.

The acceptance bar: for every seeded fault plan, ``analyze_trace``
either returns verdicts byte-identical to serial replay (recovered via
retry) or a result with ``degraded=True`` and honest failure accounting
— and never hangs (the package-wide hang guard enforces that part).
"""

import json

import pytest

from repro.faultinject import FaultPlan, KillWorker, StallWorker
from repro.mpi.errors import WorkerCrashedError
from repro.pipeline import analyze_trace, backoff_delay


def _same_verdicts(a, b):
    return json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


# -- file dispatch: crashed workers are retried -------------------------------


def test_kill_first_attempt_recovers_via_retry(mv_trace, serial_verdicts):
    plan = FaultPlan((KillWorker(worker=0, after_batches=100),))
    result = analyze_trace(mv_trace, jobs=2, dispatch="file",
                           fault_plan=plan)
    assert _same_verdicts(result.verdicts, serial_verdicts)
    assert result.retries == 1
    assert not result.degraded
    [failure] = result.failed_workers
    assert failure["worker"] == 0
    assert failure["reason"] == "crashed"
    assert failure["exitcode"] == 17
    assert failure["attempt"] == 0
    assert failure["shards"] == [0, 2]


def test_kill_every_attempt_degrades_with_parity(mv_trace, serial_verdicts):
    plan = FaultPlan((KillWorker(worker=1, after_batches=50, attempt=None),))
    result = analyze_trace(mv_trace, jobs=2, dispatch="file",
                           fault_plan=plan, retries=1, backoff_base=0.01)
    assert _same_verdicts(result.verdicts, serial_verdicts)
    assert result.degraded
    assert result.retries == 1  # one respawn happened, then gave up
    # both attempts are on the record
    assert [f["attempt"] for f in result.failed_workers] == [0, 1]
    assert all(f["worker"] == 1 for f in result.failed_workers)


def test_retries_zero_degrades_immediately(mv_trace, serial_verdicts):
    plan = FaultPlan((KillWorker(worker=0, after_batches=1),))
    result = analyze_trace(mv_trace, jobs=2, dispatch="file",
                           fault_plan=plan, retries=0)
    assert _same_verdicts(result.verdicts, serial_verdicts)
    assert result.degraded
    assert result.retries == 0


def test_kill_two_workers_same_round(mv_trace, serial_verdicts):
    plan = FaultPlan((
        KillWorker(worker=0, after_batches=30),
        KillWorker(worker=2, after_batches=60, exitcode=9),
    ))
    result = analyze_trace(mv_trace, jobs=4, dispatch="file",
                           fault_plan=plan, backoff_base=0.01)
    assert _same_verdicts(result.verdicts, serial_verdicts)
    assert result.retries == 2  # both respawned, both succeeded
    assert not result.degraded
    assert sorted(f["worker"] for f in result.failed_workers) == [0, 2]


def test_stalled_worker_is_replaced(mv_trace, serial_verdicts):
    plan = FaultPlan((StallWorker(worker=0, after_batches=100),))
    result = analyze_trace(mv_trace, jobs=2, dispatch="file",
                           fault_plan=plan, timeout=1.0, backoff_base=0.01)
    assert _same_verdicts(result.verdicts, serial_verdicts)
    assert result.retries == 1
    assert not result.degraded
    [failure] = result.failed_workers
    assert failure["reason"] == "stalled"
    assert failure["exitcode"] is None


def test_recover_false_raises_naming_the_worker(mv_trace):
    plan = FaultPlan((KillWorker(worker=1, after_batches=10),))
    with pytest.raises(WorkerCrashedError) as excinfo:
        analyze_trace(mv_trace, jobs=2, dispatch="file",
                      fault_plan=plan, recover=False)
    msg = str(excinfo.value)
    assert "worker 1" in msg
    assert "crashed" in msg
    assert excinfo.value.shards == [1, 3]
    assert excinfo.value.exitcode == 17


def test_v1_trace_supervised_retry(cfd_json_trace):
    """Supervision is format-agnostic: file dispatch over a v1 trace."""
    baseline = analyze_trace(cfd_json_trace, jobs=1).verdicts
    plan = FaultPlan((KillWorker(worker=0, after_batches=20),))
    result = analyze_trace(cfd_json_trace, jobs=2, dispatch="file",
                           fault_plan=plan)
    assert _same_verdicts(result.verdicts, baseline)
    assert result.retries == 1


# -- queue dispatch: in-flight batches die with the worker --> degrade --------


def test_queue_kill_degrades_with_parity(mv_trace, serial_verdicts):
    plan = FaultPlan((KillWorker(worker=1, after_batches=2),))
    result = analyze_trace(mv_trace, jobs=2, dispatch="queue",
                           batch_size=64, fault_plan=plan)
    assert _same_verdicts(result.verdicts, serial_verdicts)
    assert result.degraded
    assert result.retries == 0  # queue batches are gone: no retry material
    assert any(f["worker"] == 1 and f["reason"] == "crashed"
               for f in result.failed_workers)


def test_queue_stall_detected_by_producer(mv_trace, serial_verdicts):
    plan = FaultPlan((StallWorker(worker=0, after_batches=1),))
    result = analyze_trace(mv_trace, jobs=2, dispatch="queue",
                           batch_size=16, queue_depth=2,
                           timeout=1.0, fault_plan=plan)
    assert _same_verdicts(result.verdicts, serial_verdicts)
    assert result.degraded
    assert any(f["worker"] == 0 and f["reason"] == "stalled"
               for f in result.failed_workers)


# -- surfacing and plumbing ---------------------------------------------------


def test_unfaulted_run_reports_clean_resilience_fields(mv_trace):
    result = analyze_trace(mv_trace, jobs=2, dispatch="file")
    assert result.retries == 0
    assert not result.degraded
    assert result.failed_workers == []
    assert result.salvage is None
    d = result.to_dict()
    assert d["retries"] == 0
    assert d["degraded"] is False
    assert d["failed_workers"] == []


def test_failure_accounting_survives_to_dict(mv_trace):
    plan = FaultPlan((KillWorker(worker=0, after_batches=5, attempt=None),))
    result = analyze_trace(mv_trace, jobs=2, dispatch="file",
                           fault_plan=plan, retries=1, backoff_base=0.01)
    d = result.to_dict()
    assert d["degraded"] is True
    for failure in d["failed_workers"]:
        assert set(failure) == {"worker", "shards", "reason",
                                "exitcode", "attempt"}


def test_backoff_delay_is_capped_exponential():
    delays = [backoff_delay(a, base=0.1, cap=2.0) for a in (1, 2, 3, 4, 5, 6)]
    assert delays == [0.1, 0.2, 0.4, 0.8, 1.6, 2.0]


@pytest.mark.parametrize("kwargs", [
    {"retries": -1},
    {"timeout": 0.0},
    {"timeout": -5.0},
])
def test_bad_resilience_knobs_rejected(mv_trace, kwargs):
    with pytest.raises(ValueError):
        analyze_trace(mv_trace, jobs=2, **kwargs)

"""Follow-mode chaos: live appends, timeouts, kill -9, rewritten prefixes.

``repro analyze --follow`` tails a still-growing v2 trace.  The
contract: whatever interleaving of appends, torn tails, and process
deaths happens while following, the final verdicts are byte-identical
to a from-scratch analysis of the final file — and a prefix rewritten
underneath the follow aborts with :class:`TraceDivergedError` instead
of splicing old detector state onto new history.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.faultinject import (
    append_mid_analysis,
    extend_trace,
    rewrite_prefix,
    truncate_tail_mid_append,
)
from repro.pipeline import BinaryTraceWriter, TraceDivergedError, analyze_trace

#: counters that legitimately differ between a followed and a
#: straight-through run (tail polling, resume accounting, ckpt I/O)
_BOOKKEEPING = ("pipeline.ckpt.", "incremental.")

#: a v2 trailer is TEND + u64 event count
_TRAILER = 12


def _strip(snapshot):
    out = dict(snapshot)
    out.pop("spans", None)
    out["counters"] = {
        k: v for k, v in out.get("counters", {}).items()
        if not k.startswith(_BOOKKEEPING)
    }
    return out


def assert_parity(result, baseline):
    assert json.dumps(result.verdicts, sort_keys=True) == \
        json.dumps(baseline.verdicts, sort_keys=True)
    assert result.forensics == baseline.forensics
    got, want = _strip(result.obs), _strip(baseline.obs)
    assert got["counters"] == want["counters"]
    assert result.timeline == baseline.timeline


def _behead(path):
    """Strip the trailer: the file looks like a recorder still running."""
    path.write_bytes(path.read_bytes()[:-_TRAILER])


def _finalize(path):
    """Write the trailer a dead recorder never got to."""
    BinaryTraceWriter.open_append(path).close()


@pytest.fixture
def live_trace(mv_trace, rechunk):
    """A 12-chunk copy with the trailer stripped — growth in progress."""
    path = rechunk(mv_trace, events_per_chunk=200)
    _behead(path)
    return path


def test_follow_completes_already_finished_trace(mv_trace, rechunk):
    """A trailer on disk ends the follow like any normal analysis."""
    path = rechunk(mv_trace)
    baseline = analyze_trace(path, detector="our", jobs=1)
    result = analyze_trace(path, detector="our", jobs=1, follow=True,
                           ckpt_dir=path.parent / "ck", ckpt_every=1)
    assert not result.partial
    assert result.checkpoint["stopped"] is None
    assert_parity(result, baseline)


def test_follow_requires_serial_and_ckpt_dir(mv_trace):
    with pytest.raises(ValueError):
        analyze_trace(mv_trace, follow=True)  # no ckpt_dir
    with pytest.raises(ValueError):
        analyze_trace(mv_trace, follow=True, jobs=4, ckpt_dir="/tmp/x")
    with pytest.raises(ValueError):
        analyze_trace(mv_trace, follow_timeout_s=5.0)  # needs follow


def test_follow_absorbs_live_appends(live_trace):
    """Chunks appended while following land in the same run's verdicts."""
    # the delay is deliberately long enough that the follower reaches
    # the trailerless EOF and polls before the first new chunk lands
    thread = append_mid_analysis(live_trace, fraction=0.15, delay_s=1.0,
                                 pause_s=0.1, finalize=True)
    result = analyze_trace(live_trace, detector="our", jobs=1, follow=True,
                           ckpt_dir=live_trace.parent / "ck", ckpt_every=1)
    thread.join(timeout=30)
    assert not thread.is_alive()
    assert not result.partial
    assert result.obs["counters"].get("incremental.tail_retries", 0) > 0
    baseline = analyze_trace(live_trace, detector="our", jobs=1)
    assert_parity(result, baseline)


def test_follow_timeout_leaves_resumable_partial(live_trace):
    """No growth within the budget: stop checkpointed, resume later."""
    ck = live_trace.parent / "ck"
    result = analyze_trace(live_trace, detector="our", jobs=1, follow=True,
                           ckpt_dir=ck, ckpt_every=1, follow_timeout_s=0.3)
    assert result.partial
    assert result.checkpoint["stopped"] == "follow-timeout"
    assert result.checkpoint["written"] > 0

    extend_trace(live_trace, fraction=0.1)
    resumed = analyze_trace(live_trace, detector="our", jobs=1, follow=True,
                            ckpt_dir=ck, ckpt_every=1, resume=True)
    assert not resumed.partial
    rec = resumed.checkpoint["resumed"]
    assert rec and rec[0]["chunks_skipped"] > 0
    baseline = analyze_trace(live_trace, detector="our", jobs=1)
    assert json.dumps(resumed.verdicts, sort_keys=True) == \
        json.dumps(baseline.verdicts, sort_keys=True)
    assert resumed.forensics == baseline.forensics


def test_follow_tolerates_torn_tail_then_growth(live_trace):
    """A recorder crash mid-append is 'wait', not 'corrupt'."""
    truncate_tail_mid_append(live_trace, keep_fraction=0.4)
    thread = append_mid_analysis(live_trace, fraction=0.1, delay_s=0.2,
                                 finalize=True)
    result = analyze_trace(live_trace, detector="our", jobs=1, follow=True,
                           ckpt_dir=live_trace.parent / "ck", ckpt_every=1)
    thread.join(timeout=30)
    assert not result.partial
    baseline = analyze_trace(live_trace, detector="our", jobs=1)
    assert_parity(result, baseline)


def test_resume_refuses_rewritten_prefix(mv_trace, rechunk):
    """Self-consistently rewritten history diverges — never resumes."""
    path = rechunk(mv_trace)
    ck = path.parent / "ck"
    analyze_trace(path, detector="our", jobs=1, ckpt_dir=ck, ckpt_every=1)
    rewrite_prefix(path, chunk=3, seed=7)
    # the file passes its own checksums — only the retained cursor knows
    analyze_trace(path, detector="our", jobs=1)  # fresh run: fine
    with pytest.raises(TraceDivergedError) as exc:
        analyze_trace(path, detector="our", jobs=1, ckpt_dir=ck,
                      resume=True)
    # the cursor proves divergence at its own chunk; the rewrite sits
    # at or before it
    assert exc.value.chunk is not None and exc.value.chunk >= 3


def test_follow_detects_shrunken_file(live_trace):
    """A file shrinking below the cursor is divergence, not patience."""
    ck = live_trace.parent / "ck"
    analyze_trace(live_trace, detector="our", jobs=1, follow=True,
                  ckpt_dir=ck, ckpt_every=1, follow_timeout_s=0.2)
    # chop off everything after chunk 2: shorter than the cursor
    from repro.faultinject import chunk_index
    chunks = chunk_index(live_trace)
    live_trace.write_bytes(
        live_trace.read_bytes()[:chunks[1].payload_pos + chunks[1].nbytes])
    with pytest.raises(TraceDivergedError):
        analyze_trace(live_trace, detector="our", jobs=1, follow=True,
                      ckpt_dir=ck, ckpt_every=1, resume=True,
                      follow_timeout_s=0.2)


_CHILD = """
import sys
from repro.pipeline import analyze_trace
analyze_trace(sys.argv[1], detector="our", jobs=1, follow=True,
              ckpt_dir=sys.argv[2], ckpt_every=1, resume=True)
"""


def test_kill9_mid_follow_resumes_byte_identical(live_trace, tmp_path):
    """SIGKILL the follower, finalize the trace, resume: exact verdicts."""
    ck = tmp_path / "ck"
    ck.mkdir()
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(p) for p in sys.path if p] or [])
    child = subprocess.Popen(
        [sys.executable, "-c", _CHILD, str(live_trace), str(ck)],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    try:
        deadline = time.time() + 60
        while not list(ck.glob("serial-*.ckpt")):
            assert child.poll() is None, "follower exited before checkpoint"
            assert time.time() < deadline, "no checkpoint appeared"
            time.sleep(0.05)
        # feed it a little growth, then kill it mid-flight
        extend_trace(live_trace, fraction=0.05)
        _behead(live_trace)
        time.sleep(0.3)
    finally:
        child.kill()
        child.wait(timeout=30)

    extend_trace(live_trace, fraction=0.05)
    result = analyze_trace(live_trace, detector="our", jobs=1, follow=True,
                           ckpt_dir=ck, ckpt_every=1, resume=True)
    assert not result.partial
    rec = result.checkpoint["resumed"]
    assert rec and rec[0]["chunks_skipped"] > 0
    baseline = analyze_trace(live_trace, detector="our", jobs=1)
    assert json.dumps(result.verdicts, sort_keys=True) == \
        json.dumps(baseline.verdicts, sort_keys=True)
    assert result.forensics == baseline.forensics

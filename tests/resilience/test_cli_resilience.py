"""CLI failure surface: exit codes, flags and JSON fields for resilience.

Exit-code contract: 0 success, 2 operator error (bad input, unreadable
or corrupt trace, crashed analysis), 3 the *recorded application*
failed under simulation (``repro record``), 4 a resource guard stopped
the analysis early — the verdict is partial and resumable with
``--resume``.
"""

import json

import pytest

import repro.pipeline
from repro.cli import main
from repro.faultinject import chunk_index, flip_bytes
from repro.mpi.errors import MpiSimError
from repro.pipeline import PipelineResult


@pytest.fixture
def damaged_trace(rechunk, mv_trace):
    path = rechunk(mv_trace)
    flip_bytes(path, chunk=chunk_index(path)[-1].chunk, seed=5)
    return path


def test_corrupt_trace_without_salvage_exits_2(damaged_trace, capsys):
    assert main(["analyze", str(damaged_trace)]) == 2
    err = capsys.readouterr().err
    assert "repro analyze:" in err
    assert "checksum" in err


def test_corrupt_trace_with_salvage_exits_0(damaged_trace, capsys):
    assert main(["analyze", str(damaged_trace), "--salvage"]) == 0
    out = capsys.readouterr().out
    assert "salvage: 1 chunk(s) quarantined" in out


def test_salvage_accounting_in_json_report(damaged_trace, capsys):
    assert main(["analyze", str(damaged_trace), "--salvage", "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert len(report["salvage"]["quarantined_chunks"]) == 1
    assert report["salvage"]["events_lost"] > 0
    assert report["salvage"]["truncated"] is False
    assert report["degraded"] is False
    assert report["retries"] == 0
    assert report["failed_workers"] == []


def test_missing_trace_exits_2(tmp_path, capsys):
    assert main(["analyze", str(tmp_path / "nope.trace")]) == 2
    assert "repro analyze:" in capsys.readouterr().err


def test_record_app_failure_exits_3(monkeypatch, capsys):
    def exploding_record(*args, **kwargs):
        raise MpiSimError("rank 2 deadlocked in MPI_Win_fence")

    monkeypatch.setattr(repro.pipeline, "record_app", exploding_record)
    assert main(["record", "minivite"]) == 3
    err = capsys.readouterr().err
    assert err.count("\n") == 1  # exactly one line
    assert "minivite failed" in err
    assert "MpiSimError" in err
    assert "deadlocked" in err


def test_record_bad_arguments_exit_2(monkeypatch, capsys):
    def rejecting_record(*args, **kwargs):
        raise ValueError("--inject-race is not supported for 'cfd'")

    monkeypatch.setattr(repro.pipeline, "record_app", rejecting_record)
    assert main(["record", "cfd", "--inject-race"]) == 2
    assert "repro record:" in capsys.readouterr().err


def test_resilience_flags_reach_the_engine(monkeypatch, mv_trace, capsys):
    captured = {}

    def spy_analyze(source, **kwargs):
        captured.update(kwargs)
        return PipelineResult(
            detector=kwargs["detector"], nranks=4, jobs=1,
            dispatch="serial", events_total=0, wall_seconds=0.01,
            verdicts=[], shard_stats=[],
        )

    monkeypatch.setattr(repro.pipeline, "analyze_trace", spy_analyze)
    assert main(["analyze", str(mv_trace), "--timeout", "7.5",
                 "--retries", "4", "--salvage"]) == 0
    assert captured["timeout"] == 7.5
    assert captured["retries"] == 4
    assert captured["salvage"] is True


def test_worker_failures_reported_in_text_output(monkeypatch, mv_trace,
                                                 capsys):
    """End to end through the real CLI: a kill shows up, recovery is named."""
    from repro.faultinject import FaultPlan, KillWorker
    from repro.pipeline import analyze_trace as real_analyze

    def faulted(source, **kwargs):
        kwargs["fault_plan"] = FaultPlan((KillWorker(0, after_batches=50),))
        return real_analyze(source, **kwargs)

    # patch where the CLI looks it up (imported inside _analyze)
    monkeypatch.setattr(repro.pipeline, "analyze_trace", faulted)
    status = main(["analyze", str(mv_trace),
                   "--jobs", "2", "--dispatch", "file"])
    assert status == 0
    out = capsys.readouterr().out
    assert "worker 0 crashed" in out
    assert "recovered via 1 worker retry" in out


def test_deadline_partial_exits_4_and_resume_exits_0(mv_trace, tmp_path,
                                                     capsys):
    ck = tmp_path / "ck"
    status = main(["analyze", str(mv_trace), "--ckpt-dir", str(ck),
                   "--ckpt-every", "1", "--deadline-s", "0.000001"])
    assert status == 4
    out = capsys.readouterr().out
    assert "PARTIAL:" in out
    assert f"--resume {ck}" in out
    assert list(ck.glob("serial-*.ckpt"))

    status = main(["analyze", str(mv_trace), "--resume", str(ck)])
    assert status == 0
    out = capsys.readouterr().out
    assert "resumed lane serial from checkpoint" in out
    assert "PARTIAL" not in out


def test_partial_json_report_carries_checkpoint_fields(mv_trace, tmp_path,
                                                       capsys):
    ck = tmp_path / "ck"
    status = main(["analyze", str(mv_trace), "--json",
                   "--ckpt-dir", str(ck), "--ckpt-every", "1",
                   "--deadline-s", "0.000001"])
    assert status == 4
    report = json.loads(capsys.readouterr().out)
    assert report["partial"] is True
    assert 0 < report["analyzed_fraction"] < 1
    assert report["checkpoint"]["written"] >= 1
    assert report["checkpoint"]["stopped"] == "deadline"


def test_resume_and_ckpt_dir_must_agree(mv_trace, tmp_path, capsys):
    assert main(["analyze", str(mv_trace),
                 "--ckpt-dir", str(tmp_path / "a"),
                 "--resume", str(tmp_path / "b")]) == 2
    assert "disagree" in capsys.readouterr().err


def test_guards_without_ckpt_dir_exit_2(mv_trace, capsys):
    assert main(["analyze", str(mv_trace), "--deadline-s", "5"]) == 2
    assert "checkpoint directory" in capsys.readouterr().err


def test_corrupt_checkpoint_quarantine_reported(mv_trace, tmp_path, capsys):
    from repro.faultinject import corrupt_checkpoint

    ck = tmp_path / "ck"
    main(["analyze", str(mv_trace), "--ckpt-dir", str(ck),
          "--ckpt-every", "1", "--deadline-s", "0.000001"])
    main(["analyze", str(mv_trace), "--ckpt-dir", str(ck),
          "--ckpt-every", "1", "--deadline-s", "0.000001", "--resume",
          str(ck)])
    capsys.readouterr()
    newest = sorted(ck.glob("serial-*.ckpt"))[-1]
    corrupt_checkpoint(newest, mode="flip")
    status = main(["analyze", str(mv_trace), "--resume", str(ck)])
    assert status == 0
    out = capsys.readouterr().out
    assert f"quarantined corrupt checkpoint: {newest.name}.bad" in out
    assert "resumed lane serial" in out

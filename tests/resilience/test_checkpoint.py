"""Checkpoint/resume chaos matrix and unit coverage.

The contract under test: with ``ckpt_dir`` set, any interruption —
worker kill, stall, hard process death, deadline, memory guard — leaves
``repro-ckpt-v1`` files from which the analysis resumes *mid-trace*
(never a full shard-group re-run) and finishes with verdicts, forensics
and merged metrics byte-identical to a fault-free run.  Corrupt or
truncated checkpoints are quarantined and recovery falls back to the
previous generation, reported in the result — never a silent restart
from scratch.

Metric parity deliberately excludes wall-clock spans and the
resilience bookkeeping counters (``pipeline.retries``,
``pipeline.worker_failures``, ``pipeline.degraded``,
``pipeline.ckpt.*``) — those *should* differ under injected faults;
everything else must not.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.faultinject import (
    FaultPlan,
    KillWorker,
    StallWorker,
    corrupt_checkpoint,
    flip_bytes,
)
from repro.mpi.epoch import EpochTracker
from repro.pipeline import (
    BinaryTraceWriter,
    CheckpointError,
    CheckpointStore,
    TraceReader,
    analyze_trace,
)
from repro.pipeline.engine import DETECTOR_SPECS
from repro.pipeline.shard import dispatch_event

#: counters whose values legitimately differ between faulted and
#: fault-free runs — everything else must match exactly
_BOOKKEEPING = ("pipeline.retries", "pipeline.worker_failures",
                "pipeline.degraded", "pipeline.ckpt.", "incremental.")


def _strip(snapshot):
    out = dict(snapshot)
    out.pop("spans", None)
    out["counters"] = {
        k: v for k, v in out.get("counters", {}).items()
        if not k.startswith(_BOOKKEEPING)
    }
    return out


def assert_parity(result, baseline):
    """Byte-identical verdicts, forensics, metrics and timeline."""
    assert json.dumps(result.verdicts, sort_keys=True) == \
        json.dumps(baseline.verdicts, sort_keys=True)
    assert result.forensics == baseline.forensics
    got, want = _strip(result.obs), _strip(baseline.obs)
    assert got["counters"] == want["counters"]
    assert got.get("gauges") == want.get("gauges")
    assert got.get("histograms") == want.get("histograms")
    assert result.timeline == baseline.timeline


@pytest.fixture(scope="module")
def chunked_trace(tmp_path_factory, mv_trace):
    """The miniVite trace re-chunked to 200 events/chunk (12 chunks)."""
    dst = tmp_path_factory.mktemp("ckpt") / "mv200.trace"
    reader = TraceReader(mv_trace)
    with BinaryTraceWriter(dst, nranks=reader.nranks,
                           events_per_chunk=200) as writer:
        for event in reader:
            writer.write(event)
    return dst


@pytest.fixture(scope="module")
def baseline_serial(chunked_trace):
    return analyze_trace(chunked_trace, detector="our", jobs=1)


@pytest.fixture(scope="module")
def baseline_jobs4(chunked_trace):
    return analyze_trace(chunked_trace, detector="our", jobs=4,
                         dispatch="file")


# -- unit: state snapshots ----------------------------------------------------


@pytest.mark.parametrize("name", sorted(DETECTOR_SPECS))
def test_detector_snapshot_roundtrip_mid_replay(name, mv_trace):
    """snapshot() mid-replay + restore() == never-interrupted replay."""
    import pickle

    reader = TraceReader(mv_trace)
    events = list(reader)
    nranks = reader.nranks
    cut = len(events) // 2

    straight = DETECTOR_SPECS[name]()
    for event in events:
        dispatch_event(straight, event, nranks)
    straight.finalize()

    first = DETECTOR_SPECS[name]()
    for event in events[:cut]:
        dispatch_event(first, event, nranks)
    snap = pickle.loads(pickle.dumps(first.snapshot()))
    resumed = DETECTOR_SPECS[name]()
    resumed.restore(snap)
    for event in events[cut:]:
        dispatch_event(resumed, event, nranks)
    resumed.finalize()

    assert len(resumed.reports) == len(straight.reports)
    for a, b in zip(resumed.reports, straight.reports):
        assert (a.rank, a.window, a.stored, a.new) == \
            (b.rank, b.window, b.stored, b.new)
    assert resumed.node_stats() == straight.node_stats()


def test_detector_restore_rejects_wrong_class():
    ours = DETECTOR_SPECS["our"]()
    other = DETECTOR_SPECS["mc"]()
    with pytest.raises(ValueError, match="checkpoint is for detector"):
        other.restore(ours.snapshot())


def test_epoch_tracker_snapshot_roundtrip():
    t = EpochTracker()
    t.lock_all(0, 0)
    t.note_op(0, 0)
    t.flush(0, 0)
    t.note_op(0, 0)
    t.lock(1, 0, target=2, exclusive=True)
    t.fence(2, 1)

    fresh = EpochTracker()
    fresh.restore(t.snapshot())
    assert fresh.snapshot() == t.snapshot()
    # in-flight epochs resume as-is and keep evolving identically
    for tracker in (t, fresh):
        tracker.note_op(0, 0)
        tracker.unlock_all(0, 0)
        tracker.unlock(1, 0, target=2)
    assert fresh.snapshot() == t.snapshot()
    assert fresh.flush_gen(0, 0) == 1
    assert fresh.epochs_completed(0, 0) == 1


# -- unit: the checkpoint store ----------------------------------------------


def test_store_write_load_prune(tmp_path):
    store = CheckpointStore(tmp_path, "serial")
    for seq in range(1, 5):
        store.write({"n": seq}, {"state": seq * 11})
    # keep=2: only the newest two generations survive
    names = sorted(p.name for p in tmp_path.glob("*.ckpt"))
    assert names == ["serial-00000003.ckpt", "serial-00000004.ckpt"]
    header, state = store.load_latest()
    assert header["seq"] == 4 and header["meta"] == {"n": 4}
    assert state == {"state": 44}


@pytest.mark.parametrize("mode", ["flip", "truncate"])
def test_store_quarantines_corrupt_and_falls_back(tmp_path, mode):
    store = CheckpointStore(tmp_path, "w0")
    store.write({"n": 1}, {"state": 1})
    store.write({"n": 2}, {"state": 2})
    corrupt_checkpoint(tmp_path / "w0-00000002.ckpt", mode=mode)

    header, state = store.load_latest()
    assert header["seq"] == 1 and state == {"state": 1}
    assert store.quarantined == ["w0-00000002.ckpt.bad"]
    assert (tmp_path / "w0-00000002.ckpt.bad").exists()
    assert not (tmp_path / "w0-00000002.ckpt").exists()


def test_store_empty_lane_and_all_corrupt(tmp_path):
    store = CheckpointStore(tmp_path, "w1")
    assert store.load_latest() is None
    store.write({}, {"s": 1})
    corrupt_checkpoint(tmp_path / "w1-00000001.ckpt", mode="truncate",
                       keep_fraction=0.0)
    assert store.load_latest() is None
    assert store.quarantined == ["w1-00000001.ckpt.bad"]


def test_store_expect_mismatch_is_hard_error(tmp_path):
    store = CheckpointStore(tmp_path, "serial")
    store.write({"detector": "our", "nranks": 4}, {"s": 1})
    with pytest.raises(CheckpointError, match="does not match"):
        store.load_latest(expect={"detector": "mc", "nranks": 4})


# -- chaos matrix: jobs=4 -----------------------------------------------------


def _fault(kind, worker=1, tick=150):
    if kind == "kill":
        return FaultPlan(actions=(KillWorker(worker=worker,
                                             after_batches=tick, attempt=0),))
    return FaultPlan(actions=(StallWorker(worker=worker, after_batches=tick,
                                          attempt=0, seconds=30.0),))


@pytest.mark.parametrize("kind", ["kill", "stall"])
def test_jobs4_fault_resumes_from_checkpoint(kind, chunked_trace, tmp_path,
                                             baseline_jobs4):
    r = analyze_trace(
        chunked_trace, detector="our", jobs=4, dispatch="file",
        fault_plan=_fault(kind), timeout=2.0 if kind == "stall" else None,
        ckpt_dir=tmp_path / "ck", ckpt_every=1,
    )
    assert not r.degraded and not r.partial
    assert r.retries == 1
    # the retried lane resumed mid-trace — no full shard-group re-run
    resumed = [rec for rec in r.checkpoint["resumed"] if rec["lane"] == "w1"]
    assert resumed and resumed[0]["events_skipped"] > 0
    assert r.checkpoint["quarantined"] == []
    assert_parity(r, baseline_jobs4)


@pytest.mark.parametrize("kind", ["kill", "stall"])
def test_jobs4_fault_without_checkpoints_still_recovers(kind, chunked_trace,
                                                        baseline_jobs4):
    """Satellite regression: a retried shard group must not double-count
    obs counters or timeline events — metrics equal the fault-free run."""
    r = analyze_trace(
        chunked_trace, detector="our", jobs=4, dispatch="file",
        fault_plan=_fault(kind), timeout=2.0 if kind == "stall" else None,
    )
    assert not r.degraded and r.retries == 1
    assert r.checkpoint is None
    assert_parity(r, baseline_jobs4)


def test_jobs4_corrupt_checkpoint_falls_back_one_generation(
        chunked_trace, tmp_path, baseline_jobs4):
    ck = tmp_path / "ck"
    partial = analyze_trace(chunked_trace, detector="our", jobs=4,
                            dispatch="file", ckpt_dir=ck, ckpt_every=1,
                            deadline_s=1e-6)
    assert partial.partial
    # a second deadline-bounded leg advances one more chunk per lane,
    # leaving two checkpoint generations on disk (keep=2)
    again = analyze_trace(chunked_trace, detector="our", jobs=4,
                          dispatch="file", ckpt_dir=ck, ckpt_every=1,
                          deadline_s=1e-6, resume=True)
    assert again.partial
    lanes = sorted(ck.glob("w1-*.ckpt"))
    assert len(lanes) >= 2  # keep=2 generations per lane
    corrupt_checkpoint(lanes[-1], mode="flip")

    r = analyze_trace(chunked_trace, detector="our", jobs=4,
                      dispatch="file", ckpt_dir=ck, ckpt_every=1,
                      resume=True)
    assert not r.partial
    assert lanes[-1].name + ".bad" in r.checkpoint["quarantined"]
    resumed = {rec["lane"]: rec for rec in r.checkpoint["resumed"]}
    # w1 fell back to the generation before the corrupt one
    assert resumed["w1"]["from_seq"] == int(lanes[-2].stem.split("-")[1])
    assert_parity(r, baseline_jobs4)


def test_jobs4_deadline_partial_then_resume(chunked_trace, tmp_path,
                                            baseline_jobs4):
    ck = tmp_path / "ck"
    partial = analyze_trace(chunked_trace, detector="our", jobs=4,
                            dispatch="file", ckpt_dir=ck, ckpt_every=1,
                            deadline_s=1e-6)
    assert partial.partial
    assert partial.checkpoint["stopped"] == "deadline"
    assert 0 < partial.analyzed_fraction < 1
    assert partial.checkpoint["written"] >= 4  # every lane checkpointed

    r = analyze_trace(chunked_trace, detector="our", jobs=4,
                      dispatch="file", ckpt_dir=ck, resume=True)
    assert not r.partial and r.analyzed_fraction == 1.0
    assert len(r.checkpoint["resumed"]) == 4
    assert all(rec["events_skipped"] > 0 for rec in r.checkpoint["resumed"])
    assert_parity(r, baseline_jobs4)


def test_jobs4_memory_guard_recycles_workers(mv_trace):
    """max_rss_mb below the interpreter baseline: every worker recycles
    at each chunk boundary, resumes in a fresh process, and the run
    still completes with full parity — no degrade, no retry budget."""
    baseline = analyze_trace(mv_trace, detector="our", jobs=4,
                             dispatch="file")
    import tempfile

    with tempfile.TemporaryDirectory() as ck:
        r = analyze_trace(mv_trace, detector="our", jobs=4, dispatch="file",
                          ckpt_dir=ck, ckpt_every=1, max_rss_mb=1)
    assert r.checkpoint["recycles"] >= 4
    assert not r.degraded and not r.partial and r.retries == 0
    assert r.failed_workers == []
    assert_parity(r, baseline)


# -- chaos matrix: serial -----------------------------------------------------


def test_serial_deadline_partial_then_resume(chunked_trace, tmp_path,
                                             baseline_serial):
    ck = tmp_path / "ck"
    partial = analyze_trace(chunked_trace, detector="our", jobs=1,
                            ckpt_dir=ck, ckpt_every=1, deadline_s=1e-6)
    assert partial.partial
    assert partial.checkpoint["stopped"] == "deadline"
    assert 0 < partial.analyzed_fraction < 1

    r = analyze_trace(chunked_trace, detector="our", jobs=1,
                      ckpt_dir=ck, resume=True)
    assert not r.partial and r.analyzed_fraction == 1.0
    assert r.checkpoint["resumed"][0]["events_skipped"] > 0
    assert_parity(r, baseline_serial)


def test_serial_memory_guard_stops_resumably(chunked_trace, tmp_path,
                                             baseline_serial):
    ck = tmp_path / "ck"
    partial = analyze_trace(chunked_trace, detector="our", jobs=1,
                            ckpt_dir=ck, ckpt_every=1, max_rss_mb=1)
    assert partial.partial
    assert partial.checkpoint["stopped"] == "memory"

    r = analyze_trace(chunked_trace, detector="our", jobs=1,
                      ckpt_dir=ck, resume=True)
    assert not r.partial
    assert_parity(r, baseline_serial)


@pytest.mark.parametrize("mode", ["flip", "truncate"])
def test_serial_corrupt_checkpoint_falls_back(mode, chunked_trace, tmp_path,
                                              baseline_serial):
    ck = tmp_path / "ck"
    analyze_trace(chunked_trace, detector="our", jobs=1,
                  ckpt_dir=ck, ckpt_every=1, deadline_s=1e-6)
    analyze_trace(chunked_trace, detector="our", jobs=1,
                  ckpt_dir=ck, ckpt_every=1, deadline_s=1e-6, resume=True)
    lanes = sorted(ck.glob("serial-*.ckpt"))
    assert len(lanes) >= 2
    corrupt_checkpoint(lanes[-1], mode=mode)

    r = analyze_trace(chunked_trace, detector="our", jobs=1,
                      ckpt_dir=ck, resume=True)
    assert not r.partial
    assert lanes[-1].name + ".bad" in r.checkpoint["quarantined"]
    # fell back to the previous generation, not from-scratch
    assert r.checkpoint["resumed"][0]["from_seq"] == \
        int(lanes[-2].stem.split("-")[1])
    assert_parity(r, baseline_serial)


def test_serial_hard_kill_then_resume(chunked_trace, tmp_path,
                                      baseline_serial):
    """SIGKILL-grade death right after a checkpoint hit disk: the child
    process dies with no cleanup, and resuming from the on-disk state
    still converges to the fault-free result."""
    ck = tmp_path / "ck"
    script = (
        "import os\n"
        "from repro.pipeline import analyze_trace\n"
        "from repro.pipeline import checkpoint as ckpt_mod\n"
        "real_write = ckpt_mod.CheckpointStore.write\n"
        "def dying_write(self, meta, state):\n"
        "    path = real_write(self, meta, state)\n"
        "    if self.next_seq() > 3:\n"
        "        os._exit(117)  # no cleanup, no atexit: a hard death\n"
        "    return path\n"
        "ckpt_mod.CheckpointStore.write = dying_write\n"
        f"analyze_trace({str(chunked_trace)!r}, detector='our', jobs=1,\n"
        f"              ckpt_dir={str(ck)!r}, ckpt_every=1)\n"
    )
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run([sys.executable, "-c", script], env=env,
                          capture_output=True, timeout=60)
    assert proc.returncode != 0  # it died mid-run, by design
    assert sorted(ck.glob("serial-*.ckpt"))  # state survived the death

    r = analyze_trace(chunked_trace, detector="our", jobs=1,
                      ckpt_dir=ck, resume=True)
    assert not r.partial
    assert r.checkpoint["resumed"][0]["from_seq"] >= 2
    assert_parity(r, baseline_serial)


def test_serial_v1_json_trace_resume(cfd_json_trace, tmp_path):
    """Checkpoint cursors work for the v1 JSON-lines format too."""
    baseline = analyze_trace(cfd_json_trace, detector="our", jobs=1)
    ck = tmp_path / "ck"
    partial = analyze_trace(cfd_json_trace, detector="our", jobs=1,
                            ckpt_dir=ck, ckpt_every=1, deadline_s=1e-6)
    assert partial.partial
    r = analyze_trace(cfd_json_trace, detector="our", jobs=1,
                      ckpt_dir=ck, resume=True)
    assert not r.partial
    assert r.checkpoint["resumed"][0]["events_skipped"] > 0
    assert_parity(r, baseline)


# -- salvage accounting through resume ---------------------------------------


def test_salvage_loss_accounting_survives_resume(chunked_trace, tmp_path):
    """Satellite regression: a reader driven from a resumed offset must
    report *cumulative* salvage losses, identical to a one-shot read."""
    damaged = tmp_path / "damaged.trace"
    damaged.write_bytes(chunked_trace.read_bytes())
    flip_bytes(damaged, chunk=5, seed=3)

    oneshot = analyze_trace(damaged, detector="our", jobs=1, salvage=True)
    assert oneshot.salvage["quarantined_chunks"] == [5]
    assert oneshot.salvage["events_lost"] > 0

    ck = tmp_path / "ck"
    partial = analyze_trace(damaged, detector="our", jobs=1, salvage=True,
                            ckpt_dir=ck, ckpt_every=1, deadline_s=1e-6)
    assert partial.partial
    resumed = analyze_trace(damaged, detector="our", jobs=1, salvage=True,
                            ckpt_dir=ck, resume=True)
    assert not resumed.partial
    assert resumed.salvage == oneshot.salvage
    assert json.dumps(resumed.verdicts, sort_keys=True) == \
        json.dumps(oneshot.verdicts, sort_keys=True)


def test_salvage_loss_before_checkpoint_still_counted(chunked_trace,
                                                      tmp_path):
    """Damage quarantined *before* the final resume point: the last
    reader never sees chunk 2 at all, yet the cursor threads its loss
    through the checkpoint and the final accounting still includes it."""
    damaged = tmp_path / "damaged.trace"
    damaged.write_bytes(chunked_trace.read_bytes())
    flip_bytes(damaged, chunk=2, seed=7)

    oneshot = analyze_trace(damaged, detector="our", jobs=1, salvage=True)
    ck = tmp_path / "ck"
    # leg 1 stops after chunk 1; leg 2 resumes, quarantines chunk 2 and
    # checkpoints past it; the final leg starts beyond the damage
    for _ in range(2):
        partial = analyze_trace(damaged, detector="our", jobs=1,
                                salvage=True, ckpt_dir=ck, ckpt_every=1,
                                deadline_s=1e-6, resume=ck.exists())
        assert partial.partial
    resumed = analyze_trace(damaged, detector="our", jobs=1, salvage=True,
                            ckpt_dir=ck, resume=True)
    assert not resumed.partial
    assert resumed.salvage == oneshot.salvage


# -- validation and API surface ----------------------------------------------


def test_guards_require_ckpt_dir(mv_trace):
    with pytest.raises(ValueError, match="checkpoint directory"):
        analyze_trace(mv_trace, deadline_s=10.0)
    with pytest.raises(ValueError, match="checkpoint directory"):
        analyze_trace(mv_trace, max_rss_mb=100)
    with pytest.raises(ValueError, match="checkpoint directory"):
        analyze_trace(mv_trace, resume=True)


def test_queue_dispatch_rejects_checkpointing(mv_trace, tmp_path):
    with pytest.raises(ValueError, match="dispatch='file'"):
        analyze_trace(mv_trace, jobs=4, dispatch="queue",
                      ckpt_dir=tmp_path / "ck")


def test_ckpt_every_must_be_positive(mv_trace, tmp_path):
    with pytest.raises(ValueError, match="ckpt_every"):
        analyze_trace(mv_trace, ckpt_dir=tmp_path / "ck", ckpt_every=0)


def test_resume_with_empty_dir_runs_from_scratch(chunked_trace, tmp_path,
                                                 baseline_serial):
    r = analyze_trace(chunked_trace, detector="our", jobs=1,
                      ckpt_dir=tmp_path / "empty", resume=True)
    assert not r.partial
    assert r.checkpoint["resumed"] == []
    assert_parity(r, baseline_serial)


def test_mismatched_checkpoint_is_rejected(chunked_trace, mv_trace,
                                           tmp_path):
    """A checkpoint from another trace/detector must never be resumed."""
    ck = tmp_path / "ck"
    analyze_trace(chunked_trace, detector="our", jobs=1,
                  ckpt_dir=ck, ckpt_every=1, deadline_s=1e-6)
    with pytest.raises(CheckpointError, match="does not match"):
        analyze_trace(mv_trace, detector="our", jobs=1,
                      ckpt_dir=ck, resume=True)
    with pytest.raises(CheckpointError, match="does not match"):
        analyze_trace(chunked_trace, detector="mc", jobs=1,
                      ckpt_dir=ck, resume=True)

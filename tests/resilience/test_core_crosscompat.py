"""Checkpoint cross-compatibility between the two detector cores.

``repro-ckpt-v1`` detector snapshots carry the writing class: the flat
core serializes stores in the ``repro-flat-bst-v1`` column layout, the
legacy object core pickles ``IntervalBST`` state.  A snapshot must only
ever resume on the core that wrote it — restoring across cores raises a
:class:`~repro.pipeline.CheckpointError` that *names both core kinds*
and the ``REPRO_CORE`` setting that would resume it.  A silent
wrong-resume (empty stores, zeroed stats, missed races) is the failure
mode this file exists to make impossible.
"""

import pickle

import pytest

from repro.core import FlatDetector, OurDetector
from repro.pipeline import CheckpointError, TraceReader
from repro.pipeline.shard import dispatch_event


def _mid_replay(det, mv_trace):
    """Feed half the trace so the snapshot carries real store state."""
    reader = TraceReader(mv_trace)
    events = list(reader)
    for event in events[: len(events) // 2]:
        dispatch_event(det, event, reader.nranks)
    return det


def test_object_snapshot_rejected_by_flat_core(mv_trace):
    snap = pickle.loads(pickle.dumps(
        _mid_replay(OurDetector(), mv_trace).snapshot()))
    assert snap["class"] == "OurDetector"
    with pytest.raises(CheckpointError) as exc:
        FlatDetector().restore(snap)
    msg = str(exc.value)
    assert "object core (OurDetector)" in msg
    assert "flat core (FlatDetector)" in msg
    assert "REPRO_CORE=object" in msg
    assert "repro-ckpt-v1" in msg


def test_flat_snapshot_rejected_by_object_core(mv_trace):
    snap = pickle.loads(pickle.dumps(
        _mid_replay(FlatDetector(), mv_trace).snapshot()))
    assert snap["class"] == "FlatDetector"
    with pytest.raises(CheckpointError) as exc:
        OurDetector().restore(snap)
    msg = str(exc.value)
    assert "FlatDetector" in msg
    assert "OurDetector" in msg
    assert "REPRO_CORE" in msg


def test_rejection_leaves_no_partial_state(mv_trace):
    """A rejected cross-core restore must not half-populate the
    detector — a later run would silently mix cores' state."""
    snap = _mid_replay(OurDetector(), mv_trace).snapshot()
    det = FlatDetector()
    with pytest.raises(CheckpointError):
        det.restore(snap)
    assert not det._stores
    assert not det.reports
    assert det.node_stats().accesses_processed == 0


def test_flat_snapshot_resumes_on_flat_core(mv_trace):
    """Same-core resume stays byte-identical to an uninterrupted run
    (the cross-core guard must not over-reject)."""
    reader = TraceReader(mv_trace)
    events = list(reader)
    nranks = reader.nranks
    cut = len(events) // 2

    straight = FlatDetector()
    for event in events:
        dispatch_event(straight, event, nranks)
    straight.finalize()

    first = FlatDetector()
    for event in events[:cut]:
        dispatch_event(first, event, nranks)
    snap = pickle.loads(pickle.dumps(first.snapshot()))
    resumed = FlatDetector()
    resumed.restore(snap)
    for event in events[cut:]:
        dispatch_event(resumed, event, nranks)
    resumed.finalize()

    assert len(resumed.reports) == len(straight.reports)
    for a, b in zip(resumed.reports, straight.reports):
        assert (a.rank, a.window, a.stored, a.new) == \
            (b.rank, b.window, b.stored, b.new)
    assert resumed.node_stats() == straight.node_stats()

"""Chaos-suite fixtures: recorded traces, re-chunked copies, a hang guard.

Every test in this package injects faults into the analysis runtime —
worker kills, stalls, on-disk corruption — so the one failure mode the
suite must never exhibit itself is *hanging*.  CI runs with
``pytest-timeout``; when the plugin is not installed (plain local runs),
the autouse :func:`hang_guard` fixture arms a SIGALRM fallback so a
regressed supervisor still fails the test instead of wedging pytest.
"""

import importlib.util
import signal

import pytest

from repro.pipeline import BinaryTraceWriter, TraceReader, record_app

#: hard per-test wall-clock ceiling (seconds) — generous: the slowest
#: chaos test is a stall + timeout + retry round, well under a minute
HANG_LIMIT = 120

_HAVE_PYTEST_TIMEOUT = importlib.util.find_spec("pytest_timeout") is not None


@pytest.fixture(autouse=True)
def hang_guard(request):
    """SIGALRM fallback for environments without pytest-timeout."""
    if _HAVE_PYTEST_TIMEOUT:
        yield
        return

    def _expired(signum, frame):
        raise TimeoutError(
            f"{request.node.nodeid} exceeded {HANG_LIMIT}s — "
            "the resilience runtime hung"
        )

    old = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(HANG_LIMIT)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, old)


@pytest.fixture(scope="session")
def mv_trace(tmp_path_factory):
    """A racy miniVite run in the v2 binary format (session-scoped)."""
    path = tmp_path_factory.mktemp("chaos") / "mv.trace"
    record_app("minivite", nranks=4, size=256, inject_race=True,
               out=path, format="binary")
    return path


@pytest.fixture(scope="session")
def cfd_json_trace(tmp_path_factory):
    """A CFD-Proxy run in the v1 JSON-lines format (session-scoped)."""
    path = tmp_path_factory.mktemp("chaos") / "cfd.trace"
    record_app("cfd", nranks=4, size=4, out=path, format="json")
    return path


@pytest.fixture(scope="session")
def serial_verdicts(mv_trace):
    """Canonical verdicts of an unfaulted serial replay — the parity oracle."""
    from repro.pipeline import analyze_trace

    return analyze_trace(mv_trace, detector="our", jobs=1).verdicts


@pytest.fixture
def rechunk(tmp_path):
    """Factory: copy a v2 trace re-chunked small, so tests get many chunks.

    The default 2048 events/chunk puts a whole size-256 recording into
    two chunks; corruption tests want a dozen targets.  Returns the
    copy's path — per-test, so corruptors can damage it freely.
    """

    def _rechunk(src, events_per_chunk=200):
        reader = TraceReader(src)
        dst = tmp_path / f"rechunk_{events_per_chunk}.trace"
        with BinaryTraceWriter(dst, nranks=reader.nranks,
                               events_per_chunk=events_per_chunk) as writer:
            for event in reader:
                writer.write(event)
        return dst

    return _rechunk

"""The CLI export surfaces: --metrics and --metrics-json."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.cli import main
from repro.pipeline import record_app


@pytest.fixture(autouse=True)
def _fresh_registry():
    prev = obs.active()
    obs.reset(enabled=True)
    yield
    obs.set_registry(prev)


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    out = tmp_path_factory.mktemp("cli") / "hist.trace"
    record_app("histogram", nranks=4, out=str(out))
    return str(out)


def test_analyze_metrics_table(trace_path, capsys):
    assert main(["analyze", trace_path, "--metrics"]) == 0
    out = capsys.readouterr().out
    assert "counters" in out
    assert "detector.events{tool=Our Contribution}" in out
    assert "races:" in out  # the normal report still prints


def test_analyze_metrics_json(trace_path, tmp_path, capsys):
    dump = tmp_path / "obs.json"
    assert main(["analyze", trace_path, "--jobs", "2",
                 "--metrics-json", str(dump)]) == 0
    snap = json.loads(dump.read_text())
    assert snap["schema"] == "repro-obs-v1"
    assert snap["counters"]["pipeline.events.read"] > 0
    assert "pipeline.analyze" in snap["spans"]["children"]
    # worker registries merged back: per-tool counters present
    assert any(k.startswith("detector.events") for k in snap["counters"])


def test_analyze_metrics_json_disabled_is_empty_but_valid(
        trace_path, tmp_path):
    obs.reset(enabled=False)
    dump = tmp_path / "obs_off.json"
    assert main(["analyze", trace_path,
                 "--metrics-json", str(dump)]) == 0
    snap = json.loads(dump.read_text())
    assert snap["schema"] == "repro-obs-v1"
    assert snap["counters"] == {}


def test_run_metrics_table(capsys):
    assert main(["run", "table1", "--metrics"]) == 0
    out = capsys.readouterr().out
    assert "counters" in out or "(no metrics recorded" in out


def test_run_metrics_json(tmp_path):
    dump = tmp_path / "run_obs.json"
    assert main(["run", "table3", "--metrics-json", str(dump)]) == 0
    snap = json.loads(dump.read_text())
    assert snap["schema"] == "repro-obs-v1"
    # table3 replays the microbench suite under every detector: the
    # per-tool event counters must come out of the same registry
    assert any(k.startswith("detector.events") for k in snap["counters"])

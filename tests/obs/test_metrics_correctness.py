"""Metrics-correctness: registry values vs independently computed truths.

The observability layer is only useful if its numbers are *right*:

* the ``bst.nodes`` gauge must equal an O(n) walk over the detector's
  live trees,
* the pipeline's ``events.analyzed`` counter must match what the trace
  reader actually decoded (serial) or the shard-routing fan-out
  (parallel),
* in the span time-tree, children can never sum to more than their
  parent's wall time.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.core import OurDetector
from repro.pipeline import analyze_trace, record_app
from repro.pipeline.format import TraceReader
from repro.pipeline.shard import shards_of


@pytest.fixture(autouse=True)
def _fresh_registry():
    prev = obs.active()
    obs.reset(enabled=True)
    yield
    obs.set_registry(prev)


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    out = tmp_path_factory.mktemp("obs") / "hist.trace"
    record_app("histogram", nranks=4, out=str(out))
    return str(out)


def test_bst_nodes_gauge_matches_tree_walk(make_acc):
    from repro.intervals import AccessType

    det = OurDetector()
    with obs.scope() as reg:
        # distinct lines and a gap between intervals: nothing merges,
        # so the walk must count every access individually
        for i in range(6):
            det._record(0, 0, make_acc(10 * i, 10 * i + 4,
                                       AccessType.RMA_WRITE, line=i))
        for i in range(4):
            det._record(1, 0, make_acc(10 * i, 10 * i + 4,
                                       AccessType.LOCAL_READ, line=i))
        det.publish_obs()
        gauge = reg.snapshot()["gauges"][
            obs.metric_key("bst.nodes", {"tool": det.name})]
    walked = sum(
        sum(1 for _ in bst) for bst in det._stores.values()
    )
    assert walked == 10
    assert gauge["value"] == walked


def test_query_fanout_histogram_matches_tree_stats(make_acc):
    from repro.intervals import AccessType

    det = OurDetector()
    with obs.scope() as reg:
        for i in range(20):
            det._record(0, 0, make_acc(3 * i, 3 * i + 2,
                                       AccessType.RMA_WRITE, line=i % 3))
        det.publish_obs()
        snap = reg.snapshot()
    queries = sum(b.stats.queries for b in det._stores.values())
    hits = sum(b.stats.query_hits for b in det._stores.values())
    assert queries > 0
    ckey = obs.metric_key("bst.queries", {"tool": det.name})
    hkey = obs.metric_key("bst.query_fanout", {"tool": det.name})
    assert snap["counters"][ckey] == queries
    assert snap["histograms"][hkey]["n"] == queries
    assert snap["histograms"][hkey]["total"] == hits


def test_serial_events_analyzed_matches_reader(trace_path):
    reader_count = sum(1 for _ in TraceReader(trace_path))
    result = analyze_trace(trace_path, jobs=1)
    counters = result.obs["counters"]
    assert result.events_total == reader_count
    assert counters["pipeline.events.read"] == reader_count
    assert counters["pipeline.events.analyzed"] == reader_count


@pytest.mark.parametrize("dispatch", ["queue", "file"])
def test_parallel_events_analyzed_matches_shard_routing(trace_path,
                                                        dispatch):
    reader = TraceReader(trace_path)
    expected = sum(
        len(shards_of(event, reader.nranks)) for event in reader
    )
    result = analyze_trace(trace_path, jobs=2, dispatch=dispatch)
    counters = result.obs["counters"]
    assert counters["pipeline.events.read"] == result.events_total
    assert counters["pipeline.events.analyzed"] == expected


def _assert_children_bounded(node, path):
    child_sum = sum(
        c["total_ns"] for c in node.get("children", {}).values()
    )
    assert child_sum <= node["total_ns"], (path, node)
    for name, child in node.get("children", {}).items():
        _assert_children_bounded(child, f"{path}/{name}")


def test_span_tree_children_sum_within_parent(trace_path):
    result = analyze_trace(trace_path, jobs=1)
    spans = result.obs["spans"]
    for name, child in spans["children"].items():
        _assert_children_bounded(child, name)


def test_pipeline_spans_present_parallel(trace_path):
    result = analyze_trace(trace_path, jobs=2)
    top = result.obs["spans"]["children"]
    analyze = top["pipeline.analyze"]
    assert analyze["count"] == 1
    assert "pipeline.produce" in analyze["children"]
    assert "pipeline.collect" in analyze["children"]
    assert "pipeline.aggregate" in analyze["children"]
    # worker time merges in at the root: it ran in *parallel* with the
    # producer, so nesting it under pipeline.analyze would break the
    # children-sum-within-parent property
    assert "worker.analyze" in top
    for name, child in top.items():
        _assert_children_bounded(child, name)


def test_queue_peak_comes_from_depth_gauges(trace_path):
    result = analyze_trace(trace_path, jobs=2, dispatch="queue")
    gauges = result.obs["gauges"]
    for worker in range(2):
        key = obs.metric_key("pipeline.queue_depth",
                             {"worker": str(worker)})
        assert result.queue_peak[worker] == gauges[key]["peak"]


def test_parallel_node_peaks_match_serial(trace_path):
    # sharded workers hold private replicas of other ranks' stores
    # (RMA events fan out to origin AND target shards); publish_obs
    # must publish only the canonical own-rank state or the merged
    # Table-4 quantities overcount relative to serial replay
    key = obs.metric_key("bst.nodes_peak", {"tool": "Our Contribution"})
    key1 = obs.metric_key("bst.nodes_peak_one_rank",
                          {"tool": "Our Contribution"})
    serial = analyze_trace(trace_path, jobs=1)
    obs.reset(enabled=True)
    parallel = analyze_trace(trace_path, jobs=2)
    assert (parallel.obs["counters"][key]
            == serial.obs["counters"][key])
    assert (parallel.obs["gauges"][key1]["peak"]
            == serial.obs["gauges"][key1]["peak"])


def test_detector_counters_flow_back_from_workers(trace_path):
    result = analyze_trace(trace_path, jobs=2)
    counters = result.obs["counters"]
    key = obs.metric_key("detector.processed", {"tool": "Our Contribution"})
    total = sum(s.processed for s in result.shard_stats)
    assert counters[key] == total


def test_disabled_run_has_no_snapshot(trace_path):
    obs.reset(enabled=False)
    result = analyze_trace(trace_path, jobs=1)
    assert result.obs is None
    assert result.races == 0  # verdicts unaffected by the switch

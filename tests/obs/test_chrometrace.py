"""Chrome trace-event export: builder, adapters, validator."""

from __future__ import annotations

import json

from repro.intervals import AccessType
from repro.mpi.memory import RegionInfo, RegionKind
from repro.mpi.trace import LocalEvent, RmaEvent, SyncEvent, SyncKind
from repro.obs.chrometrace import (
    ChromeTraceBuilder,
    chrome_events_from_timeline,
    chrome_events_from_trace,
    race_instants,
    validate_chrome_trace,
    write_chrome_trace,
)
from tests.conftest import acc

_REGION = RegionInfo(RegionKind.WINDOW, True)


def _events():
    return [
        SyncEvent(1, -1, SyncKind.WIN_CREATE, 0),
        SyncEvent(2, 0, SyncKind.LOCK_ALL, 0),
        SyncEvent(3, 1, SyncKind.LOCK_ALL, 0),
        LocalEvent(4, 0, acc(0, 8, AccessType.LOCAL_WRITE), _REGION),
        RmaEvent(5, 0, "put", 1, 0,
                 acc(0, 8, AccessType.RMA_WRITE, origin=0),
                 acc(64, 72, AccessType.RMA_WRITE, origin=0), _REGION),
        SyncEvent(6, -1, SyncKind.BARRIER),
        SyncEvent(7, 0, SyncKind.UNLOCK_ALL, 0),
        SyncEvent(8, 1, SyncKind.UNLOCK_ALL, 0),
        SyncEvent(9, -1, SyncKind.WIN_FREE, 0),
    ]


# -- validator ---------------------------------------------------------------


def test_validator_accepts_a_well_formed_trace():
    events = chrome_events_from_trace(_events(), nranks=2)
    assert validate_chrome_trace(events) == []


def test_validator_requires_the_four_keys():
    problems = validate_chrome_trace([{"ph": "X", "ts": 1, "pid": 0}])
    assert len(problems) == 1 and "tid" in problems[0]


def test_validator_flags_backwards_timestamps():
    events = [
        {"ph": "i", "ts": 5, "pid": 0, "tid": 0, "s": "t"},
        {"ph": "i", "ts": 3, "pid": 0, "tid": 0, "s": "t"},
        {"ph": "i", "ts": 1, "pid": 1, "tid": 0, "s": "t"},  # other track: ok
    ]
    problems = validate_chrome_trace(events)
    assert len(problems) == 1 and "backwards" in problems[0]


def test_validator_flags_end_without_begin():
    events = [{"ph": "E", "ts": 1, "pid": 0, "tid": 1}]
    problems = validate_chrome_trace(events)
    assert problems and "E" in problems[0]


def test_validator_rejects_non_array_and_non_objects():
    assert validate_chrome_trace({"not": "a list"})
    assert validate_chrome_trace(["not a dict"])


def test_validator_skips_metadata_events():
    events = [{"ph": "M", "name": "process_name", "pid": 0, "tid": 0,
               "args": {"name": "rank 0"}}]
    assert validate_chrome_trace(events) == []


# -- builder / adapters ------------------------------------------------------


def test_epoch_spans_balance_and_close_at_finish():
    builder = ChromeTraceBuilder()
    builder.epoch_begin(0, 0, 1)
    builder.epoch_begin(1, 0, 2)
    builder.epoch_end(0, 0, 5)
    events = builder.finish()  # rank 1's epoch still open: closed here
    assert validate_chrome_trace(events) == []
    phs = [e["ph"] for e in events if e["ph"] in "BE"]
    assert phs.count("B") == phs.count("E") == 2


def test_trace_adapter_draws_rma_on_both_ranks():
    events = chrome_events_from_trace(_events(), nranks=2)
    accesses = [e for e in events if e.get("cat") == "access"]
    rma = [e for e in accesses if e["ts"] == 5]
    assert sorted(e["pid"] for e in rma) == [0, 1]
    assert all(e["name"] == "put -> rank 1" for e in rma)
    assert rma[0]["args"]["src"] == "t.c:1"


def test_timeline_adapter_round_trips_a_snapshot():
    from repro.obs.timeline import Timeline

    tl = Timeline(16)
    for event in _events():
        tl.record_event_fanout(event, nranks=2)
    chrome = chrome_events_from_timeline(tl.snapshot())
    assert validate_chrome_trace(chrome) == []
    assert any(e.get("cat") == "access" for e in chrome)


def test_race_instants_name_both_source_locations():
    verdict = {
        "rank": 2, "window": 0,
        "stored": {"type": "RMA_WRITE", "file": "./dspl.hpp", "line": 612,
                   "lo": 0, "hi": 8, "origin": 0},
        "new": {"type": "RMA_WRITE", "file": "./dspl.hpp", "line": 614,
                "lo": 0, "hi": 8, "origin": 0},
    }
    (instant,) = race_instants([verdict], ts=100)
    assert instant["ph"] == "i" and instant["ts"] == 100
    assert "./dspl.hpp:614" in instant["name"]
    assert "./dspl.hpp:612" in instant["name"]


def test_write_chrome_trace_file_round_trip(tmp_path):
    events = chrome_events_from_trace(_events(), nranks=2)
    out = tmp_path / "trace.json"
    n = write_chrome_trace(out, events)
    loaded = json.loads(out.read_text())
    assert len(loaded) == n == len(events)
    assert validate_chrome_trace(loaded) == []


def test_write_chrome_trace_appends_race_overlays(tmp_path):
    events = chrome_events_from_trace(_events(), nranks=2)
    verdict = {
        "rank": 1, "window": 0,
        "stored": {"type": "RMA_WRITE", "file": "a.c", "line": 1,
                   "lo": 0, "hi": 8, "origin": 0},
        "new": {"type": "RMA_WRITE", "file": "b.c", "line": 2,
                "lo": 0, "hi": 8, "origin": 0},
    }
    out = tmp_path / "trace.json"
    write_chrome_trace(out, events, verdicts=[verdict])
    loaded = json.loads(out.read_text())
    assert validate_chrome_trace(loaded) == []
    races = [e for e in loaded if e.get("cat") == "race"]
    assert len(races) == 1 and races[0]["ts"] > max(
        e["ts"] for e in loaded if e.get("cat") == "access")

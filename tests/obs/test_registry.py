"""Unit tests of the repro.obs registry: instruments, spans, merge."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs import BUCKET_BOUNDS, Registry, metric_key
from repro.obs.export import render_metrics, snapshot_to_json


@pytest.fixture(autouse=True)
def _fresh_registry():
    prev = obs.active()
    obs.reset(enabled=True)
    yield
    obs.set_registry(prev)


def test_counter_gauge_histogram_basics():
    reg = obs.active()
    reg.counter("c").add(3)
    reg.counter("c").inc()
    assert reg.counter("c").value == 4
    reg.gauge("g").set(5)
    reg.gauge("g").set(2)
    assert reg.gauge("g").value == 2
    assert reg.gauge("g").peak == 5
    h = reg.histogram("h")
    for v in (0, 1, 2, 3, 1000):
        h.observe(v)
    assert h.n == 5
    assert h.total == 1006
    assert h.mean == pytest.approx(201.2)


def test_labels_are_part_of_the_key():
    reg = obs.active()
    reg.counter("detector.events", tool="A").inc()
    reg.counter("detector.events", tool="B").add(2)
    snap = reg.snapshot()
    assert snap["counters"]["detector.events{tool=A}"] == 1
    assert snap["counters"]["detector.events{tool=B}"] == 2
    assert metric_key("x", {"b": "2", "a": "1"}) == "x{a=1,b=2}"


def test_histogram_bucketing_by_bit_length():
    reg = obs.active()
    h = reg.histogram("h")
    h.observe(0)   # bucket 0
    h.observe(1)   # bit_length 1 -> bucket 1 (<= 2)
    h.observe(7)   # bit_length 3 -> bucket 3 (<= 8)
    h.observe(2 ** 30)  # overflow bucket
    assert h.counts[0] == 1
    assert h.counts[1] == 1
    assert h.counts[3] == 1
    assert h.counts[-1] == 1
    assert len(h.counts) == len(BUCKET_BOUNDS) + 1


def test_spans_nest_and_attribute_time():
    reg = obs.active()
    with reg.span("outer"):
        with reg.span("inner"):
            pass
        with reg.span("inner"):
            pass
    snap = reg.snapshot()
    outer = snap["spans"]["children"]["outer"]
    assert outer["count"] == 1
    inner = outer["children"]["inner"]
    assert inner["count"] == 2
    assert 0 <= inner["total_ns"] <= outer["total_ns"]


def test_phase_ns_books_on_active_span():
    reg = obs.active()
    with reg.span("parent"):
        reg.phase_ns("phase", 1000)
        reg.phase_ns("phase", 500)
    node = reg.snapshot()["spans"]["children"]["parent"]["children"]["phase"]
    assert node["count"] == 2
    assert node["total_ns"] == 1500


def test_span_exit_survives_exception_unwind():
    reg = obs.active()
    with pytest.raises(RuntimeError):
        with reg.span("a"):
            with reg.span("b"):
                raise RuntimeError("boom")
    # stack unwound fully: a new span lands at the root again
    with reg.span("c"):
        pass
    spans = reg.snapshot()["spans"]["children"]
    assert set(spans) == {"a", "c"}


def test_disabled_registry_is_null_and_free():
    reg = Registry(enabled=False)
    reg.counter("c").add(5)
    reg.gauge("g").set(9)
    reg.histogram("h").observe(3)
    with reg.span("s"):
        pass
    snap = reg.snapshot()
    assert snap["counters"] == {}
    assert snap["gauges"] == {}
    assert snap["histograms"] == {}
    assert snap["spans"]["children"] == {}


def test_env_switch(monkeypatch):
    from repro.obs.registry import env_enabled

    for off in ("off", "0", "false", "NO", "Disabled"):
        monkeypatch.setenv("REPRO_OBS", off)
        assert not env_enabled()
    monkeypatch.setenv("REPRO_OBS", "on")
    assert env_enabled()
    monkeypatch.delenv("REPRO_OBS")
    assert env_enabled()


def test_sample_approves_one_in_mask_plus_one():
    reg = Registry(enabled=True)
    n = 3 * (Registry.SAMPLE_MASK + 1)
    assert sum(reg.sample() for _ in range(n)) == 3


def test_reset_zeroes_in_place_keeping_handles():
    reg = Registry(enabled=True)
    c = reg.counter("c")
    g = reg.gauge("g")
    h = reg.histogram("h")
    c.add(5)
    g.set(7)
    h.observe(9)
    reg.reset()
    # cached handles (the hot-path pattern) must stay live
    c.inc()
    g.set(2)
    h.observe(1)
    snap = reg.snapshot()
    assert snap["counters"]["c"] == 1
    assert snap["gauges"]["g"] == {"value": 2, "peak": 2}
    assert snap["histograms"]["h"]["n"] == 1
    assert snap["histograms"]["h"]["total"] == 1


def test_merge_folds_counters_gauges_histograms_spans():
    a = Registry(enabled=True)
    b = Registry(enabled=True)
    for reg in (a, b):
        reg.counter("c").add(2)
        reg.gauge("g").set(3)
        reg.histogram("h").observe(4)
        with reg.span("s"):
            reg.phase_ns("p", 100)
    a.merge(b.snapshot())
    snap = a.snapshot()
    assert snap["counters"]["c"] == 4
    assert snap["gauges"]["g"] == {"value": 6, "peak": 3}
    assert snap["histograms"]["h"]["n"] == 2
    s = snap["spans"]["children"]["s"]
    assert s["count"] == 2
    assert s["children"]["p"]["total_ns"] == 200


def test_scope_swaps_and_merges_back():
    outer = obs.active()
    outer.counter("c").add(1)
    with obs.scope() as inner:
        assert obs.active() is inner
        obs.counter("c").add(10)
        assert inner.counter("c").value == 10
    assert obs.active() is outer
    assert outer.counter("c").value == 11


def test_scope_discard():
    outer = obs.active()
    with obs.scope(merge=False):
        obs.counter("c").add(10)
    assert outer.counter("c").value == 0


def test_snapshot_is_stable_and_jsonable():
    reg = obs.active()
    reg.counter("b").inc()
    reg.counter("a").inc()
    text1 = snapshot_to_json(reg.snapshot())
    text2 = snapshot_to_json(reg.snapshot())
    assert text1 == text2
    decoded = json.loads(text1)
    assert decoded["schema"] == "repro-obs-v1"
    assert list(decoded["counters"]) == ["a", "b"]


def test_render_metrics_sections():
    reg = obs.active()
    reg.counter("c").add(7)
    reg.gauge("g").set(1)
    reg.histogram("h").observe(5)
    with reg.span("s"):
        pass
    text = render_metrics(reg.snapshot())
    for section in ("counters", "gauges", "histograms", "spans"):
        assert section in text
    assert "7" in text
    assert render_metrics(Registry(enabled=True).snapshot()).startswith(
        "(no metrics recorded")


def test_sample_period_env_knob(monkeypatch):
    monkeypatch.setenv("REPRO_OBS_SAMPLE", "8")
    reg = Registry(enabled=True)
    assert reg.SAMPLE_MASK == 7
    assert sum(reg.sample() for _ in range(32)) == 4


def test_sample_period_one_approves_every_call(monkeypatch):
    monkeypatch.setenv("REPRO_OBS_SAMPLE", "1")
    reg = Registry(enabled=True)
    assert all(reg.sample() for _ in range(5))


@pytest.mark.parametrize("bad", ["12", "-4", "zero"])
def test_sample_period_rejects_non_powers_of_two(monkeypatch, bad):
    monkeypatch.setenv("REPRO_OBS_SAMPLE", bad)
    with pytest.warns(RuntimeWarning, match="REPRO_OBS_SAMPLE"):
        reg = Registry(enabled=True)
    assert reg.SAMPLE_MASK == Registry.SAMPLE_MASK


def test_histogram_tracks_exact_max():
    reg = obs.active()
    h = reg.histogram("h")
    for v in (3, 500, 7):
        h.observe(v)
    assert h.vmax == 500  # exact, not the bucket bound above it
    assert reg.snapshot()["histograms"]["h"]["max"] == 500


def test_histogram_max_survives_merge():
    a, b = Registry(enabled=True), Registry(enabled=True)
    a.histogram("h").observe(9)
    b.histogram("h").observe(1000)
    a.merge(b.snapshot())
    assert a.snapshot()["histograms"]["h"]["max"] == 1000

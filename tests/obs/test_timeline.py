"""Unit tests of the bounded per-rank timeline (repro.obs.timeline)."""

from __future__ import annotations

import json

import pytest

from repro.intervals import AccessType
from repro.mpi.memory import RegionInfo, RegionKind
from repro.mpi.trace import LocalEvent, RmaEvent, SyncEvent, SyncKind
from repro.obs.timeline import (
    DEFAULT_CAP,
    NULL_TIMELINE,
    NullTimeline,
    Timeline,
    make_timeline,
    timeline_cap_from_env,
    timeline_context,
)
from tests.conftest import acc

_REGION = RegionInfo(RegionKind.WINDOW, True)


def local(seq, rank, lo=0, hi=8, type=AccessType.LOCAL_WRITE, line=1):
    return LocalEvent(seq, rank, acc(lo, hi, type, line=line), _REGION)


def rma(seq, rank, target, lo=0, hi=8, op="put", wid=0):
    return RmaEvent(
        seq, rank, op, target, wid,
        acc(lo, hi, AccessType.RMA_WRITE, origin=rank),
        acc(lo + 100, hi + 100, AccessType.RMA_WRITE, origin=rank),
        _REGION,
    )


def sync(seq, rank, kind=SyncKind.BARRIER, wid=-1):
    return SyncEvent(seq, rank, kind, wid)


# -- env knob ----------------------------------------------------------------


def test_cap_from_env_default_when_unset(monkeypatch):
    monkeypatch.delenv("REPRO_OBS_TIMELINE", raising=False)
    assert timeline_cap_from_env() == DEFAULT_CAP


@pytest.mark.parametrize("value", ["off", "0", "false", "no", "disabled"])
def test_cap_from_env_off_values(monkeypatch, value):
    monkeypatch.setenv("REPRO_OBS_TIMELINE", value)
    assert timeline_cap_from_env() == 0


@pytest.mark.parametrize("value", ["on", "true", "yes", "", "default"])
def test_cap_from_env_on_values(monkeypatch, value):
    monkeypatch.setenv("REPRO_OBS_TIMELINE", value)
    assert timeline_cap_from_env() == DEFAULT_CAP


def test_cap_from_env_explicit_size(monkeypatch):
    monkeypatch.setenv("REPRO_OBS_TIMELINE", "32")
    assert timeline_cap_from_env() == 32


def test_cap_from_env_garbage_warns_and_falls_back(monkeypatch):
    monkeypatch.setenv("REPRO_OBS_TIMELINE", "not-a-size-xyz")
    with pytest.warns(RuntimeWarning, match="REPRO_OBS_TIMELINE"):
        assert timeline_cap_from_env() == DEFAULT_CAP


def test_make_timeline_null_when_disabled(monkeypatch):
    assert make_timeline(enabled=False) is NULL_TIMELINE
    monkeypatch.setenv("REPRO_OBS_TIMELINE", "off")
    assert make_timeline(enabled=True) is NULL_TIMELINE
    monkeypatch.setenv("REPRO_OBS_TIMELINE", "16")
    tl = make_timeline(enabled=True)
    assert isinstance(tl, Timeline) and tl.enabled and tl.cap == 16


# -- recording ---------------------------------------------------------------


def test_ring_is_bounded_keeps_newest():
    tl = Timeline(4)
    for i in range(10):
        tl.record(0, "local", 0, payload=None, seq=i)
    events = tl.lane_events(0)
    assert len(events) == 4
    assert [e["seq"] for e in events] == [6, 7, 8, 9]


def test_live_feed_autoseq_is_monotonic():
    tl = Timeline(8)
    tl.record(0, "local", 0)
    tl.record(0, "local", 0)
    seqs = [e["seq"] for e in tl.lane_events(0)]
    assert seqs == sorted(seqs) and len(set(seqs)) == 2


def test_record_sync_replicates_with_shared_seq():
    tl = Timeline(8)
    tl.record_sync("barrier", -1, -1, lanes=(0, 1, 2), seq=7)
    for lane in (0, 1, 2):
        (event,) = tl.lane_events(lane)
        assert event == {"seq": 7, "kind": "barrier", "rank": -1, "wid": -1}


def test_record_rma_records_each_side_on_its_lane():
    tl = Timeline(8)
    origin = acc(0, 8, AccessType.RMA_WRITE, origin=0)
    target = acc(100, 108, AccessType.RMA_WRITE, origin=0)
    tl.record_rma("put", 0, 2, 0, origin, target, seq=5)
    (on_origin,) = tl.lane_events(0)
    (on_target,) = tl.lane_events(2)
    assert on_origin["lo"] == 0 and on_target["lo"] == 100
    assert on_origin["seq"] == on_target["seq"] == 5
    assert on_origin["op"] == on_target["op"] == "put"


def test_record_rma_self_target_records_window_side_once():
    tl = Timeline(8)
    origin = acc(0, 8, AccessType.RMA_WRITE)
    target = acc(100, 108, AccessType.RMA_WRITE)
    tl.record_rma("put", 1, 1, 0, origin, target, seq=3)
    assert tl.lanes() == [1]
    (event,) = tl.lane_events(1)
    assert event["lo"] == 100  # the window (target) side


def test_record_event_fanout_projection():
    tl = Timeline(8)
    tl.record_event_fanout(local(1, 2), nranks=4)
    tl.record_event_fanout(rma(2, 0, 3), nranks=4)
    tl.record_event_fanout(sync(3, -1), nranks=4)
    assert tl.lanes() == [0, 1, 2, 3]
    # local only on its own lane; rma on both sides; sync everywhere
    assert [e["seq"] for e in tl.lane_events(1)] == [3]
    assert [e["seq"] for e in tl.lane_events(2)] == [1, 3]
    assert [e["seq"] for e in tl.lane_events(0)] == [2, 3]
    assert [e["seq"] for e in tl.lane_events(3)] == [2, 3]


def test_replayed_rma_formats_the_lane_side():
    tl = Timeline(8)
    event = rma(1, 0, 2, lo=0)
    tl.record_event(0, event)
    tl.record_event(2, event)
    (origin_view,) = tl.lane_events(0)
    (target_view,) = tl.lane_events(2)
    assert origin_view["lo"] == 0       # origin access on origin lane
    assert target_view["lo"] == 100     # target access on target lane


def test_replayed_sync_formats_kind_value():
    tl = Timeline(8)
    tl.record_event(0, sync(4, 1, SyncKind.LOCK_ALL, wid=0))
    (event,) = tl.lane_events(0)
    assert event == {"seq": 4, "kind": "lock_all", "rank": 1, "wid": 0}


# -- snapshot / merge / absorb -----------------------------------------------


def test_snapshot_is_jsonable_and_stable():
    tl = Timeline(8)
    tl.record_event_fanout(local(1, 0), nranks=2)
    tl.record_event_fanout(sync(2, -1), nranks=2)
    snap = tl.snapshot()
    assert snap["schema"] == "repro-timeline-v1"
    assert snap["cap"] == 8
    assert json.loads(json.dumps(snap)) == snap
    assert tl.snapshot() == snap


def test_merge_unions_by_seq_and_trims_to_cap():
    a = Timeline(4)
    for i in (1, 3, 5):
        a.record(0, "local", 0, seq=i)
    b = Timeline(4)
    for i in (2, 4, 6):
        b.record(0, "local", 0, seq=i)
    a.merge(b.snapshot())
    assert [e["seq"] for e in a.lane_events(0)] == [3, 4, 5, 6]


def test_absorb_matches_merge_of_snapshot():
    def fill(tl, seqs):
        for i in seqs:
            tl.record_event_fanout(local(i, 0), nranks=1)

    via_absorb, inner_a = Timeline(4), Timeline(4)
    fill(via_absorb, (1, 3)); fill(inner_a, (2, 4, 5))
    via_absorb.absorb(inner_a)

    via_merge, inner_b = Timeline(4), Timeline(4)
    fill(via_merge, (1, 3)); fill(inner_b, (2, 4, 5))
    via_merge.merge(inner_b.snapshot())

    assert via_absorb.snapshot() == via_merge.snapshot()


def test_absorb_into_empty_lane_copies():
    inner = Timeline(4)
    inner.record_event_fanout(local(1, 0), nranks=1)
    outer = Timeline(4)
    outer.absorb(inner)
    assert outer.snapshot()["lanes"] == inner.snapshot()["lanes"]


# -- null object -------------------------------------------------------------


def test_null_timeline_is_inert():
    tl = NullTimeline()
    assert not tl.enabled and tl.cap == 0
    tl.record(0, "local", 0)
    tl.record_sync("barrier", -1, -1, lanes=(0, 1))
    tl.record_rma("put", 0, 1, 0, acc(0, 8), acc(0, 8))
    tl.record_event(0, local(1, 0))
    tl.record_event_fanout(local(2, 0), nranks=2)
    tl.merge({"lanes": {"0": [{"seq": 1, "kind": "local", "rank": 0}]}})
    other = Timeline(4)
    other.record(0, "local", 0)
    tl.absorb(other)
    assert len(tl) == 0
    assert tl.snapshot()["lanes"] == {}


# -- forensics context views -------------------------------------------------


def test_context_keeps_last_k_of_each_rank():
    tl = Timeline(64)
    for i in range(20):
        tl.record_event(0, local(i + 1, rank=i % 2))
    ctx = timeline_context(tl, 0, ranks=(0, 1), k=3)
    assert ctx["lane"] == 0 and ctx["k"] == 3
    assert [e["seq"] for e in ctx["views"]["0"]] == [15, 17, 19]
    assert [e["seq"] for e in ctx["views"]["1"]] == [16, 18, 20]


def test_context_promotes_enclosing_epoch_older_than_k():
    tl = Timeline(64)
    tl.record_event(0, sync(1, 0, SyncKind.LOCK_ALL, wid=0))
    for i in range(10):
        tl.record_event(0, local(i + 2, rank=0))
    ctx = timeline_context(tl, 0, ranks=(0,), k=4)
    view = ctx["views"]["0"]
    # the lock_all is promoted in front of the k most recent events
    assert view[0]["kind"] == "lock_all" and view[0]["seq"] == 1
    assert [e["seq"] for e in view[1:]] == [8, 9, 10, 11]


def test_context_epoch_inside_window_is_not_duplicated():
    tl = Timeline(64)
    tl.record_event(0, local(1, rank=0))
    tl.record_event(0, sync(2, 0, SyncKind.LOCK_ALL, wid=0))
    tl.record_event(0, local(3, rank=0))
    ctx = timeline_context(tl, 0, ranks=(0,), k=4)
    seqs = [e["seq"] for e in ctx["views"]["0"]]
    assert seqs == [1, 2, 3]


def test_context_other_ranks_see_world_sync():
    tl = Timeline(64)
    tl.record_event(0, local(1, rank=0))
    tl.record_event(0, sync(2, -1, SyncKind.BARRIER))
    ctx = timeline_context(tl, 0, ranks=(3,), k=4)
    # rank 3 has no events of its own in lane 0, but world sync shows
    assert [e["kind"] for e in ctx["views"]["3"]] == ["barrier"]


def test_context_empty_lane_gives_empty_views():
    tl = Timeline(8)
    ctx = timeline_context(tl, 5, ranks=(0, 1), k=4)
    assert ctx["views"] == {"0": [], "1": []}

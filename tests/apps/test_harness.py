"""Tests for the shared application measurement harness."""

import pytest

from repro.apps import (
    CfdConfig,
    CfdResult,
    DETECTOR_FACTORIES,
    cfd_program,
    default_partitions,
    detector_factory,
    run_app,
)
from repro.core import OurDetector


CFG = CfdConfig(cells_per_rank=64, iterations=3, bookkeeping_accesses=4)


class TestRunApp:
    def test_baseline_run(self):
        parts = default_partitions(4, CFG)
        r = run_app("cfd", cfd_program, 4, None, parts, CFG, CfdResult())
        assert r.detector == "Baseline"
        assert r.races == 0
        assert r.total_max_nodes == 0
        assert r.wall_seconds > 0
        assert r.sim_elapsed_ms > 0

    def test_detector_run_collects_stats(self):
        parts = default_partitions(4, CFG)
        det = OurDetector()
        r = run_app("cfd", cfd_program, 4, det, parts, CFG, CfdResult())
        assert r.detector == "Our Contribution"
        assert r.total_max_nodes > 0
        assert r.accesses_processed > 0
        assert r.analysis_seconds > 0

    def test_breakdown_categories(self):
        parts = default_partitions(4, CFG)
        r = run_app("cfd", cfd_program, 4, None, parts, CFG, CfdResult())
        assert set(r.sim_breakdown) == {"compute", "comm", "sync", "analysis"}
        assert r.sim_breakdown["analysis"] == 0.0  # no detector attached

    def test_label(self):
        parts = default_partitions(4, CFG)
        r = run_app("cfd", cfd_program, 4, None, parts, CFG, CfdResult())
        assert r.label == "cfd/Baseline@4"


class TestFactories:
    def test_the_four_fig10_bars(self):
        assert set(DETECTOR_FACTORIES) == {
            "Baseline", "RMA-Analyzer", "MUST-RMA", "Our Contribution"
        }

    def test_factories_produce_fresh_instances(self):
        f = detector_factory("Our Contribution")
        assert f() is not f()

    def test_baseline_factory_is_none(self):
        assert detector_factory("Baseline")() is None

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            detector_factory("tsan")

"""Tests for the distributed-histogram application (accumulate workload)."""

import pytest

from repro.apps.histogram import HistogramConfig, HistogramResult, histogram_program
from repro.core import OurDetector
from repro.detectors import MustRma, RmaAnalyzerLegacy
from repro.mpi import World


def run(config, det=None, nranks=4):
    result = HistogramResult()
    world = World(nranks, [det] if det else [])
    world.run(histogram_program, config, result)
    return result


class TestCorrectness:
    @pytest.mark.parametrize("nranks", [1, 3, 4])
    def test_all_samples_counted_with_accumulate(self, nranks):
        cfg = HistogramConfig(samples_per_rank=100)
        result = run(cfg, nranks=nranks)
        assert result.total_counted == nranks * 100
        assert result.max_bin >= 1

    def test_locked_variant_counts_correctly(self):
        cfg = HistogramConfig(use_accumulate=False, use_locks=True,
                              samples_per_rank=64)
        result = run(cfg)
        assert result.total_counted == 4 * 64

    def test_deterministic(self):
        cfg = HistogramConfig()
        a, b = run(cfg), run(cfg)
        assert (a.total_counted, a.max_bin) == (b.total_counted, b.max_bin)


class TestRaceVerdicts:
    def test_accumulate_variant_clean_everywhere(self):
        cfg = HistogramConfig()
        for factory in (OurDetector, RmaAnalyzerLegacy, MustRma):
            det = factory()
            run(cfg, det)
            assert det.reports_total == 0, factory.__name__

    def test_manual_rmw_flagged_everywhere(self):
        cfg = HistogramConfig(use_accumulate=False, samples_per_rank=64)
        for factory in (OurDetector, MustRma):
            det = factory()
            run(cfg, det)
            assert det.reports_total >= 1, factory.__name__

    def test_manual_rmw_report_blames_the_rmw_lines(self):
        cfg = HistogramConfig(use_accumulate=False, samples_per_rank=64)
        det = OurDetector()
        run(cfg, det)
        message = det.reports[0].message
        assert "histogram.c" in message

    def test_locked_variant_clean_for_our_detector(self):
        """Needs BOTH per-target-lock support and precise flush handling
        (the RMW flushes between the Get and the Put)."""
        cfg = HistogramConfig(use_accumulate=False, use_locks=True,
                              samples_per_rank=64)
        det = OurDetector()
        run(cfg, det)
        assert det.reports_total == 0

    def test_locked_variant_fp_for_flush_blind_tools(self):
        """MUST-RMA ignores MPI_Win_flush (§6): it cannot see that the
        Get completed before the Put was issued; the original tool
        additionally lacks per-target-lock support (§5.1)."""
        cfg = HistogramConfig(use_accumulate=False, use_locks=True,
                              samples_per_rank=64)
        for factory in (MustRma, RmaAnalyzerLegacy):
            det = factory()
            run(cfg, det)
            assert det.reports_total >= 1, factory.__name__

"""The Fig. 9 experiment: the duplicated MPI_Put race in MiniVite."""

import pytest

from repro.apps import (
    MiniViteConfig,
    MiniViteResult,
    default_graph,
    make_comm_plan,
    minivite_program,
)
from repro.core import OurDetector
from repro.detectors import RmaAnalyzerLegacy
from repro.mpi import World

CFG = MiniViteConfig(nvertices=512, seed=3, inject_put_race=True)


def run(det, nranks=4):
    graph = default_graph(CFG)
    plan = make_comm_plan(graph, nranks)
    World(nranks, [det]).run(
        minivite_program, graph, plan, CFG, MiniViteResult()
    )
    return det


class TestInjectedRace:
    def test_our_contribution_detects_it(self):
        det = run(OurDetector())
        assert det.reports_total >= 1

    def test_original_tool_detects_it_too(self):
        # the paper: "Both RMA-Analyzer and our contribution detect it"
        det = run(RmaAnalyzerLegacy())
        assert det.reports_total >= 1

    def test_report_matches_fig9b(self):
        det = run(OurDetector())
        message = det.reports[0].message
        assert "RMA_WRITE" in message
        assert "./dspl.hpp:614" in message
        assert "./dspl.hpp:612" in message
        assert message.endswith("The program will be exiting now with MPI_Abort.")

    def test_race_is_at_target_side(self):
        det = run(OurDetector())
        report = det.reports[0]
        # both conflicting accesses were issued by the same origin
        assert report.stored.origin == report.new.origin
        # and recorded at the target's window (the comm plan never
        # sends to self, so the target differs from the origin)
        assert report.rank != report.new.origin
        assert report.stored.type.name == "RMA_WRITE"
        assert report.new.type.name == "RMA_WRITE"

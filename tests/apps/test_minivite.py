"""Tests for the MiniVite-like Louvain application."""

import pytest

from repro.apps import (
    MiniViteConfig,
    MiniViteResult,
    default_graph,
    make_comm_plan,
    minivite_program,
)
from repro.core import OurDetector
from repro.detectors import MustRma, RmaAnalyzerLegacy
from repro.mpi import World

CFG = MiniViteConfig(nvertices=512, seed=3)


@pytest.fixture(scope="module")
def graph():
    return default_graph(CFG)


def run(graph, nranks, det=None, config=CFG):
    plan = make_comm_plan(graph, nranks)
    result = MiniViteResult()
    world = World(nranks, [det] if det else [])
    world.run(minivite_program, graph, plan, config, result)
    return world, result


class TestCommPlan:
    def test_send_sets_cover_boundary_edges(self, graph):
        plan = make_comm_plan(graph, 4)
        from repro.apps.graphgen import owner_of

        n = graph.nvertices
        for u in range(n):
            ou = owner_of(n, 4, u)
            for v in graph.neighbors(u):
                ov = owner_of(n, 4, int(v))
                if ov != ou:
                    assert u in set(plan.send[ou][ov])

    def test_window_layout_disjoint(self, graph):
        plan = make_comm_plan(graph, 4)
        for t in range(4):
            blocks = sorted(
                (plan.disp[t][o], len(plan.send[o][t]))
                for o in plan.disp[t]
            )
            for (off1, n1), (off2, _n2) in zip(blocks, blocks[1:]):
                assert off1 + n1 <= off2
            if blocks:
                off, n = blocks[-1]
                assert off + n <= plan.win_elems[t]


class TestAlgorithm:
    def test_louvain_reduces_communities(self, graph):
        _, result = run(graph, 4)
        assert 0 < result.communities_after < graph.nvertices

    def test_deterministic_for_fixed_rank_count(self, graph):
        # rank count changes update visibility (asynchronous labels, as
        # in the real MiniVite), but a fixed configuration is exactly
        # reproducible
        _, a = run(graph, 4)
        _, b = run(graph, 4)
        assert a.communities_after == b.communities_after
        assert a.modularity == b.modularity

    def test_modularity_positive(self, graph):
        _, result = run(graph, 4)
        assert result.modularity > 0

    def test_multiple_sweeps(self, graph):
        config = MiniViteConfig(nvertices=512, seed=3, sweeps=2)
        _, result = run(graph, 2, config=config)
        assert result.communities_after <= run(graph, 2)[1].communities_after


class TestUnderDetectors:
    def test_clean_under_every_tool(self, graph):
        for factory in (OurDetector, RmaAnalyzerLegacy, MustRma):
            det = factory()
            run(graph, 4, det)
            assert det.reports_total == 0, det.reports[:2]

    def test_node_counts_shrink_with_more_ranks(self, graph):
        counts = {}
        for nranks in (2, 8):
            det = RmaAnalyzerLegacy()
            run(graph, nranks, det)
            counts[nranks] = det.node_stats().max_nodes_one_rank
        assert counts[8] < counts[2]

    def test_ours_reduction_is_small(self, graph):
        """Table 4: MiniVite accesses barely merge (<10%)."""
        legacy = RmaAnalyzerLegacy()
        run(graph, 4, legacy)
        ours = OurDetector()
        run(graph, 4, ours)
        nl = legacy.node_stats().max_nodes_one_rank
        no = ours.node_stats().max_nodes_one_rank
        assert no <= nl
        assert (nl - no) / nl < 0.10

    def test_alias_filter_drops_bookkeeping(self, graph):
        det = OurDetector()
        run(graph, 4, det)
        stats = det.node_stats()
        assert stats.accesses_filtered > 0

    def test_must_rma_processes_more(self, graph):
        ours = OurDetector()
        run(graph, 4, ours)
        must = MustRma()
        run(graph, 4, must)
        assert must.node_stats().accesses_processed > \
            ours.node_stats().accesses_processed

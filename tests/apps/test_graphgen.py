"""Unit tests for the synthetic graph generator and partitioning."""

import numpy as np
import pytest

from repro.apps import Graph, block_range, generate_graph, owner_of


class TestGeneration:
    def test_csr_well_formed(self):
        g = generate_graph(500, avg_degree=6.0, seed=1)
        assert g.xadj[0] == 0
        assert g.xadj[-1] == len(g.adjncy)
        assert np.all(np.diff(g.xadj) >= 0)

    def test_symmetric(self):
        g = generate_graph(300, seed=2)
        edges = set()
        for u in range(g.nvertices):
            for v in g.neighbors(u):
                edges.add((u, int(v)))
        for u, v in edges:
            assert (v, u) in edges

    def test_no_self_loops(self):
        g = generate_graph(300, seed=3)
        for u in range(g.nvertices):
            assert u not in set(int(v) for v in g.neighbors(u))

    def test_no_duplicate_edges(self):
        g = generate_graph(300, seed=4)
        for u in range(g.nvertices):
            neigh = [int(v) for v in g.neighbors(u)]
            assert len(neigh) == len(set(neigh))

    def test_deterministic_by_seed(self):
        a = generate_graph(200, seed=7)
        b = generate_graph(200, seed=7)
        assert np.array_equal(a.adjncy, b.adjncy)
        c = generate_graph(200, seed=8)
        assert not np.array_equal(a.adjncy, c.adjncy)

    def test_locality_shortens_edges(self):
        local = generate_graph(2000, locality=1.0, seed=5)
        random = generate_graph(2000, locality=0.0, seed=5)

        def mean_span(g):
            spans = []
            for u in range(g.nvertices):
                for v in g.neighbors(u):
                    d = abs(u - int(v))
                    spans.append(min(d, g.nvertices - d))
            return np.mean(spans)

        assert mean_span(local) < mean_span(random) / 3

    def test_degree_accessor(self):
        g = generate_graph(100, seed=6)
        for v in range(g.nvertices):
            assert g.degree(v) == len(g.neighbors(v))

    def test_tiny_graph_rejected(self):
        with pytest.raises(ValueError):
            generate_graph(1)


class TestPartitioning:
    def test_blocks_cover_everything(self):
        n, p = 1003, 7
        covered = []
        for r in range(p):
            b, e = block_range(n, p, r)
            covered.extend(range(b, e))
        assert covered == list(range(n))

    def test_blocks_balanced(self):
        n, p = 1003, 7
        sizes = [block_range(n, p, r)[1] - block_range(n, p, r)[0] for r in range(p)]
        assert max(sizes) - min(sizes) <= 1

    def test_owner_of_consistent_with_blocks(self):
        n, p = 517, 9
        for r in range(p):
            b, e = block_range(n, p, r)
            for v in (b, (b + e) // 2, e - 1):
                if b < e:
                    assert owner_of(n, p, v) == r

    def test_single_rank(self):
        assert block_range(10, 1, 0) == (0, 10)
        assert owner_of(10, 1, 5) == 0

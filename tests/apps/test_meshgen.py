"""Unit tests for the mesh partition generator."""

import pytest

from repro.apps import make_partitions


class TestRingTopology:
    def test_each_rank_has_two_neighbors(self):
        parts = make_partitions(8)
        for p in parts:
            assert len(p.neighbors) == 2
            assert p.rank not in p.neighbors

    def test_halo_symmetric(self):
        parts = make_partitions(8, cells_per_rank=256)
        for p in parts:
            for nb, cells in p.halo.items():
                assert parts[nb].halo[p.rank] == cells

    def test_wider_halo(self):
        parts = make_partitions(12, halo_width=2)
        for p in parts:
            assert len(p.neighbors) == 4

    def test_farther_neighbors_share_less(self):
        parts = make_partitions(12, cells_per_rank=1000, halo_width=2,
                                halo_fraction=0.1)
        p = parts[0]
        near = p.halo[1]
        far = p.halo[2]
        assert far <= near

    def test_two_ranks(self):
        parts = make_partitions(2)
        assert parts[0].neighbors == [1]
        assert parts[1].neighbors == [0]

    def test_single_rank_no_neighbors(self):
        parts = make_partitions(1)
        assert parts[0].neighbors == []
        assert parts[0].halo_cells_total == 0

    def test_halo_at_least_one_cell(self):
        parts = make_partitions(4, cells_per_rank=10, halo_fraction=0.01)
        for p in parts:
            for cells in p.halo.values():
                assert cells >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            make_partitions(0)
        with pytest.raises(ValueError):
            make_partitions(4, halo_fraction=0.0)

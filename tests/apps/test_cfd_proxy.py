"""Tests for the CFD-Proxy-like halo-exchange application."""

import pytest

from repro.apps import CfdConfig, CfdResult, cfd_program, default_partitions
from repro.core import OurDetector
from repro.detectors import MustRma, RmaAnalyzerLegacy
from repro.mpi import World

CFG = CfdConfig(cells_per_rank=128, iterations=6, bookkeeping_accesses=8)


def run(det=None, nranks=6, config=CFG):
    parts = default_partitions(nranks, config)
    result = CfdResult()
    world = World(nranks, [det] if det else [])
    world.run(cfd_program, parts, config, result)
    return world, result


class TestSolver:
    def test_runs_to_completion(self):
        _, result = run()
        assert result.iterations_done == CFG.iterations
        assert result.residual >= 0

    def test_smoothing_reduces_residual(self):
        _, short = run(config=CfdConfig(cells_per_rank=128, iterations=2,
                                        bookkeeping_accesses=8))
        _, long = run(config=CfdConfig(cells_per_rank=128, iterations=30,
                                       bookkeeping_accesses=8))
        assert long.residual < short.residual


class TestDetectorBehaviour:
    def test_our_contribution_is_clean(self):
        det = OurDetector()
        run(det)
        assert det.reports_total == 0, det.reports[:2]

    def test_legacy_reports_flush_false_positive(self):
        """§6: RMA-Analyzer mis-handles MPI_Win_flush on CFD-Proxy."""
        det = RmaAnalyzerLegacy()
        run(det)
        assert det.reports_total >= 1

    def test_must_rma_reports_it_too(self):
        det = MustRma()
        run(det)
        assert det.reports_total >= 1

    def test_bst_stays_flat_for_ours(self):
        short_cfg = CfdConfig(cells_per_rank=128, iterations=3,
                              bookkeeping_accesses=8)
        long_cfg = CfdConfig(cells_per_rank=128, iterations=12,
                             bookkeeping_accesses=8)
        short_det, long_det = OurDetector(), OurDetector()
        run(short_det, config=short_cfg)
        run(long_det, config=long_cfg)
        # 4x the iterations, same peak state: the Fig. 10 flatness
        assert long_det.node_stats().total_max_nodes <= \
            short_det.node_stats().total_max_nodes + 4

    def test_legacy_bst_grows_linearly(self):
        short_cfg = CfdConfig(cells_per_rank=128, iterations=3,
                              bookkeeping_accesses=8)
        long_cfg = CfdConfig(cells_per_rank=128, iterations=12,
                             bookkeeping_accesses=8)
        short_det, long_det = RmaAnalyzerLegacy(), RmaAnalyzerLegacy()
        run(short_det, config=short_cfg)
        run(long_det, config=long_cfg)
        ratio = (long_det.node_stats().total_max_nodes
                 / short_det.node_stats().total_max_nodes)
        assert ratio == pytest.approx(4.0, rel=0.15)

    def test_node_reduction_is_massive(self):
        """The 90,004 -> 54 story: >95% node reduction on CFD-Proxy."""
        legacy, ours = RmaAnalyzerLegacy(), OurDetector()
        run(legacy)
        run(ours)
        nl = legacy.node_stats().total_max_nodes
        no = ours.node_stats().total_max_nodes
        assert no < nl * 0.05

    def test_two_windows_created(self):
        world, _ = run()
        assert len(world.windows) == 2

"""Tests for MPI_Accumulate and the §2.1 atomicity property."""

import numpy as np
import pytest

from repro.core import OurDetector
from repro.detectors import MustRma, RmaAnalyzerLegacy
from repro.mpi import INT64, RmaUsageError, World


def accum_program(ctx, op="sum", second_op=None, value=1):
    win = yield ctx.win_allocate("w", 8, INT64)
    buf = ctx.alloc("buf", 8, INT64, rma_hint=True)
    buf.np[:] = value * (ctx.rank + 1)
    ctx.win_lock_all(win)
    yield ctx.barrier()
    my_op = op if ctx.rank == 0 or second_op is None else second_op
    ctx.accumulate(win, 0, 0, buf, 0, 8, op=my_op)
    yield ctx.barrier()
    ctx.win_unlock_all(win)
    yield ctx.win_free(win)


class TestDataSemantics:
    def _result(self, op, nranks=3):
        captured = {}

        def program(ctx):
            win = yield ctx.win_allocate("w", 4, INT64)
            buf = ctx.alloc("buf", 4, INT64)
            buf.np[:] = ctx.rank + 1
            ctx.win_lock_all(win)
            yield ctx.barrier()
            ctx.accumulate(win, 0, 0, buf, 0, 4, op=op)
            yield ctx.barrier()
            ctx.win_unlock_all(win)
            if ctx.rank == 0:
                captured["mem"] = list(win.memory(0))
            yield ctx.win_free(win)

        World(nranks, []).run(program)
        return captured["mem"]

    def test_sum(self):
        assert self._result("sum") == [6, 6, 6, 6]  # 1 + 2 + 3

    def test_max(self):
        assert self._result("max") == [3, 3, 3, 3]

    def test_min(self):
        assert self._result("min") == [0, 0, 0, 0]  # window starts zeroed

    def test_replace_last_writer_wins(self):
        # eager sequential application: rank 2's replace lands last
        assert self._result("replace") == [3, 3, 3, 3]

    def test_unknown_op_rejected(self):
        with pytest.raises(RmaUsageError):
            World(2, []).run(accum_program, "frobnicate")


class TestAtomicityExemption:
    """§2.1 property 3: atomicity at the MPI_Datatype level."""

    @pytest.mark.parametrize("factory", [OurDetector, RmaAnalyzerLegacy, MustRma],
                             ids=lambda f: f.__name__)
    def test_concurrent_same_op_accumulates_are_safe(self, factory):
        det = factory()
        World(3, [det]).run(accum_program, "sum")
        assert det.reports_total == 0

    @pytest.mark.parametrize("factory", [OurDetector, RmaAnalyzerLegacy, MustRma],
                             ids=lambda f: f.__name__)
    def test_mixed_op_accumulates_race(self, factory):
        det = factory()
        World(3, [det]).run(accum_program, "sum", "replace")
        assert det.reports_total >= 1

    def test_accumulate_vs_put_races(self):
        def program(ctx):
            win = yield ctx.win_allocate("w", 8, INT64)
            buf = ctx.alloc("buf", 8, INT64, rma_hint=True)
            ctx.win_lock_all(win)
            yield ctx.barrier()
            if ctx.rank == 0:
                ctx.accumulate(win, 2, 0, buf, 0, 8, op="sum")
            if ctx.rank == 1:
                ctx.put(win, 2, 0, buf, 0, 8)
            yield ctx.barrier()
            ctx.win_unlock_all(win)
            yield ctx.win_free(win)

        det = OurDetector()
        World(3, [det]).run(program)
        assert det.reports_total == 1

    def test_accumulate_vs_local_read_races_at_target(self):
        def program(ctx):
            win = yield ctx.win_allocate("w", 8, INT64)
            buf = ctx.alloc("buf", 8, INT64, rma_hint=True)
            ctx.win_lock_all(win)
            yield ctx.barrier()
            if ctx.rank == 0:
                ctx.accumulate(win, 1, 0, buf, 0, 8, op="sum")
            yield
            if ctx.rank == 1:
                from repro.mpi.simulator import Buffer

                winbuf = Buffer(win.region_of(1), INT64)
                ctx.load(winbuf, 0, 8)
            yield
            ctx.win_unlock_all(win)
            yield ctx.win_free(win)

        det = OurDetector()
        World(2, [det]).run(program)
        assert det.reports_total == 1

    def test_same_op_merges_in_bst(self):
        """Adjacent same-op accumulates coalesce like any same-site access."""
        from repro.intervals import DebugInfo

        def program(ctx):
            win = yield ctx.win_allocate("w", 64, INT64)
            buf = ctx.alloc("buf", 64, INT64, rma_hint=True)
            ctx.win_lock_all(win)
            if ctx.rank == 0:
                d = DebugInfo("acc.c", 5)
                for i in range(16):
                    ctx.accumulate(win, 1, i, buf, i, 1, op="sum", debug=d)
            ctx.win_unlock_all(win)
            yield ctx.win_free(win)

        det = OurDetector()
        World(2, [det]).run(program)
        assert det.node_stats().max_nodes_per_rank[1] == 1

    def test_different_op_does_not_merge(self):
        from repro.intervals import DebugInfo

        def program(ctx):
            win = yield ctx.win_allocate("w", 64, INT64)
            buf = ctx.alloc("buf", 64, INT64, rma_hint=True)
            ctx.win_lock_all(win)
            if ctx.rank == 0:
                d = DebugInfo("acc.c", 5)
                ctx.accumulate(win, 1, 0, buf, 0, 4, op="sum", debug=d)
                ctx.accumulate(win, 1, 4, buf, 4, 4, op="max", debug=d)
            ctx.win_unlock_all(win)
            yield ctx.win_free(win)

        det = OurDetector()
        World(2, [det]).run(program)
        assert det.node_stats().max_nodes_per_rank[1] == 2

"""Tests for vector-datatype one-sided transfers (MPI_Type_vector style)."""

import numpy as np
import pytest

from repro.core import OurDetector, StridedDetector
from repro.detectors import RmaAnalyzerLegacy
from repro.mpi import INT64, RmaUsageError, World


def vec_put_program(ctx, blocks=8, blocklen=1, stride=3):
    win = yield ctx.win_allocate("w", 256, INT64)
    buf = ctx.alloc("buf", 64, INT64, rma_hint=True)
    buf.np[:] = ctx.rank + 1
    ctx.win_lock_all(win)
    yield ctx.barrier()
    if ctx.rank == 0:
        ctx.put_vector(win, 1, 0, buf, 0, blocks=blocks, blocklen=blocklen,
                       stride=stride)
    yield ctx.barrier()
    ctx.win_unlock_all(win)
    yield ctx.win_free(win)


class TestDataMovement:
    def test_strided_placement(self):
        seen = {}

        def program(ctx):
            win = yield ctx.win_allocate("w", 16, INT64)
            buf = ctx.alloc("buf", 8, INT64)
            buf.np[:] = [1, 2, 3, 4, 5, 6, 7, 8]
            ctx.win_lock_all(win)
            yield ctx.barrier()
            if ctx.rank == 0:
                ctx.put_vector(win, 1, 0, buf, 0, blocks=3, blocklen=2,
                               stride=5)
            yield ctx.barrier()
            ctx.win_unlock_all(win)
            if ctx.rank == 1:
                seen["mem"] = list(win.memory(1))
            yield ctx.win_free(win)

        World(2).run(program)
        assert seen["mem"] == [1, 2, 0, 0, 0, 3, 4, 0, 0, 0, 5, 6, 0, 0, 0, 0]

    def test_get_vector_roundtrip(self):
        seen = {}

        def program(ctx):
            win = yield ctx.win_allocate("w", 16, INT64)
            if ctx.rank == 1:
                win.memory(1)[:] = np.arange(16)
            yield ctx.barrier()
            buf = ctx.alloc("buf", 6, INT64)
            ctx.win_lock_all(win)
            if ctx.rank == 0:
                ctx.get_vector(win, 1, 0, buf, 0, blocks=3, blocklen=2,
                               stride=5)
                seen["got"] = list(buf.np)
            ctx.win_unlock_all(win)
            yield ctx.win_free(win)

        World(2).run(program)
        assert seen["got"] == [0, 1, 5, 6, 10, 11]

    def test_invalid_shapes_rejected(self):
        def program(ctx):
            win = yield ctx.win_allocate("w", 16, INT64)
            buf = ctx.alloc("buf", 8, INT64)
            ctx.win_lock_all(win)
            ctx.put_vector(win, 0, 0, buf, 0, blocks=2, blocklen=3, stride=2)

        with pytest.raises(RmaUsageError):
            World(1).run(program)

    def test_out_of_window_tail_rejected(self):
        def program(ctx):
            win = yield ctx.win_allocate("w", 8, INT64)
            buf = ctx.alloc("buf", 8, INT64)
            ctx.win_lock_all(win)
            ctx.put_vector(win, 0, 0, buf, 0, blocks=4, blocklen=1, stride=3)

        with pytest.raises(Exception):
            World(1).run(program)


class TestCosts:
    def test_one_transaction_latency(self):
        def comm(blocks):
            world = World(2)
            world.run(vec_put_program, blocks)
            return world.clock.total("comm")

        # doubling the blocks must NOT double the charged latency: only
        # bytes grow (one network transaction per vector op)
        lat = 1_000.0  # default rma_latency_ns
        assert comm(16) - comm(8) < lat


class TestDetection:
    def test_strided_blocks_race_with_overlapping_put(self):
        def program(ctx):
            win = yield ctx.win_allocate("w", 64, INT64)
            buf = ctx.alloc("buf", 16, INT64, rma_hint=True)
            ctx.win_lock_all(win)
            yield ctx.barrier()
            if ctx.rank == 0:
                ctx.put_vector(win, 2, 0, buf, 0, blocks=4, blocklen=1,
                               stride=4)
            yield
            if ctx.rank == 1:
                ctx.put(win, 2, 8, buf, 0, 1)  # hits block 2 (disp 8)
            yield
            ctx.win_unlock_all(win)
            yield ctx.win_free(win)

        det = OurDetector()
        World(3, [det]).run(program)
        assert det.reports_total == 1

    def test_write_between_blocks_is_safe(self):
        def program(ctx):
            win = yield ctx.win_allocate("w", 64, INT64)
            buf = ctx.alloc("buf", 16, INT64, rma_hint=True)
            ctx.win_lock_all(win)
            yield ctx.barrier()
            if ctx.rank == 0:
                ctx.put_vector(win, 2, 0, buf, 0, blocks=4, blocklen=1,
                               stride=4)
            yield
            if ctx.rank == 1:
                ctx.put(win, 2, 2, buf, 0, 1)  # the gap between blocks
            yield
            ctx.win_unlock_all(win)
            yield ctx.win_free(win)

        for factory in (OurDetector, StridedDetector):
            det = factory()
            World(3, [det]).run(program)
            assert det.reports_total == 0, factory.__name__

    def test_strided_detector_collapses_vector_footprint(self):
        plain, strided = OurDetector(), StridedDetector()
        World(2, [plain, strided]).run(vec_put_program, 16)
        assert plain.node_stats().max_nodes_per_rank[1] == 16
        assert strided.node_stats().max_nodes_per_rank[1] == 1

    def test_legacy_node_count_equals_blocks(self):
        det = RmaAnalyzerLegacy()
        World(2, [det]).run(vec_put_program, 12)
        assert det.node_stats().max_nodes_per_rank[1] == 12

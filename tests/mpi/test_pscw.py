"""PSCW (post/start/complete/wait) general active-target synchronization.

The simulator models PSCW on top of the existing epoch interposition:
an access epoch (start/complete) and an exposure epoch (post/wait) both
surface as ``epoch_start``/``epoch_end`` to detectors and as
``LOCK_ALL``/``UNLOCK_ALL`` sync events in traces, so the trace format
and every detector stay unchanged.  A rank that both posts and starts
holds one *logical* epoch span (refcounted), not two.
"""

import pytest

from repro.core import OurDetector
from repro.mpi import BYTE, EpochError, World
from repro.mpi.trace import SyncEvent, SyncKind


def _epoch_spans(world, rank):
    """(#epoch_start, #epoch_end) sync events of one rank's trace."""
    evs = [e for e in world.trace_log.events
           if isinstance(e, SyncEvent) and e.rank == rank]
    starts = sum(1 for e in evs if e.kind is SyncKind.LOCK_ALL)
    ends = sum(1 for e in evs if e.kind is SyncKind.UNLOCK_ALL)
    return starts, ends


class TestLifecycle:
    def test_put_inside_pscw_epoch_runs_clean(self):
        def program(ctx):
            win = yield ctx.win_allocate("w", 64, BYTE)
            buf = ctx.alloc("b", 64, BYTE)
            if ctx.rank == 1:
                ctx.win_post(win, group=[0])
            yield
            if ctx.rank == 0:
                ctx.win_start(win, group=[1])
                ctx.put(win, 1, 0, buf, 0, 8)
                ctx.win_complete(win)
            yield
            if ctx.rank == 1:
                ctx.win_wait(win)
            yield ctx.win_free(win)

        world = World(2, [], trace=True)
        world.run(program)
        # one epoch span each: the access epoch and the exposure epoch
        assert _epoch_spans(world, 0) == (1, 1)
        assert _epoch_spans(world, 1) == (1, 1)

    def test_post_and_start_share_one_logical_span(self):
        """A rank in both roles must not emit nested epoch events."""
        def program(ctx):
            win = yield ctx.win_allocate("w", 64, BYTE)
            buf = ctx.alloc("b", 64, BYTE)
            ctx.win_post(win, group=[0, 1])
            yield
            ctx.win_start(win, group=[0, 1])
            ctx.put(win, (ctx.rank + 1) % 2, 0 if ctx.rank else 32,
                    buf, 0, 8)
            yield
            ctx.win_complete(win)
            yield
            ctx.win_wait(win)
            yield ctx.win_free(win)

        world = World(2, [], trace=True)
        world.run(program)
        assert _epoch_spans(world, 0) == (1, 1)
        assert _epoch_spans(world, 1) == (1, 1)

    def test_detector_sees_pscw_race(self):
        """Two unsynchronized puts to the same bytes inside PSCW."""
        def program(ctx):
            win = yield ctx.win_allocate("w", 64, BYTE)
            buf = ctx.alloc("b", 64, BYTE)
            if ctx.rank == 2:
                ctx.win_post(win, group=[0, 1])
            yield
            if ctx.rank in (0, 1):
                ctx.win_start(win, group=[2])
                ctx.put(win, 2, 0, buf, 0, 8)
            yield
            if ctx.rank in (0, 1):
                ctx.win_complete(win)
            yield
            if ctx.rank == 2:
                ctx.win_wait(win)
            yield ctx.win_free(win)

        det = OurDetector()
        World(3, [det]).run(program)
        assert det.reports


class TestErrors:
    @staticmethod
    def _run2(body):
        def program(ctx):
            win = yield ctx.win_allocate("w", 64, BYTE)
            yield from body(ctx, win)
            yield ctx.win_free(win)

        World(2, []).run(program)

    def test_fence_inside_access_epoch_raises(self):
        def body(ctx, win):
            if ctx.rank == 0:
                ctx.win_start(win, group=[1])
            yield ctx.win_fence(win)

        with pytest.raises(EpochError, match="PSCW"):
            self._run2(body)

    def test_lock_inside_access_epoch_raises(self):
        def body(ctx, win):
            if ctx.rank == 0:
                ctx.win_start(win, group=[1])
                ctx.win_lock(win, 1)
            yield
            if ctx.rank == 0:
                ctx.win_unlock(win, 1)
                ctx.win_complete(win)

        with pytest.raises(EpochError, match="PSCW"):
            self._run2(body)

    def test_start_twice_raises(self):
        def body(ctx, win):
            if ctx.rank == 0:
                ctx.win_start(win, group=[1])
                ctx.win_start(win, group=[1])
            yield
            if ctx.rank == 0:
                ctx.win_complete(win)

        with pytest.raises(EpochError, match="inside an epoch"):
            self._run2(body)

    def test_complete_without_start_raises(self):
        def body(ctx, win):
            if ctx.rank == 0:
                ctx.win_complete(win)
            yield

        with pytest.raises(EpochError, match="MPI_Win_complete"):
            self._run2(body)

    def test_double_post_raises(self):
        def body(ctx, win):
            if ctx.rank == 0:
                ctx.win_post(win)
                ctx.win_post(win)
            yield
            if ctx.rank == 0:
                ctx.win_wait(win)

        with pytest.raises(EpochError, match="MPI_Win_post"):
            self._run2(body)

    def test_wait_without_post_raises(self):
        def body(ctx, win):
            if ctx.rank == 0:
                ctx.win_wait(win)
            yield

        with pytest.raises(EpochError, match="MPI_Win_wait"):
            self._run2(body)

    def test_win_free_with_open_exposure_raises(self):
        def body(ctx, win):
            if ctx.rank == 0:
                ctx.win_post(win)
            yield

        with pytest.raises(EpochError, match="MPI_Win_wait"):
            self._run2(body)

    def test_win_free_with_open_access_epoch_raises(self):
        def body(ctx, win):
            if ctx.rank == 0:
                ctx.win_start(win, group=[1])
            yield

        with pytest.raises(EpochError):
            self._run2(body)

"""Tests for per-target passive locks (MPI_Win_lock/MPI_Win_unlock)."""

import pytest

from repro.core import OurDetector
from repro.detectors import McCChecker, MustRma, RmaAnalyzerLegacy
from repro.mpi import EpochError, INT64, RmaUsageError, World


def counter_program(ctx, exclusive=True, workers=(0, 1), target=2):
    """Ranks in ``workers`` put to the same range of ``target``'s window."""
    win = yield ctx.win_allocate("w", 8, INT64)
    buf = ctx.alloc("buf", 8, INT64, rma_hint=True)
    buf.np[:] = ctx.rank + 1
    yield ctx.barrier()
    if ctx.rank in workers:
        ctx.win_lock(win, target, exclusive=exclusive)
        ctx.put(win, target, 0, buf, 0, 8)
        ctx.win_unlock(win, target)
    yield ctx.barrier()
    yield ctx.win_free(win)


class TestMechanics:
    def test_rma_requires_lock_on_target(self):
        def program(ctx):
            win = yield ctx.win_allocate("w", 8, INT64)
            buf = ctx.alloc("buf", 8, INT64)
            ctx.win_lock(win, 1)
            ctx.put(win, 0, 0, buf, 0, 8)  # locked 1, targeting 0
            ctx.win_unlock(win, 1)
            yield ctx.win_free(win)

        with pytest.raises(EpochError):
            World(2).run(program)

    def test_double_lock_same_target_rejected(self):
        def program(ctx):
            win = yield ctx.win_allocate("w", 8, INT64)
            ctx.win_lock(win, 1)
            ctx.win_lock(win, 1)
            yield ctx.win_free(win)

        with pytest.raises(EpochError):
            World(2).run(program)

    def test_unlock_without_lock_rejected(self):
        def program(ctx):
            win = yield ctx.win_allocate("w", 8, INT64)
            ctx.win_unlock(win, 1)
            yield ctx.win_free(win)

        with pytest.raises(EpochError):
            World(2).run(program)

    def test_lock_inside_lock_all_rejected(self):
        def program(ctx):
            win = yield ctx.win_allocate("w", 8, INT64)
            ctx.win_lock_all(win)
            ctx.win_lock(win, 1)
            yield ctx.win_free(win)

        with pytest.raises(EpochError):
            World(2).run(program)

    def test_free_with_held_lock_rejected(self):
        def program(ctx):
            win = yield ctx.win_allocate("w", 8, INT64)
            ctx.win_lock(win, 1)
            yield ctx.win_free(win)

        with pytest.raises(EpochError):
            World(2).run(program)

    def test_invalid_target(self):
        def program(ctx):
            win = yield ctx.win_allocate("w", 8, INT64)
            ctx.win_lock(win, 9)
            yield ctx.win_free(win)

        with pytest.raises(RmaUsageError):
            World(2).run(program)

    def test_multiple_targets_lockable(self):
        def program(ctx):
            win = yield ctx.win_allocate("w", 8, INT64)
            buf = ctx.alloc("buf", 8, INT64)
            if ctx.rank == 0:
                ctx.win_lock(win, 1)
                ctx.win_lock(win, 2)
                ctx.put(win, 1, 0, buf, 0, 4)
                ctx.put(win, 2, 0, buf, 0, 4)
                ctx.win_unlock(win, 2)
                ctx.win_unlock(win, 1)
            yield ctx.barrier()
            yield ctx.win_free(win)

        World(3).run(program)


class TestDetection:
    def test_exclusive_locks_serialize(self):
        """Different exclusive epochs never race — mutual exclusion."""
        for factory in (OurDetector, MustRma, McCChecker):
            det = factory()
            World(3, [det]).run(counter_program, True)
            assert det.reports_total == 0, (factory.__name__, det.reports[:2])

    def test_shared_locks_still_race(self):
        for factory in (OurDetector, MustRma):
            det = factory()
            World(3, [det]).run(counter_program, False)
            assert det.reports_total >= 1, factory.__name__

    def test_legacy_tool_lacks_lock_support(self):
        """§5.1: the original tool instruments lock_all only — per-target
        exclusive locks are invisible, so it reports a false positive."""
        det = RmaAnalyzerLegacy()
        World(3, [det]).run(counter_program, True)
        assert det.reports_total >= 1

    def test_race_within_one_exclusive_epoch_still_caught(self):
        def program(ctx):
            win = yield ctx.win_allocate("w", 8, INT64)
            buf = ctx.alloc("buf", 8, INT64, rma_hint=True)
            yield ctx.barrier()
            if ctx.rank == 0:
                ctx.win_lock(win, 1, exclusive=True)
                ctx.put(win, 1, 0, buf, 0, 8)
                ctx.put(win, 1, 0, buf, 0, 8)  # same epoch: unordered!
                ctx.win_unlock(win, 1)
            yield ctx.barrier()
            yield ctx.win_free(win)

        det = OurDetector()
        World(2, [det]).run(program)
        assert det.reports_total == 1

    def test_exclusive_vs_lock_all_races(self):
        """An exclusive lock only orders against other exclusive epochs."""

        def program(ctx):
            win = yield ctx.win_allocate("w", 8, INT64)
            buf = ctx.alloc("buf", 8, INT64, rma_hint=True)
            yield ctx.barrier()
            if ctx.rank == 0:
                ctx.win_lock(win, 2, exclusive=True)
                ctx.put(win, 2, 0, buf, 0, 8)
                ctx.win_unlock(win, 2)
            yield
            if ctx.rank == 1:
                ctx.win_lock_all(win)
                ctx.put(win, 2, 0, buf, 0, 8)
                ctx.win_unlock_all(win)
            yield ctx.barrier()
            yield ctx.win_free(win)

        det = OurDetector()
        World(3, [det]).run(program)
        assert det.reports_total == 1

    def test_data_lands(self):
        seen = {}

        def program(ctx):
            win = yield ctx.win_allocate("w", 4, INT64)
            buf = ctx.alloc("buf", 4, INT64)
            buf.np[:] = 7
            yield ctx.barrier()
            if ctx.rank == 0:
                ctx.win_lock(win, 1, exclusive=True)
                ctx.put(win, 1, 0, buf, 0, 4)
                ctx.win_unlock(win, 1)
            yield ctx.barrier()
            if ctx.rank == 1:
                seen["mem"] = list(win.memory(1))
            yield ctx.win_free(win)

        World(2).run(program)
        assert seen["mem"] == [7, 7, 7, 7]

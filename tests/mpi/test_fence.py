"""Tests for active-target (MPI_Win_fence) synchronization."""

import pytest

from repro.core import OurDetector
from repro.detectors import McCChecker, MustRma, ParkMirror, RmaAnalyzerLegacy
from repro.mpi import EpochError, INT64, World

ALL_DETECTORS = [OurDetector, RmaAnalyzerLegacy, MustRma, ParkMirror, McCChecker]


def exchange_program(ctx, epochs=3):
    """A correct fence-separated exchange: disjoint blocks, repeated."""
    win = yield ctx.win_allocate("w", 8 * ctx.size, INT64)
    buf = ctx.alloc("buf", 8, INT64, rma_hint=True)
    yield ctx.win_fence(win)
    for _ in range(epochs):
        ctx.put(win, (ctx.rank + 1) % ctx.size, 8 * ctx.rank, buf, 0, 8)
        yield ctx.win_fence(win)
    yield ctx.win_free(win)


def racy_program(ctx):
    """Everyone writes rank 0's block inside one fence epoch."""
    win = yield ctx.win_allocate("w", 8, INT64)
    buf = ctx.alloc("buf", 8, INT64, rma_hint=True)
    yield ctx.win_fence(win)
    ctx.put(win, 0, 0, buf, 0, 8)
    yield ctx.win_fence(win)
    yield ctx.win_free(win)


class TestEpochMechanics:
    def test_rma_before_first_fence_rejected(self):
        def program(ctx):
            win = yield ctx.win_allocate("w", 8, INT64)
            buf = ctx.alloc("buf", 8, INT64)
            ctx.put(win, 0, 0, buf, 0, 8)
            yield ctx.win_fence(win)
            yield ctx.win_free(win)

        with pytest.raises(EpochError):
            World(2).run(program)

    def test_mixing_fence_and_lock_rejected(self):
        def program(ctx):
            win = yield ctx.win_allocate("w", 8, INT64)
            ctx.win_lock_all(win)
            yield ctx.win_fence(win)

        with pytest.raises(EpochError):
            World(2).run(program)

    def test_unlock_in_fence_mode_rejected(self):
        def program(ctx):
            win = yield ctx.win_allocate("w", 8, INT64)
            yield ctx.win_fence(win)
            ctx.win_unlock_all(win)
            yield ctx.win_free(win)

        with pytest.raises(EpochError):
            World(2).run(program)

    def test_free_after_final_fence_allowed(self):
        World(2).run(exchange_program, 1)

    def test_data_moves(self):
        seen = {}

        def program(ctx):
            win = yield ctx.win_allocate("w", 8 * ctx.size, INT64)
            buf = ctx.alloc("buf", 8, INT64)
            buf.np[:] = ctx.rank + 10
            yield ctx.win_fence(win)
            ctx.put(win, (ctx.rank + 1) % ctx.size, 8 * ctx.rank, buf, 0, 8)
            yield ctx.win_fence(win)
            left = (ctx.rank - 1) % ctx.size
            seen[ctx.rank] = int(win.memory(ctx.rank)[8 * left])
            yield ctx.win_free(win)

        World(3).run(program)
        assert seen == {0: 12, 1: 10, 2: 11}


class TestDetection:
    @pytest.mark.parametrize("factory", ALL_DETECTORS, ids=lambda f: f.__name__)
    def test_clean_exchange_no_reports(self, factory):
        det = factory()
        World(4, [det]).run(exchange_program)
        assert det.reports_total == 0, det.reports[:2]

    @pytest.mark.parametrize("factory", ALL_DETECTORS, ids=lambda f: f.__name__)
    def test_intra_epoch_race_detected(self, factory):
        det = factory()
        World(3, [det]).run(racy_program)
        assert det.reports_total >= 1

    def test_fence_separates_epochs(self):
        """Same range written in consecutive fence epochs: ordered, safe."""

        def program(ctx):
            win = yield ctx.win_allocate("w", 8, INT64)
            buf = ctx.alloc("buf", 8, INT64, rma_hint=True)
            yield ctx.win_fence(win)
            if ctx.rank == 0:
                ctx.put(win, 1, 0, buf, 0, 8)
            yield ctx.win_fence(win)
            if ctx.rank == 1:
                ctx.put(win, 1, 0, buf, 0, 8)  # different origin, next epoch
            yield ctx.win_fence(win)
            yield ctx.win_free(win)

        det = OurDetector()
        World(2, [det]).run(program)
        assert det.reports_total == 0

    def test_bst_cleared_at_each_fence(self):
        det = OurDetector()
        World(4, [det]).run(exchange_program, 5)
        stats = det.node_stats()
        # 5 epochs of 1 put each: the per-epoch peak never accumulates
        assert stats.max_nodes_one_rank <= 2

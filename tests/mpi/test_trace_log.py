"""Tests for the in-memory trace log helpers."""

from repro.mpi import INT64, World
from repro.mpi.trace import LocalEvent, RmaEvent, SyncEvent, SyncKind, TraceLog


def traced_world():
    def program(ctx):
        win = yield ctx.win_allocate("w", 8, INT64)
        buf = ctx.alloc("buf", 8, INT64, rma_hint=True)
        ctx.win_lock_all(win)
        yield ctx.barrier()
        if ctx.rank == 0:
            ctx.store(buf, 0, 1)
            ctx.put(win, 1, 0, buf, 0, 4)
        yield ctx.barrier()
        ctx.win_unlock_all(win)
        yield ctx.win_free(win)

    world = World(2, [], trace=True)
    world.run(program)
    return world


class TestTraceLog:
    def test_sequence_numbers_strictly_increase(self):
        events = traced_world().trace_log.events
        seqs = [e.seq for e in events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_of_rank_filters(self):
        log = traced_world().trace_log
        rank0 = log.of_rank(0)
        assert rank0
        assert all(e.rank == 0 for e in rank0)

    def test_rma_events_helper(self):
        log = traced_world().trace_log
        rmas = log.rma_events()
        assert len(rmas) == 1
        assert rmas[0].op == "put"

    def test_sync_kinds_present(self):
        log = traced_world().trace_log
        kinds = {e.kind for e in log.events if isinstance(e, SyncEvent)}
        assert SyncKind.WIN_CREATE in kinds
        assert SyncKind.LOCK_ALL in kinds
        assert SyncKind.UNLOCK_ALL in kinds
        assert SyncKind.BARRIER in kinds
        assert SyncKind.WIN_FREE in kinds

    def test_no_trace_by_default(self):
        world = World(2)
        assert world.trace_log is None

    def test_manual_log(self):
        log = TraceLog()
        assert len(log) == 0
        assert log.next_seq() == 1
        assert log.next_seq() == 2
        assert list(log) == []

"""Tests for request-based RMA (MPI_Rput / MPI_Rget / MPI_Wait)."""

import pytest

from repro.core import OurDetector
from repro.mpi import INT64, RmaUsageError, World


def reuse_program(ctx, use_wait):
    """Rank 0 rputs from buf and then reuses buf (store)."""
    win = yield ctx.win_allocate("w", 8, INT64)
    buf = ctx.alloc("buf", 8, INT64, rma_hint=True)
    ctx.win_lock_all(win)
    yield ctx.barrier()
    if ctx.rank == 0:
        req = ctx.rput(win, 1, 0, buf, 0, 8)
        if use_wait:
            ctx.wait(req)
        ctx.store(buf, 0, 7)
    yield ctx.barrier()
    ctx.win_unlock_all(win)
    yield ctx.win_free(win)


class TestSemantics:
    def test_wait_permits_buffer_reuse(self):
        det = OurDetector()
        World(2, [det]).run(reuse_program, True)
        assert det.reports_total == 0

    def test_reuse_without_wait_races(self):
        det = OurDetector()
        World(2, [det]).run(reuse_program, False)
        assert det.reports_total == 1

    def test_rget_wait_permits_result_read(self):
        def program(ctx):
            win = yield ctx.win_allocate("w", 8, INT64)
            buf = ctx.alloc("buf", 8, INT64, rma_hint=True)
            ctx.win_lock_all(win)
            yield ctx.barrier()
            if ctx.rank == 0:
                req = ctx.rget(win, 1, 0, buf, 0, 8)
                ctx.wait(req)
                ctx.load(buf, 0)
            yield ctx.barrier()
            ctx.win_unlock_all(win)
            yield ctx.win_free(win)

        det = OurDetector()
        World(2, [det]).run(program)
        assert det.reports_total == 0

    def test_wait_is_local_only_target_still_races(self):
        """§6 family: MPI_Wait does not order the op at the target —
        another origin's overlapping put must still be reported."""

        def program(ctx):
            win = yield ctx.win_allocate("w", 8, INT64)
            buf = ctx.alloc("buf", 8, INT64, rma_hint=True)
            ctx.win_lock_all(win)
            yield ctx.barrier()
            if ctx.rank == 0:
                req = ctx.rput(win, 2, 0, buf, 0, 8)
                ctx.wait(req)
            yield
            if ctx.rank == 1:
                ctx.put(win, 2, 0, buf, 0, 8)  # concurrent at the target
            yield
            ctx.win_unlock_all(win)
            yield ctx.win_free(win)

        det = OurDetector()
        World(3, [det]).run(program)
        assert det.reports_total == 1

    def test_data_lands(self):
        seen = {}

        def program(ctx):
            win = yield ctx.win_allocate("w", 4, INT64)
            buf = ctx.alloc("buf", 4, INT64)
            buf.np[:] = 5
            ctx.win_lock_all(win)
            yield ctx.barrier()
            if ctx.rank == 0:
                req = ctx.rput(win, 1, 0, buf, 0, 4)
                ctx.wait(req)
            yield ctx.barrier()
            ctx.win_unlock_all(win)
            if ctx.rank == 1:
                seen["mem"] = list(win.memory(1))
            yield ctx.win_free(win)

        World(2).run(program)
        assert seen["mem"] == [5, 5, 5, 5]


class TestMisuse:
    def test_double_wait_rejected(self):
        def program(ctx):
            win = yield ctx.win_allocate("w", 8, INT64)
            buf = ctx.alloc("buf", 8, INT64)
            ctx.win_lock_all(win)
            req = ctx.rput(win, 0, 0, buf, 0, 4)
            ctx.wait(req)
            ctx.wait(req)

        with pytest.raises(RmaUsageError):
            World(1).run(program)

    def test_foreign_wait_rejected(self):
        reqs = {}

        def program(ctx):
            win = yield ctx.win_allocate("w", 8, INT64)
            buf = ctx.alloc("buf", 8, INT64)
            ctx.win_lock_all(win)
            yield ctx.barrier()
            if ctx.rank == 0:
                reqs["r"] = ctx.rput(win, 1, 0, buf, 0, 4)
            yield
            if ctx.rank == 1:
                ctx.wait(reqs["r"])  # not my request
            yield
            ctx.win_unlock_all(win)
            yield ctx.win_free(win)

        with pytest.raises(RmaUsageError):
            World(2).run(program)

"""Unit tests for per-rank address spaces and regions."""

import numpy as np
import pytest

from repro.mpi import AddressSpace, RegionKind, RmaUsageError
from repro.intervals import Interval


class TestAlloc:
    def test_basic_alloc(self):
        space = AddressSpace(0)
        region = space.alloc("buf", 64, RegionKind.HEAP)
        assert region.size == 64
        assert region.rank == 0
        assert len(region.interval) == 64
        assert np.all(region.data == 0)

    def test_regions_never_overlap(self):
        space = AddressSpace(0)
        regions = [space.alloc(f"r{i}", 32, RegionKind.HEAP) for i in range(20)]
        for i, a in enumerate(regions):
            for b in regions[i + 1 :]:
                assert not a.interval.overlaps(b.interval)

    def test_guard_gap_prevents_adjacency(self):
        space = AddressSpace(0)
        a = space.alloc("a", 16, RegionKind.HEAP)
        b = space.alloc("b", 16, RegionKind.HEAP)
        assert not a.interval.is_adjacent(b.interval)

    def test_duplicate_name_rejected(self):
        space = AddressSpace(0)
        space.alloc("x", 8, RegionKind.STACK)
        with pytest.raises(RmaUsageError):
            space.alloc("x", 8, RegionKind.HEAP)

    def test_zero_size_rejected(self):
        with pytest.raises(RmaUsageError):
            AddressSpace(0).alloc("x", 0, RegionKind.HEAP)

    def test_lookup(self):
        space = AddressSpace(1)
        region = space.alloc("buf", 8, RegionKind.WINDOW)
        assert space["buf"] is region
        assert "buf" in space
        assert "nope" not in space

    def test_region_at(self):
        space = AddressSpace(0)
        region = space.alloc("buf", 8, RegionKind.HEAP)
        assert space.region_at(region.base) is region
        assert space.region_at(region.base + 7) is region
        assert space.region_at(region.base + 8) is None


class TestFree:
    def test_free(self):
        space = AddressSpace(0)
        region = space.alloc("buf", 8, RegionKind.HEAP)
        space.free(region)
        assert "buf" not in space

    def test_double_free_rejected(self):
        space = AddressSpace(0)
        region = space.alloc("buf", 8, RegionKind.HEAP)
        space.free(region)
        with pytest.raises(RmaUsageError):
            space.free(region)

    def test_addresses_not_reused(self):
        space = AddressSpace(0)
        a = space.alloc("a", 8, RegionKind.HEAP)
        base_a = a.base
        space.free(a)
        b = space.alloc("b", 8, RegionKind.HEAP)
        assert b.base > base_a


class TestRegion:
    def test_sub_interval(self):
        space = AddressSpace(0)
        region = space.alloc("buf", 32, RegionKind.HEAP)
        iv = region.sub_interval(8, 4)
        assert iv == Interval(region.base + 8, region.base + 12)

    def test_sub_interval_bounds_checked(self):
        region = AddressSpace(0).alloc("buf", 32, RegionKind.HEAP)
        with pytest.raises(RmaUsageError):
            region.sub_interval(30, 4)
        with pytest.raises(RmaUsageError):
            region.sub_interval(-1, 2)
        with pytest.raises(RmaUsageError):
            region.sub_interval(0, 0)

    def test_typed_view_shares_memory(self):
        region = AddressSpace(0).alloc("buf", 32, RegionKind.HEAP)
        v64 = region.view(np.dtype(np.int64))
        v64[0] = 0x01020304
        assert region.data[0] != 0

    def test_info_snapshot(self):
        region = AddressSpace(0).alloc("buf", 8, RegionKind.STACK)
        info = region.info
        assert info.is_stack and not info.is_window
        assert not info.may_alias_rma
        region.may_alias_rma = True
        assert not info.may_alias_rma  # snapshot, not live view
        assert region.info.may_alias_rma

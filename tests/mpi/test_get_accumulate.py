"""Tests for MPI_Get_accumulate / MPI_Fetch_and_op."""

import pytest

from repro.core import OurDetector
from repro.detectors import MustRma
from repro.mpi import INT64, RmaUsageError, World


class TestDataSemantics:
    def test_fetch_and_add_returns_old_values(self):
        olds = {}

        def program(ctx):
            win = yield ctx.win_allocate("ctr", 1, INT64)
            one = ctx.alloc("one", 1, INT64)
            one.np[0] = 1
            old = ctx.alloc("old", 1, INT64)
            ctx.win_lock_all(win)
            yield ctx.barrier()
            # ranks run their op in rank order (scheduler determinism)
            for r in range(ctx.size):
                if ctx.rank == r:
                    ctx.fetch_and_op(win, 0, 0, one, old)
                yield
            ctx.win_flush_all(win)
            yield ctx.barrier()
            olds[ctx.rank] = int(old.np[0])
            ctx.win_unlock_all(win)
            if ctx.rank == 0:
                assert int(win.memory(0)[0]) == ctx.size
            yield ctx.win_free(win)

        World(4).run(program)
        # each rank fetched the value before its own increment
        assert sorted(olds.values()) == [0, 1, 2, 3]

    def test_no_op_is_atomic_read(self):
        seen = {}

        def program(ctx):
            win = yield ctx.win_allocate("ctr", 2, INT64)
            dummy = ctx.alloc("dummy", 2, INT64)
            out = ctx.alloc("out", 2, INT64)
            if ctx.rank == 0:
                win.memory(0)[:] = [41, 42]
            yield ctx.barrier()
            ctx.win_lock_all(win)
            ctx.get_accumulate(win, 0, 0, dummy, out, count=2, op="no_op")
            ctx.win_flush_all(win)
            seen[ctx.rank] = list(out.np)
            ctx.win_unlock_all(win)
            yield ctx.barrier()
            if ctx.rank == 0:
                assert list(win.memory(0)) == [41, 42]  # unchanged
            yield ctx.win_free(win)

        World(2).run(program)
        assert seen[1] == [41, 42]

    def test_result_buffer_required(self):
        def program(ctx):
            win = yield ctx.win_allocate("w", 1, INT64)
            buf = ctx.alloc("buf", 1, INT64)
            ctx.win_lock_all(win)
            ctx._world._rma("get_accumulate", ctx.rank, 0, win, 0, buf, 0, 1,
                            None, accum_op="sum", result=None)

        with pytest.raises(RmaUsageError):
            World(1).run(program)


class TestRaceSemantics:
    def _counter_program(self, read_without_sync):
        def program(ctx):
            win = yield ctx.win_allocate("ctr", 1, INT64)
            one = ctx.alloc("one", 1, INT64, rma_hint=True)
            one.np[0] = 1
            old = ctx.alloc("old", 1, INT64, rma_hint=True)
            ctx.win_lock_all(win)
            yield ctx.barrier()
            ctx.fetch_and_op(win, 0, 0, one, old)
            if read_without_sync:
                ctx.load(old, 0)  # fetch may not have landed yet
            else:
                ctx.win_flush_all(win)
            yield ctx.barrier()
            if not read_without_sync:
                ctx.load(old, 0)
            ctx.win_unlock_all(win)
            yield ctx.win_free(win)

        return program

    def test_concurrent_fetch_and_ops_race_free(self):
        # the flush+barrier read needs precise flush support: only ours
        det = OurDetector()
        World(4, [det]).run(self._counter_program(False))
        assert det.reports_total == 0

    def test_must_rma_flush_blindness_on_result_read(self):
        """MUST-RMA ignores MPI_Win_flush (§6): the flushed result read
        looks concurrent to it — the same FP family as CFD-Proxy."""
        det = MustRma()
        World(4, [det]).run(self._counter_program(False))
        assert det.reports_total >= 1

    def test_must_rma_clean_when_read_after_unlock(self):
        def program(ctx):
            win = yield ctx.win_allocate("ctr", 1, INT64)
            one = ctx.alloc("one", 1, INT64, rma_hint=True)
            one.np[0] = 1
            old = ctx.alloc("old", 1, INT64, rma_hint=True)
            ctx.win_lock_all(win)
            yield ctx.barrier()
            ctx.fetch_and_op(win, 0, 0, one, old)
            yield ctx.barrier()
            ctx.win_unlock_all(win)
            ctx.load(old, 0)  # ordered by epoch completion
            yield ctx.win_free(win)

        for factory in (OurDetector, MustRma):
            det = factory()
            World(4, [det]).run(program)
            assert det.reports_total == 0, factory.__name__

    def test_unsynchronized_result_read_races(self):
        det = OurDetector()
        World(2, [det]).run(self._counter_program(True))
        assert det.reports_total >= 1

    def test_mixed_with_put_races(self):
        def program(ctx):
            win = yield ctx.win_allocate("ctr", 1, INT64)
            one = ctx.alloc("one", 1, INT64, rma_hint=True)
            old = ctx.alloc("old", 1, INT64, rma_hint=True)
            ctx.win_lock_all(win)
            yield ctx.barrier()
            if ctx.rank == 0:
                ctx.fetch_and_op(win, 2, 0, one, old)
            if ctx.rank == 1:
                ctx.put(win, 2, 0, one, 0, 1)  # plain write vs atomic op
            yield ctx.barrier()
            ctx.win_unlock_all(win)
            yield ctx.win_free(win)

        det = OurDetector()
        World(3, [det]).run(program)
        assert det.reports_total >= 1

    def test_same_origin_repeated_faa_ordered(self):
        """MPI accumulate ordering: same-origin atomic ops never race."""

        def program(ctx):
            win = yield ctx.win_allocate("ctr", 1, INT64)
            one = ctx.alloc("one", 1, INT64, rma_hint=True)
            old = ctx.alloc("old", 1, INT64, rma_hint=True)
            ctx.win_lock_all(win)
            yield ctx.barrier()
            if ctx.rank == 0:
                for _ in range(4):
                    ctx.fetch_and_op(win, 1, 0, one, old)
            yield ctx.barrier()
            ctx.win_unlock_all(win)
            yield ctx.win_free(win)

        det = OurDetector()
        World(2, [det]).run(program)
        assert det.reports_total == 0

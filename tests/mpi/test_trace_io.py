"""Tests for trace persistence and offline replay."""

import pytest

from repro.core import OurDetector
from repro.detectors import McCChecker, MustRma, RmaAnalyzerLegacy
from repro.mpi import INT64, World, load_trace, replay_trace, save_trace


def record(program, nranks=3, *args):
    world = World(nranks, [], trace=True)
    world.run(program, *args)
    return world


def racy_program(ctx):
    win = yield ctx.win_allocate("w", 8, INT64)
    buf = ctx.alloc("buf", 8, INT64, rma_hint=True)
    ctx.win_lock_all(win)
    yield ctx.barrier()
    ctx.put(win, 0, 0, buf, 0, 8)
    yield ctx.barrier()
    ctx.win_unlock_all(win)
    yield ctx.win_free(win)


def mixed_program(ctx):
    """Exercises every event kind: locks, flush, fence, accumulate.

    Per-target locks and fences go to separate phases — the runtime
    (correctly) rejects mixing the synchronization modes mid-epoch.
    """
    win = yield ctx.win_allocate("w", 8, INT64)
    buf = ctx.alloc("buf", 8, INT64, rma_hint=True)
    if ctx.rank == 0:
        ctx.win_lock(win, 1, exclusive=True)
        ctx.get(win, 1, 0, buf, 0, 4)
        ctx.win_flush_all(win)
        ctx.win_unlock(win, 1)
        ctx.store(buf, 4, 9)
    yield ctx.barrier()
    yield ctx.win_fence(win)
    ctx.accumulate(win, 0, 0, buf, 0, 4, op="sum")
    yield ctx.win_fence(win)
    yield ctx.barrier()
    yield ctx.win_free(win)


class TestRoundtrip:
    def test_save_load_preserves_events(self, tmp_path):
        world = record(mixed_program)
        path = tmp_path / "run.trace"
        save_trace(world.trace_log, path, nranks=3)
        loaded = load_trace(path)
        assert len(loaded) == len(world.trace_log)
        assert loaded.nranks == 3
        for a, b in zip(world.trace_log.events, loaded.log.events):
            assert type(a) is type(b)
            assert a.seq == b.seq and a.rank == b.rank

    def test_access_metadata_preserved(self, tmp_path):
        world = record(mixed_program)
        path = tmp_path / "run.trace"
        save_trace(world.trace_log, path, nranks=3)
        loaded = load_trace(path)
        originals = world.trace_log.rma_events()
        replayed = loaded.log.rma_events()
        assert [e.origin_access for e in originals] == \
            [e.origin_access for e in replayed]
        assert [e.target_access for e in originals] == \
            [e.target_access for e in replayed]
        # accumulate metadata specifically
        acc = next(e for e in replayed if e.op == "accumulate")
        assert acc.target_access.accum_op == "sum"

    def test_bad_file_rejected(self, tmp_path):
        path = tmp_path / "junk"
        path.write_text('{"format": "something-else"}\n')
        with pytest.raises(ValueError):
            load_trace(path)


class TestReplay:
    @pytest.mark.parametrize(
        "factory", [OurDetector, RmaAnalyzerLegacy, MustRma, McCChecker],
        ids=lambda f: f.__name__,
    )
    def test_replay_matches_live_run(self, factory, tmp_path):
        # live run with the detector attached
        live = factory()
        world = World(3, [live], trace=True)
        world.run(racy_program)
        # offline run over the recorded trace
        path = tmp_path / "run.trace"
        save_trace(world.trace_log, path, nranks=3)
        offline = replay_trace(load_trace(path), factory())
        assert offline.reports_total == live.reports_total
        assert offline.node_stats().total_max_nodes == \
            live.node_stats().total_max_nodes

    def test_replay_with_different_detector(self, tmp_path):
        """Record once, analyze with any tool later."""
        world = record(racy_program)
        path = tmp_path / "run.trace"
        save_trace(world.trace_log, path, nranks=3)
        loaded = load_trace(path)
        verdicts = {
            f.__name__: replay_trace(loaded, f()).race_detected
            for f in (OurDetector, RmaAnalyzerLegacy, MustRma, McCChecker)
        }
        assert all(verdicts.values()), verdicts

    def test_replay_handles_all_sync_kinds(self, tmp_path):
        world = record(mixed_program)
        path = tmp_path / "run.trace"
        save_trace(world.trace_log, path, nranks=3)
        detector = replay_trace(load_trace(path), OurDetector())
        assert detector.reports_total == 0

"""Unit tests for the passive-target epoch tracker."""

import pytest

from repro.mpi import EpochError, EpochTracker


class TestTransitions:
    def test_lock_unlock_cycle(self):
        t = EpochTracker()
        t.lock_all(0, 0)
        assert t.active(0, 0)
        t.unlock_all(0, 0)
        assert not t.active(0, 0)
        assert t.epochs_completed(0, 0) == 1

    def test_double_lock_raises(self):
        t = EpochTracker()
        t.lock_all(0, 0)
        with pytest.raises(EpochError):
            t.lock_all(0, 0)

    def test_unlock_without_lock_raises(self):
        with pytest.raises(EpochError):
            EpochTracker().unlock_all(0, 0)

    def test_independent_per_rank_and_window(self):
        t = EpochTracker()
        t.lock_all(0, 0)
        t.lock_all(1, 0)
        t.lock_all(0, 1)
        t.unlock_all(1, 0)
        assert t.active(0, 0) and t.active(0, 1)
        assert not t.active(1, 0)

    def test_reopen_after_close(self):
        t = EpochTracker()
        t.lock_all(0, 0)
        t.unlock_all(0, 0)
        t.lock_all(0, 0)
        assert t.active(0, 0)


class TestOps:
    def test_note_op_requires_epoch(self):
        t = EpochTracker()
        with pytest.raises(EpochError):
            t.note_op(0, 0)

    def test_op_counter_resets_per_epoch(self):
        t = EpochTracker()
        t.lock_all(0, 0)
        t.note_op(0, 0)
        t.note_op(0, 0)
        assert t.ops_in_epoch(0, 0) == 2
        t.unlock_all(0, 0)
        t.lock_all(0, 0)
        assert t.ops_in_epoch(0, 0) == 0


class TestFlush:
    def test_flush_requires_epoch(self):
        with pytest.raises(EpochError):
            EpochTracker().flush(0, 0)

    def test_flush_generation_monotonic(self):
        t = EpochTracker()
        t.lock_all(0, 0)
        assert t.flush_gen(0, 0) == 0
        assert t.flush(0, 0) == 1
        assert t.flush(0, 0) == 2
        assert t.flush_gen(0, 0) == 2

    def test_flush_gen_survives_epoch_close(self):
        t = EpochTracker()
        t.lock_all(0, 0)
        t.flush(0, 0)
        t.unlock_all(0, 0)
        assert t.flush_gen(0, 0) == 1


class TestAssertAllClosed:
    def test_passes_when_closed(self):
        t = EpochTracker()
        t.lock_all(0, 0)
        t.unlock_all(0, 0)
        t.assert_all_closed(0, 2)

    def test_raises_when_open(self):
        t = EpochTracker()
        t.lock_all(1, 0)
        with pytest.raises(EpochError):
            t.assert_all_closed(0, 2)

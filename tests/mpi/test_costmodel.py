"""Unit tests for the cluster cost model."""

import pytest

from repro.mpi import CostParams, SimClock


class TestCharging:
    def test_charge_advances_one_rank(self):
        clock = SimClock(3)
        clock.charge(1, 500.0, "compute")
        assert clock.now == [0.0, 500.0, 0.0]
        assert clock.breakdown[1]["compute"] == 500.0

    def test_charge_rma_alpha_beta(self):
        params = CostParams(rma_latency_ns=1000.0, ns_per_byte=0.5)
        clock = SimClock(2, params)
        clock.charge_rma(0, 100)
        assert clock.now[0] == pytest.approx(1050.0)
        assert clock.breakdown[0]["comm"] == pytest.approx(1050.0)

    def test_charge_compute_scales_with_units(self):
        clock = SimClock(1, CostParams(compute_ns_per_unit=10.0))
        clock.charge_compute(0, 7)
        assert clock.now[0] == pytest.approx(70.0)

    def test_charge_analysis_scaled(self):
        clock = SimClock(1, CostParams(analysis_scale=0.01))
        clock.charge_analysis(0, 1.0)  # one measured second
        assert clock.now[0] == pytest.approx(1e7)  # 10 ms simulated


class TestSynchronize:
    def test_barrier_advances_to_max(self):
        clock = SimClock(3)
        clock.charge(0, 100.0, "compute")
        clock.charge(2, 900.0, "compute")
        clock.synchronize([0, 1, 2])
        assert clock.now[0] == clock.now[1] == clock.now[2]
        assert clock.now[0] > 900.0
        # the straggler wait is booked as sync time
        assert clock.breakdown[0]["sync"] > clock.breakdown[2]["sync"]

    def test_empty_barrier_noop(self):
        clock = SimClock(2)
        clock.synchronize([])
        assert clock.elapsed() == 0.0


class TestReporting:
    def test_elapsed_is_makespan(self):
        clock = SimClock(2)
        clock.charge(0, 4e6, "compute")
        clock.charge(1, 9e6, "compute")
        assert clock.elapsed() == pytest.approx(9e6)
        assert clock.elapsed_ms() == pytest.approx(9.0)

    def test_total_by_category(self):
        clock = SimClock(2)
        clock.charge(0, 100.0, "comm")
        clock.charge(1, 200.0, "comm")
        assert clock.total("comm") == pytest.approx(300.0)
        assert clock.total("compute") == 0.0

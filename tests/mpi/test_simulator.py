"""Unit tests for the simulated MPI-RMA world and its scheduler."""

import numpy as np
import pytest

from repro.intervals import AccessType
from repro.mpi import (
    BYTE,
    CollectiveMismatchError,
    DeadlockError,
    EpochError,
    INT64,
    OutOfWindowError,
    RmaUsageError,
    World,
    run_spmd,
)
from repro.mpi.trace import LocalEvent, RmaEvent, SyncEvent


class TestScheduling:
    def test_all_ranks_run_to_completion(self):
        done = []

        def program(ctx):
            done.append(ctx.rank)
            return
            yield  # pragma: no cover

        World(4).run(program)
        assert sorted(done) == [0, 1, 2, 3]

    def test_plain_yield_interleaves_in_rank_order(self):
        log = []

        def program(ctx):
            log.append((0, ctx.rank))
            yield
            log.append((1, ctx.rank))

        World(3).run(program)
        assert log == [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]

    def test_barrier_releases_all(self):
        log = []

        def program(ctx):
            log.append(("pre", ctx.rank))
            yield ctx.barrier()
            log.append(("post", ctx.rank))

        World(2).run(program)
        assert log.index(("post", 0)) > log.index(("pre", 1))

    def test_mismatched_collectives_raise(self):
        def program(ctx):
            if ctx.rank == 0:
                yield ctx.barrier()
            else:
                yield ctx.win_allocate("w", 8)

        with pytest.raises(CollectiveMismatchError):
            World(2).run(program)

    def test_missing_rank_deadlocks(self):
        def program(ctx):
            if ctx.rank == 0:
                yield ctx.barrier()

        with pytest.raises(DeadlockError):
            World(2).run(program)

    def test_bad_yield_value_rejected(self):
        def program(ctx):
            yield 42

        with pytest.raises(Exception):
            World(1).run(program)

    def test_allreduce(self):
        results = {}

        def program(ctx):
            results[ctx.rank] = (yield ctx.allreduce(float(ctx.rank + 1), "sum"))

        World(3).run(program)
        assert results == {0: 6.0, 1: 6.0, 2: 6.0}

    def test_allreduce_max_min(self):
        results = {}

        def program(ctx):
            hi = yield ctx.allreduce(float(ctx.rank), "max")
            lo = yield ctx.allreduce(float(ctx.rank), "min")
            results[ctx.rank] = (lo, hi)

        World(4).run(program)
        assert results[2] == (0.0, 3.0)

    def test_run_generators_mpmd(self):
        log = []

        def prog_a(ctx):
            log.append("a")
            yield ctx.barrier()

        def prog_b(ctx):
            log.append("b")
            yield ctx.barrier()

        world = World(2)
        from repro.mpi.simulator import RankContext

        world.run_generators(
            [prog_a(RankContext(world, 0)), prog_b(RankContext(world, 1))]
        )
        assert sorted(log) == ["a", "b"]


class TestWindows:
    def test_win_allocate_data_movement(self):
        def program(ctx):
            win = yield ctx.win_allocate("w", 16, INT64)
            buf = ctx.alloc("buf", 16, INT64)
            ctx.win_lock_all(win)
            if ctx.rank == 0:
                buf.np[:4] = [10, 20, 30, 40]
                ctx.put(win, 1, 2, buf, 0, 4)
            yield
            if ctx.rank == 1:
                got = ctx.alloc("got", 4, INT64)
                ctx.get(win, 1, 2, got, 0, 4)
                assert list(got.np) == [10, 20, 30, 40]
            ctx.win_unlock_all(win)
            yield ctx.win_free(win)

        World(2).run(program)

    def test_win_create_exposes_existing_stack_buffer(self):
        def program(ctx):
            backing = ctx.stack_alloc("mem", 32)
            win = yield ctx.win_create("w", backing)
            ctx.win_lock_all(win)
            if ctx.rank == 0:
                src = ctx.alloc("src", 4)
                src.np[:] = 7
                ctx.put(win, 1, 0, src, 0, 4)
            yield
            if ctx.rank == 1:
                assert np.all(backing.np[:4] == 7)
            ctx.win_unlock_all(win)
            yield ctx.win_free(win)

        World(2).run(program)

    def test_win_create_keeps_region_kind(self):
        kinds = {}

        def program(ctx):
            backing = ctx.stack_alloc("mem", 32)
            win = yield ctx.win_create("w", backing)
            kinds[ctx.rank] = win.region_of(ctx.rank).kind.value
            yield ctx.win_free(win)

        World(2).run(program)
        assert kinds == {0: "stack", 1: "stack"}

    def test_out_of_window_access_rejected(self):
        def program(ctx):
            win = yield ctx.win_allocate("w", 8)
            buf = ctx.alloc("buf", 16)
            ctx.win_lock_all(win)
            ctx.put(win, (ctx.rank + 1) % 2, 6, buf, 0, 8)  # 6+8 > 8
            ctx.win_unlock_all(win)
            yield ctx.win_free(win)

        with pytest.raises(OutOfWindowError):
            World(2).run(program)

    def test_dtype_mismatch_rejected(self):
        def program(ctx):
            win = yield ctx.win_allocate("w", 8, INT64)
            buf = ctx.alloc("buf", 8, BYTE)
            ctx.win_lock_all(win)
            ctx.put(win, 0, 0, buf, 0, 1)
            ctx.win_unlock_all(win)
            yield ctx.win_free(win)

        with pytest.raises(RmaUsageError):
            World(1).run(program)

    def test_invalid_target_rejected(self):
        def program(ctx):
            win = yield ctx.win_allocate("w", 8)
            buf = ctx.alloc("buf", 8)
            ctx.win_lock_all(win)
            ctx.put(win, 5, 0, buf, 0, 4)
            ctx.win_unlock_all(win)
            yield ctx.win_free(win)

        with pytest.raises(RmaUsageError):
            World(2).run(program)


class TestEpochRules:
    def test_rma_outside_epoch_rejected(self):
        def program(ctx):
            win = yield ctx.win_allocate("w", 8)
            buf = ctx.alloc("buf", 8)
            ctx.put(win, 0, 0, buf, 0, 4)  # no lock_all
            yield ctx.win_free(win)

        with pytest.raises(EpochError):
            World(1).run(program)

    def test_double_lock_rejected(self):
        def program(ctx):
            win = yield ctx.win_allocate("w", 8)
            ctx.win_lock_all(win)
            ctx.win_lock_all(win)
            yield ctx.win_free(win)

        with pytest.raises(EpochError):
            World(1).run(program)

    def test_unlock_without_lock_rejected(self):
        def program(ctx):
            win = yield ctx.win_allocate("w", 8)
            ctx.win_unlock_all(win)
            yield ctx.win_free(win)

        with pytest.raises(EpochError):
            World(1).run(program)

    def test_flush_outside_epoch_rejected(self):
        def program(ctx):
            win = yield ctx.win_allocate("w", 8)
            ctx.win_flush_all(win)
            yield ctx.win_free(win)

        with pytest.raises(EpochError):
            World(1).run(program)

    def test_free_with_open_epoch_rejected(self):
        def program(ctx):
            win = yield ctx.win_allocate("w", 8)
            ctx.win_lock_all(win)
            yield ctx.win_free(win)

        with pytest.raises(EpochError):
            World(1).run(program)

    def test_use_after_free_rejected(self):
        def program(ctx):
            win = yield ctx.win_allocate("w", 8)
            yield ctx.win_free(win)
            buf = ctx.alloc("buf", 8)
            ctx.win_lock_all(win)

        with pytest.raises(RmaUsageError):
            World(1).run(program)


class TestInstrumentedAccesses:
    def test_load_store_roundtrip(self):
        def program(ctx):
            buf = ctx.alloc("buf", 8, INT64)
            ctx.store(buf, 3, 77)
            assert int(ctx.load(buf, 3)) == 77
            vals = ctx.load(buf, 0, 4)
            assert list(vals) == [0, 0, 0, 77]
            return
            yield  # pragma: no cover

        World(1).run(program)

    def test_trace_records_events(self):
        def program(ctx):
            win = yield ctx.win_allocate("w", 8)
            buf = ctx.alloc("buf", 8, rma_hint=True)
            ctx.win_lock_all(win)
            ctx.store(buf, 0, 1)
            ctx.put(win, 0, 0, buf, 0, 4)
            ctx.win_unlock_all(win)
            yield ctx.win_free(win)

        world = World(1, trace=True)
        world.run(program)
        events = world.trace_log.events
        assert any(isinstance(e, LocalEvent) for e in events)
        assert any(isinstance(e, RmaEvent) for e in events)
        assert any(isinstance(e, SyncEvent) for e in events)
        rma = next(e for e in events if isinstance(e, RmaEvent))
        assert rma.op == "put"
        assert rma.origin_access.type == AccessType.RMA_READ
        assert rma.target_access.type == AccessType.RMA_WRITE

    def test_debug_info_auto_captured(self):
        captured = {}

        def program(ctx):
            win = yield ctx.win_allocate("w", 8)
            buf = ctx.alloc("buf", 8, rma_hint=True)
            ctx.win_lock_all(win)
            ctx.put(win, 0, 0, buf, 0, 4)
            ctx.win_unlock_all(win)
            yield ctx.win_free(win)

        world = World(1, trace=True)
        world.run(program)
        rma = world.trace_log.rma_events()[0]
        assert rma.origin_access.debug.filename.endswith("test_simulator.py")
        assert rma.origin_access.debug.line > 0

    def test_run_spmd_helper(self):
        def program(ctx, value):
            assert value == 42
            return
            yield  # pragma: no cover

        world = run_spmd(program, 3, (), 42)
        assert world.nranks == 3

"""Property-based state-machine test for the epoch tracker."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import EpochError, EpochTracker

ACTIONS = st.lists(
    st.tuples(
        st.sampled_from(
            ["lock_all", "unlock_all", "fence", "flush", "lock", "unlock",
             "note_op"]
        ),
        st.integers(0, 2),  # target for lock/unlock
        st.booleans(),  # exclusive flag
    ),
    max_size=40,
)


class _Model:
    """Reference model: explicit mode + lock set."""

    def __init__(self):
        self.mode = None  # None | "lock" | "fence"
        self.targets = {}

    def apply(self, action, target, exclusive):
        if action == "lock_all":
            if self.mode is not None:
                return "error"
            self.mode = "lock"
        elif action == "unlock_all":
            if self.mode != "lock":
                return "error"
            self.mode = None
        elif action == "fence":
            if self.mode == "lock" or self.targets:
                return "error"
            self.mode = "fence"
        elif action == "flush":
            if self.mode is None and not self.targets:
                return "error"
        elif action == "lock":
            if self.mode == "fence" or self.mode == "lock":
                return "error"
            if target in self.targets:
                return "error"
            self.targets[target] = exclusive
        elif action == "unlock":
            if target not in self.targets:
                return "error"
            del self.targets[target]
        elif action == "note_op":
            if self.mode is None and not self.targets:
                return "error"
        return "ok"


@given(ACTIONS)
@settings(max_examples=200, deadline=None)
def test_epoch_tracker_matches_reference_model(actions):
    tracker = EpochTracker()
    model = _Model()
    for action, target, exclusive in actions:
        expected = model.apply(action, target, exclusive)
        try:
            if action == "lock_all":
                tracker.lock_all(0, 0)
            elif action == "unlock_all":
                tracker.unlock_all(0, 0)
            elif action == "fence":
                tracker.fence(0, 0)
            elif action == "flush":
                tracker.flush(0, 0)
            elif action == "lock":
                tracker.lock(0, 0, target, exclusive)
            elif action == "unlock":
                tracker.unlock(0, 0, target)
            elif action == "note_op":
                tracker.note_op(0, 0)
            got = "ok"
        except EpochError:
            got = "error"
        assert got == expected, (action, target, actions)


@given(ACTIONS)
@settings(max_examples=100, deadline=None)
def test_flush_generation_never_decreases(actions):
    tracker = EpochTracker()
    last = 0
    for action, target, exclusive in actions:
        try:
            if action == "lock_all":
                tracker.lock_all(0, 0)
            elif action == "unlock_all":
                tracker.unlock_all(0, 0)
            elif action == "fence":
                tracker.fence(0, 0)
            elif action == "flush":
                tracker.flush(0, 0)
            elif action == "lock":
                tracker.lock(0, 0, target, exclusive)
            elif action == "unlock":
                tracker.unlock(0, 0, target)
            elif action == "note_op":
                tracker.note_op(0, 0)
        except EpochError:
            pass
        gen = tracker.flush_gen(0, 0)
        assert gen >= last
        last = gen

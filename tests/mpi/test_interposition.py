"""Unit tests for the PMPI-style interposition layer."""

import pytest

from repro.core import OurDetector
from repro.detectors import MustRma, RmaAnalyzerLegacy
from repro.mpi import CostParams, INT64, World


def put_program(ctx, nputs=4):
    win = yield ctx.win_allocate("w", 32, INT64)
    buf = ctx.alloc("buf", 32, INT64, rma_hint=True)
    ctx.win_lock_all(win)
    yield ctx.barrier()
    if ctx.rank == 0:
        for i in range(nputs):
            ctx.put(win, 1, i, buf, i, 1)
    yield ctx.barrier()
    ctx.win_unlock_all(win)
    yield ctx.win_free(win)


class TestAnalysisAccounting:
    def test_wall_time_recorded_per_detector(self):
        det = OurDetector()
        world = World(2, [det])
        world.run(put_program)
        assert world.analysis_wall(det.name) > 0

    def test_no_detector_no_analysis_charge(self):
        world = World(2, [])
        world.run(put_program)
        assert world.clock.total("analysis") == 0.0

    def test_work_based_charge_is_deterministic(self):
        def run():
            det = OurDetector()
            world = World(2, [det])
            world.run(put_program)
            return world.clock.total("analysis")

        assert run() == run()

    def test_work_units_accumulate(self):
        det = OurDetector()
        World(2, [det]).run(put_program)
        assert det.analysis_work() > 0

    def test_more_events_more_simulated_analysis(self):
        def run(nputs):
            det = OurDetector()
            world = World(2, [det])
            world.run(put_program, nputs)
            return world.clock.total("analysis")

        assert run(16) > run(2)


class TestNotificationCosts:
    def test_bst_tools_pay_per_op_notify(self):
        def comm_total(det):
            world = World(2, [det] if det else [])
            world.run(put_program)
            return world.clock.total("comm")

        base = comm_total(None)
        with_tool = comm_total(RmaAnalyzerLegacy())
        assert with_tool > base  # the per-op MPI_Send

    def test_must_rma_pays_at_syncs_instead(self):
        must = MustRma()
        assert must.rma_notify_bytes == 0
        assert must.sync_notify_bytes(64) > 0

    def test_vc_sync_cost_scales_with_ranks(self):
        """Isolate the tool's own traffic: MUST-RMA run minus baseline."""

        def tool_comm_delta_per_rank(nranks):
            base = World(nranks, [])
            base.run(put_program)
            tool = World(nranks, [MustRma()])
            tool.run(put_program)
            return (tool.clock.total("comm") - base.clock.total("comm")) / nranks

        assert tool_comm_delta_per_rank(8) > tool_comm_delta_per_rank(2)


class TestEventCounts:
    def test_events_seen_counts_accesses(self):
        det = OurDetector()
        world = World(2, [det])
        world.run(put_program, 5)
        # 5 puts (each one event) — local loads/stores none here
        assert world.interposition.events_seen == 5

    def test_multiple_detectors_share_the_stream(self):
        a, b = OurDetector(), RmaAnalyzerLegacy()
        world = World(2, [a, b])
        world.run(put_program)
        assert a.node_stats().accesses_processed == \
            b.node_stats().accesses_processed

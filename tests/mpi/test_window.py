"""Unit tests for windows and datatypes."""

import numpy as np
import pytest

from repro.intervals import Interval
from repro.mpi import (
    BYTE,
    FLOAT64,
    GRAPH_TYPE,
    INT32,
    INT64,
    AddressSpace,
    OutOfWindowError,
    RegionKind,
    RmaUsageError,
    Window,
)


def make_window(nranks=2, size=64, dtype=BYTE):
    regions = [
        AddressSpace(r).alloc("win", size, RegionKind.WINDOW)
        for r in range(nranks)
    ]
    return Window(0, "w", regions, dtype)


class TestDatatypes:
    def test_extents(self):
        assert BYTE.extent == 1
        assert INT32.extent == 4
        assert INT64.extent == 8
        assert FLOAT64.extent == 8
        assert GRAPH_TYPE.extent == 16  # the MiniVite pair type

    def test_count_bytes(self):
        assert INT64.count_bytes(4) == 32
        with pytest.raises(ValueError):
            INT64.count_bytes(-1)

    def test_str(self):
        assert str(INT32) == "MPI_INT"


class TestWindow:
    def test_target_interval(self):
        win = make_window(dtype=INT64, size=64)
        iv = win.target_interval(1, 2, 3)
        base = win.regions[1].base
        assert iv == Interval(base + 16, base + 40)

    def test_target_interval_bounds(self):
        win = make_window(dtype=INT64, size=64)
        with pytest.raises(OutOfWindowError):
            win.target_interval(0, 7, 2)  # 7*8 + 16 > 64
        with pytest.raises(OutOfWindowError):
            win.target_interval(0, -1, 1)
        with pytest.raises(OutOfWindowError):
            win.target_interval(0, 0, 0)

    def test_bad_rank(self):
        win = make_window(nranks=2)
        with pytest.raises(RmaUsageError):
            win.region_of(5)

    def test_memory_view_typed(self):
        win = make_window(dtype=FLOAT64, size=64)
        mem = win.memory(0)
        assert mem.dtype == np.float64
        assert len(mem) == 8

    def test_size_elems(self):
        win = make_window(dtype=INT64, size=64)
        assert win.size_elems(0) == 8

    def test_freed_window_rejects_access(self):
        win = make_window()
        win.freed = True
        with pytest.raises(RmaUsageError):
            win.target_interval(0, 0, 1)

"""Forensics surfaces end to end: explain, --trace-out, --report-html,
and serial-vs-sharded determinism of the captured bundles."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.cli import main
from repro.obs.chrometrace import validate_chrome_trace
from repro.pipeline import analyze_trace

GOLDEN_FIG9B = (
    "Error when inserting memory access of type RMA_WRITE from file "
    "./dspl.hpp:614 with already inserted interval of type RMA_WRITE "
    "from file ./dspl.hpp:612. "
    "The program will be exiting now with MPI_Abort."
)


@pytest.fixture(autouse=True)
def _fresh_registry(monkeypatch):
    monkeypatch.delenv("REPRO_OBS", raising=False)
    monkeypatch.delenv("REPRO_OBS_TIMELINE", raising=False)
    prev = obs.active()
    obs.reset(enabled=True)
    yield
    obs.set_registry(prev)


# -- determinism across the sharded pipeline ---------------------------------


def test_forensics_and_timeline_identical_serial_vs_sharded(minivite_trace):
    obs.reset(enabled=True)
    serial = analyze_trace(minivite_trace, detector="our", jobs=1)
    obs.reset(enabled=True)
    sharded = analyze_trace(minivite_trace, detector="our", jobs=4)

    assert serial.forensics, "the racy trace must produce forensics"
    assert json.dumps(serial.forensics, sort_keys=True) == json.dumps(
        sharded.forensics, sort_keys=True)
    assert json.dumps(serial.timeline, sort_keys=True) == json.dumps(
        sharded.timeline, sort_keys=True)
    # one bundle per verdict, in the same canonical order
    assert len(serial.forensics) == len(serial.verdicts)
    for bundle, verdict in zip(serial.forensics, serial.verdicts):
        assert bundle["rank"] == verdict["rank"]
        assert bundle["new"]["line"] == verdict["new"]["line"]


def test_forensics_bundles_carry_the_race_context(minivite_trace):
    result = analyze_trace(minivite_trace, detector="our", jobs=1)
    bundle = result.forensics[0]
    assert bundle["schema"] == "repro-forensics-v1"
    assert bundle["phase"] == "data_race_detection"
    assert bundle["sync"].get("open_epochs")
    views = bundle["timeline"]["views"]
    assert views, "surrounding timeline views must be captured"
    flat = [e for view in views.values() for e in view]
    assert any(e["kind"] in ("lock_all", "fence") for e in flat), (
        "the enclosing epoch must appear in the context")


def test_obs_off_disables_forensics_and_timeline(minivite_trace,
                                                 monkeypatch):
    monkeypatch.setenv("REPRO_OBS", "off")
    obs.reset()
    result = analyze_trace(minivite_trace, detector="our", jobs=1)
    assert result.verdicts, "detection itself must still work"
    assert result.forensics == []
    assert result.timeline is None and result.obs is None


def test_timeline_off_keeps_metrics_but_no_forensics(minivite_trace,
                                                     monkeypatch):
    monkeypatch.setenv("REPRO_OBS_TIMELINE", "off")
    obs.reset(enabled=True)
    result = analyze_trace(minivite_trace, detector="our", jobs=1)
    assert result.verdicts and result.obs is not None
    assert result.timeline is None
    # bundles are still captured (metrics are on) but hold no events
    for bundle in result.forensics:
        views = bundle.get("timeline", {}).get("views", {})
        assert all(view == [] for view in views.values())


# -- CLI surfaces ------------------------------------------------------------


def test_explain_prints_the_fig9b_diagnostic(minivite_trace, capsys):
    assert main(["explain", str(minivite_trace)]) == 0
    out = capsys.readouterr().out
    assert GOLDEN_FIG9B in out
    assert "./dspl.hpp:612" in out and "./dspl.hpp:614" in out
    assert "timeline of rank" in out
    assert "racing access" in out


def test_explain_sharded_matches_serial(minivite_trace, capsys):
    assert main(["explain", str(minivite_trace)]) == 0
    serial_out = capsys.readouterr().out
    assert main(["explain", str(minivite_trace), "--jobs", "4"]) == 0
    sharded_out = capsys.readouterr().out
    assert serial_out == sharded_out


def test_explain_on_race_free_trace(tmp_path, capsys):
    trace = tmp_path / "hist.trace"
    main(["record", "histogram", "--size", "64", "-o", str(trace)])
    capsys.readouterr()
    assert main(["explain", str(trace)]) == 0
    assert "no races" in capsys.readouterr().out


def test_analyze_trace_out_is_valid_and_names_the_race(minivite_trace,
                                                       tmp_path, capsys):
    out = tmp_path / "mv.chrome.json"
    assert main(["analyze", str(minivite_trace),
                 "--trace-out", str(out)]) == 0
    events = json.loads(out.read_text())
    assert validate_chrome_trace(events) == []
    races = [e for e in events if e.get("cat") == "race"]
    assert races and any("./dspl.hpp:614" in e["name"]
                         and "./dspl.hpp:612" in e["name"] for e in races)


def test_analyze_report_html_is_self_contained(minivite_trace, tmp_path,
                                               capsys):
    out = tmp_path / "mv.html"
    assert main(["analyze", str(minivite_trace),
                 "--report-html", str(out)]) == 0
    html = out.read_text()
    assert html.lstrip().lower().startswith("<!doctype html")
    assert "race" in html and "svg" in html
    assert 'class="acc race"' in html or "race" in html
    # self-contained: no external scripts, styles, or images
    assert "<script src" not in html and "<link" not in html
    assert "<img" not in html

"""Shared fixtures: recorded app traces (expensive — session-scoped)."""

import pytest

from repro.pipeline import record_app


@pytest.fixture(scope="session")
def minivite_trace(tmp_path_factory):
    """A racy miniVite run, recorded in the v2 binary format."""
    path = tmp_path_factory.mktemp("traces") / "mv.trace"
    record_app("minivite", nranks=4, size=256, inject_race=True,
               out=path, format="binary")
    return path


@pytest.fixture(scope="session")
def cfd_trace(tmp_path_factory):
    """A CFD-Proxy run, recorded in the v1 JSON-lines format."""
    path = tmp_path_factory.mktemp("traces") / "cfd.trace"
    record_app("cfd", nranks=4, size=4, out=path, format="json")
    return path

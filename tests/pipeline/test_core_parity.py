"""Differential A/B harness: flat-array core vs legacy object core.

The flat core (``src/repro/core/flatcore.py``) re-implements the paper's
§4 detector over struct-of-arrays storage and a fused binary wire path.
Its contract is *byte identity* with the object core it replaced:

* canonical verdicts and forensics bundles — same JSON dumps,
* node statistics — the Table-4 quantities (peak nodes, processed
  accesses) match exactly, pinned against the recorded workloads,
* the full obs registry snapshot (counters, bst.* tree statistics)
  matches once volatile wall-clock/RSS keys are zeroed,
* the seed-7 scenario corpus produces identical verdicts per scenario.

Anything short of byte identity is a correctness bug in the flat core,
not a tolerable drift: the object core stays behind ``REPRO_CORE=object``
precisely so this harness can keep arbitrating.
"""

import json

import pytest

from repro import obs
from repro.core import FlatDetector, OurDetector
from repro.pipeline import analyze_trace
from repro.pipeline.engine import canonical_forensics, canonical_verdicts
from repro.scenarios import generate_corpus
from repro.scenarios.build import run_scenario

#: Table-4 pins for the recorded fixtures (minivite 4x256 +race, cfd 4x4):
#: (events_total, races, peak_nodes, accesses_processed)
PINNED = {
    "minivite": (2333, 12, 196, 807),
    "cfd": (4414, 0, 8, 1024),
}

#: registry-snapshot keys that legitimately differ run to run
_VOLATILE = ("ns", "seconds", "time", "wall", "rss")


def _normalize(d):
    out = {}
    for k, v in d.items():
        if isinstance(v, dict):
            out[k] = _normalize(v)
        elif any(t in k for t in _VOLATILE):
            out[k] = 0
        else:
            out[k] = v
    return out


def _analyze(path, core, monkeypatch, **kwargs):
    monkeypatch.setenv("REPRO_CORE", core)
    res = analyze_trace(path, **kwargs)
    monkeypatch.delenv("REPRO_CORE")
    return res


def _result_key(res):
    """Everything observable about a pipeline run, as one JSON string."""
    return json.dumps({
        "verdicts": res.verdicts,
        "forensics": res.forensics,
        "events": res.events_total,
        "shards": [(s.shard, s.events, s.races, s.peak_nodes, s.processed)
                   for s in res.shard_stats],
    }, sort_keys=True, default=str)


@pytest.fixture(params=["minivite", "cfd"])
def workload(request, minivite_trace, cfd_trace):
    path = {"minivite": minivite_trace, "cfd": cfd_trace}[request.param]
    return request.param, path


class TestRecordedWorkloads:
    def test_serial_byte_identical(self, workload, monkeypatch):
        name, path = workload
        obj = _analyze(path, "object", monkeypatch, jobs=1)
        flat = _analyze(path, "flat", monkeypatch, jobs=1)
        assert _result_key(flat) == _result_key(obj)

    def test_table4_pins(self, workload, monkeypatch):
        """The flat core reproduces the exact pinned Table-4 numbers."""
        name, path = workload
        events, races, peak, processed = PINNED[name]
        res = _analyze(path, "flat", monkeypatch, jobs=1)
        shard = res.shard_stats[0]
        assert res.events_total == events
        assert shard.races == races
        assert shard.peak_nodes == peak
        assert shard.processed == processed

    def test_sharded_byte_identical(self, workload, monkeypatch):
        name, path = workload
        obj = _analyze(path, "object", monkeypatch, jobs=2)
        flat = _analyze(path, "flat", monkeypatch, jobs=2)
        assert json.dumps(flat.verdicts, sort_keys=True, default=str) == \
            json.dumps(obj.verdicts, sort_keys=True, default=str)
        assert json.dumps(flat.forensics, sort_keys=True, default=str) == \
            json.dumps(obj.forensics, sort_keys=True, default=str)

    def test_obs_snapshot_identical(self, workload, monkeypatch):
        """Full registry snapshots match: every ``bst.*`` tree counter
        (comparisons, rotations, queries, fanout histogram) and every
        detector counter is reproduced by the flat core exactly."""
        name, path = workload
        monkeypatch.delenv("REPRO_OBS", raising=False)
        snaps = {}
        for core in ("object", "flat"):
            with obs.scope() as reg:
                _analyze(path, core, monkeypatch, jobs=1)
                snaps[core] = json.dumps(_normalize(reg.snapshot()),
                                         sort_keys=True, default=str)
        assert snaps["flat"] == snaps["object"]


class TestScenarioCorpus:
    """Seed-7 corpus: 60 scenarios through both cores, live (no trace)."""

    @pytest.fixture(scope="class")
    def corpus(self):
        return generate_corpus(7, 60)

    @staticmethod
    def _run(sc, det_cls):
        # fresh registry per run: forensics embed timeline views, which
        # would otherwise leak across the two detector executions
        with obs.scope():
            det = det_cls()
            run_scenario(sc, det)
            det.finalize()
            key = json.dumps({
                "verdicts": canonical_verdicts(det.reports),
                "forensics": canonical_forensics(det.reports),
            }, sort_keys=True, default=str)
            return key, det.node_stats()

    def test_corpus_byte_identical(self, corpus):
        mismatches = []
        for sc in corpus:
            key_o, ns_o = self._run(sc, OurDetector)
            key_f, ns_f = self._run(sc, FlatDetector)
            if key_o != key_f:
                mismatches.append(sc.name)
            if ns_o != ns_f:
                mismatches.append(f"{sc.name} (node stats)")
        assert not mismatches, f"core divergence on: {mismatches}"

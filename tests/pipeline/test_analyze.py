"""Parity and metrics tests for the sharded analysis engine.

The load-bearing property: ``analyze_trace(..., jobs=4)`` must report
byte-identical verdicts to a single-threaded ``replay_trace`` over the
same trace, for every detector.
"""

import json

import pytest

from repro.mpi import load_trace, replay_trace
from repro.pipeline import DETECTOR_SPECS, analyze_trace, canonical_verdicts


def _serial_verdicts(trace_path, detector):
    det = replay_trace(load_trace(trace_path), DETECTOR_SPECS[detector]())
    return json.dumps(canonical_verdicts(det.reports), sort_keys=True)


def _pipeline_verdicts(result):
    return json.dumps(result.verdicts, sort_keys=True)


class TestVerdictParity:
    @pytest.mark.parametrize("detector", sorted(DETECTOR_SPECS))
    def test_minivite_jobs4_matches_serial(self, minivite_trace, detector):
        result = analyze_trace(minivite_trace, detector=detector, jobs=4)
        assert result.jobs == 4
        assert _pipeline_verdicts(result) == \
            _serial_verdicts(minivite_trace, detector)

    @pytest.mark.parametrize("detector", ["our", "rma"])
    def test_cfd_jobs4_matches_serial(self, cfd_trace, detector):
        result = analyze_trace(cfd_trace, detector=detector, jobs=4)
        assert _pipeline_verdicts(result) == \
            _serial_verdicts(cfd_trace, detector)

    def test_injected_race_is_found(self, minivite_trace):
        result = analyze_trace(minivite_trace, detector="our", jobs=4)
        assert result.races > 0

    def test_jobs1_equals_jobs4(self, minivite_trace):
        one = analyze_trace(minivite_trace, detector="our", jobs=1)
        four = analyze_trace(minivite_trace, detector="our", jobs=4)
        assert _pipeline_verdicts(one) == _pipeline_verdicts(four)

    def test_file_dispatch_equals_queue_dispatch(self, minivite_trace):
        queue = analyze_trace(minivite_trace, detector="our", jobs=2,
                              dispatch="queue")
        file = analyze_trace(minivite_trace, detector="our", jobs=2,
                             dispatch="file")
        assert _pipeline_verdicts(queue) == _pipeline_verdicts(file)
        assert queue.events_total == file.events_total

    def test_odd_job_counts(self, minivite_trace):
        baseline = _serial_verdicts(minivite_trace, "our")
        for jobs in (2, 3):
            result = analyze_trace(minivite_trace, detector="our", jobs=jobs)
            assert _pipeline_verdicts(result) == baseline, jobs

    def test_tiny_batches(self, minivite_trace):
        result = analyze_trace(minivite_trace, detector="our", jobs=4,
                               batch_size=7)
        assert _pipeline_verdicts(result) == \
            _serial_verdicts(minivite_trace, "our")


class TestMetrics:
    def test_shard_stats_cover_all_ranks(self, minivite_trace):
        result = analyze_trace(minivite_trace, detector="our", jobs=4)
        assert [s.shard for s in result.shard_stats] == [0, 1, 2, 3]
        assert all(s.events > 0 for s in result.shard_stats)
        assert all(s.peak_nodes > 0 for s in result.shard_stats)
        assert sum(s.races for s in result.shard_stats) >= result.races

    def test_throughput_metrics(self, minivite_trace):
        result = analyze_trace(minivite_trace, detector="our", jobs=2)
        assert result.wall_seconds > 0
        assert result.events_per_sec > 0
        assert result.events_total == len(load_trace(minivite_trace).log)

    def test_queue_peaks_bounded(self, minivite_trace):
        result = analyze_trace(minivite_trace, detector="our", jobs=4,
                               queue_depth=8)
        assert len(result.queue_peak) == 4
        assert all(0 <= p <= 9 for p in result.queue_peak)

    def test_to_dict_is_json_serializable(self, minivite_trace):
        result = analyze_trace(minivite_trace, detector="our", jobs=2)
        d = json.loads(json.dumps(result.to_dict()))
        assert d["races"] == result.races
        assert d["jobs"] == 2
        assert len(d["shards"]) == 4


class TestInputHandling:
    def test_loaded_trace_source(self, minivite_trace):
        loaded = load_trace(minivite_trace)
        result = analyze_trace(loaded, detector="our", jobs=1)
        assert result.dispatch == "serial"
        assert _pipeline_verdicts(result) == \
            _serial_verdicts(minivite_trace, "our")

    def test_jobs_clamped_to_nranks(self, minivite_trace):
        result = analyze_trace(minivite_trace, detector="our", jobs=64)
        assert result.jobs == 4

    def test_unknown_detector_rejected(self, minivite_trace):
        with pytest.raises(ValueError, match="unknown detector"):
            analyze_trace(minivite_trace, detector="tsan")

    def test_unknown_dispatch_rejected(self, minivite_trace):
        with pytest.raises(ValueError, match="dispatch"):
            analyze_trace(minivite_trace, dispatch="sorted")

    def test_bad_batch_size_rejected(self, minivite_trace):
        with pytest.raises(ValueError, match="batch_size"):
            analyze_trace(minivite_trace, batch_size=0)

    def test_file_dispatch_needs_path(self, minivite_trace):
        loaded = load_trace(minivite_trace)
        with pytest.raises(ValueError, match="path"):
            analyze_trace(loaded, jobs=2, dispatch="file")

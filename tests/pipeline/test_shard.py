"""Event routing and dispatch-mapping invariants of repro.pipeline.shard."""

from repro.core.report import RaceReport
from repro.intervals import AccessType, DebugInfo, Interval, MemoryAccess
from repro.mpi.memory import RegionInfo, RegionKind
from repro.mpi.trace import LocalEvent, RmaEvent, SyncEvent, SyncKind
from repro.pipeline import TraceReader, dispatch_event, own_reports, shards_of

NRANKS = 4
REGION = RegionInfo(RegionKind.WINDOW, True)


def _access(type=AccessType.LOCAL_WRITE, origin=0):
    return MemoryAccess(Interval(0, 8), type, DebugInfo("f.c", 1),
                        origin, 0, 0)


def _local(rank):
    return LocalEvent(1, rank, _access(), REGION)


def _rma(origin, target):
    return RmaEvent(1, origin, "put", target, 0,
                    _access(AccessType.RMA_READ, origin),
                    _access(AccessType.RMA_WRITE, origin),
                    REGION, REGION, 8)


class TestShardsOf:
    def test_local_goes_to_own_rank(self):
        for rank in range(NRANKS):
            assert shards_of(_local(rank), NRANKS) == (rank,)

    def test_rma_goes_to_origin_and_target(self):
        assert shards_of(_rma(0, 3), NRANKS) == (0, 3)

    def test_self_targeted_rma_not_duplicated(self):
        assert shards_of(_rma(2, 2), NRANKS) == (2,)

    def test_sync_replicated_to_every_shard(self):
        for kind in SyncKind:
            event = SyncEvent(1, -1, kind, wid=0)
            assert shards_of(event, NRANKS) == tuple(range(NRANKS))

    def test_every_recorded_event_is_routed(self, minivite_trace):
        reader = TraceReader(minivite_trace)
        for event in reader:
            shards = shards_of(event, reader.nranks)
            assert shards, event
            assert all(0 <= s < reader.nranks for s in shards)
            assert len(set(shards)) == len(shards)


class _Recorder:
    """Fake detector that logs which hook each event landed on."""

    def __init__(self):
        self.calls = []

    def __getattr__(self, name):
        if not name.startswith("on_"):
            raise AttributeError(name)

        def hook(*args):
            self.calls.append((name, args))

        return hook


class TestDispatchEvent:
    def test_local_event(self):
        det = _Recorder()
        event = _local(2)
        dispatch_event(det, event, NRANKS)
        assert det.calls == [("on_local", (2, event.access, event.region))]

    def test_rma_event(self):
        det = _Recorder()
        event = _rma(1, 3)
        dispatch_event(det, event, NRANKS)
        (name, args), = det.calls
        assert name == "on_rma"
        assert args[:4] == ("put", 1, 3, 0)

    def test_sync_hook_mapping(self):
        expected = {
            SyncKind.WIN_CREATE: "on_win_create",
            SyncKind.WIN_FREE: "on_win_free",
            SyncKind.LOCK_ALL: "on_epoch_start",
            SyncKind.UNLOCK_ALL: "on_epoch_end",
            SyncKind.FLUSH: "on_flush",
            SyncKind.FLUSH_ALL: "on_flush",
            SyncKind.FENCE: "on_fence",
            SyncKind.BARRIER: "on_barrier",
        }
        for kind, hook in expected.items():
            det = _Recorder()
            dispatch_event(det, SyncEvent(1, 0, kind, wid=5), NRANKS)
            assert [name for name, _ in det.calls] == [hook], kind

    def test_win_create_window_shape(self):
        det = _Recorder()
        dispatch_event(det, SyncEvent(1, -1, SyncKind.WIN_CREATE, wid=7),
                       NRANKS)
        (_, (window,)), = det.calls
        assert window.wid == 7
        assert len(window.regions) == NRANKS

    def test_fence_carries_nranks(self):
        det = _Recorder()
        dispatch_event(det, SyncEvent(1, -1, SyncKind.FENCE, wid=2), NRANKS)
        assert det.calls == [("on_fence", (2, NRANKS))]


class TestOwnReports:
    def test_filters_replica_side_reports(self):
        class Det:
            reports = [
                RaceReport(0, 0, _access(), _access(), "d"),
                RaceReport(1, 0, _access(), _access(), "d"),
                RaceReport(0, 1, _access(), _access(), "d"),
            ]

        assert len(own_reports(Det(), 0)) == 2
        assert len(own_reports(Det(), 1)) == 1
        assert own_reports(Det(), 3) == []

    def test_detector_without_reports(self):
        assert own_reports(object(), 0) == []

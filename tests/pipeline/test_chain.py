"""The per-chunk rolling hash chain: computation, storage, append, tail.

The chain is the format-layer foundation of incremental re-analysis:
equal chain value at chunk k ⇒ byte-identical first k chunks, so a
checkpoint cursor carrying its chain value can prove "this trace is an
append-only extension of what I analyzed" without re-reading the
prefix.  These tests pin the properties everything upstream relies on:

* determinism and prefix-sensitivity of :func:`trace_chain`,
* the four :func:`compare_chain` relations,
* ``open_append`` producing byte-for-byte append-only extensions (and
  refusing corrupt or rewritten inputs),
* stored-digest verification (:class:`TraceChainMismatch` on a spliced
  prefix) and its absence in chainless legacy files,
* tail-mode reader classification of in-progress vs complete files.
"""

import struct

import pytest

from repro.intervals import AccessType, DebugInfo, Interval, MemoryAccess
from repro.mpi.errors import TraceChainMismatch, TraceFormatError
from repro.mpi.memory import RegionInfo, RegionKind
from repro.mpi.trace import LocalEvent
from repro.pipeline import (
    BinaryTraceWriter,
    TraceReader,
    compare_chain,
    trace_chain,
)
from repro.pipeline.format import MAGIC_V2


def _event(seq, *, rank=0, line=1):
    access = MemoryAccess(Interval(seq * 8, seq * 8 + 8),
                          AccessType.LOCAL_READ,
                          DebugInfo("./chain.c", line), rank, 0, 1, None, None)
    return LocalEvent(seq, rank, access, RegionInfo(RegionKind.HEAP, True))


def _write(path, n, *, per_chunk=10, chain=True):
    with BinaryTraceWriter(path, nranks=4, events_per_chunk=per_chunk,
                           chain=chain) as writer:
        for seq in range(1, n + 1):
            writer.write(_event(seq))
    return path


def _append(path, seqs, *, finalize=True):
    writer = BinaryTraceWriter.open_append(path)
    for seq in seqs:
        writer.write(_event(seq))
    if finalize:
        writer.close()
    else:
        writer.abort()
    return writer


class TestTraceChain:
    def test_deterministic_and_sized(self, tmp_path):
        path = _write(tmp_path / "t.trace", 35)
        a, b = trace_chain(path), trace_chain(path)
        assert a == b
        assert a["algo"] == "sha256"
        assert len(a["chunks"]) == 4  # 35 events / 10 per chunk
        assert a["complete"] and a["stored_mismatch"] is None
        assert a["events"][-1] == 35

    def test_computed_without_stored_digests(self, tmp_path):
        plain = _write(tmp_path / "plain.trace", 30, chain=False)
        got = trace_chain(plain)  # derivable for any v2 file
        assert len(got["chunks"]) == 3
        assert got["complete"] and got["stored_mismatch"] is None
        # the seed hashes the header bytes, so a chainless file can
        # never masquerade as a prefix of a chain-flagged one (their
        # headers differ) — deliberate: file identity includes header
        stored = _write(tmp_path / "stored.trace", 30, chain=True)
        assert got["chunks"][0] != trace_chain(stored)["chunks"][0]

    def test_upto_prefix(self, tmp_path):
        path = _write(tmp_path / "t.trace", 50)
        full = trace_chain(path)
        head = trace_chain(path, upto=2)
        assert head["chunks"] == full["chunks"][:2]
        assert not head["complete"]

    def test_content_sensitivity(self, tmp_path):
        a = trace_chain(_write(tmp_path / "a.trace", 30))
        b_path = tmp_path / "b.trace"
        with BinaryTraceWriter(b_path, nranks=4,
                               events_per_chunk=10) as writer:
            for seq in range(1, 31):
                writer.write(_event(seq, line=99 if seq == 30 else 1))
        b = trace_chain(b_path)
        assert a["chunks"][:2] == b["chunks"][:2]
        assert a["chunks"][2] != b["chunks"][2]

    def test_rejects_non_v2(self, tmp_path):
        path = tmp_path / "junk.trace"
        path.write_bytes(b"not a trace at all")
        with pytest.raises(TraceFormatError):
            trace_chain(path)

    def test_torn_tail_ends_walk(self, tmp_path):
        path = _write(tmp_path / "t.trace", 30)
        whole = trace_chain(path)
        path.write_bytes(path.read_bytes()[:-30])  # tear trailer + tail
        torn = trace_chain(path)
        assert not torn["complete"]
        assert torn["chunks"] == whole["chunks"][:len(torn["chunks"])]


class TestCompareChain:
    def test_identical(self, tmp_path):
        c = trace_chain(_write(tmp_path / "a.trace", 30))
        assert compare_chain(c, c)["relation"] == "identical"

    def test_extension_and_truncated(self, tmp_path):
        path = _write(tmp_path / "a.trace", 30)
        old = trace_chain(path)
        _append(path, range(31, 51))
        new = trace_chain(path)
        assert compare_chain(old, new) == {
            "relation": "extension", "common": 3, "diverged_at": None}
        assert compare_chain(new, old)["relation"] == "truncated"

    def test_diverged_names_first_bad_chunk(self, tmp_path):
        a = trace_chain(_write(tmp_path / "a.trace", 40))
        b_path = _write(tmp_path / "b.trace", 20)
        _append(b_path, range(100, 120))
        b = trace_chain(b_path)
        rel = compare_chain(a, b)
        assert rel["relation"] == "diverged"
        assert rel["common"] == 2
        assert rel["diverged_at"] == 3


class TestOpenAppend:
    def test_extension_is_byte_prefix(self, tmp_path):
        path = _write(tmp_path / "t.trace", 30)
        original = path.read_bytes()
        _append(path, range(31, 46))
        extended = path.read_bytes()
        # everything up to the old trailer is byte-identical
        assert extended[:len(original) - 12].startswith(
            original[:len(original) - 12])
        assert [e.seq for e in TraceReader(path)] == list(range(1, 46))

    def test_appended_equals_straight_through(self, tmp_path):
        grown = _write(tmp_path / "grown.trace", 30)
        _append(grown, range(31, 51))
        straight = _write(tmp_path / "straight.trace", 50)
        assert grown.read_bytes() == straight.read_bytes()

    def test_append_drops_torn_tail(self, tmp_path):
        path = _write(tmp_path / "t.trace", 30)
        clean = trace_chain(path)
        path.write_bytes(path.read_bytes()[:-20])  # torn trailer+chunk
        _append(path, range(21, 51))
        assert trace_chain(path)["chunks"][:2] == clean["chunks"][:2]
        assert trace_chain(path)["complete"]

    def test_append_refuses_corrupt_chunk(self, tmp_path):
        path = _write(tmp_path / "t.trace", 30)
        raw = bytearray(path.read_bytes())
        raw[-40] ^= 0xFF  # payload byte of the last chunk
        path.write_bytes(bytes(raw))
        with pytest.raises(TraceFormatError):
            BinaryTraceWriter.open_append(path)

    def test_append_refuses_spliced_stored_chain(self, tmp_path):
        path = _write(tmp_path / "t.trace", 30)
        raw = bytearray(path.read_bytes())
        # corrupt a stored chain digest without touching the payload:
        # digest sits after CHNK + nbytes + nevents + crc of chunk 1
        (hlen,) = struct.unpack_from("<I", raw, len(MAGIC_V2))
        pos = len(MAGIC_V2) + 4 + hlen
        raw[pos + 16] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(TraceChainMismatch) as exc:
            BinaryTraceWriter.open_append(path)
        assert exc.value.chunk == 1


class TestStoredChainVerification:
    def _smash_digest(self, path, chunk_no):
        raw = bytearray(path.read_bytes())
        (hlen,) = struct.unpack_from("<I", raw, len(MAGIC_V2))
        pos = len(MAGIC_V2) + 4 + hlen
        for k in range(1, chunk_no):
            (nbytes,) = struct.unpack_from("<I", raw, pos + 4)
            pos += 4 + 12 + 32 + nbytes
        raw[pos + 16] ^= 0xFF
        path.write_bytes(bytes(raw))

    def test_strict_read_raises_chain_mismatch(self, tmp_path):
        path = _write(tmp_path / "t.trace", 30)
        self._smash_digest(path, 2)
        with pytest.raises(TraceChainMismatch) as exc:
            list(TraceReader(path))
        assert exc.value.chunk == 2
        assert isinstance(exc.value, TraceFormatError)  # old handlers work

    def test_trace_chain_reports_stored_mismatch(self, tmp_path):
        path = _write(tmp_path / "t.trace", 30)
        self._smash_digest(path, 3)
        got = trace_chain(path)
        assert got["stored_mismatch"] == 3
        assert len(got["chunks"]) == 3  # values are still computable

    def test_chainless_files_skip_verification(self, tmp_path):
        path = _write(tmp_path / "t.trace", 30, chain=False)
        assert [e.seq for e in TraceReader(path)] == list(range(1, 31))


class TestTailMode:
    def test_complete_file_sets_complete(self, tmp_path):
        path = _write(tmp_path / "t.trace", 30)
        reader = TraceReader(path)
        reader.tail = True
        assert len(list(reader)) == 30
        assert reader.complete and not reader.tail_pending

    def test_torn_tail_is_pending_not_corrupt(self, tmp_path):
        path = _write(tmp_path / "t.trace", 30)
        path.write_bytes(path.read_bytes()[:-25])
        strict = TraceReader(path)
        with pytest.raises(TraceFormatError):
            list(strict)  # a non-tail reader still calls this truncation
        reader = TraceReader(path)
        reader.tail = True
        got = list(reader)
        assert reader.tail_pending and not reader.complete
        assert [e.seq for e in got] == list(range(1, 21))

    def test_live_writer_output_matches_atomic(self, tmp_path):
        atomic = _write(tmp_path / "atomic.trace", 30)
        live = tmp_path / "live.trace"
        writer = BinaryTraceWriter(live, nranks=4, events_per_chunk=10,
                                   live=True)
        for seq in range(1, 31):
            writer.write(_event(seq))
        writer.close()
        assert live.read_bytes() == atomic.read_bytes()

    def test_trailerless_live_file_is_pending(self, tmp_path):
        live = tmp_path / "live.trace"
        writer = BinaryTraceWriter(live, nranks=4, events_per_chunk=10,
                                   live=True)
        for seq in range(1, 21):
            writer.write(_event(seq))
        writer.abort()  # recorder "still running": flushed, no trailer
        reader = TraceReader(live)
        reader.tail = True
        assert len(list(reader)) == 20
        assert reader.tail_pending and not reader.complete

    def test_cursor_carries_chain(self, tmp_path):
        path = _write(tmp_path / "t.trace", 30)
        reader = TraceReader(path)
        cursors = [cur for _, cur in reader.iter_chunks()]
        chain = trace_chain(path)["chunks"]
        assert [c["chain"] for c in cursors] == chain

"""Round-trip and robustness tests for the repro-trace-v2 binary format."""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.intervals import AccessType, DebugInfo, Interval, MemoryAccess
from repro.mpi import TraceFormatError, load_trace, save_trace
from repro.mpi.memory import RegionInfo, RegionKind
from repro.mpi.trace import LocalEvent, RmaEvent, SyncEvent, SyncKind, TraceLog
from repro.pipeline import (
    FORMAT_V1,
    FORMAT_V2,
    BinaryTraceWriter,
    JsonTraceWriter,
    TraceReader,
    make_trace_writer,
)


def _access(type, *, accum=None, excl=None, file="./a.c", line=7, origin=1):
    return MemoryAccess(Interval(16, 32), type, DebugInfo(file, line),
                        origin, 0, 2, accum, excl)


def _write(path, events, nranks=4, **kwargs):
    with BinaryTraceWriter(path, nranks=nranks, **kwargs) as writer:
        for event in events:
            writer.write(event)
    return path


def exhaustive_events():
    """Every event kind x every enum member x every optional-field shape."""
    events = []
    seq = 0
    for kind in SyncKind:
        seq += 1
        events.append(SyncEvent(seq, -1 if kind is SyncKind.BARRIER else 0,
                                kind, wid=3))
    for region_kind in RegionKind:
        for may_alias in (False, True):
            for acc_type in AccessType:
                for accum in (None, "sum"):
                    for excl in (None, 11):
                        seq += 1
                        events.append(LocalEvent(
                            seq, 2, _access(acc_type, accum=accum, excl=excl),
                            RegionInfo(region_kind, may_alias),
                        ))
    for op in ("put", "get", "accumulate", "get_accumulate"):
        for okind in RegionKind:
            for tkind in RegionKind:
                seq += 1
                events.append(RmaEvent(
                    seq, 0, op, 3, 1,
                    _access(AccessType.RMA_READ),
                    _access(AccessType.RMA_WRITE, accum="prod", excl=5),
                    RegionInfo(okind, True), RegionInfo(tkind, False),
                    nbytes=64,
                ))
    return events


class TestBinaryRoundtrip:
    def test_exhaustive_events_roundtrip(self, tmp_path):
        events = exhaustive_events()
        path = _write(tmp_path / "t.bin", events, nranks=5)
        reader = TraceReader(path)
        assert reader.format == FORMAT_V2
        assert reader.nranks == 5
        assert list(reader) == events

    def test_reader_is_reiterable(self, tmp_path):
        events = exhaustive_events()
        reader = TraceReader(_write(tmp_path / "t.bin", events))
        assert list(reader) == list(reader)

    def test_small_chunks_roundtrip(self, tmp_path):
        """Chunk boundaries land mid-stream: string table must carry over."""
        events = exhaustive_events()
        path = _write(tmp_path / "t.bin", events, events_per_chunk=3)
        assert list(TraceReader(path)) == events

    def test_empty_trace(self, tmp_path):
        path = _write(tmp_path / "t.bin", [])
        reader = TraceReader(path)
        assert list(reader) == []

    def test_save_load_binary(self, tmp_path):
        log = TraceLog()
        log.events = exhaustive_events()
        path = tmp_path / "t.bin"
        save_trace(log, path, nranks=4, format="binary")
        loaded = load_trace(path)
        assert loaded.log.events == log.events
        assert loaded.nranks == 4

    def test_binary_smaller_than_json(self, tmp_path):
        log = TraceLog()
        log.events = exhaustive_events()
        save_trace(log, tmp_path / "t.bin", nranks=4, format="binary")
        save_trace(log, tmp_path / "t.json", nranks=4, format="json")
        assert (tmp_path / "t.bin").stat().st_size < \
            (tmp_path / "t.json").stat().st_size

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_trace(TraceLog(), tmp_path / "t", nranks=1, format="xml")
        with pytest.raises(ValueError):
            make_trace_writer(tmp_path / "t", nranks=1, format="xml")


ACCESSES = st.builds(
    MemoryAccess,
    st.builds(Interval, st.integers(0, 100), st.integers(101, 2**40)),
    st.sampled_from(list(AccessType)),
    st.builds(DebugInfo, st.text(max_size=12), st.integers(0, 10_000)),
    st.integers(0, 63),
    st.just(0),
    st.integers(-1, 50),
    st.one_of(st.none(), st.sampled_from(["sum", "prod", "max"])),
    st.one_of(st.none(), st.integers(-2**40, 2**40)),
)
REGIONS = st.builds(RegionInfo, st.sampled_from(list(RegionKind)),
                    st.booleans())
EVENTS = st.one_of(
    st.builds(LocalEvent, st.integers(0, 2**50), st.integers(0, 63),
              ACCESSES, REGIONS),
    st.builds(RmaEvent, st.integers(0, 2**50), st.integers(0, 63),
              st.sampled_from(["put", "get", "accumulate"]),
              st.integers(0, 63), st.integers(-1, 8),
              ACCESSES, ACCESSES, REGIONS, REGIONS, st.integers(0, 2**40)),
    st.builds(SyncEvent, st.integers(0, 2**50), st.integers(-1, 63),
              st.sampled_from(list(SyncKind)), st.integers(-1, 8)),
)


class TestPropertyRoundtrip:
    @given(st.lists(EVENTS, max_size=40), st.integers(1, 9))
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_arbitrary_events_roundtrip(self, tmp_path, events, chunk):
        path = _write(tmp_path / "t.bin", events, events_per_chunk=chunk)
        assert list(TraceReader(path)) == events
        path.unlink()

    @given(st.lists(EVENTS, min_size=1, max_size=25))
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_truncation_always_detected(self, tmp_path, events):
        """Cutting any suffix off a v2 file must raise, never mis-parse."""
        path = _write(tmp_path / "t.bin", events, events_per_chunk=4)
        raw = path.read_bytes()
        cut = path.with_suffix(".cut")
        # drop the trailer, half a chunk, half the header
        for upto in (len(raw) - 9, len(raw) // 2, 6):
            cut.write_bytes(raw[:max(0, upto)])
            with pytest.raises(TraceFormatError):
                list(TraceReader(cut))
        path.unlink()
        cut.unlink()


class TestCorruptInput:
    def test_not_a_trace(self, tmp_path):
        path = tmp_path / "junk"
        path.write_bytes(b"\x7fELF not a trace at all")
        with pytest.raises(TraceFormatError) as err:
            TraceReader(path)
        assert str(path) in str(err.value)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty"
        path.write_bytes(b"")
        with pytest.raises(TraceFormatError):
            TraceReader(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceFormatError):
            TraceReader(tmp_path / "nope")

    def test_error_is_valueerror(self, tmp_path):
        """Compat: pre-existing callers catch ValueError."""
        path = tmp_path / "junk"
        path.write_text('{"format": "something-else"}\n')
        with pytest.raises(ValueError):
            load_trace(path)
        with pytest.raises(TraceFormatError):
            load_trace(path)

    def test_junk_after_trailer(self, tmp_path):
        path = _write(tmp_path / "t.bin", exhaustive_events()[:5])
        path.write_bytes(path.read_bytes() + b"extra")
        with pytest.raises(TraceFormatError) as err:
            list(TraceReader(path))
        assert "junk" in str(err.value)

    def test_corrupt_chunk_tag(self, tmp_path):
        path = _write(tmp_path / "t.bin", exhaustive_events()[:5])
        raw = bytearray(path.read_bytes())
        idx = raw.find(b"CHNK")
        raw[idx:idx + 4] = b"XXXX"
        path.write_bytes(bytes(raw))
        with pytest.raises(TraceFormatError):
            list(TraceReader(path))

    def test_trailer_count_mismatch(self, tmp_path):
        path = _write(tmp_path / "t.bin", exhaustive_events()[:5])
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF  # flip the high byte of the u64 event count
        path.write_bytes(bytes(raw))
        with pytest.raises(TraceFormatError) as err:
            list(TraceReader(path))
        assert "mismatch" in str(err.value)


class TestV1Robustness:
    def _v1(self, tmp_path, lines):
        path = tmp_path / "t.json"
        path.write_text("\n".join(lines) + "\n")
        return path

    def test_v1_roundtrip_via_streaming_writer(self, tmp_path):
        events = exhaustive_events()
        path = tmp_path / "t.json"
        with JsonTraceWriter(path, nranks=3) as writer:
            for event in events:
                writer.write(event)
        reader = TraceReader(path)
        assert reader.format == FORMAT_V1
        assert reader.nranks == 3
        assert list(reader) == events

    def test_truncated_json_line_names_file_and_line(self, tmp_path):
        header = json.dumps({"format": "repro-trace-v1", "nranks": 2})
        good = json.dumps({"ev": "sync", "seq": 1, "rank": -1,
                           "kind": "barrier", "wid": -1})
        path = self._v1(tmp_path, [header, good, '{"ev": "sync", "se'])
        with pytest.raises(TraceFormatError) as err:
            list(TraceReader(path))
        assert err.value.line == 3
        assert f"{path}:3" in str(err.value)

    def test_missing_key_names_line(self, tmp_path):
        header = json.dumps({"format": "repro-trace-v1", "nranks": 2})
        bad = json.dumps({"ev": "sync", "seq": 1})  # no kind/rank
        path = self._v1(tmp_path, [header, bad])
        with pytest.raises(TraceFormatError) as err:
            list(TraceReader(path))
        assert err.value.line == 2

    def test_corrupt_header(self, tmp_path):
        path = self._v1(tmp_path, ['{"format": "repro-trace-v1"'])
        with pytest.raises(TraceFormatError):
            TraceReader(path)

    def test_header_missing_nranks(self, tmp_path):
        path = self._v1(tmp_path, ['{"format": "repro-trace-v1"}'])
        with pytest.raises(TraceFormatError):
            TraceReader(path)

"""CLI coverage for the record / analyze subcommands and global flags."""

import json

import pytest

from repro import __version__
from repro.cli import _DETECTORS, _RECORD_APPS, main
from repro.pipeline import DETECTOR_SPECS, RECORDABLE_APPS


class TestVersionFlag:
    def test_version_exits_zero_and_prints(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"


class TestUnknownExperiment:
    def test_exit_status_2_and_names_listed(self, capsys):
        assert main(["run", "nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment 'nope'" in err
        assert "valid names:" in err
        assert "table3" in err

    def test_known_after_unknown_still_fails(self, capsys):
        assert main(["run", "nope", "table3"]) == 2


class TestRegistryConsistency:
    def test_cli_app_choices_match_pipeline(self):
        assert _RECORD_APPS == tuple(sorted(RECORDABLE_APPS))

    def test_cli_detector_choices_match_pipeline(self):
        assert _DETECTORS == tuple(sorted(DETECTOR_SPECS))


class TestRecordAnalyzeEndToEnd:
    def test_record_then_analyze(self, tmp_path, capsys):
        trace = tmp_path / "hist.trace"
        assert main(["record", "histogram", "--ranks", "3",
                     "--size", "64", "-o", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "recorded histogram on 3 ranks" in out
        assert trace.exists()

        assert main(["analyze", str(trace), "--detector", "our",
                     "--jobs", "3"]) == 0
        out = capsys.readouterr().out
        assert "3 ranks" in out
        assert "jobs=3" in out
        assert "races:" in out

    def test_analyze_json_output(self, tmp_path, capsys):
        trace = tmp_path / "hist.trace"
        main(["record", "histogram", "--size", "32", "-o", str(trace),
              "--format", "json"])
        capsys.readouterr()
        assert main(["analyze", str(trace), "--jobs", "2", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["jobs"] == 2
        assert report["detector"] == "our"
        assert report["events_total"] > 0
        assert isinstance(report["verdicts"], list)

    def test_inject_race_rejected_for_non_minivite(self, tmp_path, capsys):
        assert main(["record", "cfd", "--inject-race",
                     "-o", str(tmp_path / "t")]) == 2
        assert "inject-race" in capsys.readouterr().err

    def test_unknown_app_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["record", "quicksilver"])
        assert exc.value.code == 2

    def test_analyze_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path / "nope.trace")]) == 2
        assert "repro analyze:" in capsys.readouterr().err

    def test_analyze_corrupt_file_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.trace"
        bad.write_bytes(b"not a trace")
        assert main(["analyze", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "repro analyze:" in err
        assert str(bad) in err

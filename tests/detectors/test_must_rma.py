"""Unit tests for the MUST-RMA behavioural model."""

import pytest

from repro.detectors import MustRma
from repro.mpi import World


def run(program, nranks=2):
    det = MustRma()
    World(nranks, [det]).run(program)
    return det


def epoch_program(body):
    def program(ctx):
        win = yield ctx.win_allocate("w", 64)
        buf = ctx.alloc("buf", 8, rma_hint=True)
        ctx.win_lock_all(win)
        yield
        yield from body(ctx, win, buf) or ()
        yield
        ctx.win_unlock_all(win)
        yield ctx.win_free(win)

    return program


class TestOrderAwareness:
    """No false positives: the happens-before relation is respected."""

    def test_load_then_get_safe(self):
        def body(ctx, win, buf):
            if ctx.rank == 0:
                ctx.load(buf, 0)
                ctx.get(win, 1, 0, buf, 0, 8)
            return ()

        assert run(epoch_program(body)).reports_total == 0

    def test_get_then_load_races(self):
        def body(ctx, win, buf):
            if ctx.rank == 0:
                ctx.get(win, 1, 0, buf, 0, 8)
                ctx.load(buf, 0)
            return ()

        assert run(epoch_program(body)).reports_total == 1

    def test_access_after_epoch_completion_safe(self):
        def program(ctx):
            win = yield ctx.win_allocate("w", 64)
            buf = ctx.alloc("buf", 8, rma_hint=True)
            ctx.win_lock_all(win)
            if ctx.rank == 0:
                ctx.get(win, 1, 0, buf, 0, 8)
            ctx.win_unlock_all(win)
            if ctx.rank == 0:
                ctx.load(buf, 0)  # ordered by unlock_all
            yield ctx.win_free(win)

        assert run(program).reports_total == 0

    def test_cross_rank_put_put_races(self):
        def body(ctx, win, buf):
            ctx.put(win, 0, 0, buf, 0, 8)
            return ()

        assert run(epoch_program(body), nranks=2).reports_total >= 1


class TestStackBlindSpot:
    """The §5.2 false negatives: stack arrays are not instrumented."""

    def test_misses_race_on_stack_buffer(self):
        def program(ctx):
            win = yield ctx.win_allocate("w", 64)
            buf = ctx.stack_alloc("buf", 8, rma_hint=True)
            ctx.win_lock_all(win)
            if ctx.rank == 0:
                ctx.get(win, 1, 0, buf, 0, 8)
                ctx.load(buf, 0)  # race, but both sides are stack
            ctx.win_unlock_all(win)
            yield ctx.win_free(win)

        assert run(program).reports_total == 0

    def test_misses_race_in_stack_backed_window(self):
        def program(ctx):
            backing = ctx.stack_alloc("mem", 64)
            win = yield ctx.win_create("w", backing)
            buf = ctx.alloc("buf", 8, rma_hint=True)
            ctx.win_lock_all(win)
            yield
            ctx.put(win, 0, 0, buf, 0, 8)  # both ranks write rank 0's window
            yield
            ctx.win_unlock_all(win)
            yield ctx.win_free(win)

        assert run(program).reports_total == 0

    def test_detects_same_race_with_heap_window(self):
        # §5.2: "when using heap arrays, the error is detected"
        def body(ctx, win, buf):
            ctx.put(win, 0, 0, buf, 0, 8)
            return ()

        assert run(epoch_program(body)).reports_total >= 1


class TestCosts:
    def test_instruments_everything_not_stack(self):
        def program(ctx):
            win = yield ctx.win_allocate("w", 64)
            pure = ctx.alloc("pure", 8)  # no RMA relation at all
            ctx.win_lock_all(win)
            ctx.load(pure, 0)
            ctx.win_unlock_all(win)
            yield ctx.win_free(win)

        det = run(program)
        assert det.node_stats().accesses_processed >= 2  # both ranks' loads

    def test_sync_bytes_scale_with_ranks(self):
        det = MustRma()
        assert det.sync_notify_bytes(256) == 8 * det.sync_notify_bytes(32)

    def test_clock_size_property(self):
        def body(ctx, win, buf):
            ctx.put(win, 0, 0, buf, 0, 8)
            return ()

        det = MustRma()
        World(4, [det]).run(epoch_program(body))
        assert det.clock_size >= 4

"""Unit tests for the related-work baselines (Park mirror, MC-CChecker)."""

import pytest

from repro.detectors import McCChecker, ParkMirror
from repro.mpi import World


def epoch_program(body):
    def program(ctx):
        win = yield ctx.win_allocate("w", 64)
        buf = ctx.alloc("buf", 8, rma_hint=True)
        ctx.win_lock_all(win)
        yield
        yield from body(ctx, win, buf) or ()
        yield
        ctx.win_unlock_all(win)
        yield ctx.win_free(win)

    return program


def run(det, program, nranks=2):
    World(nranks, [det]).run(program)
    return det


class TestParkMirror:
    def test_detects_window_rma_races(self):
        def body(ctx, win, buf):
            ctx.put(win, 0, 0, buf, 0, 8)
            return ()

        det = run(ParkMirror(), epoch_program(body))
        assert det.reports_total >= 1

    def test_misses_local_access_races(self):
        """The paper's §3 critique: Load/Store are not considered."""

        def body(ctx, win, buf):
            if ctx.rank == 0:
                ctx.get(win, 1, 0, buf, 0, 8)
                ctx.load(buf, 0)  # race at origin, invisible to the mirror
            return ()

        det = run(ParkMirror(), epoch_program(body))
        assert det.reports_total == 0

    def test_read_read_safe(self):
        def body(ctx, win, buf):
            ctx.get(win, 0, 0, buf, 0, 8)  # everyone reads rank 0's window
            return ()

        det = run(ParkMirror(), epoch_program(body))
        assert det.reports_total == 0

    def test_mirror_cleared_at_epoch_end(self):
        def program(ctx):
            win = yield ctx.win_allocate("w", 64)
            buf = ctx.alloc("buf", 8, rma_hint=True)
            for _ in range(2):
                ctx.win_lock_all(win)
                yield
                if ctx.rank == 0:
                    ctx.put(win, 1, 0, buf, 0, 8)
                yield ctx.barrier()
                ctx.win_unlock_all(win)
                yield ctx.barrier()
            yield ctx.win_free(win)

        det = run(ParkMirror(), program)
        # one put per epoch to the same range: epochs separate them
        assert det.reports_total == 0

    def test_node_stats(self):
        def body(ctx, win, buf):
            if ctx.rank == 0:
                ctx.put(win, 1, 0, buf, 0, 8)
            return ()

        det = run(ParkMirror(), epoch_program(body))
        assert det.node_stats().total_max_nodes == 1


class TestMcCChecker:
    def test_post_mortem_only(self):
        def body(ctx, win, buf):
            if ctx.rank == 0:
                ctx.get(win, 1, 0, buf, 0, 8)
                ctx.load(buf, 0)
            return ()

        det = McCChecker()
        World(2, [det]).run(epoch_program(body))
        # finalize ran inside World.run's teardown
        assert det.finalized
        assert det.reports_total == 1

    def test_order_aware_no_fp(self):
        def body(ctx, win, buf):
            if ctx.rank == 0:
                ctx.load(buf, 0)
                ctx.get(win, 1, 0, buf, 0, 8)
            return ()

        det = run(McCChecker(), epoch_program(body))
        assert det.reports_total == 0

    def test_detects_cross_rank_races(self):
        def body(ctx, win, buf):
            ctx.put(win, 0, 0, buf, 0, 8)
            return ()

        det = run(McCChecker(), epoch_program(body))
        assert det.reports_total >= 1

    def test_epoch_separation_respected(self):
        def program(ctx):
            win = yield ctx.win_allocate("w", 64)
            buf = ctx.alloc("buf", 8, rma_hint=True)
            ctx.win_lock_all(win)
            if ctx.rank == 0:
                ctx.get(win, 1, 0, buf, 0, 8)
            ctx.win_unlock_all(win)
            if ctx.rank == 0:
                ctx.load(buf, 0)  # after completion: safe
            yield ctx.win_free(win)

        det = run(McCChecker(), program)
        assert det.reports_total == 0

    def test_trace_grows_with_execution(self):
        def body(ctx, win, buf):
            if ctx.rank == 0:
                for i in range(10):
                    ctx.get(win, 1, 0, buf, 0, 1)
            return ()

        det = run(McCChecker(), epoch_program(body))
        # the scalability critique: every access is recorded forever
        assert det.node_stats().accesses_processed >= 20

"""Tests for the shared detector machinery (base class, NodeStats)."""

import pytest

from repro.core import DataRaceError
from repro.detectors import Detector, NodeStats
from tests.conftest import RW, acc


class TestReportPlumbing:
    def test_reports_collected(self):
        det = Detector()
        det._report(0, 0, acc(0, 4, RW), acc(0, 4, RW, origin=1))
        assert det.race_detected
        assert det.reports_total == 1
        assert det.reports[0].detector == "base"

    def test_cap_keeps_counting(self):
        det = Detector()
        det.MAX_KEPT_REPORTS = 3
        for i in range(10):
            det._report(0, 0, acc(0, 4, RW), acc(0, 4, RW, origin=1))
        assert len(det.reports) == 3
        assert det.reports_total == 10

    def test_reset(self):
        det = Detector()
        det._report(0, 0, acc(0, 4, RW), acc(0, 4, RW, origin=1))
        det.reset_reports()
        assert not det.race_detected
        assert det.reports == []

    def test_abort_mode(self):
        det = Detector(abort_on_race=True)
        with pytest.raises(DataRaceError):
            det._report(0, 0, acc(0, 4, RW), acc(0, 4, RW, origin=1))

    def test_default_hooks_are_noops(self):
        det = Detector()
        det.on_epoch_start(0, 0)
        det.on_epoch_end(0, 0)
        det.on_flush(0, 0)
        det.on_barrier()
        det.on_win_free(0)
        det.finalize()
        assert det.node_stats().total_max_nodes == 0

    def test_default_fence_decomposes_into_epochs_and_barrier(self):
        calls = []

        class Probe(Detector):
            def on_epoch_end(self, rank, wid):
                calls.append(("end", rank, wid))

            def on_epoch_start(self, rank, wid):
                calls.append(("start", rank, wid))

            def on_barrier(self):
                calls.append(("barrier",))

        Probe().on_fence(7, 3)
        assert calls == [
            ("end", 0, 7), ("end", 1, 7), ("end", 2, 7),
            ("barrier",),
            ("start", 0, 7), ("start", 1, 7), ("start", 2, 7),
        ]

    def test_cost_declarations_default_zero(self):
        det = Detector()
        assert det.rma_notify_bytes == 0
        assert det.sync_notify_bytes(128) == 0
        assert det.analysis_work() == 0.0


class TestNodeStats:
    def test_max_nodes_one_rank(self):
        stats = NodeStats(max_nodes_per_rank={0: 5, 1: 9, 2: 3})
        assert stats.max_nodes_one_rank == 9

    def test_empty(self):
        assert NodeStats().max_nodes_one_rank == 0

"""Unit tests for the original RMA-Analyzer baseline."""

import pytest

from repro.detectors import RmaAnalyzerLegacy
from repro.intervals import DebugInfo
from repro.mpi import World


def run(program, nranks=2, det=None):
    det = det or RmaAnalyzerLegacy()
    World(nranks, [det]).run(program)
    return det


class TestKnownDefects:
    def test_false_positive_on_load_then_get(self):
        """§5.2: the order-insensitive predicate flags a safe code."""

        def program(ctx):
            win = yield ctx.win_allocate("w", 64)
            buf = ctx.alloc("buf", 8, rma_hint=True)
            ctx.win_lock_all(win)
            if ctx.rank == 0:
                ctx.load(buf, 0)
                ctx.get(win, 1, 0, buf, 0, 8)
            ctx.win_unlock_all(win)
            yield ctx.win_free(win)

        det = run(program)
        assert det.reports_total == 1  # a false positive

    def test_false_negative_on_code1_shape(self):
        """Fig. 5a: the wide Put interval off the search path is missed."""

        def program(ctx):
            win = yield ctx.win_allocate("w", 64)
            buf = ctx.alloc("buf", 16, rma_hint=True)
            ctx.win_lock_all(win)
            if ctx.rank == 0:
                ctx.load(buf, 4, 1)
                ctx.put(win, 1, 0, buf, 2, 11)
                ctx.store(buf, 7, 1, 1)  # races with the put, missed
            ctx.win_unlock_all(win)
            yield ctx.win_free(win)

        det = run(program)
        assert det.reports_total == 0

    def test_no_merging_linear_growth(self):
        def program(ctx):
            win = yield ctx.win_allocate("w", 64)
            buf = ctx.alloc("buf", 64, rma_hint=True)
            ctx.win_lock_all(win)
            if ctx.rank == 0:
                d = DebugInfo("x.c", 1)
                for i in range(50):
                    ctx.get(win, 1, i, buf, i, 1, debug=d)
            ctx.win_unlock_all(win)
            yield ctx.win_free(win)

        det = run(program)
        # 50 origin-side + nothing merged
        assert det.node_stats().max_nodes_per_rank[0] == 50

    def test_ignores_flush_reports_cross_iteration_fp(self):
        """§6: flush is 'not well instrumented' — the CFD false positive."""

        def program(ctx):
            win = yield ctx.win_allocate("w", 64)
            buf = ctx.alloc("buf", 8, rma_hint=True)
            ctx.win_lock_all(win)
            yield
            if ctx.rank == 0:
                ctx.put(win, 1, 0, buf, 0, 8)
                ctx.win_flush_all(win)
            yield ctx.barrier()
            if ctx.rank == 0:
                ctx.put(win, 1, 0, buf, 0, 8)  # ordered by flush+barrier
            yield
            ctx.win_unlock_all(win)
            yield ctx.win_free(win)

        det = run(program)
        assert det.reports_total >= 1  # false positive


class TestTruePositives:
    def test_detects_two_op_races(self):
        def program(ctx):
            win = yield ctx.win_allocate("w", 64)
            buf = ctx.alloc("buf", 8, rma_hint=True)
            ctx.win_lock_all(win)
            yield
            ctx.put(win, 0, 0, buf, 0, 8)  # everyone writes rank 0's window
            yield
            ctx.win_unlock_all(win)
            yield ctx.win_free(win)

        det = run(program, nranks=3)
        assert det.reports_total >= 1

    def test_report_cap_keeps_counting(self):
        det = RmaAnalyzerLegacy()
        det.MAX_KEPT_REPORTS = 2

        def program(ctx):
            win = yield ctx.win_allocate("w", 64)
            buf = ctx.alloc("buf", 8, rma_hint=True)
            ctx.win_lock_all(win)
            yield
            if ctx.rank == 0:
                for _ in range(5):
                    ctx.put(win, 1, 0, buf, 0, 8)
            yield
            ctx.win_unlock_all(win)
            yield ctx.win_free(win)

        run(program, det=det)
        assert len(det.reports) == 2
        assert det.reports_total > 2

    def test_epoch_end_clears_store(self):
        def program(ctx):
            win = yield ctx.win_allocate("w", 64)
            buf = ctx.alloc("buf", 8, rma_hint=True)
            for _ in range(3):
                ctx.win_lock_all(win)
                if ctx.rank == 0:
                    ctx.get(win, 1, 0, buf, 0, 8)
                ctx.win_unlock_all(win)
                yield ctx.barrier()
            yield ctx.win_free(win)

        det = run(program)
        stats = det.node_stats()
        assert stats.total_current_nodes == 0
        # peaks per epoch do not accumulate: one origin-side access per
        # epoch at rank 0 (the target side lands in rank 1's BST)
        assert stats.max_nodes_per_rank[0] == 1
        assert stats.max_nodes_per_rank[1] == 1

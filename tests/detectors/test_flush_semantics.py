"""The §6 discussion as executable scenarios, across all detectors.

The paper's §6 dissects MPI_Win_flush handling:

1. flush_all followed by MPI_Barrier is the recommended full sync — a
   correct tool must treat ops completed before that point as ordered;
2. tools that ignore flush (the original RMA-Analyzer, MUST-RMA) report
   the cross-iteration CFD-Proxy false positive;
3. simply clearing the flushing process's BST would instead cause false
   negatives: another origin's concurrent ops still race.
"""

import pytest

from repro.core import OurDetector
from repro.detectors import MustRma, RmaAnalyzerLegacy
from repro.mpi import World


def flush_iteration_program(ctx):
    """Two put 'iterations' separated by flush_all + barrier (safe)."""
    win = yield ctx.win_allocate("w", 64)
    buf = ctx.alloc("buf", 8, rma_hint=True)
    ctx.win_lock_all(win)
    yield
    if ctx.rank == 0:
        ctx.put(win, 1, 0, buf, 0, 8)
        ctx.win_flush_all(win)
    yield ctx.barrier()
    if ctx.rank == 0:
        ctx.put(win, 1, 0, buf, 0, 8)
    yield
    ctx.win_unlock_all(win)
    yield ctx.win_free(win)


def cross_origin_after_flush_program(ctx):
    """Rank 0 flushes its put; rank 1's put is still concurrent (race)."""
    win = yield ctx.win_allocate("w", 64)
    buf = ctx.alloc("buf", 8, rma_hint=True)
    ctx.win_lock_all(win)
    yield
    if ctx.rank == 0:
        ctx.put(win, 2, 0, buf, 0, 8)
        ctx.win_flush_all(win)
    yield
    if ctx.rank == 1:
        ctx.put(win, 2, 0, buf, 0, 8)
    yield
    ctx.win_unlock_all(win)
    yield ctx.win_free(win)


def local_read_after_sync_program(ctx):
    """Target reads its window after the origin's flush+barrier (safe)."""
    win = yield ctx.win_allocate("w", 64)
    buf = ctx.alloc("buf", 8, rma_hint=True)
    ctx.win_lock_all(win)
    yield
    if ctx.rank == 0:
        ctx.put(win, 1, 0, buf, 0, 8)
        ctx.win_flush_all(win)
    yield ctx.barrier()
    if ctx.rank == 1:
        from repro.mpi.simulator import Buffer
        from repro.mpi import BYTE

        winbuf = Buffer(win.region_of(1), BYTE)
        ctx.load(winbuf, 0, 8)
    yield
    ctx.win_unlock_all(win)
    yield ctx.win_free(win)


def run(det, program, nranks):
    World(nranks, [det]).run(program)
    return det.reports_total


class TestOurDetectorPreciseFlush:
    def test_no_fp_across_flushed_iterations(self):
        assert run(OurDetector(), flush_iteration_program, 2) == 0

    def test_no_fn_for_other_origins(self):
        # the trap §6 warns about: flushing must NOT absolve other ranks
        assert run(OurDetector(), cross_origin_after_flush_program, 3) == 1

    def test_no_fp_on_target_read_after_sync(self):
        assert run(OurDetector(), local_read_after_sync_program, 2) == 0


class TestLegacyToolsMishandleFlush:
    @pytest.mark.parametrize("factory", [RmaAnalyzerLegacy, MustRma])
    def test_cross_iteration_false_positive(self, factory):
        """The CFD-Proxy FP the paper observed for both tools."""
        assert run(factory(), flush_iteration_program, 2) >= 1

    @pytest.mark.parametrize("factory", [RmaAnalyzerLegacy, MustRma])
    def test_cross_origin_race_still_caught(self, factory):
        assert run(factory(), cross_origin_after_flush_program, 3) >= 1

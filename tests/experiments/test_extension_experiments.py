"""Tests for the extension experiment drivers (static, extensions)."""

import pytest

from repro.experiments import EXPERIMENTS, extensions_summary, static_analysis


class TestStaticDriver:
    @pytest.fixture(scope="class")
    def result(self):
        return static_analysis()

    def test_zero_static_false_positives(self, result):
        assert result.data["static_fp"] == 0

    def test_origin_side_races_proven(self, result):
        assert result.data["static_tp"] > 0
        assert result.data["static_fn"] > 0  # cross-process left to runtime
        assert result.data["static_tp"] + result.data["static_fn"] == 84

    def test_instrumentation_reduction(self, result):
        assert result.data["lines_needed"] < result.data["lines_total"]

    def test_registered_in_cli(self):
        assert EXPERIMENTS["static"] is static_analysis


class TestExtensionsDriver:
    @pytest.fixture(scope="class")
    def result(self):
        return extensions_summary()

    def test_strided_order_of_magnitude(self, result):
        nodes = result.data["minivite"]
        assert nodes["Our Contribution (strided)"] < \
            0.25 * nodes["RMA-Analyzer"]

    def test_paper_merging_barely_helps_minivite(self, result):
        nodes = result.data["minivite"]
        assert nodes["Our Contribution"] > 0.9 * nodes["RMA-Analyzer"]

    def test_histogram_verdict_matrix(self, result):
        verdicts = result.data["histogram"]
        assert verdicts["MPI_Accumulate"] == ["clean", "clean", "clean"]
        assert verdicts["MPI_Fetch_and_op"] == ["clean", "clean", "clean"]
        assert verdicts["manual Get+Put (buggy)"] == ["error"] * 3
        # only ours proves the lock-based fix
        assert verdicts["exclusive-lock RMW"] == ["clean", "error", "error"]

    def test_registered_in_cli(self):
        assert EXPERIMENTS["extensions"] is extensions_summary

"""Unit tests for the table/bars renderers."""

from repro.experiments import ExperimentResult, render_bars, render_table


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["a", "bb"], [[1, "xyz"], [22222, "q"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        # columns align: every row has the same separator positions
        assert len(set(len(l.rstrip()) for l in lines[2:])) <= 2

    def test_number_formatting(self):
        text = render_table(["n"], [[1234567], [0.123456], [12.3]])
        assert "1,234,567" in text
        assert "0.123" in text
        assert "12.3" in text

    def test_bool_formatting(self):
        text = render_table(["ok"], [[True], [False]])
        assert "yes" in text and "no" in text


class TestRenderBars:
    def test_scales_to_max(self):
        text = render_bars(["a", "b"], [1.0, 2.0], width=10)
        lines = text.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_zero_value_no_bar(self):
        text = render_bars(["a", "b"], [0.0, 2.0])
        assert text.splitlines()[0].count("#") == 0

    def test_small_nonzero_gets_a_tick(self):
        text = render_bars(["a", "b"], [0.001, 100.0])
        assert text.splitlines()[0].count("#") == 1

    def test_unit_suffix(self):
        text = render_bars(["a"], [3.0], unit=" ms")
        assert text.endswith(" ms")


class TestExperimentResult:
    def test_str_includes_header(self):
        r = ExperimentResult("fig0", "a title", "body")
        assert "== fig0: a title ==" in str(r)
        assert "body" in str(r)

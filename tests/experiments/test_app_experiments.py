"""Tests of the application-scale experiment drivers (small parameters).

These assert the *shapes* the paper reports, on laptop-scale inputs:
ordering of the Fig. 10 bars, strong-scaling of Figs 11/12, and the
Table 4 node-count relations.
"""

import pytest

from repro.apps import CfdConfig
from repro.experiments import (
    fig9_minivite_race,
    fig10_cfd_epoch_time,
    minivite_rank_sweep,
    table4_bst_nodes,
)


@pytest.fixture(scope="module")
def fig10():
    # the paper's 12 ranks; fewer iterations than its 50 to keep the
    # test quick (the gaps only widen with more iterations)
    return fig10_cfd_epoch_time(
        nranks=12,
        config=CfdConfig(cells_per_rank=128, iterations=25),
    )


@pytest.fixture(scope="module")
def sweep():
    # at very small rank counts MUST-RMA's vector clocks are cheap and
    # the orderings are scale-dependent; 8+ ranks shows the paper's shape
    return minivite_rank_sweep(2048, rank_sweep=(8, 16))


class TestFig9:
    def test_race_reported_with_dspl_locations(self):
        result = fig9_minivite_race(nvertices=512, nranks=3)
        assert result.data["races"] >= 1
        assert "./dspl.hpp:614" in result.data["messages"][0]


class TestFig10:
    def test_baseline_is_fastest(self, fig10):
        runs = fig10.data
        for tool in ("RMA-Analyzer", "MUST-RMA", "Our Contribution"):
            assert runs[tool].sim_elapsed_ms > runs["Baseline"].sim_elapsed_ms

    def test_ours_beats_legacy(self, fig10):
        # analysis cost is charged from deterministic work counters, so
        # the ordering is exact and reproducible
        runs = fig10.data
        assert runs["Our Contribution"].sim_elapsed_ms < \
            runs["RMA-Analyzer"].sim_elapsed_ms

    def test_must_rma_over_instruments(self, fig10):
        # the deterministic driver of MUST-RMA's slowdown: it processes
        # every non-stack access while the BST tools filter
        runs = fig10.data
        assert runs["MUST-RMA"].accesses_processed > \
            runs["RMA-Analyzer"].accesses_processed

    def test_must_rma_is_slowest(self, fig10):
        runs = fig10.data
        assert runs["MUST-RMA"].sim_elapsed_ms == max(
            r.sim_elapsed_ms for r in runs.values()
        )

    def test_node_reduction(self, fig10):
        runs = fig10.data
        assert runs["Our Contribution"].total_max_nodes < \
            runs["RMA-Analyzer"].total_max_nodes * 0.05

    def test_only_ours_is_clean(self, fig10):
        runs = fig10.data
        assert runs["Our Contribution"].races == 0
        assert runs["RMA-Analyzer"].races > 0
        assert runs["MUST-RMA"].races > 0


class TestMiniViteSweep:
    def test_execution_time_drops_with_ranks(self, sweep):
        for tool in ("Baseline", "Our Contribution"):
            assert sweep[16][tool].sim_elapsed_ms < sweep[8][tool].sim_elapsed_ms

    def test_every_tool_slower_than_baseline(self, sweep):
        for nranks, runs in sweep.items():
            base = runs["Baseline"].sim_elapsed_ms
            for tool in ("RMA-Analyzer", "MUST-RMA", "Our Contribution"):
                assert runs[tool].sim_elapsed_ms > base

    def test_must_rma_over_instruments_on_minivite(self, sweep):
        for nranks, runs in sweep.items():
            assert runs["MUST-RMA"].accesses_processed > \
                runs["Our Contribution"].accesses_processed

    def test_must_rma_worst_on_minivite(self, sweep):
        for nranks, runs in sweep.items():
            assert runs["MUST-RMA"].sim_elapsed_ms == max(
                r.sim_elapsed_ms for r in runs.values()
            )

    def test_ours_close_to_legacy(self, sweep):
        """Fig. 11: 'the performance is substantially the same'."""
        for nranks, runs in sweep.items():
            ours = runs["Our Contribution"].sim_elapsed_ms
            legacy = runs["RMA-Analyzer"].sim_elapsed_ms
            assert 0.5 < ours / legacy < 2.0

    def test_clean_runs(self, sweep):
        for runs in sweep.values():
            assert runs["Our Contribution"].races == 0


class TestTable4:
    def test_reduction_small_and_growing(self):
        result = table4_bst_nodes(small=1024, large=2048, rank_sweep=(2, 8))
        cells = result.data["cells"]
        for (nranks, nvertices), tools in cells.items():
            legacy = tools["RMA-Analyzer"]
            ours = tools["Our Contribution"]
            assert ours <= legacy
            assert (legacy - ours) / legacy < 0.15  # paper: < 7%
        # node counts shrink with more ranks (Table 4 rows)
        assert cells[(8, 1024)]["RMA-Analyzer"] < cells[(2, 1024)]["RMA-Analyzer"]
        # and grow with the input size (the /1,280,000 columns)
        assert cells[(2, 2048)]["RMA-Analyzer"] > cells[(2, 1024)]["RMA-Analyzer"]

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp in ("table1", "fig3", "table3", "fig10", "table4"):
            assert exp in out

    def test_run_fast_experiment(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "RMA_W-2" in out
        assert "regenerated in" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_multiple(self, capsys):
        assert main(["run", "table1", "fig3"]) == 0
        out = capsys.readouterr().out
        assert "== table1" in out and "== fig3" in out

    def test_suite_summary(self, capsys):
        assert main(["suite"]) == 0
        out = capsys.readouterr().out
        assert "codes" in out and "race" in out

    def test_suite_names(self, capsys):
        assert main(["suite", "--names"]) == 0
        out = capsys.readouterr().out
        assert "ll_get_load_outwindow_origin_race" in out


class TestJsonOutput:
    def test_json_flag_emits_json(self, capsys):
        import json

        assert main(["run", "table1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "table1"
        assert "rows" in payload["data"]

    def test_json_handles_dataclasses(self, capsys):
        import json

        assert main(["run", "static", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["data"]["static_fp"] == 0

    def test_new_experiments_registered(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "static" in out and "extensions" in out

"""Tests of the algorithm-level experiment drivers (Tables 1-3, Figs 3/5/8)."""

import pytest

from repro.experiments import (
    fig3_race_matrix,
    fig5_code1,
    fig8_code2,
    table1_combine,
    table2_named_codes,
    table3_confusion,
)


class TestTable1:
    def test_matches_paper(self):
        result = table1_combine()
        rows = result.data["rows"]
        assert rows[2][2] == "x"  # RMA_R-1 x Local_W-2
        assert rows[3] == ["RMA_W-1", "x", "x", "x", "x"]
        assert rows[0][1] == "Local_R-2"


class TestFig3:
    def test_20_cells(self):
        result = fig3_race_matrix()
        assert len(result.data["matrix"]) == 20

    def test_known_cells(self):
        matrix = fig3_race_matrix().data["matrix"]
        assert matrix[("get", "origin1", "load")]["inwindow"] == (0, 1)
        assert matrix[("get", "target", "get")]["inwindow"] == (1, 1)
        assert matrix[("get", "origin2", "put")]["inwindow"] == (1, 0)


class TestFig5:
    def test_outcome(self):
        result = fig5_code1()
        assert result.data["RMA-Analyzer"] == 0
        assert result.data["Our Contribution"] == 1
        assert "MPI_Abort" in result.text


class TestFig8:
    def test_node_counts(self):
        result = fig8_code2(iterations=200)
        assert result.data["RMA-Analyzer"] == 5 * 200 + 2
        assert result.data["Our Contribution"] == 2


class TestTable2:
    def test_matches_paper_verdicts(self):
        result = table2_named_codes()
        d = result.data
        # row 1: everyone detects
        row = d["ll_get_load_outwindow_origin_race"]
        assert row["RMA-Analyzer"] and row["MUST-RMA"] and row["Our Contribution"]
        # row 2: nobody reports
        row = d["ll_get_get_inwindow_origin_safe"]
        assert not any(row.values())
        # row 3: MUST-RMA misses (stack window)
        row = d["ll_get_load_inwindow_origin_race"]
        assert row["RMA-Analyzer"] and row["Our Contribution"]
        assert not row["MUST-RMA"]
        # row 4: only the legacy tool false-positives
        row = d["ll_load_get_inwindow_origin_safe"]
        assert row["RMA-Analyzer"]
        assert not row["MUST-RMA"] and not row["Our Contribution"]


class TestTable3:
    @pytest.fixture(scope="class")
    def result(self):
        return table3_confusion()

    def test_discriminating_counts(self, result):
        d = result.data
        assert d["Our Contribution"]["FP"] == 0
        assert d["Our Contribution"]["FN"] == 0
        assert d["RMA-Analyzer"]["FP"] == 6
        assert d["RMA-Analyzer"]["FN"] == 0
        assert d["MUST-RMA"]["FP"] == 0
        assert d["MUST-RMA"]["FN"] == 15

    def test_totals_consistent(self, result):
        for tool, cells in result.data.items():
            assert cells["FP"] + cells["FN"] + cells["TP"] + cells["TN"] == \
                sum(result.data["Our Contribution"].values())

    def test_related_work_flag(self):
        result = table3_confusion(include_related_work=True)
        assert "Park-Mirror" in result.data
        assert "MC-CChecker" in result.data
        # the mirror approach misses every local-access race
        assert result.data["Park-Mirror"]["FN"] > 15

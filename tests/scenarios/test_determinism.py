"""Determinism and coverage contract of the scenario generator.

The corpus is the standing regression oracle, so its bytes are part of
the contract: the same ``--seed`` must produce a byte-identical corpus
on every platform and every run.  The golden hashes below pin the
seed-7 corpora used by the CI gate; regenerating them is a deliberate,
reviewed act (any change to the generator's sampling order shifts every
scenario after the edit point).
"""

from __future__ import annotations

import hashlib

from repro.scenarios import (
    ACCESS_SHAPES,
    EPOCH_STYLES,
    Scenario,
    compose_scenario,
    corpus_to_jsonl,
    generate_corpus,
    load_corpus,
)

#: sha256 of ``corpus_to_jsonl(generate_corpus(seed=7, n))``
GOLDEN_SHA256_N200 = (
    "c25c1e20ceaa5fc0fa91444354e01e20a44bfce562c10bf18c17053800891766"
)
GOLDEN_SHA256_N60 = (
    "eb7225744b014d4d41a4a14d83b8cd4b63202b23ed9e61af802e5bc9229c1d3f"
)


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


class TestByteDeterminism:
    def test_same_seed_twice_is_byte_identical(self):
        a = corpus_to_jsonl(generate_corpus(7, 200))
        b = corpus_to_jsonl(generate_corpus(7, 200))
        assert a == b

    def test_golden_hash_seed7_n200(self):
        assert _sha(corpus_to_jsonl(generate_corpus(7, 200))) == (
            GOLDEN_SHA256_N200
        )

    def test_golden_hash_seed7_n60_ci_smoke(self):
        assert _sha(corpus_to_jsonl(generate_corpus(7, 60))) == (
            GOLDEN_SHA256_N60
        )

    def test_prefix_stability(self):
        """Scenario i depends only on (seed, i), never on n."""
        long = generate_corpus(7, 96)
        short = generate_corpus(7, 48)
        assert [s.to_json() for s in short] == [
            s.to_json() for s in long[:48]
        ]

    def test_different_seeds_differ(self):
        assert corpus_to_jsonl(generate_corpus(7, 48)) != (
            corpus_to_jsonl(generate_corpus(8, 48))
        )


class TestRoundTrip:
    def test_jsonl_round_trips_scenarios(self, tmp_path):
        corpus = generate_corpus(11, 30)
        path = tmp_path / "corpus.jsonl"
        path.write_text(corpus_to_jsonl(corpus))
        assert load_corpus(path) == list(corpus)

    def test_load_corpus_names_the_bad_line(self, tmp_path):
        path = tmp_path / "corpus.jsonl"
        path.write_text(compose_scenario(1, 0).to_json() + "\n{broken\n")
        try:
            load_corpus(path)
        except ValueError as exc:
            assert ":2:" in str(exc)
        else:  # pragma: no cover
            raise AssertionError("bad line accepted")

    def test_single_scenario_json_round_trip(self):
        sc = compose_scenario(3, 5)
        assert Scenario.from_json(sc.to_json()) == sc


class TestCoverage:
    """The acceptance-criteria floor of ISSUE.md, pinned as a test."""

    def test_axis_coverage_and_control_share(self):
        corpus = generate_corpus(7, 200)
        assert len(corpus) == 200
        styles = {sc.epoch_style for sc in corpus}
        shapes = {sc.access_shape for sc in corpus}
        assert styles == set(EPOCH_STYLES) and len(styles) >= 4
        assert shapes == set(ACCESS_SHAPES) and len(shapes) >= 4
        controls = sum(1 for sc in corpus if not sc.racy)
        assert controls >= 0.20 * len(corpus)

    def test_labels_are_rmaracebench_shaped(self):
        for sc in generate_corpus(7, 60):
            lab = sc.labels
            assert lab.nprocs == sc.nranks
            assert lab.sync_calls  # window lifecycle at minimum
            if sc.racy:
                assert lab.race_kind in ("local", "remote")
                assert len(lab.race_pair) == 2
                assert lab.abort_location == f"{sc.file}:20"
                assert all("@" in p for p in lab.race_pair)
            else:
                assert lab.race_kind == "none"
                assert lab.race_pair == ()
                assert not lab.abort_location
            assert len(lab.access_set) == 2

    def test_rank_counts_span_the_axis(self):
        nranks = {sc.nranks for sc in generate_corpus(7, 200)}
        assert min(nranks) == 2 and max(nranks) == 8

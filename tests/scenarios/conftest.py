"""Hypothesis configuration for the scenario-corpus suite.

Same two profiles as the property suite:

* ``ci`` (the default): 500 examples per property, derandomized so CI
  runs are reproducible, no deadline (shared runners are noisy);
* ``dev``: 50 examples for quick local iteration
  (``REPRO_HYPOTHESIS_PROFILE=dev``).
"""

from __future__ import annotations

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "ci",
    max_examples=500,
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "dev",
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("REPRO_HYPOTHESIS_PROFILE", "ci"))

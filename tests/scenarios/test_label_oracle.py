"""Label-oracle soundness, as a Hypothesis property.

For any (seed, index) the composed scenario's ``RACE_LABELS`` must agree
with what actually happens when the scenario runs under the paper's
detector on the simulated runtime:

* the detector reports a race **iff** ``RACE_KIND != "none"``;
* on racy scenarios, some reported (stored, new) location pair is
  exactly the labeled ``RACE_PAIR``, and the ``new`` access sits at the
  labeled abort location (where ``MPI_Abort`` would fire).

This is the generator's analogue of the paper's Table-3 claim — the
oracle is trusted because the detector is exact, and the detector stays
exact because the oracle gates it.  A failure on either side shrinks to
a minimized (seed, index) repro.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import OurDetector
from repro.scenarios import compose_scenario, run_scenario


def _locations(pair):
    """``MPI_Put@s0001.c:10`` -> ``s0001.c:10`` (labels carry op names)."""
    return tuple(p.split("@")[-1] for p in pair)


def _check_oracle(seed: int, index: int) -> None:
    sc = compose_scenario(seed, index)
    detector = OurDetector()
    flagged, _ = run_scenario(sc, detector)
    assert flagged == sc.racy, (
        f"label oracle broken on {sc.name}: detector={flagged} "
        f"RACE_KIND={sc.labels.race_kind!r} ({sc.category})"
    )
    if sc.racy:
        want = _locations(sc.labels.race_pair)
        got = {
            (f"{r.stored.debug.filename}:{r.stored.debug.line}",
             f"{r.new.debug.filename}:{r.new.debug.line}")
            for r in detector.reports
        }
        assert want in got, (
            f"{sc.name}: labeled RACE_PAIR {want} not among reported "
            f"pairs {sorted(got)}"
        )
        assert any(new == sc.labels.abort_location for _, new in got), (
            f"{sc.name}: no report aborts at {sc.labels.abort_location}"
        )


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    index=st.integers(min_value=0, max_value=4095),
)
def test_oracle_soundness_on_random_scenarios(seed, index):
    _check_oracle(seed, index)


@settings(max_examples=100)
@given(index=st.integers(min_value=0, max_value=199))
def test_oracle_soundness_on_the_ci_corpus(index):
    """The exact scenarios the CI gate scores (seed 7, n=200)."""
    _check_oracle(7, index)

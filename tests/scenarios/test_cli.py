"""CLI coverage for ``repro scenarios generate|score|gate``."""

from __future__ import annotations

import json

from repro.cli import main
from repro.scenarios import CORPUS_SCHEMA, TOOL_NAMES, load_corpus


def _generate(tmp_path, capsys, n=24, seed=7):
    corpus = tmp_path / "corpus.jsonl"
    assert main(["scenarios", "generate", "--seed", str(seed),
                 "-n", str(n), "-o", str(corpus)]) == 0
    capsys.readouterr()
    return corpus


class TestGenerate:
    def test_writes_corpus_and_summary(self, tmp_path, capsys):
        corpus = tmp_path / "c.jsonl"
        assert main(["scenarios", "generate", "--seed", "7", "-n", "24",
                     "-o", str(corpus)]) == 0
        out = capsys.readouterr().out
        assert "24 scenarios (seed 7)" in out
        assert len(load_corpus(corpus)) == 24

    def test_stdout_corpus(self, capsys):
        assert main(["scenarios", "generate", "-n", "3", "-o", "-"]) == 0
        out = capsys.readouterr().out
        lines = [ln for ln in out.splitlines() if ln.startswith("{")]
        assert len(lines) == 3
        assert [json.loads(ln)["index"] for ln in lines] == [0, 1, 2]

    def test_metrics_flag_reports_generation_counters(self, tmp_path,
                                                      capsys):
        assert main(["scenarios", "generate", "-n", "6",
                     "-o", str(tmp_path / "c.jsonl"), "--metrics"]) == 0
        assert "scenarios.generated" in capsys.readouterr().out


class TestScore:
    def test_score_to_file(self, tmp_path, capsys):
        corpus = _generate(tmp_path, capsys)
        out_path = tmp_path / "report.json"
        assert main(["scenarios", "score", str(corpus),
                     "-o", str(out_path)]) == 0
        report = json.loads(out_path.read_text())
        assert report["schema"] == CORPUS_SCHEMA
        assert report["scenarios"] == 24
        assert set(report["tools"]) == set(TOOL_NAMES)

    def test_score_subset_of_tools_to_stdout(self, tmp_path, capsys):
        corpus = _generate(tmp_path, capsys, n=6)
        assert main(["scenarios", "score", str(corpus),
                     "--tools", "our,staticcheck"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert set(report["tools"]) == {"our", "staticcheck"}

    def test_unknown_tool_exits_2(self, tmp_path, capsys):
        corpus = _generate(tmp_path, capsys, n=3)
        assert main(["scenarios", "score", str(corpus),
                     "--tools", "our,bogus"]) == 2
        assert "unknown tool" in capsys.readouterr().err

    def test_missing_corpus_exits_2(self, tmp_path, capsys):
        assert main(["scenarios", "score",
                     str(tmp_path / "nope.jsonl")]) == 2
        assert "repro scenarios score:" in capsys.readouterr().err


class TestGate:
    def test_pass_from_corpus(self, tmp_path, capsys):
        corpus = _generate(tmp_path, capsys)
        assert main(["scenarios", "gate", str(corpus)]) == 0
        assert "gate passed" in capsys.readouterr().out

    def test_pass_from_saved_report(self, tmp_path, capsys):
        corpus = _generate(tmp_path, capsys)
        out_path = tmp_path / "report.json"
        main(["scenarios", "score", str(corpus), "-o", str(out_path)])
        capsys.readouterr()
        assert main(["scenarios", "gate", "--report", str(out_path)]) == 0

    def test_blind_detector_fails_with_violations(self, tmp_path, capsys):
        corpus = _generate(tmp_path, capsys)
        assert main(["scenarios", "gate", str(corpus),
                     "--detector", "park_mirror"]) == 1
        out = capsys.readouterr().out
        assert "GATE:" in out and "gate FAILED" in out

    def test_relaxed_floor_passes_a_blind_detector(self, tmp_path, capsys):
        corpus = _generate(tmp_path, capsys)
        assert main(["scenarios", "gate", str(corpus),
                     "--detector", "park_mirror",
                     "--min-precision", "0", "--min-recall", "0"]) == 0

    def test_requires_exactly_one_input(self, tmp_path, capsys):
        assert main(["scenarios", "gate"]) == 2
        corpus = _generate(tmp_path, capsys, n=3)
        report = tmp_path / "r.json"
        main(["scenarios", "score", str(corpus), "-o", str(report)])
        capsys.readouterr()
        assert main(["scenarios", "gate", str(corpus),
                     "--report", str(report)]) == 2

"""The scoring harness: full-zoo tallies, disagreement taxonomy, gate.

One fixed 96-scenario corpus (seed 7 — two passes over every epoch
style x access shape x race kind combination) is scored once per module
against all six tools.  The assertions pin the differential contract:

* the paper's detector, the TSan-shadow replica and the model-checking
  replica are exact on the whole corpus (Table-3 behavior);
* every legacy / park / static disagreement lands in a *known* defect
  class — anything classified ``genuine-regression`` is a test failure
  here and a gate failure in CI.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.scenarios import (
    TOOL_NAMES,
    classify_disagreement,
    compose_scenario,
    gate_violations,
    generate_corpus,
    known_legacy_false_positive,
    score_corpus,
)

EXACT_TOOLS = ("our", "must_rma", "mc_cchecker")

#: every defect class a tool is allowed to produce on this corpus
ALLOWED_CLASSES = {
    "rma_analyzer": {"legacy-order-insensitive-fp",
                     "legacy-no-exclusive-lock-model"},
    "park_mirror": {"park-window-side-only-fn",
                    "park-no-exclusive-lock-model",
                    "park-no-atomicity-model"},
    "staticcheck": {"static-origin-side-only-fn",
                    "static-overapprox-cross-process"},
}


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(7, 96)


@pytest.fixture(scope="module")
def report(corpus):
    return score_corpus(corpus)


class TestReportShape:
    def test_header_counts(self, corpus, report):
        assert report["schema"] == "repro-scenarios-v1"
        assert report["scenarios"] == 96
        assert report["racy"] + report["controls"] == 96
        assert report["seeds"] == [7]
        assert set(report["tools"]) == set(TOOL_NAMES)

    def test_every_category_scored_for_every_tool(self, corpus, report):
        cats = {sc.category for sc in corpus}
        for tool in TOOL_NAMES:
            assert set(report["tools"][tool]["categories"]) == cats

    def test_tallies_are_consistent(self, report):
        for tool in TOOL_NAMES:
            o = report["tools"][tool]["overall"]
            assert o["tp"] + o["fp"] + o["fn"] + o["tn"] == 96
            assert 0.0 <= o["precision"] <= 1.0
            assert 0.0 <= o["recall"] <= 1.0


class TestExactTools:
    def test_perfect_precision_recall_and_abort_location(self, report):
        for tool in EXACT_TOOLS:
            o = report["tools"][tool]["overall"]
            assert o["precision"] == 1.0 and o["recall"] == 1.0, tool
            assert o["abort_accuracy"] == 1.0, tool

    def test_perfect_per_category_including_hybrid(self, report):
        for tool in EXACT_TOOLS:
            for cat, m in report["tools"][tool]["categories"].items():
                assert m["fp"] == 0 and m["fn"] == 0, (tool, cat)


class TestDisagreementTaxonomy:
    def test_no_genuine_regressions(self, report):
        bad = [d for d in report["disagreements"]
               if d["class"] == "genuine-regression"]
        assert not bad, bad

    def test_every_class_is_known_for_its_tool(self, report):
        for d in report["disagreements"]:
            assert d["class"] in ALLOWED_CLASSES[d["tool"]], d

    def test_known_blind_spots_are_present(self, report):
        """The corpus actually exercises the documented defects."""
        classes = {(d["tool"], d["class"]) for d in report["disagreements"]}
        assert ("rma_analyzer", "legacy-order-insensitive-fp") in classes
        assert ("park_mirror", "park-window-side-only-fn") in classes
        assert ("staticcheck", "static-origin-side-only-fn") in classes

    def test_park_misses_every_local_race(self, report):
        """Window-side-only mirroring is blind to origin-buffer races."""
        local = {cat: m
                 for cat, m in report["tools"]["park_mirror"]
                 ["categories"].items() if cat.endswith("/local")}
        assert local and all(m["tp"] == 0 for m in local.values())


class TestClassifier:
    """Unit-level checks of :func:`classify_disagreement`."""

    @staticmethod
    def _find(pred, n=400):
        for i in range(n):
            sc = compose_scenario(7, i)
            if pred(sc):
                return sc
        raise AssertionError("no scenario matches the predicate")

    def test_ord_control_is_the_section_5_2_class(self):
        sc = self._find(lambda s: s.variant == "ord")
        assert known_legacy_false_positive(sc)
        assert classify_disagreement(sc, "rma_analyzer", "fp") == (
            "legacy-order-insensitive-fp"
        )

    def test_excl_control_is_the_lock_model_class(self):
        sc = self._find(lambda s: s.variant == "excl")
        assert not known_legacy_false_positive(sc)
        assert classify_disagreement(sc, "rma_analyzer", "fp") == (
            "legacy-no-exclusive-lock-model"
        )
        assert classify_disagreement(sc, "park_mirror", "fp") == (
            "park-no-exclusive-lock-model"
        )

    def test_racy_scenarios_are_never_legacy_fp_material(self):
        sc = self._find(lambda s: s.racy)
        assert not known_legacy_false_positive(sc)

    def test_local_miss_is_parks_blind_spot(self):
        sc = self._find(lambda s: s.race_kind == "local")
        assert classify_disagreement(sc, "park_mirror", "fn") == (
            "park-window-side-only-fn"
        )

    def test_remote_miss_is_static_blind_spot(self):
        sc = self._find(lambda s: s.race_kind == "remote"
                        and s.access_shape != "hybrid")
        assert classify_disagreement(sc, "staticcheck", "fn") == (
            "static-origin-side-only-fn"
        )

    def test_unknown_combination_is_a_genuine_regression(self):
        sc = self._find(lambda s: s.racy and s.access_shape == "adjacent")
        assert classify_disagreement(sc, "must_rma", "fn") == (
            "genuine-regression"
        )
        assert classify_disagreement(sc, "our", "fp") == (
            "genuine-regression"
        )


class TestGate:
    def test_our_detector_passes_the_default_gate(self, report):
        assert gate_violations(report) == []

    def test_our_detector_passes_even_with_hybrid(self, report):
        assert gate_violations(report, include_hybrid=True) == []

    def test_park_mirror_fails_on_non_hybrid_categories(self, report):
        out = gate_violations(report, detector="park_mirror")
        assert out and all("park_mirror" in v for v in out)
        assert any("recall" in v for v in out)

    def test_raised_floor_can_fail_a_good_tool(self, report):
        # rma_analyzer has perfect recall; its order-insensitivity FPs
        # live in the hybrid categories (local-then-RMA ord controls)
        assert gate_violations(report, detector="rma_analyzer",
                               min_recall=1.0, min_precision=0.0,
                               include_hybrid=True) == []
        assert gate_violations(report, detector="rma_analyzer",
                               min_precision=1.0, include_hybrid=True)

    def test_missing_detector_is_reported(self, report):
        (msg,) = gate_violations(report, detector="nope")
        assert "nope" in msg


class TestObsMetrics:
    def test_verdict_counters_emitted(self):
        corpus = generate_corpus(7, 12)
        with obs.scope() as reg:
            score_corpus(corpus, tools=("our",))
            snap = reg.snapshot()
        counters = snap["counters"]
        tp = counters.get(obs.metric_key(
            "scenarios.verdict", {"detector": "our", "outcome": "tp"}), 0)
        tn = counters.get(obs.metric_key(
            "scenarios.verdict", {"detector": "our", "outcome": "tn"}), 0)
        assert tp + tn == 12  # exact tool: every verdict is tp or tn

    def test_generated_counters_emitted(self):
        with obs.scope() as reg:
            corpus = generate_corpus(7, 12)
            snap = reg.snapshot()
        generated = {k: v for k, v in snap["counters"].items()
                     if k.startswith("scenarios.generated")}
        assert sum(generated.values()) == 12
        assert len(generated) == len({sc.category for sc in corpus})

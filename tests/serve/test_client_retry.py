"""``submit_with_retry``: polite, bounded, unsynchronized backpressure.

All tests monkeypatch :func:`repro.serve.client.submit_trace` and
inject ``sleep``/``rng`` — no daemon, no clock, fully deterministic.
"""

import pytest

import repro.serve.client as client_mod
from repro.serve import submit_with_retry


class _FixedRng:
    """``random()`` always returns the same fraction (jitter pinned)."""

    def __init__(self, value):
        self.value = value

    def random(self):
        return self.value


def _scripted(monkeypatch, responses):
    """Feed canned ``(status, headers, payload)`` responses in order."""
    calls = []

    def fake(base, trace, *, detector="our", tenant="default", timeout=60.0):
        calls.append((base, str(trace), detector, tenant))
        return responses[min(len(calls) - 1, len(responses) - 1)]

    monkeypatch.setattr(client_mod, "submit_trace", fake)
    return calls


def test_immediate_accept_never_sleeps(monkeypatch, tmp_path):
    _scripted(monkeypatch, [(202, {}, {"id": "j1"})])
    slept = []
    status, _, payload, attempts = submit_with_retry(
        "http://x", tmp_path / "t", sleep=slept.append)
    assert (status, attempts) == (202, 1)
    assert payload["id"] == "j1" and slept == []


def test_retry_after_is_a_floor_on_the_delay(monkeypatch, tmp_path):
    """The server's hint wins whenever it exceeds the jittered backoff."""
    _scripted(monkeypatch, [
        (429, {"Retry-After": "3"}, {"error": "queue_full"}),
        (429, {"retry-after": "0"}, {"error": "queue_full"}),  # any case
        (202, {}, {"id": "j1"}),
    ])
    slept = []
    status, _, _, attempts = submit_with_retry(
        "http://x", tmp_path / "t", max_wait_s=60.0,
        sleep=slept.append, rng=_FixedRng(0.5))
    assert (status, attempts) == (202, 3)
    assert slept[0] == 3.0            # hint 3 > 0.25 * 0.5 backoff
    assert slept[1] == 0.5 * 0.5      # hint 0: jittered 2nd backoff wins


def test_backoff_doubles_and_caps(monkeypatch, tmp_path):
    _scripted(monkeypatch, [(429, {}, {"error": "queue_full"})] * 5
              + [(202, {}, {"id": "j1"})])
    slept = []
    status, _, _, attempts = submit_with_retry(
        "http://x", tmp_path / "t", max_wait_s=1000.0, backoff_max=1.0,
        sleep=slept.append, rng=_FixedRng(1.0))
    assert (status, attempts) == (202, 6)
    assert slept == [0.25, 0.5, 1.0, 1.0, 1.0]  # capped at backoff_max


def test_jitter_desynchronizes(monkeypatch, tmp_path):
    """Zero jitter (rng → 0) with no hint means immediate retries."""
    _scripted(monkeypatch, [(503, {}, {"error": "draining"}),
                            (202, {}, {"id": "j1"})])
    slept = []
    submit_with_retry("http://x", tmp_path / "t", sleep=slept.append,
                      rng=_FixedRng(0.0))
    assert slept == [0.0]


def test_gives_up_when_budget_exhausted(monkeypatch, tmp_path):
    """A delay that would blow ``max_wait_s`` returns the rejection."""
    _scripted(monkeypatch, [(429, {"Retry-After": "30"},
                             {"error": "queue_full"})])
    slept = []
    status, headers, payload, attempts = submit_with_retry(
        "http://x", tmp_path / "t", max_wait_s=5.0,
        sleep=slept.append, rng=_FixedRng(0.5))
    assert status == 429 and attempts == 1
    assert payload["error"] == "queue_full"
    assert slept == []  # never sleeps past the budget, fails fast instead


def test_max_wait_zero_means_single_shot(monkeypatch, tmp_path):
    calls = _scripted(monkeypatch, [(429, {}, {"error": "queue_full"})])
    status, _, _, attempts = submit_with_retry(
        "http://x", tmp_path / "t", max_wait_s=0.0,
        sleep=lambda s: pytest.fail("must not sleep"), rng=_FixedRng(1.0))
    assert (status, attempts) == (429, 1)
    assert len(calls) == 1


def test_non_backpressure_status_is_not_retried(monkeypatch, tmp_path):
    calls = _scripted(monkeypatch, [(400, {}, {"error": "bad detector"})])
    status, _, _, attempts = submit_with_retry(
        "http://x", tmp_path / "t",
        sleep=lambda s: pytest.fail("must not sleep"))
    assert (status, attempts) == (400, 1)
    assert len(calls) == 1


def test_negative_budget_rejected(tmp_path):
    with pytest.raises(ValueError):
        submit_with_retry("http://x", tmp_path / "t", max_wait_s=-1.0)

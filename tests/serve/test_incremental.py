"""Serve-side incremental re-analysis: prefix-resume, eviction, chaos.

A resubmitted trace that is an append-only extension of an
already-analyzed one must resume from the ancestor's retained
checkpoint cursor instead of re-analyzing the shared prefix — with
verdicts byte-identical to a from-scratch run, lineage journaled for
crash recovery, and rewritten history refused as an ancestor.  The
verdict cache that anchors all of this is bounded: LRU eviction drops
the entry, its chain sidecar, and its retained checkpoint state
together.
"""

import json
import shutil
import time

from repro.faultinject import extend_trace, rewrite_prefix
from repro.pipeline import analyze_trace, trace_chain
from repro.serve import Scheduler, poll_job, request, submit_trace
from repro.serve.scheduler import job_ckpt_dir


def _wait(sched, jid, *, states=("done", "failed", "quarantined"),
          timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        job = sched.get_job(jid)
        if job and job["state"] in states:
            return job
        time.sleep(0.02)
    raise AssertionError(
        f"job {jid} never reached {states}: {sched.get_job(jid)}")


def _counters(sched):
    return sched.registry.snapshot()["counters"]


def _canon(verdicts):
    return json.dumps(verdicts, sort_keys=True)


# -- prefix-resume ------------------------------------------------------------

def test_grown_trace_resumes_from_prefix(make_scheduler, chaos_trace,
                                         tmp_path):
    work = tmp_path / "grow.trace"
    shutil.copyfile(chaos_trace, work)
    old_chunks = len(trace_chain(work)["chunks"])

    state = tmp_path / "state"
    sched = make_scheduler(state, workers=1)
    sched.start()
    first = _wait(sched, sched.submit_bytes(work.read_bytes()).id)
    assert first["state"] == "done" and first["resumed_from"] is None

    grown = extend_trace(work, fraction=0.10)
    assert grown["chunks_after"] > grown["chunks_before"]
    job = sched.submit_bytes(work.read_bytes())
    assert job.resumed_from == first["trace_sha"]
    assert job.prefix_chunks == old_chunks
    done = _wait(sched, job.id)
    assert done["state"] == "done" and not done["cached"]
    # the winning attempt really resumed mid-trace
    assert done["resumed"] and done["resumed"][0]["chunks_skipped"] > 0

    counters = _counters(sched)
    assert counters["incremental.prefix_hits"] == 1
    assert counters["incremental.chunks_skipped"] >= old_chunks

    # byte-identical to a direct, daemon-free analysis of the grown file
    oracle = analyze_trace(work, detector="our", jobs=1).to_dict()
    result = sched.get_result(job.id)
    assert _canon(result["verdicts"]) == _canon(oracle["verdicts"])
    assert result["forensics"] == oracle["forensics"]
    assert result["events_total"] == oracle["events_total"]


def test_prefix_plan_is_journaled_for_recovery(make_scheduler, chaos_trace,
                                              tmp_path):
    """Lineage survives a scheduler restart: recovery re-reads the plan."""
    work = tmp_path / "grow.trace"
    shutil.copyfile(chaos_trace, work)
    state = tmp_path / "state"
    sched = make_scheduler(state, workers=1)
    sched.start()
    first = _wait(sched, sched.submit_bytes(work.read_bytes()).id)
    extend_trace(work, fraction=0.10)
    job = sched.submit_bytes(work.read_bytes())
    _wait(sched, job.id)
    sched.drain(timeout=10.0)

    fresh = Scheduler(state, workers=1)
    fresh.recover()
    replayed = fresh.get_job(job.id)
    assert replayed["resumed_from"] == first["trace_sha"]
    assert replayed["prefix_chunks"] > 0


def test_rewritten_history_is_not_an_ancestor(make_scheduler, chaos_trace,
                                              tmp_path):
    """Self-consistently rewritten bytes diverge: full re-analysis."""
    work = tmp_path / "mut.trace"
    shutil.copyfile(chaos_trace, work)
    sched = make_scheduler(workers=1)
    sched.start()
    _wait(sched, sched.submit_bytes(work.read_bytes()).id)

    rewrite_prefix(work, chunk=2, seed=3)
    job = sched.submit_bytes(work.read_bytes())
    assert job.resumed_from is None and job.prefix_chunks == 0
    done = _wait(sched, job.id)
    assert done["state"] == "done"
    assert not done["resumed"], "diverged history must not resume"

    counters = _counters(sched)
    assert counters["incremental.divergences"] >= 1
    assert "incremental.prefix_hits" not in counters

    # the fresh run is still correct for the file as it now is
    oracle = analyze_trace(work, detector="our", jobs=1).to_dict()
    assert _canon(sched.get_result(job.id)["verdicts"]) == \
        _canon(oracle["verdicts"])


# -- bounded cache ------------------------------------------------------------

def test_cache_evicts_lru_entry_sidecar_and_ckpt(make_scheduler, small_trace,
                                                 chaos_trace):
    sched = make_scheduler(workers=1, cache_max=1)
    sched.start()
    first = _wait(sched, sched.submit_bytes(small_trace.read_bytes()).id)
    sha1 = first["trace_sha"]
    assert sched.cache.get(sha1, "our") is not None
    assert sched.cache.get_chain(sha1, "our") is not None
    assert job_ckpt_dir(sched.ckpt_base, sha1, "our").exists()

    second = _wait(sched, sched.submit_bytes(chaos_trace.read_bytes()).id)
    sha2 = second["trace_sha"]
    # the older entry, its chain sidecar, and its retained checkpoint
    # state are gone together — nothing left to resume from
    assert sched.cache.get(sha1, "our") is None
    assert sched.cache.get_chain(sha1, "our") is None
    assert not job_ckpt_dir(sched.ckpt_base, sha1, "our").exists()
    assert sched.cache.get(sha2, "our") is not None
    assert _counters(sched)["serve.cache.evicted"] == 1

    # an evicted ancestor is silently a cache miss, never an error
    job = sched.submit_bytes(small_trace.read_bytes())
    done = _wait(sched, job.id)
    assert done["state"] == "done" and done["resumed_from"] is None


def test_cache_touch_protects_recently_read_entry(make_scheduler, small_trace,
                                                  chaos_trace, tmp_path):
    """LRU means *used*, not *inserted*: a get refreshes the entry."""
    sched = make_scheduler(workers=1, cache_max=2)
    sched.start()
    first = _wait(sched, sched.submit_bytes(small_trace.read_bytes()).id)
    work = tmp_path / "third.trace"
    shutil.copyfile(chaos_trace, work)
    extend_trace(work, fraction=0.05)
    second = _wait(sched, sched.submit_bytes(chaos_trace.read_bytes()).id)
    time.sleep(0.05)  # mtime resolution
    assert sched.cache.get(first["trace_sha"], "our") is not None  # touch
    third = _wait(sched, sched.submit_bytes(work.read_bytes()).id)
    assert third["state"] == "done"
    # the untouched middle entry was evicted, the touched first survives
    assert sched.cache.get(first["trace_sha"], "our") is not None
    assert sched.cache.get(second["trace_sha"], "our") is None


# -- daemon-level chaos -------------------------------------------------------

def test_sigkill_mid_incremental_job_recovers_byte_identical(
        spawn_daemon, tmp_path, chaos_trace, chaos_oracle):
    """kill -9 between prefix-resume and completion: restart finishes it."""
    state = tmp_path / "svc"
    work = tmp_path / "grow.trace"
    shutil.copyfile(chaos_trace, work)

    # phase 1: a healthy daemon analyzes the original trace
    proc1, base1 = spawn_daemon(state, "--workers", "1")
    status, _, job1 = submit_trace(base1, work)
    assert status == 202
    assert poll_job(base1, job1["id"], timeout_s=90.0)["state"] == "done"
    proc1.terminate()
    proc1.wait(timeout=30)

    # phase 2: grow the trace, arm a kill right after the resumed job's
    # first checkpoint write, and resubmit
    extend_trace(work, fraction=0.10)
    proc2, base2 = spawn_daemon(
        state, "--workers", "1",
        env_extra={"REPRO_SERVE_FAULT": "kill-after-ckpt:1"})
    status, _, job2 = submit_trace(base2, work)
    assert status == 202
    assert job2["id"] != job1["id"]
    assert proc2.wait(timeout=90) == 137
    out = proc2.stdout.read()
    assert "prefix-resume" in out, out

    # phase 3: restart over the same state; the journaled plan replays
    proc3, base3 = spawn_daemon(state, "--workers", "1")
    done = poll_job(base3, job2["id"], timeout_s=90.0)
    assert done["state"] == "done", done
    assert done["resumed"] and done["resumed"][0]["chunks_skipped"] > 0

    oracle = analyze_trace(work, detector="our", jobs=1).to_dict()
    status, _, result = request(f"{base3}/jobs/{job2['id']}/result")
    assert status == 200
    assert _canon(result["verdicts"]) == _canon(oracle["verdicts"])
    assert result["forensics"] == oracle["forensics"]
    # and the original job's verdicts are still served, unchanged
    status, _, old = request(f"{base3}/jobs/{job1['id']}/result")
    assert status == 200
    assert _canon(old["verdicts"]) == _canon(chaos_oracle["verdicts"])

"""Fixtures for the daemon suite: traces, schedulers, in-process servers.

Two ways to get a daemon:

* :func:`daemon` — an in-process ``ReproServer`` + ``Scheduler`` on an
  ephemeral port (fast; shares the test process, so chaos that kills
  the process cannot use it);
* :func:`spawn_daemon` — a real ``repro serve`` *subprocess*, used by
  the chaos certification where the daemon must actually die.

Every scheduler gets its own enabled obs registry so counter
assertions never see another test's increments.
"""

import importlib.util
import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.obs.registry import Registry
from repro.pipeline import (
    BinaryTraceWriter,
    TraceReader,
    analyze_trace,
    record_app,
)
from repro.serve import ReproServer, Scheduler, ServeConfig

HANG_LIMIT = 120

_HAVE_PYTEST_TIMEOUT = importlib.util.find_spec("pytest_timeout") is not None


@pytest.fixture(autouse=True)
def hang_guard(request):
    """SIGALRM fallback for environments without pytest-timeout."""
    if _HAVE_PYTEST_TIMEOUT:
        yield
        return

    def _expired(signum, frame):
        raise TimeoutError(
            f"{request.node.nodeid} exceeded {HANG_LIMIT}s — "
            "the serve runtime hung"
        )

    old = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(HANG_LIMIT)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, old)


@pytest.fixture(scope="session")
def small_trace(tmp_path_factory):
    """A quick race-free histogram run (session-scoped)."""
    path = tmp_path_factory.mktemp("serve") / "hist.trace"
    record_app("histogram", nranks=4, out=path, format="binary")
    return path


@pytest.fixture(scope="session")
def chaos_trace(tmp_path_factory):
    """A racy miniVite run re-chunked small (~12 chunks).

    The chaos injectors key off checkpoint writes (one per chunk at
    the daemon's default cadence), so the trace must span enough
    chunks that a kill after the 2nd checkpoint is genuinely mid-run.
    """
    base = tmp_path_factory.mktemp("serve") / "mv_raw.trace"
    record_app("minivite", nranks=4, size=256, inject_race=True,
               out=base, format="binary")
    reader = TraceReader(base)
    path = base.with_name("mv_chunked.trace")
    with BinaryTraceWriter(path, nranks=reader.nranks,
                           events_per_chunk=200) as writer:
        for event in reader:
            writer.write(event)
    return path


@pytest.fixture(scope="session")
def chaos_oracle(chaos_trace):
    """Direct (daemon-free) analysis of the chaos trace — the parity oracle."""
    return analyze_trace(chaos_trace, detector="our", jobs=1).to_dict()


@pytest.fixture
def make_scheduler(tmp_path):
    """Factory for schedulers with a private obs registry."""
    made = []

    def _make(state=None, **kwargs):
        sched = Scheduler(state if state is not None else tmp_path / "state",
                          **kwargs)
        sched.registry = Registry(enabled=True)
        made.append(sched)
        return sched

    yield _make
    for sched in made:
        sched.drain(timeout=5.0)


@pytest.fixture
def daemon(tmp_path):
    """Factory: in-process HTTP daemon on an ephemeral port.

    Returns ``(base_url, scheduler, httpd)``.  ``start_workers=False``
    leaves submitted jobs parked in ``queued`` — the deterministic way
    to fill the admission queue.
    """
    started = []

    def _start(state=None, *, start_workers=True, **overrides):
        state = Path(state if state is not None else tmp_path / "svc")
        config = ServeConfig(state_dir=str(state), port=0, **overrides)
        sched = Scheduler(
            state, workers=config.workers, max_queue=config.max_queue,
            tenant_cap=config.tenant_cap, retries=config.retries,
            deadline_s=config.deadline_s, max_rss_mb=config.max_rss_mb,
            ckpt_every=config.ckpt_every,
        )
        sched.registry = Registry(enabled=True)
        sched.recover()
        if start_workers:
            sched.start()
        httpd = ReproServer(config, sched)
        threading.Thread(target=httpd.serve_forever,
                         kwargs={"poll_interval": 0.05},
                         daemon=True).start()
        host, port = httpd.server_address[:2]
        started.append((httpd, sched))
        return f"http://{host}:{port}", sched, httpd

    yield _start
    for httpd, sched in started:
        httpd.shutdown()
        httpd.server_close()
        sched.drain(timeout=5.0)


@pytest.fixture
def spawn_daemon():
    """Factory: a real ``repro serve`` subprocess, discovered via serve.json.

    Returns ``(process, base_url)``.  The chaos tests need a process
    that can be SIGKILLed (or kill itself via ``REPRO_SERVE_FAULT``)
    without taking pytest down with it.
    """
    procs = []

    def _spawn(state, *extra_args, env_extra=None, startup_s=20.0):
        state = Path(state)
        state.mkdir(parents=True, exist_ok=True)
        endpoint = state / "serve.json"
        endpoint.unlink(missing_ok=True)
        env = dict(os.environ)
        if env_extra:
            env.update(env_extra)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--state", str(state),
             *extra_args],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True,
        )
        procs.append(proc)
        deadline = time.monotonic() + startup_s
        while time.monotonic() < deadline:
            if endpoint.exists():
                try:
                    info = json.loads(endpoint.read_text())
                except ValueError:
                    info = {}
                if info.get("pid") == proc.pid:
                    return proc, f"http://{info['host']}:{info['port']}"
            if proc.poll() is not None:
                raise RuntimeError(
                    f"daemon died at startup:\n{proc.stdout.read()}")
            time.sleep(0.05)
        proc.kill()
        raise RuntimeError("daemon never published serve.json")

    yield _spawn
    for proc in procs:
        if proc.poll() is None:
            proc.terminate()
            try:
                proc.wait(timeout=15)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        if proc.stdout is not None:
            proc.stdout.close()

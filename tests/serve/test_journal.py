"""The ``repro-jobs-v1`` journal: durability, damage handling, rotation."""

import os
import subprocess
import sys

import pytest

from repro.faultinject import corrupt_journal_record
from repro.serve import JobJournal, JournalError


def _records(n, start=0):
    return [{"op": "state", "job": {"id": f"j{i:06d}", "state": "queued"}}
            for i in range(start, start + n)]


def test_round_trip(tmp_path):
    journal = JobJournal(tmp_path / "jobs.journal")
    recs = _records(5)
    for rec in recs:
        journal.append(rec)
    assert journal.appended == 5
    assert journal.replay() == recs
    assert journal.quarantined == []


def test_replay_of_missing_file_is_empty(tmp_path):
    assert JobJournal(tmp_path / "nope.journal").replay() == []


def test_append_after_replay_extends(tmp_path):
    journal = JobJournal(tmp_path / "jobs.journal")
    journal.append(_records(1)[0])
    journal.replay()
    journal.append(_records(1, start=1)[0])
    assert [r["job"]["id"] for r in journal.replay()] == ["j000000", "j000001"]


def test_torn_tail_is_trimmed_without_quarantine(tmp_path):
    path = tmp_path / "jobs.journal"
    journal = JobJournal(path)
    for rec in _records(3):
        journal.append(rec)
    journal.close()
    # a crash mid-append leaves an incomplete final frame
    blob = path.read_bytes()
    path.write_bytes(blob[:-7])
    replayed = journal.replay()
    assert len(replayed) == 2
    assert any("torn tail" in note for note in journal.quarantined)
    assert not path.with_suffix(path.suffix + ".bad").exists()
    # the trimmed journal is clean: appends extend it and replay agrees
    journal.append(_records(1, start=9)[0])
    assert len(journal.replay()) == 3


def test_truncate_mode_is_torn_tail(tmp_path):
    path = tmp_path / "jobs.journal"
    journal = JobJournal(path)
    for rec in _records(2):
        journal.append(rec)
    journal.close()
    corrupt_journal_record(path, record=2, mode="truncate")
    assert len(journal.replay()) == 1
    assert not path.with_suffix(path.suffix + ".bad").exists()


def test_corrupt_record_quarantines_suffix(tmp_path):
    path = tmp_path / "jobs.journal"
    journal = JobJournal(path)
    for rec in _records(4):
        journal.append(rec)
    journal.close()
    corrupt_journal_record(path, record=2, mode="flip")
    replayed = journal.replay()
    # the valid prefix survives; the damaged suffix (records 2..4) is
    # quarantined to .bad, never silently dropped
    assert [r["job"]["id"] for r in replayed] == ["j000000"]
    bad = path.with_suffix(path.suffix + ".bad")
    assert bad.exists() and bad.stat().st_size > 0
    assert any("crc mismatch" in note for note in journal.quarantined)


def test_corrupt_then_replay_leaves_clean_journal(tmp_path):
    path = tmp_path / "jobs.journal"
    journal = JobJournal(path)
    for rec in _records(3):
        journal.append(rec)
    journal.close()
    corrupt_journal_record(path, record=3, mode="flip")
    journal.replay()
    # after quarantine+truncate the file replays clean
    fresh = JobJournal(path)
    assert len(fresh.replay()) == 2
    assert fresh.quarantined == []


def test_bad_magic_raises(tmp_path):
    path = tmp_path / "jobs.journal"
    path.write_bytes(b"NOTAJRNL" + b"\x00" * 16)
    with pytest.raises(JournalError, match="magic"):
        JobJournal(path).replay()


def test_compaction_rewrites_atomically(tmp_path):
    path = tmp_path / "jobs.journal"
    journal = JobJournal(path)
    for rec in _records(20):
        journal.append(rec)
    live = _records(2)
    journal.compact(live)
    assert journal.appended == 0
    assert journal.replay() == live
    assert not path.with_suffix(path.suffix + ".tmp").exists()


_COMPACT_CHILD = """
import os, sys
from repro.serve import JobJournal

path, stage = sys.argv[1], sys.argv[2]
new = [{"op": "state", "job": {"id": f"n{i:06d}", "state": "done"}}
       for i in range(8)]
JobJournal(path).compact(
    new, fault_hook=lambda s: os._exit(137) if s == stage else None)
"""


@pytest.mark.parametrize("stage", ["mid-write", "pre-replace",
                                   "post-replace"])
def test_kill9_during_compaction_leaves_old_or_new(tmp_path, stage):
    """Dying at any point of the rotation: replay sees exactly one epoch.

    ``mid-write`` and ``pre-replace`` die before the ``os.replace`` —
    the old journal must still replay in full, half-written tmp file
    notwithstanding.  ``post-replace`` dies after — the compacted set
    must replay.  Never a hybrid, never quarantine.
    """
    path = tmp_path / "jobs.journal"
    journal = JobJournal(path)
    old = _records(20)
    for rec in old:
        journal.append(rec)
    journal.close()

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
    proc = subprocess.run(
        [sys.executable, "-c", _COMPACT_CHILD, str(path), stage],
        env=env, capture_output=True, text=True)
    assert proc.returncode == 137, proc.stderr

    new = [{"op": "state", "job": {"id": f"n{i:06d}", "state": "done"}}
           for i in range(8)]
    fresh = JobJournal(path)
    replayed = fresh.replay()
    if stage == "post-replace":
        assert replayed == new
    else:
        assert replayed == old
    assert fresh.quarantined == []
    # the next compaction cycles cleanly over whatever survived
    fresh.compact(new)
    assert JobJournal(path).replay() == new


def test_corrupt_journal_record_validates_input(tmp_path):
    path = tmp_path / "jobs.journal"
    journal = JobJournal(path)
    journal.append(_records(1)[0])
    journal.close()
    with pytest.raises(ValueError, match="no record 9"):
        corrupt_journal_record(path, record=9)
    (tmp_path / "x").write_bytes(b"junkjunkjunk")
    with pytest.raises(ValueError, match="not a repro-jobs-v1"):
        corrupt_journal_record(tmp_path / "x")

"""Concurrent checkpointing: per-job directories must never collide.

The daemon runs several checkpointed analyses at once against one
shared checkpoint base.  Isolation comes from :func:`job_ckpt_dir`
keying each job's subdirectory by trace content hash + detector —
these tests pin that contract and exercise `CheckpointStore` from
many threads at once.
"""

import threading

from repro.pipeline.checkpoint import CheckpointStore
from repro.serve import job_ckpt_dir


def test_job_ckpt_dirs_are_distinct(tmp_path):
    a = job_ckpt_dir(tmp_path, "a" * 64, "our")
    b = job_ckpt_dir(tmp_path, "b" * 64, "our")
    c = job_ckpt_dir(tmp_path, "a" * 64, "rma")
    assert len({a, b, c}) == 3
    # identical trace + detector maps to the same directory, so a
    # resubmitted job reuses its own resumable state
    assert job_ckpt_dir(tmp_path, "a" * 64, "our") == a


def test_concurrent_stores_in_separate_job_dirs(tmp_path):
    """N threads checkpoint concurrently; each lane recovers its own state."""
    nthreads, writes = 8, 6
    errors = []
    barrier = threading.Barrier(nthreads)

    def work(i):
        try:
            sha = f"{i:02x}" * 32
            store = CheckpointStore(job_ckpt_dir(tmp_path, sha, "our"),
                                    "serial")
            barrier.wait(timeout=30)
            for seq in range(writes):
                store.write({"cursor": i * 1000 + seq}, {"owner": i,
                                                         "seq": seq})
            header, state = store.load_latest()
            assert state["owner"] == i
            assert state["seq"] == writes - 1
            assert header["meta"]["cursor"] == i * 1000 + writes - 1
            assert store.quarantined == []
        except Exception as exc:  # noqa: BLE001 - surfaced below
            errors.append((i, exc))

    threads = [threading.Thread(target=work, args=(i,))
               for i in range(nthreads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert errors == []
    # every job dir pruned independently down to its keep-window
    for i in range(nthreads):
        d = job_ckpt_dir(tmp_path, f"{i:02x}" * 32, "our")
        kept = sorted(d.glob("serial-*.ckpt"))
        assert len(kept) == 2  # keep=2 generations


def test_same_dir_same_lane_is_still_last_writer_wins(tmp_path):
    """Control: *without* per-job dirs, lanes interleave — the hazard
    job_ckpt_dir exists to rule out."""
    shared = tmp_path / "shared"
    a = CheckpointStore(shared, "serial")
    b = CheckpointStore(shared, "serial")
    a.write({"cursor": 1}, {"owner": "a"})
    b.write({"cursor": 2}, {"owner": "b"})
    _, state = a.load_latest()
    assert state["owner"] == "b"  # a's recovery would get b's state

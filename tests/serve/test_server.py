"""The HTTP layer: routes, uploads, backpressure, health, drain."""

import json
import time
import urllib.request

from repro.faultinject import sever_mid_upload
from repro.serve import poll_job, request, submit_trace


def _metrics_text(base):
    status, _, payload = request(f"{base}/metrics")
    assert status == 200
    return payload.get("raw", "")


def test_submit_poll_result_report(daemon, small_trace):
    base, sched, _ = daemon()
    status, _, job = submit_trace(base, small_trace)
    assert status == 202
    assert job["state"] in ("queued", "running")
    job = poll_job(base, job["id"], timeout_s=60.0)
    assert job["state"] == "done"

    status, _, result = request(f"{base}/jobs/{job['id']}/result")
    assert status == 200
    assert result["races"] == 0 and "verdicts" in result

    with urllib.request.urlopen(
            f"{base}/jobs/{job['id']}/report.html", timeout=30) as resp:
        html = resp.read().decode("utf-8")
    assert resp.status == 200 and "<html" in html.lower()


def test_cached_resubmission_via_counters(daemon, small_trace):
    base, sched, _ = daemon()
    _, _, first = submit_trace(base, small_trace)
    poll_job(base, first["id"], timeout_s=60.0)
    status, _, again = submit_trace(base, small_trace)
    assert status == 202
    assert again["state"] == "done" and again["cached"]
    status, _, snap = request(f"{base}/metrics?format=json")
    assert status == 200 and snap["schema"] == "repro-obs-v1"
    assert snap["counters"]["serve.cache.hits"] == 1
    assert snap["counters"]["serve.jobs.started"] == 1
    assert "serve.cache.hits" in _metrics_text(base)


def test_health_and_ready(daemon):
    base, _, httpd = daemon()
    status, _, body = request(f"{base}/healthz")
    assert status == 200 and body["ok"]
    status, _, body = request(f"{base}/readyz")
    assert status == 200 and body["ready"]
    httpd.draining.set()
    status, _, body = request(f"{base}/readyz")
    assert status == 503 and body["reason"] == "draining"
    status, headers, _ = request(f"{base}/jobs", method="POST", data=b"x")
    assert status == 503


def test_queue_full_gets_429_with_retry_after(daemon, small_trace):
    # workers never start, so the first job camps in the queue
    base, _, _ = daemon(start_workers=False, max_queue=1)
    status, _, _ = submit_trace(base, small_trace, detector="our")
    assert status == 202
    status, headers, body = submit_trace(base, small_trace, detector="rma")
    assert status == 429
    assert body["error"] == "queue_full"
    assert int(headers["Retry-After"]) >= 1


def test_rejects_garbage_inputs(daemon, small_trace):
    base, _, _ = daemon(start_workers=False)
    status, _, body = request(f"{base}/jobs?detector=nope", method="POST",
                              data=small_trace.read_bytes())
    assert status == 400 and "unknown detector" in body["error"]
    status, _, body = request(f"{base}/jobs?tenant=bad/name", method="POST",
                              data=small_trace.read_bytes())
    assert status == 400 and "tenant" in body["error"]
    status, _, body = request(f"{base}/jobs", method="POST",
                              data=b"this is not a trace " * 10)
    assert status == 400 and "not a readable trace" in body["error"]
    status, _, _ = request(f"{base}/nope")
    assert status == 404
    status, _, _ = request(f"{base}/jobs/j999999")
    assert status == 404


def test_result_of_unfinished_job_is_409(daemon, small_trace):
    base, _, _ = daemon(start_workers=False)
    _, _, job = submit_trace(base, small_trace)
    status, _, body = request(f"{base}/jobs/{job['id']}/result")
    assert status == 409 and body["job"]["state"] == "queued"


def test_severed_upload_never_becomes_a_job(daemon, small_trace):
    base, sched, _ = daemon(start_workers=False)
    host, port = base[len("http://"):].rsplit(":", 1)
    data = small_trace.read_bytes()
    sever_mid_upload(host, int(port), claim_bytes=len(data),
                     body=data[: len(data) // 2])
    # give the handler thread a beat to hit the short read
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        snap = sched.registry.snapshot()["counters"]
        if snap.get("serve.uploads.rejected{reason=truncated}"):
            break
        time.sleep(0.05)
    assert snap["serve.uploads.rejected{reason=truncated}"] == 1
    # no job, no stray spool file, and the daemon is still healthy
    status, _, body = request(f"{base}/jobs")
    assert status == 200 and body["jobs"] == []
    assert not list(sched.traces_dir.glob(".upload-*"))
    status, _, _ = request(f"{base}/healthz")
    assert status == 200


def test_jobs_listing_round_trips(daemon, small_trace):
    base, _, _ = daemon()
    _, _, job = submit_trace(base, small_trace, tenant="alice")
    poll_job(base, job["id"], timeout_s=60.0)
    status, _, body = request(f"{base}/jobs")
    assert status == 200
    listed = {j["id"]: j for j in body["jobs"]}
    assert listed[job["id"]]["tenant"] == "alice"
    assert json.dumps(body)  # JSON-able end to end

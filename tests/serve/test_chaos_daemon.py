"""Chaos certification: the daemon's recovery claims, failure by failure.

Each test injects one failure from the certified set — SIGKILL
mid-job, a stalled worker, queue overload — against a *real*
``repro serve`` subprocess and asserts the recovery contract:
interrupted jobs resume from their checkpoints and finish with
verdicts byte-identical to a direct, daemon-free analysis.

The injectors are armed through ``REPRO_SERVE_FAULT`` (checkpoint-
write hooks), so every "crash" lands at a reproducible point instead
of wherever the scheduler happened to be.
"""

import json

from repro.serve import poll_job, request, submit_trace


def _canon(verdicts):
    return json.dumps(verdicts, sort_keys=True)


def test_sigkill_mid_job_resumes_to_identical_verdicts(
        spawn_daemon, tmp_path, chaos_trace, chaos_oracle):
    state = tmp_path / "svc"
    # arm the injector: the daemon os._exit(137)s right after the job's
    # 2nd checkpoint write — to every file it is exactly `kill -9`
    proc, base = spawn_daemon(
        state, "--workers", "1",
        env_extra={"REPRO_SERVE_FAULT": "kill-after-ckpt:2"})
    status, _, job = submit_trace(base, chaos_trace)
    assert status == 202
    assert proc.wait(timeout=60) == 137

    # restart over the same state: the journal replays, the job is
    # requeued, and the analysis resumes from its checkpoint cursor
    proc2, base2 = spawn_daemon(state)
    done = poll_job(base2, job["id"], timeout_s=90.0)
    assert done["state"] == "done", done
    assert done["attempts"] >= 2
    assert done["resumed"], "expected a checkpoint resume, not a re-run"
    assert done["resumed"][0]["from_seq"] >= 2

    status, _, result = request(f"{base2}/jobs/{job['id']}/result")
    assert status == 200
    assert done["races"] == chaos_oracle["races"]
    assert _canon(result["verdicts"]) == _canon(chaos_oracle["verdicts"])


def test_stalled_worker_leaves_daemon_healthy(
        spawn_daemon, tmp_path, chaos_trace):
    # the worker wedges for 2s after its 1st checkpoint; a 1s deadline
    # guard then converts the stall into a failed (not hung) job while
    # the daemon keeps answering health checks throughout
    proc, base = spawn_daemon(
        tmp_path / "svc", "--workers", "1", "--deadline-s", "1",
        "--drain-s", "1",
        env_extra={"REPRO_SERVE_FAULT": "stall-after-ckpt:1:2"})
    status, _, job = submit_trace(base, chaos_trace)
    assert status == 202
    status, _, body = request(f"{base}/healthz")  # mid-stall
    assert status == 200 and body["ok"]
    done = poll_job(base, job["id"], timeout_s=60.0)
    assert done["state"] == "failed"
    assert done["reason"] == "guard:deadline"
    assert proc.poll() is None, "a wedged worker must not kill the daemon"
    status, _, _ = request(f"{base}/readyz")
    assert status == 200


def test_overload_sheds_load_with_429(
        spawn_daemon, tmp_path, chaos_trace, small_trace):
    # one worker wedged on the first job + a queue bound of 1 makes the
    # overload deterministic: the second submission must bounce
    proc, base = spawn_daemon(
        tmp_path / "svc", "--workers", "1", "--max-queue", "1",
        "--drain-s", "1",
        env_extra={"REPRO_SERVE_FAULT": "stall-after-ckpt:1:30"})
    status, _, _ = submit_trace(base, chaos_trace)
    assert status == 202
    status, headers, body = submit_trace(base, small_trace)
    assert status == 429
    assert body["error"] == "queue_full"
    assert int(headers["Retry-After"]) >= 1
    status, _, _ = request(f"{base}/healthz")
    assert status == 200


def test_sigkill_recovery_idempotent_across_two_kills(
        spawn_daemon, tmp_path, chaos_trace, chaos_oracle):
    # kill the daemon after checkpoint 2, then (restarted) after
    # checkpoint 2 more — progress still accumulates and the final
    # verdicts still match the oracle bit for bit
    state = tmp_path / "svc"
    proc, base = spawn_daemon(
        state, "--workers", "1",
        env_extra={"REPRO_SERVE_FAULT": "kill-after-ckpt:2"})
    _, _, job = submit_trace(base, chaos_trace)
    assert proc.wait(timeout=60) == 137

    proc2, _ = spawn_daemon(
        state, "--workers", "1",
        env_extra={"REPRO_SERVE_FAULT": "kill-after-ckpt:2"})
    assert proc2.wait(timeout=60) == 137  # died again, further along

    proc3, base3 = spawn_daemon(state, "--workers", "1")
    done = poll_job(base3, job["id"], timeout_s=90.0)
    assert done["state"] == "done", done
    assert done["attempts"] >= 3
    status, _, result = request(f"{base3}/jobs/{job['id']}/result")
    assert status == 200
    assert _canon(result["verdicts"]) == _canon(chaos_oracle["verdicts"])

"""Scheduler policy: admission, retry/quarantine, cache, recovery."""

import time

import pytest

import repro.serve.scheduler as scheduler_mod
from repro.serve import AdmissionError, VerdictCache


def _wait(sched, jid, *, states=("done", "failed", "quarantined"),
          timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        job = sched.get_job(jid)
        if job and job["state"] in states:
            return job
        time.sleep(0.02)
    raise AssertionError(
        f"job {jid} never reached {states}: {sched.get_job(jid)}")


def _counters(sched):
    return sched.registry.snapshot()["counters"]


# -- admission control --------------------------------------------------------

def test_queue_full_rejects(make_scheduler, small_trace):
    sched = make_scheduler(max_queue=1)  # workers never started
    data = small_trace.read_bytes()
    sched.submit_bytes(data, detector="our")
    with pytest.raises(AdmissionError) as exc:
        sched.submit_bytes(data, detector="rma")
    assert exc.value.reason == "queue_full"
    assert exc.value.retry_after_s > 0
    assert _counters(sched)[
        "serve.admission.rejected{reason=queue_full}"] == 1


def test_tenant_cap_rejects_per_tenant(make_scheduler, small_trace):
    sched = make_scheduler(max_queue=10, tenant_cap=1)
    data = small_trace.read_bytes()
    sched.submit_bytes(data, detector="our", tenant="alice")
    with pytest.raises(AdmissionError) as exc:
        sched.submit_bytes(data, detector="rma", tenant="alice")
    assert exc.value.reason == "tenant_cap"
    # another tenant is not starved by alice's cap
    job = sched.submit_bytes(data, detector="rma", tenant="bob")
    assert job.state == "queued"
    assert _counters(sched)[
        "serve.admission.rejected{reason=tenant_cap}"] == 1


def test_identical_live_submission_dedupes(make_scheduler, small_trace):
    sched = make_scheduler()
    data = small_trace.read_bytes()
    first = sched.submit_bytes(data, detector="our")
    second = sched.submit_bytes(data, detector="our")
    assert second.id == first.id
    assert _counters(sched)["serve.jobs.deduped"] == 1


# -- execution, cache, retries ------------------------------------------------

def test_job_runs_to_done_and_caches(make_scheduler, small_trace):
    sched = make_scheduler(workers=1)
    sched.start()
    data = small_trace.read_bytes()
    job = _wait(sched, sched.submit_bytes(data).id)
    assert job["state"] == "done"
    assert job["races"] == 0 and job["events"] > 0
    assert not job["cached"]

    # the identical resubmission answers from the verdict cache,
    # observable through the obs counters (no second analysis runs)
    again = sched.submit_bytes(data)
    assert again.state == "done" and again.cached
    counters = _counters(sched)
    assert counters["serve.cache.hits"] == 1
    assert counters["serve.cache.misses"] == 1
    assert counters["serve.jobs.started"] == 1


def test_flaky_analysis_retries_then_succeeds(
        make_scheduler, small_trace, monkeypatch):
    real = scheduler_mod.analyze_trace
    calls = {"n": 0}

    def flaky(*args, **kwargs):
        calls["n"] += 1
        if calls["n"] == 1:
            raise RuntimeError("transient wobble")
        return real(*args, **kwargs)

    monkeypatch.setattr(scheduler_mod, "analyze_trace", flaky)
    sched = make_scheduler(workers=1, retries=2, backoff_base=0.01)
    sched.start()
    job = _wait(sched, sched.submit_bytes(small_trace.read_bytes()).id)
    assert job["state"] == "done"
    assert job["attempts"] == 2
    assert _counters(sched)["serve.jobs.retried"] == 1


def test_poison_job_is_quarantined(make_scheduler, small_trace, monkeypatch):
    monkeypatch.setattr(
        scheduler_mod, "analyze_trace",
        lambda *a, **k: (_ for _ in ()).throw(RuntimeError("always dies")))
    sched = make_scheduler(workers=1, retries=1, backoff_base=0.01)
    sched.start()
    job = _wait(sched, sched.submit_bytes(small_trace.read_bytes()).id)
    assert job["state"] == "quarantined"
    assert job["reason"].startswith("poison:")
    assert job["attempts"] == 2  # initial + 1 retry, then parked
    assert _counters(sched)["serve.jobs.quarantined"] == 1


def test_deterministic_failure_skips_retries(
        make_scheduler, small_trace, monkeypatch):
    monkeypatch.setattr(
        scheduler_mod, "analyze_trace",
        lambda *a, **k: (_ for _ in ()).throw(ValueError("bad knob")))
    sched = make_scheduler(workers=1, retries=5, backoff_base=0.01)
    sched.start()
    job = _wait(sched, sched.submit_bytes(small_trace.read_bytes()).id)
    assert job["state"] == "failed"
    assert job["attempts"] == 1  # no retry: same bytes, same failure
    assert job["reason"].startswith("ValueError")


# -- crash recovery -----------------------------------------------------------

def test_recover_requeues_queued_and_running(make_scheduler, small_trace):
    state = None
    first = make_scheduler(max_queue=10)
    state = first.state_dir
    data = small_trace.read_bytes()
    queued = first.submit_bytes(data, detector="our")
    running = first.submit_bytes(data, detector="rma")
    first._transition(first.jobs[running.id], "running", attempts=1)
    # "crash": abandon `first` without drain and start over from disk
    second = make_scheduler(state)
    report = second.recover()
    assert report["jobs"] == 2 and report["requeued"] == 2
    assert second.get_job(queued.id)["state"] == "queued"
    recovered = second.get_job(running.id)
    assert recovered["state"] == "queued"
    assert recovered["reason"] == "recovered"
    # ids keep growing past recovered ones — no reuse after restart
    third = second.submit_bytes(small_trace.read_bytes(), detector="mc")
    assert third.id > running.id


def test_recover_quarantines_exhausted_job(make_scheduler, small_trace):
    first = make_scheduler(retries=2)
    job = first.submit_bytes(small_trace.read_bytes())
    first._transition(first.jobs[job.id], "running", attempts=5)
    second = make_scheduler(first.state_dir, retries=2)
    report = second.recover()
    assert report["quarantined"] == 1 and report["requeued"] == 0
    assert second.get_job(job.id)["state"] == "quarantined"
    assert second.get_job(job.id)["reason"] == "poison"


def test_recover_survives_corrupt_journal(make_scheduler, small_trace):
    from repro.faultinject import corrupt_journal_record

    first = make_scheduler()
    data = small_trace.read_bytes()
    kept = first.submit_bytes(data, detector="our")
    lost = first.submit_bytes(data, detector="rma")
    journal_path = first.journal.path
    first.journal.close()
    corrupt_journal_record(journal_path, record=2, mode="flip")
    second = make_scheduler(first.state_dir)
    report = second.recover()
    # the valid prefix recovers; the damaged suffix is quarantined,
    # visible in the report and on disk — never silently dropped
    assert second.get_job(kept.id)["state"] == "queued"
    assert second.get_job(lost.id) is None
    assert report["journal_quarantined"]
    bad = journal_path.with_suffix(journal_path.suffix + ".bad")
    assert bad.exists()


def test_drain_compacts_and_reports_live(make_scheduler, small_trace):
    sched = make_scheduler()  # workers never started
    job = sched.submit_bytes(small_trace.read_bytes())
    live = sched.drain(timeout=1.0)
    assert live == [job.id]
    # compaction left a replayable journal with the job still queued
    fresh = make_scheduler(sched.state_dir)
    fresh.recover()
    assert fresh.get_job(job.id)["state"] == "queued"


# -- verdict cache hygiene ----------------------------------------------------

def test_corrupt_cache_entry_is_a_miss(tmp_path):
    cache = VerdictCache(tmp_path)
    cache.put("a" * 64, "our", {"verdicts": [], "races": 0})
    assert cache.get("a" * 64, "our") is not None
    path = cache._path("a" * 64, "our")
    path.write_text("{not json")
    assert cache.get("a" * 64, "our") is None
    assert path.with_suffix(".json.bad").exists()


def test_cache_entry_without_verdicts_is_quarantined(tmp_path):
    cache = VerdictCache(tmp_path)
    cache.put("b" * 64, "our", {"wrong": "shape"})
    assert cache.get("b" * 64, "our") is None
    assert cache._path("b" * 64, "our").with_suffix(".json.bad").exists()

"""Property-based round-trip of the checkpoint tree snapshots.

The ``repro-ckpt-v1`` payload carries detector state as structure-
preserving tree snapshots (:meth:`AVLTree.snapshot` /
:meth:`IntervalBST.save_state`).  Restoring must reproduce the tree
*exactly* — not just the same key set: tree shape drives the legacy
linear-scan comparison counts and the ablation (unbalanced) behavior, so
a shape-changing round-trip would make "resumed" runs diverge from
fault-free ones.  For arbitrary access sequences:

* ``restore(snapshot(t))`` preserves the AVL structure invariants and
  the augmented interval metadata (``check_invariants``),
* in-order traversal, size, and overlap/containment query results are
  identical before and after,
* the restored tree *behaves* identically in the future: inserting the
  same suffix into original and restored trees yields byte-identical
  snapshots and identical TreeStats — for balanced and unbalanced
  (ablation) trees alike,
* pickling the snapshot (what the checkpoint file actually stores)
  changes nothing.
"""

from __future__ import annotations

import pickle

from hypothesis import given
from hypothesis import strategies as st

from repro.bst import IntervalBST
from repro.bst.avl import AVLTree
from repro.core.insertion import insert_access
from repro.intervals import AccessType, DebugInfo, Interval, MemoryAccess

_NO_RACE = lambda stored, new: False  # noqa: E731 - terse predicate


@st.composite
def accesses(draw) -> MemoryAccess:
    lo = draw(st.integers(min_value=0, max_value=48))
    length = draw(st.integers(min_value=1, max_value=16))
    type_ = draw(st.sampled_from(list(AccessType)))
    file_ = draw(st.sampled_from(["a.c", "b.c"]))
    line = draw(st.integers(min_value=1, max_value=3))
    origin = draw(st.integers(min_value=0, max_value=2))
    return MemoryAccess(
        Interval(lo, lo + length), type_, DebugInfo(file_, line), origin
    )


access_lists = st.lists(accesses(), min_size=1, max_size=24)


def _build(seq, *, balanced=True):
    bst = IntervalBST(balanced=balanced)
    for acc in seq:
        insert_access(acc, bst, predicate=_NO_RACE)
    return bst


def _queries(bst):
    """Deterministic probe of the query surface over a fixed range."""
    overlaps = [bst.find_overlapping(Interval(lo, lo + 8))
                for lo in range(0, 64, 4)]
    contains = [bst.find_containing(addr) for addr in range(0, 64, 7)]
    return overlaps, contains


@given(access_lists, st.booleans())
def test_interval_bst_roundtrip_preserves_everything(seq, balanced):
    bst = _build(seq, balanced=balanced)
    state = pickle.loads(pickle.dumps(bst.save_state()))
    restored = IntervalBST.from_state(state)

    restored.check_invariants()
    assert len(restored) == len(bst)
    assert restored.snapshot() == bst.snapshot()  # in-order access list
    assert restored.height() == bst.height()
    assert _queries(restored) == _queries(bst)
    assert restored.stats.to_dict() == bst.stats.to_dict()


@given(access_lists, access_lists, st.booleans())
def test_restored_tree_behaves_identically_in_the_future(prefix, suffix,
                                                         balanced):
    """Same suffix into original vs restored → byte-identical trees.

    This is the property resume correctness actually needs: the events
    *after* the checkpoint must produce the same verdicts and stats on
    the restored tree as they would have on the never-interrupted one.
    """
    original = _build(prefix, balanced=balanced)
    restored = IntervalBST.from_state(original.save_state())
    for acc in suffix:
        insert_access(acc, original, predicate=_NO_RACE)
        insert_access(acc, restored, predicate=_NO_RACE)
        restored.check_invariants()
    assert restored.save_state() == original.save_state()
    assert restored.stats.to_dict() == original.stats.to_dict()
    assert _queries(restored) == _queries(original)


@given(st.lists(st.integers(min_value=-100, max_value=100),
                min_size=0, max_size=40),
       st.booleans())
def test_avl_tree_roundtrip(keys, balanced):
    tree = AVLTree(balanced=balanced)
    for k in keys:
        tree.insert(k, ("v", k))
    snap = pickle.loads(pickle.dumps(tree.snapshot()))
    restored = AVLTree(balanced=balanced)
    restored.restore(snap)

    restored.check_invariants()
    assert list(restored) == list(tree)
    assert len(restored) == len(tree)
    assert restored.height() == tree.height()
    # tie counter round-trips too: future equal-key inserts land in the
    # same relative order on both trees
    tree.insert(0, "later")
    restored.insert(0, "later")
    assert restored.snapshot() == tree.snapshot()


@given(st.lists(st.integers(min_value=-100, max_value=100),
                min_size=1, max_size=40))
def test_avl_restore_rejects_balance_mismatch(keys):
    tree = AVLTree(balanced=True)
    for k in keys:
        tree.insert(k, k)
    other = AVLTree(balanced=False)
    try:
        other.restore(tree.snapshot())
    except ValueError:
        return
    raise AssertionError("balanced-mode mismatch must not restore")

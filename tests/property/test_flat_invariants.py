"""Property-based invariants of the flat struct-of-arrays core.

The flat twin of ``test_invariants.py``: the same §4 storage properties
(disjointness, merge maximality, coverage, Table-1 byte-wise dominance)
checked against :class:`repro.core.FlatDetector`'s Algorithm-1 path and
:class:`repro.bst.FlatIntervalStore`'s column arrays, plus the flat-only
obligations:

* AVL height/order/augmentation invariants over the int-indexed rows
  (``check_invariants`` walks columns, free list and reachability),
* ``save_state`` → ``load_state`` round-trips the columns *exactly* —
  including slot-reuse order, so post-restore behavior is identical,
* differential: for any access sequence, the flat store holds exactly
  the same intervals/types/sites as the object ``IntervalBST``, with
  identical tree-statistics accounting (the ``bst.*`` parity contract).

``race_check`` is forced off so every access inserts — these properties
are about storage, not verdicts (same convention as the object suite).
"""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro import obs
from repro.bst import FlatIntervalStore, IntervalBST
from repro.core import FlatDetector
from repro.core.insertion import insert_access
from repro.intervals import AccessType, DebugInfo, Interval, MemoryAccess
from repro.intervals.intern import SITES

_NO_RACE = lambda stored, new: False  # noqa: E731 - terse predicate


@st.composite
def accesses(draw) -> MemoryAccess:
    lo = draw(st.integers(min_value=0, max_value=48))
    length = draw(st.integers(min_value=1, max_value=16))
    type_ = draw(st.sampled_from(list(AccessType)))
    file_ = draw(st.sampled_from(["a.c", "b.c"]))
    line = draw(st.integers(min_value=1, max_value=3))
    origin = draw(st.integers(min_value=0, max_value=2))
    return MemoryAccess(
        Interval(lo, lo + length), type_, DebugInfo(file_, line), origin
    )


access_lists = st.lists(accesses(), min_size=1, max_size=24)


def _ingest_all(seq) -> FlatIntervalStore:
    det = FlatDetector()
    det.race_check = False
    reg = obs.active()
    for acc in seq:
        det._ingest(0, 0, acc, reg)
    return det._store(0, 0)


def _covered_bytes(recs):
    out = set()
    for r in recs:
        out.update(range(r[0], r[1]))
    return out


@given(access_lists)
def test_stored_records_pairwise_disjoint(seq):
    store = _ingest_all(seq)
    stored = store.snapshot()  # in key order
    for prev, cur in zip(stored, stored[1:]):
        assert prev[1] <= cur[0], (prev, cur)


@given(access_lists)
def test_merging_is_maximal(seq):
    """No two adjacent stored records share (type, site, provenance)."""
    store = _ingest_all(seq)
    stored = store.snapshot()
    for prev, cur in zip(stored, stored[1:]):
        mergeable = (
            prev[1] == cur[0]          # adjacent
            and prev[2] == cur[2]      # type
            and prev[3] == cur[3]      # interned site
            and prev[4] == cur[4]      # origin
            and prev[6] == cur[6]      # flush generation
            and prev[7] == cur[7]      # accumulate op
        )
        assert not mergeable, (prev, cur)


@given(access_lists)
def test_fragments_cover_exactly_the_input_union(seq):
    store = _ingest_all(seq)
    want = _covered_bytes((a.interval.lo, a.interval.hi) for a in seq)
    assert _covered_bytes(store.snapshot()) == want


def _dominance(t: AccessType):
    """Table-1 key: RMA prevails over local, then WRITE over READ."""
    return (t.is_rma, t.is_write)


@given(access_lists)
def test_bytewise_type_dominance(seq):
    store = _ingest_all(seq)
    expected = {}
    for acc in seq:
        for byte in range(acc.interval.lo, acc.interval.hi):
            cur = expected.get(byte)
            if cur is None or _dominance(acc.type) > _dominance(cur):
                expected[byte] = acc.type
    for rec in store.snapshot():
        for byte in range(rec[0], rec[1]):
            assert rec[2] == expected[byte], (byte, rec)


@given(access_lists)
def test_avl_invariants_after_insertions(seq):
    _ingest_all(seq).check_invariants()


@given(access_lists, st.data())
def test_avl_invariants_after_removals(seq, data):
    store = _ingest_all(seq)
    stored = store.snapshot()
    if stored:
        victims = data.draw(
            st.lists(st.sampled_from(stored), max_size=len(stored),
                     unique=True)
        )
        for rec in victims:
            assert store.remove(rec)
        store.check_invariants()


@given(access_lists)
def test_flat_matches_object_store(seq):
    """Differential: same stored intervals/types/sites AND the same
    tree-op accounting as the object core on any input sequence."""
    store = _ingest_all(seq)
    bst = IntervalBST()
    for acc in seq:
        insert_access(acc, bst, predicate=_NO_RACE)
    flat = [(r[0], r[1], r[2], SITES.value(r[3]), r[4])
            for r in store.snapshot()]
    obj = sorted(
        (a.interval.lo, a.interval.hi, a.type, a.debug, a.origin)
        for a in bst.snapshot()
    )
    assert flat == obj
    assert store.stats.to_dict() == bst.stats.to_dict()


def _columns(store: FlatIntervalStore):
    return (store.root, store._size, store._free, store._key, store._hi,
            store._left, store._right, store._height, store._aug,
            store._rec)


@given(access_lists, accesses())
def test_snapshot_restore_roundtrip(seq, extra):
    """Column arrays round-trip exactly, and the restored store behaves
    identically going forward (slot reuse, stats deltas)."""
    store = _ingest_all(seq)
    state = store.save_state()
    clone = FlatIntervalStore.from_state(state)
    assert _columns(clone) == _columns(store)
    assert clone.stats.to_dict() == store.stats.to_dict()
    clone.check_invariants()

    # future behavior: one more Algorithm-1 ingest lands both stores on
    # the same rows with the same stats
    for s in (store, clone):
        det = FlatDetector()
        det.race_check = False
        det._stores[(0, 0)] = s
        det._ingest(0, 0, extra, obs.active())
    assert _columns(clone) == _columns(store)
    assert clone.stats.to_dict() == store.stats.to_dict()

"""Property-based contracts of the per-chunk rolling hash chain.

The chain is what lets incremental analysis *prove* rather than assume:
equal value at chunk k ⇔ byte-identical first k chunks.  For arbitrary
event counts, chunk sizes, growth, tears, and single-byte mutations:

* growing a trace through ``open_append`` always classifies as
  ``extension`` against its past self, at exactly the old chunk count,
* the reverse comparison is ``truncated``; a file is ``identical`` only
  to itself,
* one flipped payload byte in chunk *c* — crc and stored digests
  repaired, so the file is internally self-consistent — diverges at
  exactly chunk *c*, never earlier, never later,
* any torn tail reads (tail mode) and chains as a strict prefix.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faultinject import chunk_index, rewrite_prefix
from repro.intervals import AccessType, DebugInfo, Interval, MemoryAccess
from repro.mpi.memory import RegionInfo, RegionKind
from repro.mpi.trace import LocalEvent
from repro.pipeline import (
    BinaryTraceWriter,
    TraceReader,
    compare_chain,
    trace_chain,
)


def _event(seq: int) -> LocalEvent:
    access = MemoryAccess(Interval(seq * 8, seq * 8 + 8),
                          AccessType.LOCAL_READ,
                          DebugInfo("./prop.c", 1 + seq % 7), seq % 4,
                          0, 1, None, None)
    return LocalEvent(seq, seq % 4, access, RegionInfo(RegionKind.HEAP, True))


def _write(path, n, *, per_chunk):
    with BinaryTraceWriter(path, nranks=4,
                           events_per_chunk=per_chunk) as writer:
        for seq in range(1, n + 1):
            writer.write(_event(seq))
    return path


#: small on purpose: every example writes real files; the interesting
#: structure is chunk boundaries, not volume
_N = st.integers(min_value=1, max_value=40)
_GROW = st.integers(min_value=1, max_value=25)
_PER_CHUNK = st.integers(min_value=1, max_value=9)


@settings(max_examples=75)
@given(n=_N, grow=_GROW, per_chunk=_PER_CHUNK)
def test_append_only_growth_is_an_extension(tmp_path_factory, n, grow,
                                            per_chunk):
    path = tmp_path_factory.mktemp("chain") / "t.trace"
    _write(path, n, per_chunk=per_chunk)
    old = trace_chain(path)
    writer = BinaryTraceWriter.open_append(path)
    for seq in range(n + 1, n + grow + 1):
        writer.write(_event(seq))
    writer.close()
    new = trace_chain(path)

    rel = compare_chain(old, new)
    if len(new["chunks"]) == len(old["chunks"]):
        # growth that only refills the final (short) chunk boundary
        # cannot happen: open_append rewrites nothing, so chunk count
        # strictly grows whenever events were appended
        raise AssertionError("append added events but no chunks")
    assert rel == {"relation": "extension", "common": len(old["chunks"]),
                   "diverged_at": None}
    assert new["chunks"][:len(old["chunks"])] == old["chunks"]
    assert compare_chain(new, old)["relation"] == "truncated"
    assert compare_chain(new, new)["relation"] == "identical"
    if n % per_chunk == 0:
        # growth from a chunk boundary is byte-identical to writing
        # straight through (a short mid-file chunk is kept as-is
        # otherwise — append-only means never rewriting it)
        straight = _write(tmp_path_factory.mktemp("chain") / "s.trace",
                          n + grow, per_chunk=per_chunk)
        assert path.read_bytes() == straight.read_bytes()


@settings(max_examples=75)
@given(n=st.integers(min_value=2, max_value=40), per_chunk=_PER_CHUNK,
       pick=st.integers(min_value=0, max_value=10 ** 6),
       seed=st.integers(min_value=0, max_value=10 ** 6))
def test_single_byte_mutation_diverges_at_its_chunk(tmp_path_factory, n,
                                                    per_chunk, pick, seed):
    path = tmp_path_factory.mktemp("chain") / "t.trace"
    _write(path, n, per_chunk=per_chunk)
    clean = trace_chain(path)
    nchunks = len(clean["chunks"])
    target = 1 + pick % nchunks

    rewrite_prefix(path, chunk=target, count=1, seed=seed)
    mutated = trace_chain(path)
    # internally self-consistent: stored digests match recomputation
    assert mutated["stored_mismatch"] is None
    assert len(mutated["chunks"]) == nchunks

    rel = compare_chain(clean, mutated)
    assert rel["relation"] == "diverged"
    assert rel["diverged_at"] == target
    assert rel["common"] == target - 1
    assert mutated["chunks"][:target - 1] == clean["chunks"][:target - 1]
    assert all(m != c for m, c in zip(mutated["chunks"][target - 1:],
                                      clean["chunks"][target - 1:]))


@settings(max_examples=75)
@given(n=st.integers(min_value=2, max_value=40), per_chunk=_PER_CHUNK,
       cut_back=st.integers(min_value=1, max_value=10 ** 6))
def test_any_torn_tail_reads_as_a_strict_prefix(tmp_path_factory, n,
                                                per_chunk, cut_back):
    path = tmp_path_factory.mktemp("chain") / "t.trace"
    _write(path, n, per_chunk=per_chunk)
    whole = trace_chain(path)
    all_events = [e.seq for e in TraceReader(path)]
    first_payload = chunk_index(path)[0].payload_pos

    raw = path.read_bytes()
    # tear anywhere strictly inside the file but past chunk 1's start,
    # so at least the framing of the file head survives
    cut = first_payload + (cut_back % (len(raw) - first_payload))
    path.write_bytes(raw[:cut])

    torn = trace_chain(path)
    k = len(torn["chunks"])
    assert torn["chunks"] == whole["chunks"][:k]
    assert not torn["complete"]

    reader = TraceReader(path)
    reader.tail = True
    got = [e.seq for e in reader]
    # whole chunks decode, the torn one does not: event count matches
    # the chain walk exactly
    assert got == all_events[:torn["events"][k - 1] if k else 0]
    assert reader.tail_pending and not reader.complete

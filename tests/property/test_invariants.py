"""Property-based invariants of Algorithm 1 (insertion) and the BST.

Randomized counterpart of the example-based ``tests/core`` suite: for
arbitrary access sequences, after every insertion

* the stored intervals are pairwise disjoint (§4.1's invariant),
* no two adjacent stored accesses are mergeable (§4.2 maximality:
  adjacency + same access type/debug info cannot survive a merge pass),
* the stored bytes exactly cover the union of all inserted bytes,
* byte-wise type dominance holds (an RMA or WRITE access to a byte can
  never be downgraded by a later fragmentation/merge),
* the AVL structure invariants hold.

The race predicate is forced to ``False`` so every access inserts —
these properties are about storage, not verdicts.
"""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.bst import IntervalBST
from repro.core.insertion import insert_access
from repro.intervals import AccessType, DebugInfo, Interval, MemoryAccess

_NO_RACE = lambda stored, new: False  # noqa: E731 - terse predicate


@st.composite
def accesses(draw) -> MemoryAccess:
    lo = draw(st.integers(min_value=0, max_value=48))
    length = draw(st.integers(min_value=1, max_value=16))
    type_ = draw(st.sampled_from(list(AccessType)))
    file_ = draw(st.sampled_from(["a.c", "b.c"]))
    line = draw(st.integers(min_value=1, max_value=3))
    origin = draw(st.integers(min_value=0, max_value=2))
    return MemoryAccess(
        Interval(lo, lo + length), type_, DebugInfo(file_, line), origin
    )


access_lists = st.lists(accesses(), min_size=1, max_size=24)


def _insert_all(seq):
    bst = IntervalBST()
    for acc in seq:
        outcome = insert_access(acc, bst, predicate=_NO_RACE)
        assert not outcome.has_race
    return bst


def _covered_bytes(intervals):
    out = set()
    for iv in intervals:
        out.update(range(iv.lo, iv.hi))
    return out


@given(access_lists)
def test_stored_intervals_pairwise_disjoint(seq):
    bst = _insert_all(seq)
    stored = bst.snapshot()
    for i, a in enumerate(stored):
        for b in stored[i + 1:]:
            assert not a.interval.overlaps(b.interval), (a, b)


@given(access_lists)
def test_merging_is_maximal(seq):
    """No two adjacent stored accesses share (type, debug, provenance)."""
    bst = _insert_all(seq)
    stored = sorted(bst.snapshot(), key=lambda a: a.interval.lo)
    for prev, cur in zip(stored, stored[1:]):
        mergeable = (
            prev.interval.is_adjacent(cur.interval)
            and prev.same_site(cur)
        )
        assert not mergeable, (prev, cur)


@given(access_lists)
def test_fragments_cover_exactly_the_input_union(seq):
    bst = _insert_all(seq)
    want = _covered_bytes(a.interval for a in seq)
    got = _covered_bytes(a.interval for a in bst.snapshot())
    assert got == want


def _dominance(t: AccessType):
    """Table-1 key: RMA prevails over local, then WRITE over READ."""
    return (t.is_rma, t.is_write)


@given(access_lists)
def test_bytewise_type_dominance(seq):
    """Each stored byte carries the Table-1 maximum of its coverers.

    Pairwise combination keeps the higher of the two dominance ranks
    and the rank uniquely determines the type, so folding over any
    insertion order must land on the per-byte maximum.
    """
    bst = _insert_all(seq)
    expected = {}
    for acc in seq:
        for byte in range(acc.interval.lo, acc.interval.hi):
            cur = expected.get(byte)
            if cur is None or _dominance(acc.type) > _dominance(cur):
                expected[byte] = acc.type
    for stored in bst.snapshot():
        for byte in range(stored.interval.lo, stored.interval.hi):
            assert stored.type == expected[byte], (byte, stored)


@given(access_lists)
def test_avl_invariants_after_insertions(seq):
    bst = _insert_all(seq)
    bst.check_invariants()


@given(access_lists, st.data())
def test_avl_invariants_after_removals(seq, data):
    bst = _insert_all(seq)
    stored = bst.snapshot()
    if stored:
        victims = data.draw(
            st.lists(st.sampled_from(stored), max_size=len(stored),
                     unique=True)
        )
        for acc in victims:
            assert bst.remove(acc)
        bst.check_invariants()

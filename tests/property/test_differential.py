"""Differential harness: our detector vs the legacy RMA-Analyzer.

Every example is a two-operation microbenchmark program — drawn either
from the §5.2 suite or generated freshly from the same combinatorial
vocabulary — executed under both detectors on the simulated runtime.

The contract being pinned down:

* **our detector agrees with the semantic ground truth on every
  program** (:func:`repro.microbench.model.ground_truth`, i.e. the
  paper's 0 FP / 0 FN column of Table 3);
* **every legacy disagreement falls in a known defect class**.  On
  two-operation programs the only reachable class is the
  order-insensitive predicate false positive (§5.2): a same-caller
  local access followed by a one-sided operation on the same bytes.
  The lower-bound search false negative (Fig. 5a) needs a wide stored
  interval off the search path, which two fixed-width operations cannot
  build — so any legacy miss of a true race fails the test, and
  Hypothesis shrinks the program to a minimized repro.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import OurDetector
from repro.detectors import RmaAnalyzerLegacy
from repro.microbench.builder import run_code
from repro.microbench.model import (
    CodeSpec,
    OpInst,
    OpKind,
    Placement,
    SiteSpec,
    SlotKind,
    ground_truth,
    slot_access_type,
)
from repro.microbench.suite import generate_suite

_SUITE = generate_suite()

#: the one-sided routes the suite exercises (origin->target, reversed,
#: second origin, self-targeting)
_ROUTES = ((0, 1), (1, 0), (2, 1), (0, 0))


def _slots(op: OpInst):
    return (
        (SlotKind.BUF, SlotKind.WIN) if op.kind.is_onesided
        else (SlotKind.BUF,)
    )


@st.composite
def op_insts(draw) -> OpInst:
    kind = draw(st.sampled_from(list(OpKind)))
    if kind.is_onesided:
        caller, target = draw(st.sampled_from(_ROUTES))
        return OpInst(kind, caller, target)
    return OpInst(kind, draw(st.integers(min_value=0, max_value=2)))


@st.composite
def code_specs(draw) -> CodeSpec:
    """A random two-op program over the suite's vocabulary."""
    first = draw(op_insts())
    second = draw(op_insts())
    s1 = draw(st.sampled_from(_slots(first)))
    s2 = draw(st.sampled_from(_slots(second)))
    # the two shared slots must live in the same rank's memory
    if first.slot_owner(s1) != second.slot_owner(s2):
        s2 = s1 = SlotKind.BUF
        if first.slot_owner(s1) != second.slot_owner(s2):
            first = OpInst(first.kind, second.caller, first.target)
    owner = first.slot_owner(s1)
    if s1 is SlotKind.BUF and s2 is SlotKind.BUF:
        placement = draw(st.sampled_from(list(Placement)))
    else:
        placement = Placement.IN_WINDOW
    site = SiteSpec(s1, s2, owner, placement)
    disjoint = draw(st.booleans())
    racy = False if disjoint else ground_truth(first, second, site)
    name = (
        f"hyp_{first.kind.value}{first.caller}_"
        f"{second.kind.value}{second.caller}_{placement.value}"
    )
    return CodeSpec(name, first, second, site, racy, disjoint=disjoint)


def known_legacy_false_positive(spec: CodeSpec) -> bool:
    """The §5.2 order-insensitivity class: Local-then-RMA, same caller."""
    if spec.racy or spec.disjoint:
        return False
    t1 = slot_access_type(spec.first, spec.site.first_slot)
    t2 = slot_access_type(spec.second, spec.site.second_slot)
    return (
        spec.first.caller == spec.second.caller
        and t1.is_local
        and t2.is_rma
        and (t1.is_write or t2.is_write)
    )


def _check_differential(spec: CodeSpec) -> None:
    ours, _ = run_code(spec, OurDetector())
    legacy, _ = run_code(spec, RmaAnalyzerLegacy())
    assert ours == spec.racy, (
        f"our detector disagrees with ground truth on {spec.name}: "
        f"reported={ours} expected={spec.racy} ({spec})"
    )
    if legacy != spec.racy:
        assert known_legacy_false_positive(spec), (
            f"unexplained legacy disagreement on {spec.name}: "
            f"reported={legacy} expected={spec.racy} ({spec})"
        )


@given(st.sampled_from(_SUITE))
def test_differential_on_the_paper_suite(spec):
    _check_differential(spec)


@settings(max_examples=500)
@given(code_specs())
def test_differential_on_random_programs(spec):
    _check_differential(spec)


def test_suite_exhaustively_differential():
    """Non-sampled sweep: the whole generated suite, both detectors."""
    unexplained = []
    for spec in _SUITE:
        ours, _ = run_code(spec, OurDetector())
        legacy, _ = run_code(spec, RmaAnalyzerLegacy())
        if ours != spec.racy:
            unexplained.append(("ours", spec.name))
        elif legacy != spec.racy and not known_legacy_false_positive(spec):
            unexplained.append(("legacy", spec.name))
    assert not unexplained, unexplained

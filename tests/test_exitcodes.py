"""Pin the CLI exit-code contract.

CI jobs, the chaos suites, and service supervisors branch on these
numbers; changing one silently breaks callers the repo never sees.
This test makes any reshuffle an explicit, reviewed diff.
"""

from repro import exitcodes
from repro.exitcodes import EXIT_CODES


def test_exit_code_values_are_pinned():
    assert exitcodes.EX_OK == 0
    assert exitcodes.EX_GATE_FAILED == 1
    assert exitcodes.EX_ERROR == 2
    assert exitcodes.EX_APP_FAILED == 3
    assert exitcodes.EX_PARTIAL == 4
    assert exitcodes.EX_JOB_FAILED == 5
    assert exitcodes.EX_UNAVAILABLE == 6
    assert exitcodes.EX_DIVERGED == 7
    assert exitcodes.EX_SIGTERM == 143


def test_contract_table_is_complete_and_read_only():
    assert set(EXIT_CODES) == {0, 1, 2, 3, 4, 5, 6, 7, 143}
    assert all(isinstance(v, str) and v for v in EXIT_CODES.values())
    try:
        EXIT_CODES[8] = "surprise"  # type: ignore[index]
    except TypeError:
        pass
    else:
        raise AssertionError("EXIT_CODES must be immutable")


def test_cli_uses_the_contract():
    """The CLI must import its codes from the contract module, not
    hand-roll integers — spot-check the wiring end to end."""
    from repro.cli import main

    assert main(["list"]) == exitcodes.EX_OK
    assert main(["run", "definitely-not-an-experiment"]) == exitcodes.EX_ERROR

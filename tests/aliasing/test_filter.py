"""Unit tests for the instrumentation filter policies."""

from repro.aliasing import AliasFilter, FilterPolicy
from repro.mpi import RegionInfo, RegionKind

STACK = RegionInfo(RegionKind.STACK, False)
STACK_RMA = RegionInfo(RegionKind.STACK, True)
HEAP = RegionInfo(RegionKind.HEAP, False)
HEAP_RMA = RegionInfo(RegionKind.HEAP, True)
WINDOW = RegionInfo(RegionKind.WINDOW, True)


class TestAliasPolicy:
    """RMA-Analyzer / our contribution: LLVM-alias-analysis filtering."""

    def test_keeps_window_memory(self):
        assert AliasFilter(FilterPolicy.ALIAS).instrument(WINDOW)

    def test_keeps_rma_aliasing_buffers(self):
        f = AliasFilter(FilterPolicy.ALIAS)
        assert f.instrument(HEAP_RMA)
        assert f.instrument(STACK_RMA)

    def test_drops_pure_compute_memory(self):
        f = AliasFilter(FilterPolicy.ALIAS)
        assert not f.instrument(HEAP)
        assert not f.instrument(STACK)


class TestTsanPolicy:
    """MUST-RMA: everything except stack arrays."""

    def test_keeps_all_heap(self):
        f = AliasFilter(FilterPolicy.TSAN)
        assert f.instrument(HEAP)
        assert f.instrument(HEAP_RMA)
        assert f.instrument(WINDOW)

    def test_drops_stack_even_when_rma_related(self):
        # the §5.2 blind spot: stack arrays are invisible, period
        f = AliasFilter(FilterPolicy.TSAN)
        assert not f.instrument(STACK)
        assert not f.instrument(STACK_RMA)


class TestAllPolicy:
    def test_keeps_everything(self):
        f = AliasFilter(FilterPolicy.ALL)
        for info in (STACK, STACK_RMA, HEAP, HEAP_RMA, WINDOW):
            assert f.instrument(info)


class TestCounters:
    def test_seen_kept_filtered(self):
        f = AliasFilter(FilterPolicy.ALIAS)
        f.instrument(HEAP)
        f.instrument(WINDOW)
        f.instrument(STACK)
        assert f.seen == 3 and f.kept == 1 and f.filtered == 2

    def test_reset(self):
        f = AliasFilter(FilterPolicy.ALIAS)
        f.instrument(WINDOW)
        f.reset()
        assert f.seen == 0 and f.kept == 0

"""Unit tests for the MPI-RMA happens-before engine."""

from repro.tsan import HappensBefore


class TestProgramOrder:
    def test_local_events_ordered_within_rank(self):
        hb = HappensBefore(2)
        s1, _ = hb.local_event(0)
        _, c2 = hb.local_event(0)
        assert c2.knows(s1)

    def test_local_events_concurrent_across_ranks(self):
        hb = HappensBefore(2)
        s0, _ = hb.local_event(0)
        _, c1 = hb.local_event(1)
        assert not c1.knows(s0)


class TestRmaAsynchrony:
    def test_rma_op_knows_preceding_local(self):
        # Load; MPI_Get — program order holds at the issue point
        hb = HappensBefore(1)
        s_load, _ = hb.local_event(0)
        _, c_rma = hb.rma_event(0, 0)
        assert c_rma.knows(s_load)

    def test_later_local_does_not_know_rma(self):
        # MPI_Get; Load — the get is still in flight: concurrent
        hb = HappensBefore(1)
        s_rma, _ = hb.rma_event(0, 0)
        _, c_load = hb.local_event(0)
        assert not c_load.knows(s_rma)

    def test_two_rma_ops_same_rank_concurrent(self):
        hb = HappensBefore(1)
        s1, _ = hb.rma_event(0, 0)
        _, c2 = hb.rma_event(0, 0)
        assert not c2.knows(s1)

    def test_epoch_completion_orders_rma(self):
        hb = HappensBefore(1)
        s_rma, _ = hb.rma_event(0, 0)
        hb.complete_epoch(0, 0)
        _, c_load = hb.local_event(0)
        assert c_load.knows(s_rma)

    def test_completion_is_per_window(self):
        hb = HappensBefore(1)
        s_w0, _ = hb.rma_event(0, 0)
        s_w1, _ = hb.rma_event(0, 1)
        hb.complete_epoch(0, 0)
        _, c = hb.local_event(0)
        assert c.knows(s_w0)
        assert not c.knows(s_w1)


class TestBarrier:
    def test_barrier_orders_local_events(self):
        hb = HappensBefore(2)
        s0, _ = hb.local_event(0)
        hb.barrier()
        _, c1 = hb.local_event(1)
        assert c1.knows(s0)

    def test_barrier_propagates_completion_knowledge(self):
        hb = HappensBefore(2)
        s_rma, _ = hb.rma_event(0, 0)
        hb.complete_epoch(0, 0)
        hb.barrier()
        _, c1 = hb.local_event(1)
        assert c1.knows(s_rma)

    def test_barrier_does_not_complete_outstanding_ops(self):
        # the MPI standard / §6: MPI_Barrier does not terminate one-sided ops
        hb = HappensBefore(2)
        s_rma, _ = hb.rma_event(0, 0)
        hb.barrier()
        _, c1 = hb.local_event(1)
        assert not c1.knows(s_rma)

    def test_clock_size_grows_with_ranks(self):
        small = HappensBefore(2)
        big = HappensBefore(32)
        for r in range(2):
            small.local_event(r)
        for r in range(32):
            big.local_event(r)
        small.barrier()
        big.barrier()
        assert big.clock_size() > small.clock_size()

    def test_lazy_rank_creation(self):
        hb = HappensBefore()
        hb.app_clock(3)  # rank appears before the sync it participates in
        s, _ = hb.local_event(7)
        hb.barrier()
        _, c = hb.local_event(3)
        assert c.knows(s)

    def test_rank_created_after_barrier_missed_it(self):
        # laziness caveat: a rank materialized later has no pre-barrier
        # knowledge (detectors pre-create all ranks at window creation)
        hb = HappensBefore()
        s, _ = hb.local_event(7)
        hb.barrier()
        _, c = hb.local_event(3)
        assert not c.knows(s)

"""Unit tests for the TSan-style shadow memory."""

from repro.tsan import GRANULE, ShadowMemory, VectorClock
from repro.tsan.shadow import CELLS_PER_GRANULE
from tests.conftest import LR, LW, RR, RW, acc


def check(shadow, rank, access, stamp, clock=None, write=None):
    clock = clock if clock is not None else VectorClock()
    write = access.is_write if write is None else write
    return shadow.check_and_update(rank, access, stamp, clock, write)


class TestConflictDetection:
    def test_write_write_unordered_races(self):
        shadow = ShadowMemory()
        assert check(shadow, 0, acc(0, 8, LW), ("a", 1)) == []
        conflicts = check(shadow, 0, acc(0, 8, LW), ("b", 1))
        assert len(conflicts) == 1
        assert conflicts[0].stamp == ("a", 1)

    def test_read_read_never_races(self):
        shadow = ShadowMemory()
        check(shadow, 0, acc(0, 8, LR), ("a", 1))
        assert check(shadow, 0, acc(0, 8, LR), ("b", 1)) == []

    def test_ordered_accesses_do_not_race(self):
        shadow = ShadowMemory()
        check(shadow, 0, acc(0, 8, LW), ("a", 1))
        clock = VectorClock({"a": 1})
        assert check(shadow, 0, acc(0, 8, LW), ("b", 1), clock) == []

    def test_disjoint_ranks_do_not_interact(self):
        shadow = ShadowMemory()
        check(shadow, 0, acc(0, 8, LW), ("a", 1))
        assert check(shadow, 1, acc(0, 8, LW), ("b", 1)) == []

    def test_sub_granule_precision(self):
        # two disjoint 4-byte accesses inside one 8-byte granule: no race
        shadow = ShadowMemory()
        check(shadow, 0, acc(0, 4, LW), ("a", 1))
        assert check(shadow, 0, acc(4, 8, LW), ("b", 1)) == []

    def test_multi_granule_access_deduplicates(self):
        shadow = ShadowMemory()
        wide = acc(0, 4 * GRANULE, LW)
        check(shadow, 0, wide, ("a", 1))
        conflicts = check(shadow, 0, acc(0, 4 * GRANULE, LW), ("b", 1))
        assert len(conflicts) == 1  # one logical conflict, many granules

    def test_same_stamp_not_self_conflicting(self):
        shadow = ShadowMemory()
        wide = acc(0, 2 * GRANULE, LW)
        check(shadow, 0, wide, ("a", 1))
        # re-checking the same event (e.g. retry) must not self-report
        assert check(shadow, 0, wide, ("a", 1)) == []


class TestEviction:
    def test_history_loss_after_overflow(self):
        shadow = ShadowMemory()
        first = acc(0, 8, LW)
        check(shadow, 0, first, ("w", 1))
        # flood the granule with reads until the write is evicted
        for i in range(CELLS_PER_GRANULE):
            clock = VectorClock({"w": 1})  # ordered: no race reported
            shadow.check_and_update(0, acc(0, 8, LR), (f"r{i}", 1), clock, False)
        conflicts = check(shadow, 0, acc(0, 8, LW), ("x", 1))
        stamps = {c.stamp for c in conflicts}
        assert ("w", 1) not in stamps  # evicted: TSan forgets

    def test_len_counts_cells(self):
        shadow = ShadowMemory()
        check(shadow, 0, acc(0, 8, LR), ("a", 1))
        check(shadow, 0, acc(8, 16, LR), ("b", 1))
        assert len(shadow) == 2

    def test_clear_rank(self):
        shadow = ShadowMemory()
        check(shadow, 0, acc(0, 8, LR), ("a", 1))
        check(shadow, 1, acc(0, 8, LR), ("b", 1))
        shadow.clear_rank(0)
        assert len(shadow) == 1
        shadow.clear()
        assert len(shadow) == 0

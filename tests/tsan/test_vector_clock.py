"""Unit tests for vector clocks."""

from repro.tsan import VectorClock, join_all


class TestVectorClock:
    def test_empty_clock(self):
        vc = VectorClock()
        assert vc.get("x") == 0
        assert len(vc) == 0

    def test_tick(self):
        vc = VectorClock()
        assert vc.tick("a") == 1
        assert vc.tick("a") == 2
        assert vc.get("a") == 2

    def test_join_pointwise_max(self):
        a = VectorClock({"x": 3, "y": 1})
        b = VectorClock({"y": 5, "z": 2})
        a.join(b)
        assert a.get("x") == 3 and a.get("y") == 5 and a.get("z") == 2

    def test_join_does_not_mutate_other(self):
        a = VectorClock({"x": 3})
        b = VectorClock({"x": 1})
        a.join(b)
        assert b.get("x") == 1

    def test_copy_is_independent(self):
        a = VectorClock({"x": 1})
        b = a.copy()
        b.tick("x")
        assert a.get("x") == 1 and b.get("x") == 2

    def test_knows(self):
        vc = VectorClock({"a": 3})
        assert vc.knows(("a", 3))
        assert vc.knows(("a", 2))
        assert not vc.knows(("a", 4))
        assert not vc.knows(("b", 1))

    def test_set_at_least(self):
        vc = VectorClock({"a": 5})
        vc.set_at_least("a", 3)
        assert vc.get("a") == 5
        vc.set_at_least("a", 9)
        assert vc.get("a") == 9

    def test_join_all(self):
        top = join_all([VectorClock({"a": 1}), VectorClock({"a": 4, "b": 2})])
        assert top.get("a") == 4 and top.get("b") == 2

"""Forensics bundles: capture, the golden Fig. 9b message, explain text."""

from __future__ import annotations

import json

from repro.core.forensics import (
    FORENSICS_SCHEMA,
    capture_forensics,
    forensics_message,
    render_explain,
    render_explain_all,
)
from repro.intervals import AccessType
from repro.obs.timeline import Timeline
from tests.conftest import acc

#: the exact abort text the original tool prints (paper Fig. 9b)
GOLDEN_FIG9B = (
    "Error when inserting memory access of type RMA_WRITE from file "
    "./dspl.hpp:614 with already inserted interval of type RMA_WRITE "
    "from file ./dspl.hpp:612. "
    "The program will be exiting now with MPI_Abort."
)


class _StubDetector:
    name = "Our Contribution"

    def forensic_sync_state(self, wid):
        return {"open_epochs": [0, 1], "window_known": True}

    def forensic_tree_state(self, rank, wid):
        return {"nodes": 3, "max_size": 5, "comparisons": 7, "queries": 2}


def _bundle(k=8):
    stored = acc(4096, 4336, AccessType.RMA_WRITE,
                 file="./dspl.hpp", line=612, origin=0)
    new = acc(4096, 4336, AccessType.RMA_WRITE,
              file="./dspl.hpp", line=614, origin=0)
    tl = Timeline(16)
    tl.record_sync("lock_all", 0, 0, lanes=(0, 1, 2), seq=1)
    tl.record_rma("put", 0, 2, 0, stored, stored, seq=2)
    tl.record_rma("put", 0, 2, 0, new, new, seq=3)
    return capture_forensics(
        _StubDetector(), tl, rank=2, wid=0, stored=stored, new=new,
        phase="data_race_detection", k=k,
    )


def test_bundle_shape_and_schema():
    bundle = _bundle()
    assert bundle["schema"] == FORENSICS_SCHEMA == "repro-forensics-v1"
    assert bundle["phase"] == "data_race_detection"
    assert bundle["rank"] == 2 and bundle["window"] == 0
    assert bundle["stored"]["line"] == 612 and bundle["new"]["line"] == 614
    # involved ranks: detection rank first, then the (deduped) origins
    assert sorted(bundle["timeline"]["views"]) == ["0", "2"]


def test_fig9b_message_is_golden():
    assert forensics_message(_bundle()) == GOLDEN_FIG9B


def test_bundle_round_trips_through_json():
    bundle = _bundle()
    assert json.loads(json.dumps(bundle)) == bundle
    # and key order / content is deterministic across captures
    assert json.dumps(_bundle(), sort_keys=True) == json.dumps(
        bundle, sort_keys=True)


def test_render_explain_names_everything():
    text = render_explain(_bundle(), index=0)
    assert GOLDEN_FIG9B in text
    assert "./dspl.hpp:612" in text and "./dspl.hpp:614" in text
    assert "open epochs on window: ranks [0, 1]" in text
    assert "racing store: 3 nodes" in text
    assert "timeline of rank 0" in text and "timeline of rank 2" in text
    assert "<-- racing access (new)" in text
    assert "<-- racing access (stored)" in text
    # the enclosing epoch made it into the shown timeline
    assert "lock_all" in text


def test_render_explain_all_empty():
    assert "no races" in render_explain_all([])


def test_render_explain_all_indexes_races():
    text = render_explain_all([_bundle(), _bundle()])
    assert "race 0:" in text and "race 1:" in text

"""Unit tests for race reports (the Fig. 9b output format)."""

import pytest

from repro.core import DataRaceError, RaceReport
from tests.conftest import RW, acc


class TestRaceReport:
    def test_message_matches_fig9b_format(self):
        stored = acc(0, 16, RW, file="./dspl.hpp", line=612)
        new = acc(0, 16, RW, file="./dspl.hpp", line=614)
        report = RaceReport(1, 0, stored, new, "Our Contribution")
        assert report.message == (
            "Error when inserting memory access of type RMA_WRITE from file "
            "./dspl.hpp:614 with already inserted interval of type RMA_WRITE "
            "from file ./dspl.hpp:612. The program will be exiting now with "
            "MPI_Abort."
        )

    def test_str_is_message(self):
        report = RaceReport(0, 0, acc(0, 4, RW), acc(0, 4, RW))
        assert str(report) == report.message

    def test_frozen(self):
        report = RaceReport(0, 0, acc(0, 4, RW), acc(0, 4, RW))
        with pytest.raises(AttributeError):
            report.rank = 3  # type: ignore[misc]


class TestDataRaceError:
    def test_carries_report(self):
        report = RaceReport(0, 0, acc(0, 4, RW), acc(0, 4, RW))
        err = DataRaceError(report)
        assert err.report is report
        assert str(err) == report.message

    def test_is_runtime_error(self):
        report = RaceReport(0, 0, acc(0, 4, RW), acc(0, 4, RW))
        with pytest.raises(RuntimeError):
            raise DataRaceError(report)

"""Tests for the strided-merging extension (§6(3) future work)."""

import pytest

from repro.core import OurDetector
from repro.core.strided import StridedChain, StridedDetector, site_key
from repro.intervals import DebugInfo, Interval
from repro.mpi import BYTE, World
from repro.mpi.simulator import Buffer
from tests.conftest import LR, LW, RR, RW, acc


class TestStridedChain:
    def chain(self, base=0, stride=24, reps=4, length=8):
        return StridedChain(acc(base, base + length, LR, line=1),
                            base, stride, reps)

    def test_envelope(self):
        c = self.chain()
        assert c.envelope == Interval(0, 24 * 3 + 8)

    def test_members(self):
        c = self.chain(reps=3)
        assert [m.interval.lo for m in c.members()] == [0, 24, 48]
        assert all(len(m.interval) == 8 for m in c.members())

    def test_overlapping_member_hit(self):
        c = self.chain()
        m = c.overlapping_member(Interval(26, 28))
        assert m is not None and m.interval == Interval(24, 32)

    def test_overlapping_member_gap_miss(self):
        c = self.chain()
        # [10, 20) sits between member 0 ([0,8)) and member 1 ([24,32))
        assert c.overlapping_member(Interval(10, 20)) is None

    def test_overlapping_member_outside_envelope(self):
        c = self.chain()
        assert c.overlapping_member(Interval(200, 210)) is None

    def test_extends(self):
        c = self.chain(reps=2)
        assert c.extends(acc(48, 56, LR, line=1))
        assert not c.extends(acc(49, 57, LR, line=1))
        assert not c.extends(acc(48, 60, LR, line=1))  # wrong length

    def test_site_key_discriminates(self):
        a = acc(0, 8, LR, line=1)
        assert site_key(a) == site_key(acc(24, 32, LR, line=1))
        assert site_key(a) != site_key(acc(24, 32, LR, line=2))
        assert site_key(a) != site_key(acc(24, 32, LW, line=1))
        assert site_key(a) != site_key(acc(24, 36, LR, line=1))


def strided_loads_program(ctx, n=32, stride=3, race_at=None):
    """n strided single-byte window loads at one source line."""
    win = yield ctx.win_allocate("w", 256, BYTE)
    buf = ctx.alloc("buf", 8, BYTE, rma_hint=True)
    ctx.win_lock_all(win)
    yield ctx.barrier()
    if ctx.rank == 0:
        winbuf = Buffer(win.region_of(0), BYTE)
        d = DebugInfo("s.c", 7)
        for i in range(n):
            ctx.load(winbuf, i * stride, 1, debug=d)
    yield
    if race_at is not None and ctx.rank == 1:
        ctx.put(win, 0, race_at, buf, 0, 1)
    yield
    ctx.win_unlock_all(win)
    yield ctx.win_free(win)


class TestStridedDetector:
    def test_strided_accesses_collapse(self):
        det = StridedDetector()
        World(2, [det]).run(strided_loads_program)
        # 32 strided loads -> one chain (plus nothing else at rank 0)
        assert det.chains_formed == 1
        assert det.accesses_absorbed == 31
        assert det.node_stats().max_nodes_per_rank.get(0, 0) <= 1

    def test_plain_detector_keeps_them_all(self):
        det = OurDetector()
        World(2, [det]).run(strided_loads_program)
        # stride 3 with 1-byte loads: nothing adjacent, nothing merges
        assert det.node_stats().max_nodes_per_rank[0] == 32

    def test_race_with_chain_member_detected(self):
        det = StridedDetector()
        World(2, [det]).run(strided_loads_program, 32, 3, 30)  # hits member 10
        assert det.reports_total == 1
        report = det.reports[0]
        assert report.new.type == RW  # the incoming put

    def test_write_into_gap_is_safe(self):
        det = StridedDetector()
        World(2, [det]).run(strided_loads_program, 32, 3, None)
        assert det.reports_total == 0

    def test_access_between_members_explodes_chain_soundly(self):
        """A same-rank store into a gap must not hide later races."""

        def program(ctx):
            win = yield ctx.win_allocate("w", 256, BYTE)
            buf = ctx.alloc("buf", 8, BYTE, rma_hint=True)
            ctx.win_lock_all(win)
            yield ctx.barrier()
            if ctx.rank == 0:
                winbuf = Buffer(win.region_of(0), BYTE)
                d = DebugInfo("s.c", 7)
                for i in range(8):
                    ctx.load(winbuf, i * 4, 2, debug=d)  # members [4i, 4i+2)
                # overlaps member 3 ([12,14)) -> chain must explode, and
                # the loads must still be individually race-checkable
                ctx.store(winbuf, 13, 1, 1, debug=DebugInfo("s.c", 9))
            yield
            if ctx.rank == 1:
                ctx.put(win, 0, 4, buf, 0, 1)  # races with member 1
            yield
            ctx.win_unlock_all(win)
            yield ctx.win_free(win)

        det = StridedDetector()
        World(2, [det]).run(program)
        assert det.reports_total >= 1

    def test_epoch_end_clears_chains(self):
        det = StridedDetector()

        def program(ctx):
            win = yield ctx.win_allocate("w", 256, BYTE)
            for _ in range(2):
                ctx.win_lock_all(win)
                if ctx.rank == 0:
                    winbuf = Buffer(win.region_of(0), BYTE)
                    d = DebugInfo("s.c", 7)
                    for i in range(8):
                        ctx.load(winbuf, i * 4, 1, debug=d)
                ctx.win_unlock_all(win)
                yield ctx.barrier()
            yield ctx.win_free(win)

        World(2, [det]).run(program)
        assert det.chains_formed == 2  # one per epoch, none leaks across

    def test_verdict_parity_with_plain_detector_on_microbench(self):
        """The extension must not change any suite verdict."""
        from repro.microbench import generate_suite, run_code

        suite = generate_suite()
        for spec in suite[::7]:  # a systematic sample
            plain = OurDetector()
            strided = StridedDetector()
            reported_plain, _ = run_code(spec, plain)
            reported_strided, _ = run_code(spec, strided)
            assert reported_plain == reported_strided == spec.racy, spec.name

    def test_minivite_node_reduction(self):
        from repro.apps import (MiniViteConfig, MiniViteResult, default_graph,
                                make_comm_plan, minivite_program)

        cfg = MiniViteConfig(nvertices=1024)
        graph = default_graph(cfg)
        plan = make_comm_plan(graph, 4)
        plain, strided = OurDetector(), StridedDetector()
        for det in (plain, strided):
            World(4, [det]).run(minivite_program, graph, plan, cfg,
                                MiniViteResult())
            assert det.reports_total == 0
        assert strided.node_stats().total_max_nodes < \
            0.5 * plain.node_stats().total_max_nodes

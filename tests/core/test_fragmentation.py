"""Unit tests for the §4.1 fragmentation algorithm."""

import pytest

from repro.core import fragment_accesses, fragment_pair
from repro.intervals import Interval
from tests.conftest import LR, LW, RR, RW, acc


class TestFig6SingleOverlap:
    """The three-fragment picture of paper Fig. 6."""

    def test_three_fragments(self):
        stored = acc(0, 10, LR, line=1)  # Type A
        new = acc(6, 16, RR, line=2)  # Type B
        frags = fragment_pair(stored, new)
        assert [f.interval for f in frags] == [
            Interval(0, 6), Interval(6, 10), Interval(10, 16)
        ]
        l_frag, inter_frag, r_frag = frags
        assert l_frag.type == LR and l_frag.debug.line == 1
        assert inter_frag.type == RR  # Table 1: RMA prevails
        assert inter_frag.debug.line == 2
        assert r_frag.type == RR and r_frag.debug.line == 2

    def test_new_inside_stored(self):
        stored = acc(2, 13, RR, line=11)
        new = acc(7, 8, LW, line=12)
        # NOTE: this pair is a Table-1 race cell, unreachable in practice
        # (the race check fires first); fragmentation itself is total and
        # resolves it by dominance order (RMA beats local)
        frags = fragment_pair(stored, new)
        assert [f.interval for f in frags] == [
            Interval(2, 7), Interval(7, 8), Interval(8, 13)
        ]
        assert frags[0].type == RR and frags[2].type == RR
        assert frags[1].type == RR and frags[1].debug.line == 11

    def test_stored_inside_new(self):
        stored = acc(5, 8, LR, line=1)
        new = acc(0, 12, LW, line=2)
        frags = fragment_pair(stored, new)
        assert [f.interval for f in frags] == [
            Interval(0, 5), Interval(5, 8), Interval(8, 12)
        ]
        assert [f.type for f in frags] == [LW, LW, LW]
        # intersection took the new (write) access's debug info
        assert frags[1].debug.line == 2

    def test_identical_intervals_collapse_to_one(self):
        stored = acc(4, 8, LR, line=1)
        new = acc(4, 8, LR, line=2)
        frags = fragment_pair(stored, new)
        assert len(frags) == 1
        assert frags[0].interval == Interval(4, 8)
        assert frags[0].debug.line == 2  # ties keep the newest

    def test_empty_fragments_not_emitted(self):
        stored = acc(0, 8, LR)
        new = acc(0, 4, LW, line=2)
        frags = fragment_pair(stored, new)
        assert [f.interval for f in frags] == [Interval(0, 4), Interval(4, 8)]


class TestMultiOverlap:
    def test_two_stored_accesses(self):
        s1 = acc(0, 4, LR, line=1)
        s2 = acc(8, 12, LW, line=2)
        new = acc(2, 10, RR, line=3)
        frags = fragment_accesses([s1, s2], new)
        assert [f.interval for f in frags] == [
            Interval(0, 2), Interval(2, 4), Interval(4, 8),
            Interval(8, 10), Interval(10, 12),
        ]
        assert [f.type for f in frags] == [LR, RR, RR, RR, LW]

    def test_gap_between_stored_filled_by_new(self):
        s1 = acc(0, 2, LR)
        s2 = acc(6, 8, LR)
        new = acc(0, 8, LR, line=9)
        frags = fragment_accesses([s1, s2], new)
        total = sum(len(f.interval) for f in frags)
        assert total == 8
        assert frags[0].interval.lo == 0 and frags[-1].interval.hi == 8

    def test_adjacent_stored_pass_through_unchanged(self):
        # an adjacent (non-overlapping) access is retrieved for merging but
        # fragmentation must not cut it
        s = acc(8, 12, LR, line=1)
        new = acc(4, 8, LR, line=2)
        frags = fragment_accesses([s], new)
        assert acc(8, 12, LR, line=1) in frags
        assert acc(4, 8, LR, line=2) in frags

    def test_disjointness_postcondition(self):
        s1 = acc(0, 6, LR)
        s2 = acc(10, 16, RW, origin=1)
        new = acc(4, 12, RR, line=2)
        frags = fragment_accesses([s1, s2], new)
        for i, a in enumerate(frags):
            for b in frags[i + 1 :]:
                assert not a.interval.overlaps(b.interval)

    def test_overlapping_stored_rejected(self):
        with pytest.raises(ValueError):
            fragment_accesses([acc(0, 6, LR), acc(4, 10, LR)], acc(2, 8, LR))

    def test_no_stored_returns_new_only(self):
        new = acc(4, 8, RW)
        assert fragment_accesses([], new) == [new]

"""Unit tests for Algorithm 1 (insert_access) and its helpers."""

import pytest

from repro.bst import IntervalBST
from repro.core import (
    data_race_detection,
    finish_insertion,
    get_intersecting_accesses,
    insert_access,
)
from repro.intervals import Interval, is_race_legacy
from tests.conftest import LR, LW, RR, RW, acc


def insert_all(bst, *accesses):
    outcomes = [insert_access(a, bst) for a in accesses]
    return outcomes


class TestDataRaceDetection:
    def test_detects_conflict(self):
        bst = IntervalBST()
        bst.insert(acc(2, 13, RR, origin=0))
        conflict = data_race_detection(acc(7, 8, LW, origin=0), bst)
        assert conflict is not None
        assert conflict.type == RR

    def test_no_conflict_when_disjoint(self):
        bst = IntervalBST()
        bst.insert(acc(2, 5, RW))
        assert data_race_detection(acc(6, 8, LW), bst) is None

    def test_custom_predicate(self):
        bst = IntervalBST()
        bst.insert(acc(2, 5, LR, origin=0))
        new = acc(2, 5, RW, origin=0)
        # fixed predicate: local-then-RMA same rank is safe
        assert data_race_detection(new, bst) is None
        # legacy predicate flags it
        assert data_race_detection(new, bst, is_race_legacy) is not None


class TestGetIntersecting:
    def test_includes_adjacent(self):
        bst = IntervalBST()
        stored = acc(4, 8, RW, line=1)
        bst.insert(stored)
        got = get_intersecting_accesses(acc(8, 12, RW, line=1), bst)
        assert got == [stored]

    def test_excludes_separated(self):
        bst = IntervalBST()
        bst.insert(acc(4, 8, RW))
        assert get_intersecting_accesses(acc(10, 12, RW), bst) == []

    def test_zero_lower_bound(self):
        bst = IntervalBST()
        bst.insert(acc(0, 4, LR))
        assert len(get_intersecting_accesses(acc(0, 2, LR), bst)) == 1


class TestInsertAccess:
    def test_insert_into_empty(self):
        bst = IntervalBST()
        out = insert_access(acc(4, 8, LR), bst)
        assert not out.has_race
        assert bst.snapshot() == [acc(4, 8, LR)]

    def test_race_leaves_bst_untouched(self):
        bst = IntervalBST()
        insert_all(bst, acc(2, 13, RR, origin=0))
        before = bst.snapshot()
        out = insert_access(acc(7, 8, LW, origin=0), bst)
        assert out.has_race
        assert out.conflict == before[0]
        assert bst.snapshot() == before

    def test_fig5b_tree_content(self):
        """Code 1's BST after our insertions covers Fig. 5b's state.

        The paper's Fig. 5b draws the three fragments [2...3] / [4] /
        [5...12], all RMA_Read with the Put's debug info; §4.2's merging
        then coalesces them (same type, same debug info) into one node —
        strictly fewer nodes, identical detection behaviour.
        """
        bst = IntervalBST()
        insert_all(
            bst,
            acc(4, 5, LR, line=10),    # Load(4)
            acc(2, 13, RR, line=11),   # MPI_Put(2,12) origin side
        )
        snap = bst.snapshot()
        assert snap == [acc(2, 13, RR, line=11)]
        # and the Store(7) race is now caught (the Fig. 5a miss, fixed)
        out = insert_access(acc(7, 8, LW, line=12), bst)
        assert out.has_race

    def test_disjointness_invariant_maintained(self):
        bst = IntervalBST()
        insert_all(
            bst,
            acc(0, 10, LR, line=1),
            acc(5, 15, LR, line=2),
            acc(3, 7, LR, line=3),
            acc(20, 25, LW, line=4),
            acc(24, 30, LW, line=5),
        )
        snap = bst.snapshot()
        for i, a in enumerate(snap):
            for b in snap[i + 1 :]:
                assert not a.interval.overlaps(b.interval)

    def test_merging_collapses_adjacent_loop(self):
        """The Code-2 effect: same-line adjacent accesses become one node."""
        bst = IntervalBST()
        for i in range(100):
            out = insert_access(acc(i, i + 1, RW, line=10), bst)
            assert not out.has_race
        assert len(bst) == 1
        assert bst.snapshot()[0].interval == Interval(0, 100)

    def test_no_merge_across_debug_lines(self):
        bst = IntervalBST()
        insert_all(bst, acc(0, 4, RW, line=1), acc(4, 8, RW, line=2))
        assert len(bst) == 2

    def test_same_type_reinsert_keeps_one_node(self):
        bst = IntervalBST()
        insert_all(bst, acc(0, 8, LR, line=1), acc(0, 8, LR, line=1))
        assert len(bst) == 1

    def test_write_upgrades_read(self):
        bst = IntervalBST()
        insert_all(bst, acc(0, 8, LR, line=1), acc(0, 8, LW, line=2))
        snap = bst.snapshot()
        assert snap == [acc(0, 8, LW, line=2)]

    def test_partial_upgrade_fragments(self):
        bst = IntervalBST()
        insert_all(bst, acc(0, 12, LR, line=1), acc(4, 8, LW, line=2))
        snap = bst.snapshot()
        assert [a.interval for a in snap] == [
            Interval(0, 4), Interval(4, 8), Interval(8, 12)
        ]
        assert [a.type for a in snap] == [LR, LW, LR]

    def test_outcome_reports_merged_and_removed(self):
        bst = IntervalBST()
        insert_access(acc(0, 4, RW, line=1), bst)
        out = insert_access(acc(4, 8, RW, line=1), bst)
        assert out.merged == [acc(0, 8, RW, line=1)]
        assert out.removed == [acc(0, 4, RW, line=1)]

    def test_growth_bounded_per_overlap(self):
        """§4.1's "-1 node, +3 nodes": +2 net per intersecting stored
        node; an insert overlapping k nodes nets at most k + 1."""
        import random

        rng = random.Random(9)
        bst = IntervalBST()
        prev = 0
        for _ in range(300):
            lo = rng.randint(0, 400)
            a = acc(lo, lo + rng.randint(1, 30), LR, line=rng.randint(1, 3))
            out = insert_access(a, bst)
            bound = max(len(out.removed) + 1, 1)
            assert len(bst) - prev <= bound + (1 if not out.removed else 0)
            prev = len(bst)

    def test_single_overlap_nets_at_most_two(self):
        """The exact case the paper describes: one stored access split by
        one new access -> one node removed, at most three added."""
        bst = IntervalBST()
        insert_access(acc(0, 30, LR, line=1), bst)
        out = insert_access(acc(10, 20, LW, line=2), bst)
        assert len(out.removed) == 1
        assert len(bst) <= 1 + 2


class TestFinishInsertion:
    def test_swap(self):
        bst = IntervalBST()
        old = acc(0, 4, LR)
        bst.insert(old)
        finish_insertion([old], [acc(0, 2, LR), acc(2, 4, LW)], bst)
        assert len(bst) == 2

    def test_missing_old_raises(self):
        bst = IntervalBST()
        with pytest.raises(RuntimeError):
            finish_insertion([acc(0, 4, LR)], [], bst)

"""Unit tests for OurDetector (the full §4 + §6 detector)."""

import pytest

from repro.core import DataRaceError, OurDetector
from repro.mpi import World
from tests.conftest import LR, LW, RR, RW


def two_rank_world(det):
    return World(2, [det])


def simple_epoch(body):
    """A 2-rank program template: body(ctx, win, buf) runs inside an epoch."""

    def program(ctx):
        win = yield ctx.win_allocate("w", 64)
        buf = ctx.alloc("buf", 64, rma_hint=True)
        ctx.win_lock_all(win)
        yield
        yield from body(ctx, win, buf) or ()
        yield
        ctx.win_unlock_all(win)
        yield ctx.win_free(win)

    return program


class TestBasicDetection:
    def test_get_then_load_races(self):
        det = OurDetector()

        def body(ctx, win, buf):
            if ctx.rank == 0:
                ctx.get(win, 1, 0, buf, 0, 8)
                ctx.load(buf, 0)
            return ()

        two_rank_world(det).run(simple_epoch(body))
        assert det.reports_total == 1
        assert det.reports[0].new.type == LR
        assert det.reports[0].stored.type == RW

    def test_load_then_get_safe(self):
        det = OurDetector()

        def body(ctx, win, buf):
            if ctx.rank == 0:
                ctx.load(buf, 0)
                ctx.get(win, 1, 0, buf, 0, 8)
            return ()

        two_rank_world(det).run(simple_epoch(body))
        assert det.reports_total == 0

    def test_cross_process_put_put_races(self):
        det = OurDetector()

        def program(ctx):
            win = yield ctx.win_allocate("w", 64)
            buf = ctx.alloc("buf", 8, rma_hint=True)
            ctx.win_lock_all(win)
            yield
            ctx.put(win, 0, 0, buf, 0, 8)  # both ranks write rank 0's window
            yield
            ctx.win_unlock_all(win)
            yield ctx.win_free(win)

        World(2, [det]).run(program)
        assert det.reports_total == 1

    def test_abort_on_race_raises(self):
        det = OurDetector(abort_on_race=True)

        def body(ctx, win, buf):
            if ctx.rank == 0:
                ctx.get(win, 1, 0, buf, 0, 8)
                ctx.load(buf, 0)
            return ()

        with pytest.raises(DataRaceError):
            two_rank_world(det).run(simple_epoch(body))


class TestEpochScoping:
    def test_bst_cleared_at_epoch_end(self):
        det = OurDetector()

        def program(ctx):
            win = yield ctx.win_allocate("w", 64)
            buf = ctx.alloc("buf", 8, rma_hint=True)
            # epoch 1: the get
            ctx.win_lock_all(win)
            if ctx.rank == 0:
                ctx.get(win, 1, 0, buf, 0, 8)
            ctx.win_unlock_all(win)
            yield ctx.barrier()
            # epoch 2: the load — no race, different epoch
            ctx.win_lock_all(win)
            if ctx.rank == 0:
                ctx.load(buf, 0)
            ctx.win_unlock_all(win)
            yield ctx.win_free(win)

        World(2, [det]).run(program)
        assert det.reports_total == 0

    def test_accesses_outside_epochs_ignored(self):
        det = OurDetector()

        def program(ctx):
            win = yield ctx.win_allocate("w", 64)
            buf = ctx.alloc("buf", 8, rma_hint=True)
            ctx.load(buf, 0)  # before any epoch: not tracked
            ctx.win_lock_all(win)
            ctx.win_unlock_all(win)
            yield ctx.win_free(win)

        World(2, [det]).run(program)
        assert det.node_stats().accesses_processed == 0


class TestFlushSemantics:
    """The §6 discussion: precise MPI_Win_flush handling."""

    def test_flush_barrier_orders_same_origin_puts(self):
        det = OurDetector()

        def program(ctx):
            win = yield ctx.win_allocate("w", 64)
            buf = ctx.alloc("buf", 8, rma_hint=True)
            ctx.win_lock_all(win)
            yield
            if ctx.rank == 0:
                ctx.put(win, 1, 0, buf, 0, 8)
                ctx.win_flush_all(win)
            yield ctx.barrier()
            if ctx.rank == 0:
                ctx.put(win, 1, 0, buf, 0, 8)  # same range again: completed
            yield
            ctx.win_unlock_all(win)
            yield ctx.win_free(win)

        World(2, [det]).run(program)
        assert det.reports_total == 0

    def test_flush_without_barrier_does_not_order_other_ranks(self):
        """Flush only completes the *caller's* ops; another origin still races."""
        det = OurDetector()

        def program(ctx):
            win = yield ctx.win_allocate("w", 64)
            buf = ctx.alloc("buf", 8, rma_hint=True)
            ctx.win_lock_all(win)
            yield
            if ctx.rank == 0:
                ctx.put(win, 2, 0, buf, 0, 8)
                ctx.win_flush_all(win)
            yield
            if ctx.rank == 1:
                ctx.put(win, 2, 0, buf, 0, 8)  # concurrent with rank 0's put
            yield
            ctx.win_unlock_all(win)
            yield ctx.win_free(win)

        World(3, [det]).run(program)
        assert det.reports_total == 1

    def test_unflushed_puts_survive_barrier(self):
        det = OurDetector()

        def program(ctx):
            win = yield ctx.win_allocate("w", 64)
            buf = ctx.alloc("buf", 8, rma_hint=True)
            ctx.win_lock_all(win)
            yield
            if ctx.rank == 0:
                ctx.put(win, 1, 0, buf, 0, 8)  # NOT flushed
            yield ctx.barrier()
            if ctx.rank == 0:
                ctx.put(win, 1, 0, buf, 0, 8)  # still pending: race
            yield
            ctx.win_unlock_all(win)
            yield ctx.win_free(win)

        World(2, [det]).run(program)
        assert det.reports_total == 1

    def test_barrier_prunes_completed_local_accesses(self):
        det = OurDetector()

        def program(ctx):
            win = yield ctx.win_allocate("w", 64)
            buf = ctx.alloc("buf", 8, rma_hint=True)
            ctx.win_lock_all(win)
            yield
            if ctx.rank == 1:
                ctx.store(buf, 0, 1)  # completed local write
            yield ctx.barrier()
            if ctx.rank == 0:
                # remote write to rank 1's *window*, not buf — plus a put
                # overlapping nothing; the pruned store cannot race anyway
                pass
            yield
            ctx.win_unlock_all(win)
            yield ctx.win_free(win)

        World(2, [det]).run(program)
        bst = det.bst_of(1, 0)
        assert bst is None or len(bst) == 0


class TestStatistics:
    def test_merge_counters(self):
        det = OurDetector()

        def body(ctx, win, buf):
            if ctx.rank == 0:
                from repro.intervals import DebugInfo
                d = DebugInfo("x.c", 1)
                for i in range(8):
                    ctx.get(win, 1, i, buf, i, 1, debug=d)
            return ()

        two_rank_world(det).run(simple_epoch(body))
        assert det.merges_performed > 0
        stats = det.node_stats()
        # 8 gets -> 1 origin node + 1 target node
        assert stats.total_current_nodes == 0  # cleared at epoch end
        assert stats.total_max_nodes <= 4

"""Unit tests for the §4.2 merging algorithm."""

from repro.core import merge_accesses
from repro.intervals import Interval
from tests.conftest import LR, LW, RR, RW, acc


class TestMergeConditions:
    def test_adjacent_same_site_merge(self):
        merged = merge_accesses([acc(0, 4, RW, line=10), acc(4, 8, RW, line=10)])
        assert merged == [acc(0, 8, RW, line=10)]

    def test_non_adjacent_do_not_merge(self):
        frags = [acc(0, 4, RW, line=10), acc(5, 8, RW, line=10)]
        assert merge_accesses(frags) == frags

    def test_different_type_do_not_merge(self):
        frags = [acc(0, 4, RW, line=10), acc(4, 8, RR, line=10)]
        assert merge_accesses(frags) == frags

    def test_different_debug_info_do_not_merge(self):
        # §4.2: "they will not be fixed in the same way"
        frags = [acc(0, 4, RW, line=10), acc(4, 8, RW, line=11)]
        assert merge_accesses(frags) == frags

    def test_different_origin_do_not_merge(self):
        frags = [acc(0, 4, RW, line=10, origin=0), acc(4, 8, RW, line=10, origin=1)]
        assert merge_accesses(frags) == frags

    def test_different_flush_gen_do_not_merge(self):
        frags = [
            acc(0, 4, RW, line=10, flush_gen=0),
            acc(4, 8, RW, line=10, flush_gen=1),
        ]
        assert merge_accesses(frags) == frags


class TestMergeMechanics:
    def test_long_run_collapses(self):
        frags = [acc(i, i + 1, RW, line=10) for i in range(100)]
        merged = merge_accesses(frags)
        assert merged == [acc(0, 100, RW, line=10)]

    def test_unsorted_input(self):
        frags = [acc(4, 8, RW, line=1), acc(0, 4, RW, line=1), acc(8, 12, RW, line=1)]
        assert merge_accesses(frags) == [acc(0, 12, RW, line=1)]

    def test_fig7_shape(self):
        # Fig. 7: a Type-A island followed by three mergeable Type-B parts
        frags = [
            acc(0, 4, LR, line=1),
            acc(6, 8, RW, line=2),
            acc(8, 10, RW, line=2),
            acc(10, 14, RW, line=2),
        ]
        merged = merge_accesses(frags)
        assert merged == [acc(0, 4, LR, line=1), acc(6, 14, RW, line=2)]

    def test_idempotent(self):
        frags = [
            acc(0, 4, RW, line=1),
            acc(4, 8, RW, line=2),
            acc(8, 12, RW, line=2),
        ]
        once = merge_accesses(frags)
        assert merge_accesses(once) == once

    def test_empty(self):
        assert merge_accesses([]) == []

    def test_single(self):
        a = acc(0, 4, LW)
        assert merge_accesses([a]) == [a]

    def test_alternating_types_unchanged(self):
        frags = [acc(i * 2, i * 2 + 2, RW if i % 2 else RR, line=1) for i in range(6)]
        assert merge_accesses(frags) == frags

    def test_preserves_total_coverage(self):
        frags = [acc(i * 3, i * 3 + 3, RW, line=1) for i in range(10)]
        merged = merge_accesses(frags)
        assert sum(len(f.interval) for f in merged) == 30
        assert merged[0].interval == Interval(0, 30)

"""Property-based tests for fragmentation/merging/insertion invariants."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bst import IntervalBST
from repro.core import fragment_accesses, insert_access, merge_accesses
from repro.intervals import AccessType, Interval
from tests.conftest import acc

# strategies -----------------------------------------------------------------

atypes = st.sampled_from(list(AccessType))


def _access(lo, ln, t, line, origin):
    return acc(lo, lo + ln, t, line=line, origin=origin)


accesses = st.builds(
    _access,
    st.integers(0, 200),
    st.integers(1, 30),
    atypes,
    st.integers(1, 3),
    st.integers(0, 2),
)


@st.composite
def disjoint_sets(draw):
    """A list of pairwise-disjoint accesses (the BST invariant)."""
    n = draw(st.integers(0, 8))
    cursor = 0
    out = []
    for _ in range(n):
        gap = draw(st.integers(0, 10))
        ln = draw(st.integers(1, 20))
        t = draw(atypes)
        line = draw(st.integers(1, 3))
        origin = draw(st.integers(0, 2))
        out.append(acc(cursor + gap, cursor + gap + ln, t, line=line,
                       origin=origin))
        cursor += gap + ln
    return out


def covered_bytes(accs):
    c = Counter()
    for a in accs:
        for b in range(a.interval.lo, a.interval.hi):
            c[b] += 1
    return c


# fragmentation ---------------------------------------------------------------


@given(disjoint_sets(), accesses)
@settings(max_examples=120)
def test_fragmentation_covers_union_exactly_once(stored, new):
    relevant = [s for s in stored if s.interval.overlaps(new.interval)
                or s.interval.is_adjacent(new.interval)]
    frags = fragment_accesses(relevant, new)
    want = set(covered_bytes(relevant)) | set(covered_bytes([new]))
    got = covered_bytes(frags)
    assert set(got) == want
    assert all(v == 1 for v in got.values())  # pairwise disjoint


@given(disjoint_sets(), accesses)
@settings(max_examples=120)
def test_fragment_types_dominate(stored, new):
    relevant = [s for s in stored if s.interval.overlaps(new.interval)]
    frags = fragment_accesses(relevant, new)
    key = lambda t: (t.is_rma, t.is_write)
    for f in frags:
        for s in relevant:
            inter = f.interval.intersection(s.interval)
            if inter is not None and new.interval.contains_interval(inter):
                assert key(f.type) >= key(s.type)
                assert key(f.type) >= key(new.type)


# merging ----------------------------------------------------------------------


@given(disjoint_sets())
@settings(max_examples=120)
def test_merge_preserves_coverage_and_is_canonical(frags):
    merged = merge_accesses(frags)
    assert covered_bytes(merged) == covered_bytes(frags)
    # result is sorted and pairwise non-mergeable
    for a, b in zip(merged, merged[1:]):
        assert a.interval.lo <= b.interval.lo
        assert not (a.interval.is_adjacent(b.interval) and a.same_site(b))
    assert merge_accesses(merged) == merged


# insertion ---------------------------------------------------------------------


@given(st.lists(accesses, max_size=30))
@settings(max_examples=60, deadline=None)
def test_insert_maintains_disjointness_and_tree_invariants(stream):
    bst = IntervalBST()
    for a in stream:
        insert_access(a, bst)
    snap = bst.snapshot()
    for x, y in zip(snap, snap[1:]):
        assert x.interval.hi <= y.interval.lo or not x.interval.overlaps(y.interval)
    cover = covered_bytes(snap)
    assert all(v == 1 for v in cover.values())
    bst.check_invariants()


@given(st.lists(accesses, max_size=30))
@settings(max_examples=60, deadline=None)
def test_inserted_bytes_stay_covered_unless_raced(stream):
    """Every byte of every successfully inserted access stays covered."""
    bst = IntervalBST()
    inserted_bytes = set()
    for a in stream:
        out = insert_access(a, bst)
        if not out.has_race:
            inserted_bytes |= set(range(a.interval.lo, a.interval.hi))
    covered = set(covered_bytes(bst.snapshot()))
    assert inserted_bytes <= covered


@given(st.lists(accesses, max_size=25))
@settings(max_examples=60, deadline=None)
def test_net_growth_bounded_by_overlap_count(stream):
    """§4.1's "-1 node, +3 nodes" holds per intersecting pair: a new
    access overlapping k disjoint stored nodes nets at most k + 1 new
    nodes (the paper's +2 is the single-overlap case)."""
    bst = IntervalBST()
    prev = 0
    for a in stream:
        k = len(bst.find_overlapping(a.interval))
        insert_access(a, bst)
        assert len(bst) - prev <= k + 1
        prev = len(bst)

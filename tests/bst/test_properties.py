"""Property-based tests for the AVL multiset and the interval tree."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bst import AVLTree, IntervalBST
from repro.intervals import Interval
from tests.conftest import acc

keys = st.lists(st.integers(0, 200), max_size=120)


@given(keys)
def test_avl_inorder_is_sorted_multiset(values):
    tree = AVLTree()
    for v in values:
        tree.insert(v, v)
    assert list(tree) == sorted(values)
    tree.check_invariants()


@given(keys)
def test_avl_height_logarithmic(values):
    tree = AVLTree()
    for v in values:
        tree.insert(v, v)
    n = len(values)
    if n:
        assert tree.height() <= int(1.45 * (n.bit_length() + 1)) + 1


@given(keys, st.randoms(use_true_random=False))
def test_avl_insert_remove_roundtrip(values, rng):
    tree = AVLTree()
    for v in values:
        tree.insert(v, v)
    order = list(values)
    rng.shuffle(order)
    for v in order:
        assert tree.remove_value(v, v)
    assert len(tree) == 0


# interval-tree strategies -------------------------------------------------

access_lists = st.lists(
    st.builds(
        lambda lo, ln: acc(lo, lo + ln),
        st.integers(0, 300),
        st.integers(1, 40),
    ),
    max_size=80,
)
queries = st.builds(
    lambda lo, ln: Interval(lo, lo + ln),
    st.integers(0, 340),
    st.integers(1, 50),
)


@given(access_lists, queries)
@settings(max_examples=60)
def test_interval_query_matches_bruteforce(accesses, q):
    bst = IntervalBST()
    for a in accesses:
        bst.insert(a)
    expected = sorted(
        (a for a in accesses if a.interval.overlaps(q)),
        key=lambda a: (a.interval.lo, a.interval.hi),
    )
    assert bst.find_overlapping(q) == expected


@given(access_lists)
@settings(max_examples=40)
def test_interval_tree_invariants(accesses):
    bst = IntervalBST()
    for a in accesses:
        bst.insert(a)
    bst.check_invariants()


@given(access_lists, st.randoms(use_true_random=False))
@settings(max_examples=40)
def test_interval_tree_invariants_after_removals(accesses, rng):
    bst = IntervalBST()
    for a in accesses:
        bst.insert(a)
    order = list(accesses)
    rng.shuffle(order)
    for a in order[: len(order) // 2]:
        assert bst.remove(a)
    bst.check_invariants()
    remaining = sorted(
        order[len(order) // 2 :], key=lambda a: (a.interval.lo, a.interval.hi)
    )
    assert sorted(
        bst.snapshot(), key=lambda a: (a.interval.lo, a.interval.hi)
    ) == remaining

"""Unit tests for the legacy lower-bound-only search (the unsound one)."""

from repro.bst import IntervalBST, legacy_find_overlapping
from repro.intervals import Interval
from tests.conftest import LR, LW, RR, RW, acc


def bst_with(*accesses):
    bst = IntervalBST()
    for a in accesses:
        bst.insert(a)
    return bst


class TestFig5Reproduction:
    """The exact false-negative scenario of paper Fig. 5a."""

    def test_misses_wide_interval_off_path(self):
        # Load(4); MPI_Put(2,12); the wide interval goes LEFT of [4]
        load4 = acc(4, 5, LR)
        put = acc(2, 13, RR)
        bst = bst_with(load4, put)
        # querying for Store(7): 7 > 4 descends right, never sees the Put
        hits = legacy_find_overlapping(bst, Interval(7, 8))
        assert hits == []

    def test_correct_query_finds_it(self):
        load4 = acc(4, 5, LR)
        put = acc(2, 13, RR)
        bst = bst_with(load4, put)
        assert bst.find_overlapping(Interval(7, 8)) == [put]

    def test_finds_overlaps_on_the_path(self):
        # two-operation codes always hit (first access is the root)
        a = acc(2, 13, RR)
        bst = bst_with(a)
        assert legacy_find_overlapping(bst, Interval(7, 8)) == [a]

    def test_exact_lower_bound_match_found(self):
        a = acc(7, 15, RW)
        bst = bst_with(acc(4, 5), a)
        assert a in legacy_find_overlapping(bst, Interval(7, 9))


class TestSubsetProperty:
    def test_legacy_results_are_subset_of_correct(self):
        import random

        rng = random.Random(3)
        accs = [
            acc(lo, lo + rng.randint(1, 30))
            for lo in (rng.randint(0, 300) for _ in range(200))
        ]
        bst = bst_with(*accs)
        for _ in range(40):
            lo = rng.randint(0, 320)
            q = Interval(lo, lo + rng.randint(1, 40))
            legacy = legacy_find_overlapping(bst, q)
            correct = bst.find_overlapping(q)
            assert set(
                (a.interval.lo, a.interval.hi) for a in legacy
            ) <= set((a.interval.lo, a.interval.hi) for a in correct)
            for a in legacy:
                assert a.interval.overlaps(q)

    def test_legacy_path_length_bounded_by_height(self):
        bst = bst_with(*(acc(i * 4, i * 4 + 2) for i in range(128)))
        before = bst.stats.comparisons
        legacy_find_overlapping(bst, Interval(200, 202))
        walked = bst.stats.comparisons - before
        assert walked <= bst.height()

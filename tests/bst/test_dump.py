"""Tests for the ASCII BST renderer."""

from repro.bst import IntervalBST, dump_bst, dump_detector_stores
from repro.core import OurDetector
from repro.mpi import World
from tests.conftest import LR, LW, RR, acc


def fig5a_tree():
    bst = IntervalBST()
    bst.insert(acc(4, 5, LR, line=10))
    bst.insert(acc(2, 13, RR, line=11))
    bst.insert(acc(7, 8, LW, line=12))
    return bst


class TestDumpBst:
    def test_empty(self):
        assert dump_bst(IntervalBST()) == "(empty)"

    def test_fig5a_shape(self):
        text = dump_bst(fig5a_tree())
        lines = text.splitlines()
        assert lines[0] == "([4], LOCAL_READ)"
        assert "L: ([2...12], RMA_READ)" in lines[1]
        assert "R: ([7], LOCAL_WRITE)" in lines[2]

    def test_debug_locations(self):
        text = dump_bst(fig5a_tree(), debug=True)
        assert "t.c:11" in text

    def test_deep_tree_renders_every_node(self):
        bst = IntervalBST()
        for i in range(16):
            bst.insert(acc(i * 4, i * 4 + 2, LR, line=i))
        text = dump_bst(bst)
        assert len(text.splitlines()) == 16

    def test_accumulate_tag(self):
        bst = IntervalBST()
        bst.insert(acc(0, 4, RR).__class__(
            acc(0, 4, RR).interval, RR, acc(0, 4, RR).debug, 0, 0, 0, "sum"
        ))
        assert "[sum]" in dump_bst(bst)


class TestDumpDetector:
    def test_live_stores_rendered(self):
        det = OurDetector()

        def program(ctx):
            win = yield ctx.win_allocate("w", 32)
            buf = ctx.alloc("buf", 8, rma_hint=True)
            ctx.win_lock_all(win)
            yield ctx.barrier()
            if ctx.rank == 0:
                ctx.put(win, 1, 0, buf, 0, 8)
            yield
            text = dump_detector_stores(det)
            if ctx.rank == 0:
                assert "rank 0, window 0" in text
                assert "RMA_READ" in text  # the put's origin side
                assert "rank 1, window 0" in text
                assert "RMA_WRITE" in text  # the put's target side
            yield
            ctx.win_unlock_all(win)
            yield ctx.win_free(win)

        World(2, [det]).run(program)

    def test_no_stores(self):
        assert dump_detector_stores(OurDetector()) == "(no live stores)"

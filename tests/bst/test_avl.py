"""Unit tests for the from-scratch AVL multiset."""

import random

import pytest

from repro.bst import AVLTree


def make_tree(values, balanced=True):
    tree = AVLTree(balanced=balanced)
    for v in values:
        tree.insert(v, v)
    return tree


class TestBasics:
    def test_empty(self):
        tree = AVLTree()
        assert len(tree) == 0
        assert not tree
        assert list(tree) == []
        assert tree.height() == 0

    def test_single(self):
        tree = make_tree([5])
        assert len(tree) == 1 and tree.height() == 1
        assert list(tree) == [5]

    def test_inorder_sorted(self):
        values = [5, 3, 8, 1, 9, 2, 7]
        assert list(make_tree(values)) == sorted(values)

    def test_duplicates_kept(self):
        tree = make_tree([4, 4, 4])
        assert len(tree) == 3
        assert list(tree) == [4, 4, 4]

    def test_clear(self):
        tree = make_tree(range(10))
        tree.clear()
        assert len(tree) == 0 and list(tree) == []


class TestBalance:
    def test_ascending_inserts_stay_logarithmic(self):
        tree = make_tree(range(1024))
        assert tree.height() <= 11 + 4  # 1.44 * log2(n) bound
        tree.check_invariants()

    def test_descending_inserts(self):
        tree = make_tree(range(1024, 0, -1))
        assert tree.height() <= 15
        tree.check_invariants()

    def test_unbalanced_mode_degenerates(self):
        tree = make_tree(range(100), balanced=False)
        assert tree.height() == 100  # a linked list
        assert list(tree) == list(range(100))

    def test_rotations_counted(self):
        tree = make_tree(range(64))
        assert tree.stats.rotations > 0
        assert make_tree([1], balanced=True).stats.rotations == 0


class TestRemoval:
    def test_remove_leaf(self):
        tree = make_tree([5, 3, 8])
        assert tree.remove_value(3, 3)
        assert list(tree) == [5, 8]
        tree.check_invariants()

    def test_remove_root_with_two_children(self):
        tree = make_tree([5, 3, 8, 1, 4, 7, 9])
        assert tree.remove_value(5, 5)
        assert list(tree) == [1, 3, 4, 7, 8, 9]
        tree.check_invariants()

    def test_remove_absent_returns_false(self):
        tree = make_tree([5])
        assert not tree.remove_value(3, 3)
        assert not tree.remove_value(5, 6)  # key there, value mismatch
        assert len(tree) == 1

    def test_remove_one_duplicate_only(self):
        tree = AVLTree()
        tree.insert(4, "a")
        tree.insert(4, "b")
        tree.insert(4, "a")
        assert tree.remove_value(4, "a")
        assert sorted(list(tree)) == ["a", "b"]

    def test_remove_all_one_by_one(self):
        values = list(range(200))
        random.Random(7).shuffle(values)
        tree = make_tree(values)
        random.Random(8).shuffle(values)
        for v in values:
            assert tree.remove_value(v, v)
            tree.check_invariants()
        assert len(tree) == 0

    def test_stats_track_max_size(self):
        tree = make_tree(range(50))
        for v in range(50):
            tree.remove_value(v, v)
        assert tree.stats.max_size == 50
        assert tree.stats.inserts == 50
        assert tree.stats.removals == 50


class TestAugmentation:
    def test_augment_hook_called_bottom_up(self):
        # aug = subtree max of values
        def augment(node):
            node.aug = max(
                node.value,
                node.left.aug if node.left else 0,
                node.right.aug if node.right else 0,
            )

        tree = AVLTree(augment)
        for v in [5, 2, 9, 1, 7]:
            tree.insert(v, v)
        assert tree.root.aug == 9
        tree.remove_value(9, 9)
        assert tree.root.aug == 7

    def test_stats_merge(self):
        a = make_tree(range(10)).stats
        b = make_tree(range(20)).stats
        a.merge(b)
        assert a.inserts == 30
        assert a.max_size == 20

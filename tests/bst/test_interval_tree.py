"""Unit tests for the interval-augmented BST."""

import pytest

from repro.bst import IntervalBST
from repro.intervals import Interval
from tests.conftest import LR, LW, RR, RW, acc


def bst_with(*accesses):
    bst = IntervalBST()
    for a in accesses:
        bst.insert(a)
    return bst


class TestBasics:
    def test_len_and_iter(self):
        bst = bst_with(acc(0, 4), acc(8, 12), acc(4, 8))
        assert len(bst) == 3
        assert [a.lo for a in bst] == [0, 4, 8]

    def test_remove(self):
        a = acc(0, 4)
        bst = bst_with(a, acc(8, 12))
        assert bst.remove(a)
        assert len(bst) == 1
        assert not bst.remove(a)

    def test_clear_keeps_stats(self):
        bst = bst_with(*(acc(i * 4, i * 4 + 4) for i in range(10)))
        bst.clear()
        assert len(bst) == 0
        assert bst.stats.max_size == 10

    def test_snapshot(self):
        accs = [acc(0, 4), acc(4, 8)]
        bst = bst_with(*accs)
        assert bst.snapshot() == accs


class TestOverlapQuery:
    def test_single_node(self):
        a = acc(4224, 4232, RW)
        bst = bst_with(a)
        assert bst.find_overlapping(Interval(4224, 4225)) == [a]
        assert bst.find_overlapping(Interval(4232, 4240)) == []

    def test_finds_wide_interval_off_the_search_path(self):
        """The Fig. 5 scenario: the correct query cannot miss [2...12]."""
        load4 = acc(4, 5, LR)
        put = acc(2, 13, RR)
        bst = bst_with(load4, put)
        hits = bst.find_overlapping(Interval(7, 8))
        assert hits == [put]

    def test_returns_all_overlaps_in_order(self):
        accs = [acc(i, i + 10) for i in range(0, 50, 5)]
        bst = bst_with(*accs)
        hits = bst.find_overlapping(Interval(12, 23))
        assert [a.lo for a in hits] == [5, 10, 15, 20]

    def test_half_open_boundaries(self):
        bst = bst_with(acc(0, 4), acc(4, 8))
        hits = bst.find_overlapping(Interval(4, 5))
        assert [a.lo for a in hits] == [4]

    def test_large_random_against_bruteforce(self):
        import random

        rng = random.Random(42)
        accs = [
            acc(lo, lo + rng.randint(1, 30))
            for lo in (rng.randint(0, 500) for _ in range(300))
        ]
        bst = bst_with(*accs)
        for _ in range(50):
            lo = rng.randint(0, 520)
            q = Interval(lo, lo + rng.randint(1, 40))
            expected = sorted(
                (a for a in accs if a.interval.overlaps(q)),
                key=lambda a: (a.interval.lo, a.interval.hi),
            )
            assert bst.find_overlapping(q) == expected

    def test_find_containing(self):
        bst = bst_with(acc(0, 10), acc(5, 15), acc(20, 30))
        assert len(bst.find_containing(7)) == 2
        assert len(bst.find_containing(19)) == 0

    def test_query_after_removals(self):
        accs = [acc(i * 8, i * 8 + 8) for i in range(20)]
        bst = bst_with(*accs)
        for a in accs[::2]:
            assert bst.remove(a)
        bst.check_invariants()
        hits = bst.find_overlapping(Interval(0, 160))
        assert [a.lo for a in hits] == [i * 8 for i in range(1, 20, 2)]


class TestAugmentationInvariant:
    def test_invariants_after_mixed_workload(self):
        import random

        rng = random.Random(1)
        bst = IntervalBST()
        live = []
        for step in range(500):
            if live and rng.random() < 0.4:
                victim = live.pop(rng.randrange(len(live)))
                assert bst.remove(victim)
            else:
                lo = rng.randint(0, 1000)
                a = acc(lo, lo + rng.randint(1, 50))
                bst.insert(a)
                live.append(a)
        bst.check_invariants()
        assert len(bst) == len(live)

"""Shared fixtures and helpers for the whole test suite."""

from __future__ import annotations

import pytest

from repro.intervals import AccessType, DebugInfo, Interval, MemoryAccess


def acc(
    lo: int,
    hi: int,
    type: AccessType = AccessType.LOCAL_READ,
    *,
    file: str = "t.c",
    line: int = 1,
    origin: int = 0,
    flush_gen: int = 0,
) -> MemoryAccess:
    """Terse MemoryAccess factory used across the suite."""
    return MemoryAccess(
        Interval(lo, hi), type, DebugInfo(file, line), origin, 0, flush_gen
    )


@pytest.fixture
def make_acc():
    return acc


# re-export the enum members as conveniences for test modules
LR = AccessType.LOCAL_READ
LW = AccessType.LOCAL_WRITE
RR = AccessType.RMA_READ
RW = AccessType.RMA_WRITE

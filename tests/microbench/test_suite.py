"""Tests of the generated suite's structure."""

import pytest

from repro.microbench import SuiteConfig, TABLE2_NAMES, generate_suite, suite_by_name
from repro.microbench.model import ORIGIN1


@pytest.fixture(scope="module")
def suite():
    return generate_suite()


class TestStructure:
    def test_deterministic(self, suite):
        again = generate_suite()
        assert [s.name for s in suite] == [c.name for c in again]
        assert [s.racy for s in suite] == [c.racy for c in again]

    def test_unique_names(self, suite):
        names = [s.name for s in suite]
        assert len(names) == len(set(names))

    def test_every_code_has_a_onesided_op(self, suite):
        for spec in suite:
            assert spec.first.kind.is_onesided or spec.second.kind.is_onesided

    def test_names_encode_verdict(self, suite):
        for spec in suite:
            last = spec.name.split("_")[-1]
            assert last.startswith(spec.expected)

    def test_table2_names_present(self, suite):
        names = {s.name for s in suite}
        for name in TABLE2_NAMES:
            assert name in names

    def test_disjoint_twins_are_safe(self, suite):
        for spec in suite:
            if spec.disjoint:
                assert not spec.racy
                assert "disjoint" in spec.name

    def test_twins_mirror_every_overlapping_code(self, suite):
        overlapping = [s for s in suite if not s.disjoint]
        twins = [s for s in suite if s.disjoint]
        assert len(overlapping) == len(twins)

    def test_race_and_safe_both_well_represented(self, suite):
        races = sum(1 for s in suite if s.racy)
        safes = len(suite) - races
        assert races >= 40  # paper: 47
        assert safes > races  # paper: 107 safe of 154

    def test_suite_by_name_roundtrip(self, suite):
        byname = suite_by_name()
        assert len(byname) == len(suite)
        assert byname[suite[0].name] == suite[0]


class TestConfig:
    def test_no_twins_halves_the_suite(self, suite):
        lean = generate_suite(SuiteConfig(disjoint_twins=False))
        assert len(lean) * 2 == len(suite)

    def test_tt_locals_extend_the_suite(self, suite):
        extended = generate_suite(SuiteConfig(include_tt_locals=True))
        assert len(extended) > len(suite)
        # the extra codes are T's one-sided ops against T's own locals
        extra = {s.name for s in extended} - {s.name for s in suite}
        assert all(name.startswith("tt_") for name in extra)


class TestGroundTruthSpotChecks:
    """Verdicts of the named Table 2 codes."""

    @pytest.fixture(scope="class")
    def byname(self):
        return suite_by_name()

    def test_get_load_outwindow_race(self, byname):
        assert byname["ll_get_load_outwindow_origin_race"].racy

    def test_get_get_inwindow_safe(self, byname):
        spec = byname["ll_get_get_inwindow_origin_safe"]
        assert not spec.racy
        assert spec.first.is_self_targeting  # reads its own window twice

    def test_get_load_inwindow_race(self, byname):
        assert byname["ll_get_load_inwindow_origin_race"].racy

    def test_load_get_inwindow_safe(self, byname):
        spec = byname["ll_load_get_inwindow_origin_safe"]
        assert not spec.racy
        assert spec.first.kind.value == "load"

"""Tests for the microbenchmark program builder."""

import pytest

from repro.core import OurDetector
from repro.microbench import build_program, generate_suite, run_code, suite_by_name
from repro.microbench.builder import NRANKS, _is_ll_family
from repro.mpi import RegionKind, World
from repro.mpi.trace import LocalEvent, RmaEvent


@pytest.fixture(scope="module")
def byname():
    return suite_by_name()


class TestMemoryConventions:
    def test_ll_codes_use_stack_backed_windows(self, byname):
        spec = byname["ll_get_load_inwindow_origin_race"]
        assert _is_ll_family(spec)
        world = World(NRANKS, [], trace=True)
        world.run(build_program(spec))
        rma = world.trace_log.rma_events()[0]
        assert rma.target_region.kind is RegionKind.STACK

    def test_cross_rank_codes_use_heap_windows(self, byname):
        spec = byname["lt_get_get_inwindow_origin_race"]
        assert not _is_ll_family(spec)
        world = World(NRANKS, [], trace=True)
        world.run(build_program(spec))
        rma = world.trace_log.rma_events()[0]
        assert rma.target_region.kind is RegionKind.WINDOW

    def test_out_of_window_buffers_are_heap(self, byname):
        spec = byname["ll_get_load_outwindow_origin_race"]
        world = World(NRANKS, [], trace=True)
        world.run(build_program(spec))
        local = next(e for e in world.trace_log.events
                     if isinstance(e, LocalEvent))
        assert local.region.kind is RegionKind.HEAP


class TestExecutionOrder:
    def test_first_op_events_precede_second(self, byname):
        spec = byname["tl_put_put_inwindow_origin_race"]
        world = World(NRANKS, [], trace=True)
        world.run(build_program(spec))
        rmas = world.trace_log.rma_events()
        assert len(rmas) == 2
        assert rmas[0].rank == spec.first.caller
        assert rmas[1].rank == spec.second.caller
        assert rmas[0].seq < rmas[1].seq

    def test_disjoint_twin_sites_do_not_overlap(self, byname):
        # find any disjoint twin with two one-sided ops
        spec = next(
            s for s in generate_suite()
            if s.disjoint and s.first.kind.is_onesided
            and s.second.kind.is_onesided
        )
        world = World(NRANKS, [], trace=True)
        world.run(build_program(spec))
        rmas = world.trace_log.rma_events()
        a, b = rmas[0].target_access, rmas[1].target_access
        if rmas[0].target == rmas[1].target:
            assert not a.interval.overlaps(b.interval)


class TestRunCode:
    def test_returns_verdict_and_world(self, byname):
        spec = byname["ll_get_load_outwindow_origin_race"]
        reported, world = run_code(spec, OurDetector())
        assert reported is True
        assert world.nranks == NRANKS

    def test_every_code_runs_cleanly_without_detector(self):
        # structural smoke test over a sample: no usage errors anywhere
        for spec in generate_suite()[::11]:
            world = World(NRANKS, [])
            world.run(build_program(spec))

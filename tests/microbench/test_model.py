"""Unit tests for the microbenchmark model vocabulary."""

import pytest

from repro.intervals import AccessType
from repro.microbench import OpInst, OpKind, Placement, SiteSpec, SlotKind
from repro.microbench.model import ORIGIN1, ORIGIN2, TARGET, ground_truth, slot_access_type


class TestOpInst:
    def test_onesided_needs_target(self):
        with pytest.raises(ValueError):
            OpInst(OpKind.GET, ORIGIN1)

    def test_local_takes_no_target(self):
        with pytest.raises(ValueError):
            OpInst(OpKind.LOAD, ORIGIN1, TARGET)

    def test_slot_owner(self):
        op = OpInst(OpKind.PUT, ORIGIN1, TARGET)
        assert op.slot_owner(SlotKind.BUF) == ORIGIN1
        assert op.slot_owner(SlotKind.WIN) == TARGET

    def test_self_targeting(self):
        assert OpInst(OpKind.GET, ORIGIN1, ORIGIN1).is_self_targeting
        assert not OpInst(OpKind.GET, ORIGIN1, TARGET).is_self_targeting

    def test_str(self):
        assert str(OpInst(OpKind.GET, 0, 1)) == "get(0->1)"
        assert str(OpInst(OpKind.LOAD, 1)) == "load(1)"


class TestSlotAccessTypes:
    """The §2.1 table: what each op does to each of its slots."""

    def test_get(self):
        get = OpInst(OpKind.GET, ORIGIN1, TARGET)
        assert slot_access_type(get, SlotKind.BUF) == AccessType.RMA_WRITE
        assert slot_access_type(get, SlotKind.WIN) == AccessType.RMA_READ

    def test_put(self):
        put = OpInst(OpKind.PUT, ORIGIN1, TARGET)
        assert slot_access_type(put, SlotKind.BUF) == AccessType.RMA_READ
        assert slot_access_type(put, SlotKind.WIN) == AccessType.RMA_WRITE

    def test_local(self):
        assert slot_access_type(OpInst(OpKind.LOAD, 0), SlotKind.BUF) == \
            AccessType.LOCAL_READ
        assert slot_access_type(OpInst(OpKind.STORE, 0), SlotKind.BUF) == \
            AccessType.LOCAL_WRITE

    def test_local_has_no_win_slot(self):
        with pytest.raises(ValueError):
            slot_access_type(OpInst(OpKind.LOAD, 0), SlotKind.WIN)


class TestSiteSpec:
    def test_window_slots_must_be_in_window(self):
        with pytest.raises(ValueError):
            SiteSpec(SlotKind.WIN, SlotKind.WIN, TARGET, Placement.OUT_WINDOW)

    def test_buffer_site_accepts_both(self):
        for placement in Placement:
            SiteSpec(SlotKind.BUF, SlotKind.BUF, ORIGIN1, placement)


class TestGroundTruth:
    def site(self, s1=SlotKind.BUF, s2=SlotKind.BUF, owner=ORIGIN1):
        return SiteSpec(s1, s2, owner, Placement.OUT_WINDOW)

    def test_fig2a_get_load(self):
        get = OpInst(OpKind.GET, ORIGIN1, TARGET)
        load = OpInst(OpKind.LOAD, ORIGIN1)
        assert ground_truth(get, load, self.site())

    def test_load_get_safe(self):
        get = OpInst(OpKind.GET, ORIGIN1, TARGET)
        load = OpInst(OpKind.LOAD, ORIGIN1)
        assert not ground_truth(load, get, self.site())

    def test_put_load_safe_both_read(self):
        put = OpInst(OpKind.PUT, ORIGIN1, TARGET)
        load = OpInst(OpKind.LOAD, ORIGIN1)
        assert not ground_truth(put, load, self.site())

    def test_put_store_races(self):
        put = OpInst(OpKind.PUT, ORIGIN1, TARGET)
        store = OpInst(OpKind.STORE, ORIGIN1)
        assert ground_truth(put, store, self.site())
        assert not ground_truth(store, put, self.site())  # program order

    def test_cross_process_is_order_insensitive(self):
        put = OpInst(OpKind.PUT, ORIGIN1, TARGET)
        store = OpInst(OpKind.STORE, TARGET)
        site = SiteSpec(SlotKind.WIN, SlotKind.BUF, TARGET, Placement.IN_WINDOW)
        site_rev = SiteSpec(SlotKind.BUF, SlotKind.WIN, TARGET, Placement.IN_WINDOW)
        assert ground_truth(put, store, site)
        assert ground_truth(store, put, site_rev)

    def test_two_gets_same_window_read_safe(self):
        g = OpInst(OpKind.GET, ORIGIN1, ORIGIN1)
        site = SiteSpec(SlotKind.WIN, SlotKind.WIN, ORIGIN1, Placement.IN_WINDOW)
        assert not ground_truth(g, g, site)

    def test_two_gets_same_buffer_race(self):
        g = OpInst(OpKind.GET, ORIGIN1, TARGET)
        assert ground_truth(g, g, self.site())  # both write the buffer

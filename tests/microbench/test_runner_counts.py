"""The Table-3 reproduction: the paper's discriminating verdict counts.

These are the headline accuracy numbers of §5.2:

* our contribution: 0 false positives, 0 false negatives;
* the original RMA-Analyzer: exactly 6 false positives, all of them
  local-access-then-one-sided same-process codes, and 0 false negatives
  on the two-operation suite;
* MUST-RMA: 0 false positives and exactly 15 false negatives, all of
  them races on stack memory (out-of-window stack buffers or windows
  created over stack arrays).
"""

import pytest

from repro.core import OurDetector
from repro.detectors import MustRma, RmaAnalyzerLegacy
from repro.microbench import run_suite


@pytest.fixture(scope="module")
def ours():
    return run_suite(OurDetector)


@pytest.fixture(scope="module")
def legacy():
    return run_suite(RmaAnalyzerLegacy)


@pytest.fixture(scope="module")
def must():
    return run_suite(MustRma)


class TestOurContribution:
    def test_no_false_positives(self, ours):
        assert ours.fp == 0, [v.code.name for v in ours.of_kind("FP")]

    def test_no_false_negatives(self, ours):
        assert ours.fn == 0, [v.code.name for v in ours.of_kind("FN")]

    def test_all_races_found(self, ours):
        assert ours.tp == sum(1 for v in ours.verdicts if v.code.racy)


class TestRmaAnalyzerLegacy:
    def test_exactly_six_false_positives(self, legacy):
        assert legacy.fp == 6

    def test_fps_are_the_order_sensitivity_family(self, legacy):
        names = sorted(v.code.name for v in legacy.of_kind("FP"))
        assert names == [
            "ll_load_get_inwindow_origin_safe",
            "ll_load_get_outwindow_origin_safe",
            "ll_store_get_inwindow_origin_safe",
            "ll_store_get_outwindow_origin_safe",
            "ll_store_put_inwindow_origin_safe",
            "ll_store_put_outwindow_origin_safe",
        ]

    def test_no_false_negatives_on_two_op_codes(self, legacy):
        # the lower-bound approximation only bites with >= 3 accesses
        assert legacy.fn == 0


class TestMustRma:
    def test_no_false_positives(self, must):
        assert must.fp == 0

    def test_exactly_fifteen_false_negatives(self, must):
        assert must.fn == 15

    def test_fns_are_all_stack_memory_races(self, must):
        from repro.microbench.builder import _is_ll_family
        from repro.microbench.model import Placement

        for v in must.of_kind("FN"):
            spec = v.code
            stack_window = _is_ll_family(spec)
            stack_site = spec.site.placement is Placement.OUT_WINDOW
            # paper variant: out-of-window buffers are heap; the misses
            # come from ll-family stack-backed windows
            assert stack_window

    def test_fn_names_include_table2_miss(self, must):
        names = {v.code.name for v in must.of_kind("FN")}
        assert "ll_get_load_inwindow_origin_race" in names


class TestFenceModeSuite:
    """The same suite under active-target (fence) epochs: verdict
    invariance — the race structure is a property of the access pattern,
    not of the synchronization flavour that brackets it."""

    @pytest.fixture(scope="class")
    def fence_results(self):
        from repro.microbench import SuiteConfig

        cfg = SuiteConfig(sync_mode="fence")
        return {
            "ours": run_suite(OurDetector, config=cfg),
            "legacy": run_suite(RmaAnalyzerLegacy, config=cfg),
            "must": run_suite(MustRma, config=cfg),
        }

    def test_counts_match_lock_all_mode(self, fence_results, ours, legacy, must):
        for fence, lock in (
            (fence_results["ours"], ours),
            (fence_results["legacy"], legacy),
            (fence_results["must"], must),
        ):
            assert (fence.fp, fence.fn, fence.tp, fence.tn) == \
                (lock.fp, lock.fn, lock.tp, lock.tn)

"""Tests for the paper's named Codes 1 and 2."""

import pytest

from repro.core import OurDetector
from repro.detectors import RmaAnalyzerLegacy
from repro.microbench import code1_program, code2_program
from repro.mpi import World


class TestCode1:
    """Fig. 8a / Fig. 5: Load(4); MPI_Put(2,12); Store(7)."""

    def test_original_misses_the_race(self):
        det = RmaAnalyzerLegacy()
        World(2, [det]).run(code1_program)
        assert det.reports_total == 0

    def test_ours_detects_it(self):
        det = OurDetector()
        World(2, [det]).run(code1_program)
        assert det.reports_total == 1
        report = det.reports[0]
        assert report.new.type.name == "LOCAL_WRITE"
        assert report.stored.type.name == "RMA_READ"
        assert "code1.c" in report.message


class TestCode2:
    """Fig. 8b: the 1000-iteration Get loop (5,002 -> 2 nodes)."""

    def test_original_node_count_is_5002(self):
        det = RmaAnalyzerLegacy()
        World(2, [det]).run(code2_program)
        assert det.node_stats().max_nodes_per_rank[0] == 5002

    def test_ours_node_count_is_2(self):
        det = OurDetector()
        World(2, [det]).run(code2_program)
        assert det.node_stats().max_nodes_per_rank[0] == 2

    @pytest.mark.parametrize("iterations", [1, 10, 100])
    def test_scaling_shapes(self, iterations):
        legacy = RmaAnalyzerLegacy()
        World(2, [legacy]).run(code2_program, iterations)
        ours = OurDetector()
        World(2, [ours]).run(code2_program, iterations)
        assert legacy.node_stats().max_nodes_per_rank[0] == 5 * iterations + 2
        assert ours.node_stats().max_nodes_per_rank[0] == 2

    def test_target_side_merges_too(self):
        ours = OurDetector()
        World(2, [ours]).run(code2_program, 100)
        # the 100 loop reads collapse into one node; the final
        # Get(buf[0]) re-reads element 0 from a different source line,
        # splitting off a one-byte fragment (debug info differs)
        assert ours.node_stats().max_nodes_per_rank[1] == 2

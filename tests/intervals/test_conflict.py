"""Tests of the race predicates and the Fig. 3 matrix."""

import pytest

from repro.intervals import (
    Caller,
    Op,
    Placement,
    fig3_matrix,
    format_fig3,
    is_race,
    is_race_legacy,
    types_conflict,
)
from tests.conftest import LR, LW, RR, RW, acc

ALL = [LR, LW, RR, RW]


class TestTypesConflict:
    """The same-process (program-order-aware) conflict table."""

    def test_local_local_never_conflicts(self):
        for a in (LR, LW):
            for b in (LR, LW):
                assert not types_conflict(a, b)

    def test_read_read_never_conflicts(self):
        for a in (LR, RR):
            for b in (LR, RR):
                assert not types_conflict(a, b)

    def test_local_then_rma_is_program_ordered(self):
        # §5.2: Load; MPI_Get is safe — the local access completed first
        assert not types_conflict(LR, RW)
        assert not types_conflict(LW, RW)
        assert not types_conflict(LW, RR)

    def test_rma_then_local_conflicts(self):
        # Fig. 2a: MPI_Get; Load races
        assert types_conflict(RW, LR)
        assert types_conflict(RW, LW)
        assert types_conflict(RR, LW)

    def test_rma_rma_conflicts_when_write(self):
        assert types_conflict(RW, RW)
        assert types_conflict(RR, RW)
        assert types_conflict(RW, RR)
        assert not types_conflict(RR, RR)

    def test_matches_table1_red_cells(self):
        # the x cells of Table 1: stored RMA_R with a write, stored RMA_W
        # with anything but a pure-local read pair
        red = {(s, n) for s in ALL for n in ALL if types_conflict(s, n)}
        expected = {(RR, LW), (RR, RW), (RW, LR), (RW, LW), (RW, RR), (RW, RW)}
        assert red == expected


class TestIsRace:
    def test_requires_overlap(self):
        assert not is_race(acc(0, 4, RW), acc(4, 8, LW))

    def test_requires_rma(self):
        assert not is_race(acc(0, 4, LW), acc(0, 4, LW, origin=1))

    def test_requires_write(self):
        assert not is_race(acc(0, 4, RR), acc(0, 4, LR, origin=1))

    def test_same_process_order_fix(self):
        # stored local, new RMA, same origin: safe
        assert not is_race(acc(0, 4, LR, origin=0), acc(0, 4, RW, origin=0))
        # reversed roles: race
        assert is_race(acc(0, 4, RW, origin=0), acc(0, 4, LR, origin=0))

    def test_cross_process_ignores_order(self):
        # stored local (by the BST owner), new RMA from another rank: race
        assert is_race(acc(0, 4, LW, origin=1), acc(0, 4, RW, origin=0))
        assert is_race(acc(0, 4, LR, origin=1), acc(0, 4, RW, origin=0))

    def test_cross_process_rma_rma(self):
        assert is_race(acc(0, 4, RW, origin=0), acc(0, 4, RW, origin=2))
        assert not is_race(acc(0, 4, RR, origin=0), acc(0, 4, RR, origin=2))

    @pytest.mark.parametrize("stored", ALL)
    @pytest.mark.parametrize("new", ALL)
    def test_symmetric_in_cross_process_pairs(self, stored, new):
        a = acc(0, 4, stored, origin=0)
        b = acc(0, 4, new, origin=1)
        # cross-process: verdict must not depend on recording order
        assert is_race(a, b) == is_race(
            acc(0, 4, new, origin=1), acc(0, 4, stored, origin=0)
        )


class TestIsRaceLegacy:
    def test_flags_local_then_rma(self):
        # the original tool's false positive
        assert is_race_legacy(acc(0, 4, LR), acc(0, 4, RW))

    def test_agrees_with_fixed_predicate_elsewhere(self):
        for s in ALL:
            for n in ALL:
                a, b = acc(0, 4, s), acc(0, 4, n)
                if not (s.is_local and n.is_rma):
                    assert is_race_legacy(a, b) == is_race(a, b)


class TestFig3Matrix:
    @pytest.fixture(scope="class")
    def matrix(self):
        return fig3_matrix()

    def test_has_20_cells(self, matrix):
        assert len(matrix) == 20

    def test_get_load_origin1_is_01(self, matrix):
        # the Fig. 2a cell: error only at origin side
        cell = matrix[(Op.GET, Caller.ORIGIN1, Op.LOAD)]
        assert cell[Placement.IN_WINDOW] == (0, 1)
        assert cell[Placement.OUT_WINDOW] == (0, 1)

    def test_get_get_target_is_fig2b(self, matrix):
        # Fig. 2b: both sides race, but only with in-window buffers
        cell = matrix[(Op.GET, Caller.TARGET, Op.GET)]
        assert cell[Placement.IN_WINDOW] == (1, 1)
        assert cell[Placement.OUT_WINDOW] == (0, 0)

    def test_origin2_columns(self, matrix):
        assert matrix[(Op.GET, Caller.ORIGIN2, Op.GET)][Placement.IN_WINDOW] == (0, 0)
        assert matrix[(Op.GET, Caller.ORIGIN2, Op.PUT)][Placement.IN_WINDOW] == (1, 0)
        assert matrix[(Op.PUT, Caller.ORIGIN2, Op.GET)][Placement.IN_WINDOW] == (1, 0)
        assert matrix[(Op.PUT, Caller.ORIGIN2, Op.PUT)][Placement.IN_WINDOW] == (1, 0)

    def test_put_origin1_load_safe(self, matrix):
        # Put reads the buffer; a later Load also reads: no race anywhere
        cell = matrix[(Op.PUT, Caller.ORIGIN1, Op.LOAD)]
        assert cell[Placement.IN_WINDOW] == (0, 0)

    def test_put_put_same_origin(self, matrix):
        # two Puts by the same origin to the same window range: target race
        cell = matrix[(Op.PUT, Caller.ORIGIN1, Op.PUT)]
        assert cell[Placement.IN_WINDOW] == (1, 0)

    def test_origin2_race_never_at_origin(self, matrix):
        # ORIGIN2 shares no local memory with ORIGIN1
        for (op1, caller, op2), cells in matrix.items():
            if caller is Caller.ORIGIN2:
                for bits in cells.values():
                    assert bits[1] == 0

    def test_target_cells_safe_out_of_window(self, matrix):
        # a buffer outside every window is unreachable remotely, so
        # ORIGIN1-vs-TARGET pairs cannot touch common memory at all
        for (op1, caller, op2), cells in matrix.items():
            if caller is Caller.TARGET:
                assert cells[Placement.OUT_WINDOW] == (0, 0)

    def test_origin2_cells_placement_independent(self, matrix):
        # ORIGIN2 pairs only ever share the target's window range, which
        # exists regardless of buffer placement
        for (op1, caller, op2), cells in matrix.items():
            if caller is Caller.ORIGIN2:
                assert cells[Placement.IN_WINDOW] == cells[Placement.OUT_WINDOW]

    def test_format_contains_all_cells(self, matrix):
        text = format_fig3(matrix)
        assert len(text.splitlines()) == 21  # header + 20 cells
        assert "origin2" in text

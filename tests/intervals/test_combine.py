"""Exhaustive tests of the Table-1 combination rules."""

from dataclasses import replace

import pytest

from repro.intervals import AccessType, Interval, combine_accesses, combined_type
from repro.intervals.combine import MIXED_ACCUM_OP, table1_rows
from repro.intervals.conflict import is_race
from tests.conftest import LR, LW, RR, RW, acc

ALL = [LR, LW, RR, RW]


class TestCombinedType:
    def test_rma_prevails_over_local(self):
        assert combined_type(LR, RR) == (RR, 2)
        assert combined_type(RR, LR) == (RR, 1)
        assert combined_type(LW, RR) == (RR, 2)

    def test_write_prevails_over_read(self):
        assert combined_type(LR, LW) == (LW, 2)
        assert combined_type(LW, LR) == (LW, 1)
        assert combined_type(RR, RW) == (RW, 2)
        assert combined_type(RW, RR) == (RW, 1)

    def test_tie_keeps_most_recent(self):
        for t in ALL:
            assert combined_type(t, t) == (t, 2)

    def test_rma_write_always_wins(self):
        for t in ALL:
            assert combined_type(t, RW)[0] == RW
            assert combined_type(RW, t)[0] == RW

    @pytest.mark.parametrize("stored", ALL)
    @pytest.mark.parametrize("new", ALL)
    def test_result_dominates_both(self, stored, new):
        result, which = combined_type(stored, new)
        # the combined type is at least as strong as either input
        assert result.is_rma >= stored.is_rma or result.is_write >= stored.is_write
        assert result.is_rma >= max(stored.is_rma, new.is_rma) or \
            result.is_write >= max(stored.is_write, new.is_write)
        assert which in (1, 2)

    @pytest.mark.parametrize("stored", ALL)
    @pytest.mark.parametrize("new", ALL)
    def test_exact_dominance(self, stored, new):
        result, _ = combined_type(stored, new)
        key = lambda t: (t.is_rma, t.is_write)
        assert key(result) == max(key(stored), key(new))


class TestCombineAccesses:
    def test_intersection_geometry(self):
        stored = acc(2, 13, RR, line=11)
        new = acc(7, 9, LR, line=12)
        frag = combine_accesses(stored, new)
        assert frag.interval == Interval(7, 9)
        assert frag.type == RR  # RMA prevails
        assert frag.debug == stored.debug  # stored won -> stored's line

    def test_new_wins_takes_new_debug(self):
        stored = acc(2, 13, LR, line=11)
        new = acc(7, 9, RW, line=12, origin=1)
        frag = combine_accesses(stored, new)
        assert frag.type == RW
        assert frag.debug.line == 12
        assert frag.origin == 1

    def test_disjoint_raises(self):
        with pytest.raises(ValueError):
            combine_accesses(acc(2, 5, LR), acc(6, 9, LR))


class TestMixedAccumulates:
    """Combination must not launder the atomicity exemption.

    Regression for a fuzzer-found miss: same-origin Accumulate(sum)
    then Accumulate(max) fragment without racing (accumulate ordering),
    but if the fragment inherited the winner's single op, a later
    cross-origin Accumulate(max) would wrongly pass the same-op
    exemption of :func:`is_race` and a real race (vs the absorbed sum)
    would go unreported.
    """

    @staticmethod
    def _acc_access(op, origin=0, line=1):
        return replace(acc(0, 8, RW, line=line, origin=origin),
                       accum_op=op)

    def test_same_op_fragment_keeps_the_op(self):
        frag = combine_accesses(self._acc_access("sum", line=1),
                                self._acc_access("sum", line=2))
        assert frag.accum_op == "sum" and frag.is_atomic

    def test_mixed_ops_fragment_is_marked(self):
        frag = combine_accesses(self._acc_access("sum", line=1),
                                self._acc_access("max", line=2))
        assert frag.accum_op == MIXED_ACCUM_OP
        assert frag.is_atomic  # same-origin ordering must survive

    def test_atomic_with_nonatomic_is_marked(self):
        stored = acc(0, 8, LR, line=1)  # local read, then same-origin acc
        frag = combine_accesses(stored, self._acc_access("max", line=2))
        assert frag.accum_op == MIXED_ACCUM_OP

    def test_marked_fragment_races_with_cross_origin_same_op(self):
        frag = combine_accesses(self._acc_access("sum", origin=0),
                                self._acc_access("max", origin=0))
        later = self._acc_access("max", origin=1, line=3)
        assert is_race(frag, later)

    def test_marked_fragment_exempt_same_origin(self):
        frag = combine_accesses(self._acc_access("sum", origin=0),
                                self._acc_access("max", origin=0))
        later = self._acc_access("min", origin=0, line=3)
        assert not is_race(frag, later)

    def test_detector_end_to_end_catches_the_fuzz_schedule(self):
        """rank2: acc sum; rank2: acc max; rank0: acc max — a race."""
        from repro.bst import IntervalBST
        from repro.core import insert_access

        bst = IntervalBST()
        assert not insert_access(self._acc_access("sum", origin=2),
                                 bst).has_race
        assert not insert_access(
            self._acc_access("max", origin=2, line=2), bst).has_race
        outcome = insert_access(
            self._acc_access("max", origin=0, line=3), bst)
        assert outcome.has_race


class TestTable1Rendering:
    def test_shape(self):
        rows = table1_rows()
        assert len(rows) == 4
        assert all(len(r) == 5 for r in rows)

    def test_matches_paper_table1(self):
        # paper Table 1, cell for cell
        expected = [
            ["Local_R-1", "Local_R-2", "Local_W-2", "RMA_R-2", "RMA_W-2"],
            ["Local_W-1", "Local_W-1", "Local_W-2", "RMA_R-2", "RMA_W-2"],
            ["RMA_R-1", "RMA_R-1", "x", "RMA_R-2", "x"],
            ["RMA_W-1", "x", "x", "x", "x"],
        ]
        assert table1_rows() == expected

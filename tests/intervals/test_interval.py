"""Unit tests for the half-open interval algebra."""

import pytest

from repro.intervals import Interval


class TestConstruction:
    def test_basic(self):
        iv = Interval(2, 13)
        assert iv.lo == 2 and iv.hi == 13
        assert len(iv) == 11

    def test_from_inclusive_matches_paper_notation(self):
        iv = Interval.from_inclusive(2, 12)  # the paper's [2...12]
        assert iv == Interval(2, 13)
        assert iv.to_inclusive() == (2, 12)

    def test_point(self):
        assert Interval.point(7) == Interval(7, 8)
        assert Interval.point(7, 4) == Interval(7, 11)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Interval(5, 5)

    def test_inverted_rejected(self):
        with pytest.raises(ValueError):
            Interval(6, 5)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Interval(-1, 5)

    def test_non_int_rejected(self):
        with pytest.raises(TypeError):
            Interval(0.5, 2)  # type: ignore[arg-type]

    def test_ordering_is_by_lo_then_hi(self):
        assert Interval(1, 5) < Interval(2, 3)
        assert Interval(1, 4) < Interval(1, 5)

    def test_hashable(self):
        assert len({Interval(1, 2), Interval(1, 2), Interval(1, 3)}) == 2


class TestQueries:
    def test_contains_addr(self):
        iv = Interval(4, 8)
        assert 4 in iv and 7 in iv
        assert 3 not in iv and 8 not in iv

    def test_contains_interval(self):
        assert Interval(2, 10).contains_interval(Interval(4, 6))
        assert Interval(2, 10).contains_interval(Interval(2, 10))
        assert not Interval(2, 10).contains_interval(Interval(4, 11))

    def test_overlap_positive(self):
        assert Interval(2, 6).overlaps(Interval(5, 9))
        assert Interval(5, 9).overlaps(Interval(2, 6))
        assert Interval(2, 9).overlaps(Interval(4, 5))

    def test_touching_is_not_overlap(self):
        assert not Interval(2, 5).overlaps(Interval(5, 9))

    def test_disjoint_is_not_overlap(self):
        assert not Interval(2, 5).overlaps(Interval(6, 9))

    def test_adjacency(self):
        assert Interval(2, 5).is_adjacent(Interval(5, 9))
        assert Interval(5, 9).is_adjacent(Interval(2, 5))
        assert not Interval(2, 5).is_adjacent(Interval(6, 9))
        assert not Interval(2, 6).is_adjacent(Interval(5, 9))

    def test_touches_is_overlap_or_adjacent(self):
        assert Interval(2, 5).touches(Interval(5, 9))
        assert Interval(2, 6).touches(Interval(5, 9))
        assert not Interval(2, 5).touches(Interval(6, 9))


class TestAlgebra:
    def test_intersection(self):
        assert Interval(2, 6).intersection(Interval(4, 9)) == Interval(4, 6)
        assert Interval(2, 6).intersection(Interval(6, 9)) is None

    def test_union_of_adjacent(self):
        assert Interval(2, 5).union(Interval(5, 9)) == Interval(2, 9)

    def test_union_of_overlapping(self):
        assert Interval(2, 6).union(Interval(4, 9)) == Interval(2, 9)

    def test_union_of_disjoint_raises(self):
        with pytest.raises(ValueError):
            Interval(2, 5).union(Interval(6, 9))

    def test_difference_inner(self):
        # the paper's l_frag / r_frag split
        left, right = Interval(2, 13).difference(Interval(5, 9))
        assert left == Interval(2, 5)
        assert right == Interval(9, 13)

    def test_difference_covering(self):
        left, right = Interval(5, 9).difference(Interval(2, 13))
        assert left is None and right is None

    def test_difference_left_overhang_only(self):
        left, right = Interval(2, 9).difference(Interval(5, 13))
        assert left == Interval(2, 5) and right is None

    def test_difference_disjoint_returns_self(self):
        left, right = Interval(2, 5).difference(Interval(7, 9))
        assert left == Interval(2, 5) and right is None

    def test_split_at(self):
        parts = list(Interval(0, 10).split_at(3, 7))
        assert parts == [Interval(0, 3), Interval(3, 7), Interval(7, 10)]

    def test_split_at_ignores_out_of_range_cuts(self):
        parts = list(Interval(5, 10).split_at(2, 5, 10, 20, 7))
        assert parts == [Interval(5, 7), Interval(7, 10)]

    def test_shift(self):
        assert Interval(2, 5).shift(10) == Interval(12, 15)

    def test_str_uses_paper_notation(self):
        assert str(Interval(2, 13)) == "[2...12]"
        assert str(Interval(4, 5)) == "[4]"

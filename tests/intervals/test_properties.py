"""Property-based tests (hypothesis) for the interval/access algebra."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.intervals import AccessType, Interval, combined_type, is_race
from tests.conftest import acc

intervals = st.builds(
    lambda lo, length: Interval(lo, lo + length),
    st.integers(0, 10_000),
    st.integers(1, 512),
)
access_types = st.sampled_from(list(AccessType))


@given(intervals, intervals)
def test_overlap_is_symmetric(a, b):
    assert a.overlaps(b) == b.overlaps(a)


@given(intervals, intervals)
def test_adjacent_is_symmetric_and_exclusive_with_overlap(a, b):
    assert a.is_adjacent(b) == b.is_adjacent(a)
    if a.is_adjacent(b):
        assert not a.overlaps(b)


@given(intervals, intervals)
def test_intersection_commutes_and_is_contained(a, b):
    inter1 = a.intersection(b)
    inter2 = b.intersection(a)
    assert inter1 == inter2
    if inter1 is not None:
        assert a.contains_interval(inter1)
        assert b.contains_interval(inter1)
        assert a.overlaps(b)
    else:
        assert not a.overlaps(b)


@given(intervals, intervals)
def test_union_of_touching_covers_both(a, b):
    if a.touches(b):
        u = a.union(b)
        assert u.contains_interval(a) and u.contains_interval(b)
        assert len(u) <= len(a) + len(b)


@given(intervals, intervals)
def test_difference_partition(a, b):
    """a is exactly (a \\ b) plus (a & b), with no overlaps."""
    left, right = a.difference(b)
    inter = a.intersection(b)
    pieces = [p for p in (left, inter, right) if p is not None]
    assert sum(len(p) for p in pieces) == len(a)
    for i, p in enumerate(pieces):
        assert a.contains_interval(p)
        for q in pieces[i + 1 :]:
            assert not p.overlaps(q)


@given(intervals, st.lists(st.integers(0, 11_000), max_size=6))
def test_split_at_partitions(iv, cuts):
    parts = list(iv.split_at(*cuts))
    assert parts[0].lo == iv.lo
    assert parts[-1].hi == iv.hi
    for a, b in zip(parts, parts[1:]):
        assert a.hi == b.lo
    assert sum(len(p) for p in parts) == len(iv)


@given(access_types, access_types)
def test_combined_type_is_lub(stored, new):
    """The combined type is exactly the dominance-order maximum."""
    result, which = combined_type(stored, new)
    key = lambda t: (t.is_rma, t.is_write)
    assert key(result) == max(key(stored), key(new))
    winner = new if which == 2 else stored
    assert winner == result


@given(access_types, access_types, st.integers(0, 3), st.integers(0, 3))
def test_race_predicate_needs_rma_and_write(stored_t, new_t, o1, o2):
    stored = acc(0, 8, stored_t, origin=o1)
    new = acc(4, 12, new_t, origin=o2)
    if is_race(stored, new):
        assert stored_t.is_rma or new_t.is_rma
        assert stored_t.is_write or new_t.is_write


@given(access_types, access_types, st.integers(0, 3), st.integers(0, 3))
def test_cross_process_race_is_order_insensitive(stored_t, new_t, o1, o2):
    if o1 == o2:
        return
    a = acc(0, 8, stored_t, origin=o1)
    b = acc(0, 8, new_t, origin=o2)
    assert is_race(a, b) == is_race(b, a)

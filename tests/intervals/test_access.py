"""Unit tests for access types and MemoryAccess."""

import pytest

from repro.intervals import AccessType, DebugInfo, Interval, MemoryAccess, make_access
from tests.conftest import LR, LW, RR, RW, acc


class TestAccessType:
    def test_rma_flags(self):
        assert RR.is_rma and RW.is_rma
        assert not LR.is_rma and not LW.is_rma
        assert LR.is_local and LW.is_local

    def test_write_flags(self):
        assert LW.is_write and RW.is_write
        assert LR.is_read and RR.is_read
        assert not LR.is_write and not RR.is_write

    def test_str_names(self):
        assert str(RW) == "RMA_WRITE"
        assert str(LR) == "LOCAL_READ"

    def test_short_names_match_table1_headers(self):
        assert LR.short == "Local_R"
        assert LW.short == "Local_W"
        assert RR.short == "RMA_R"
        assert RW.short == "RMA_W"

    def test_put_get_side_semantics(self):
        # §2.1: Put = RMA_Read at origin + RMA_Write at target; Get inverse
        put_origin, put_target = RR, RW
        get_origin, get_target = RW, RR
        assert put_origin.is_read and put_target.is_write
        assert get_origin.is_write and get_target.is_read


class TestDebugInfo:
    def test_str(self):
        assert str(DebugInfo("./dspl.hpp", 614)) == "./dspl.hpp:614"

    def test_equality(self):
        assert DebugInfo("a.c", 1) == DebugInfo("a.c", 1)
        assert DebugInfo("a.c", 1) != DebugInfo("a.c", 2)


class TestMemoryAccess:
    def test_proxies(self):
        a = acc(2, 13, RW, origin=3)
        assert a.lo == 2 and a.hi == 13
        assert a.is_rma and a.is_write
        assert a.origin == 3

    def test_overlaps(self):
        assert acc(2, 13, RR).overlaps(acc(7, 8, LW))
        assert not acc(2, 5, RR).overlaps(acc(5, 8, LW))

    def test_with_interval_preserves_metadata(self):
        a = acc(2, 13, RW, file="f.c", line=7, origin=2, flush_gen=3)
        b = a.with_interval(Interval(4, 6))
        assert b.interval == Interval(4, 6)
        assert b.type == RW and b.debug == a.debug
        assert b.origin == 2 and b.flush_gen == 3

    def test_same_site_requires_type_and_debug(self):
        a = acc(0, 4, RR, line=5)
        assert a.same_site(acc(4, 8, RR, line=5))
        assert not a.same_site(acc(4, 8, RW, line=5))
        assert not a.same_site(acc(4, 8, RR, line=6))

    def test_same_site_requires_origin_and_flush_gen(self):
        a = acc(0, 4, RR, origin=1, flush_gen=0)
        assert not a.same_site(acc(4, 8, RR, origin=2, flush_gen=0))
        assert not a.same_site(acc(4, 8, RR, origin=1, flush_gen=1))

    def test_str_form(self):
        assert str(acc(2, 13, RR)) == "([2...12], RMA_READ)"

    def test_make_access_helper(self):
        a = make_access(3, 9, AccessType.LOCAL_WRITE, filename="x.c", line=42,
                        origin=5)
        assert a.interval == Interval(3, 9)
        assert a.debug == DebugInfo("x.c", 42)
        assert a.origin == 5

"""End-to-end integration scenarios across the whole stack."""

import pytest

from repro import (
    DataRaceError,
    McCChecker,
    MustRma,
    OurDetector,
    ParkMirror,
    RmaAnalyzerLegacy,
    World,
)
from repro.mpi import INT64


ALL_DETECTORS = [OurDetector, RmaAnalyzerLegacy, MustRma, ParkMirror, McCChecker]


def ring_shift_program(ctx):
    """A correct neighbour-exchange: every rank puts into its own block."""
    win = yield ctx.win_allocate("ring", 8 * ctx.size, INT64)
    buf = ctx.alloc("buf", 8, INT64, rma_hint=True)
    buf.np[:] = ctx.rank
    ctx.win_lock_all(win)
    yield ctx.barrier()
    right = (ctx.rank + 1) % ctx.size
    ctx.put(win, right, 8 * ctx.rank, buf, 0, 8)
    ctx.win_flush_all(win)
    yield ctx.barrier()
    ctx.win_unlock_all(win)
    # validate the data actually moved
    left = (ctx.rank - 1) % ctx.size
    assert list(win.memory(ctx.rank)[8 * left : 8 * left + 8]) == [left] * 8
    yield ctx.win_free(win)


def colliding_ring_program(ctx):
    """Broken exchange: every rank writes rank 0's block — races galore."""
    win = yield ctx.win_allocate("ring", 8, INT64)
    buf = ctx.alloc("buf", 8, INT64, rma_hint=True)
    ctx.win_lock_all(win)
    yield ctx.barrier()
    ctx.put(win, 0, 0, buf, 0, 8)
    yield ctx.barrier()
    ctx.win_unlock_all(win)
    yield ctx.win_free(win)


class TestCorrectProgramAcrossDetectors:
    @pytest.mark.parametrize("factory", ALL_DETECTORS,
                             ids=lambda f: f.__name__)
    def test_no_reports_on_clean_exchange(self, factory):
        det = factory()
        World(4, [det]).run(ring_shift_program)
        if isinstance(det, (RmaAnalyzerLegacy,)):
            # flush is not instrumented by the legacy tool, but this
            # program only writes each block once: still clean
            pass
        assert det.reports_total == 0, det.reports[:2]


class TestRacyProgramAcrossDetectors:
    @pytest.mark.parametrize(
        "factory",
        [OurDetector, RmaAnalyzerLegacy, MustRma, ParkMirror, McCChecker],
        ids=lambda f: f.__name__,
    )
    def test_all_rma_aware_tools_catch_window_races(self, factory):
        if factory is MustRma:
            pytest.skip("window collision: covered below with heap window")
        det = factory()
        World(3, [det]).run(colliding_ring_program)
        assert det.reports_total >= 1

    def test_must_rma_catches_it_with_heap_window(self):
        det = MustRma()
        World(3, [det]).run(colliding_ring_program)
        assert det.reports_total >= 1


class TestMultipleDetectorsSimultaneously:
    def test_verdicts_agree_when_attached_together(self):
        ours, legacy = OurDetector(), RmaAnalyzerLegacy()
        World(3, [ours, legacy]).run(colliding_ring_program)
        assert ours.reports_total >= 1
        assert legacy.reports_total >= 1

    def test_abort_mode_stops_the_world(self):
        det = OurDetector(abort_on_race=True)
        with pytest.raises(DataRaceError) as excinfo:
            World(3, [det]).run(colliding_ring_program)
        assert "RMA_WRITE" in str(excinfo.value)


class TestScale:
    def test_many_ranks(self):
        det = OurDetector()
        World(32, [det]).run(ring_shift_program)
        assert det.reports_total == 0
        stats = det.node_stats()
        assert len(stats.max_nodes_per_rank) == 32

    def test_repeated_epochs_many_windows(self):
        def program(ctx):
            for w in range(3):
                win = yield ctx.win_allocate(f"w{w}", 64)
                buf = ctx.alloc(f"buf{w}", 8, rma_hint=True)
                for _ in range(4):
                    ctx.win_lock_all(win)
                    yield ctx.barrier()
                    ctx.put(win, (ctx.rank + 1) % ctx.size, 0, buf, 0, 8)
                    ctx.win_flush_all(win)
                    yield ctx.barrier()
                    ctx.win_unlock_all(win)
                    yield ctx.barrier()
                yield ctx.win_free(win)

        det = OurDetector()
        World(4, [det]).run(program)
        assert det.reports_total == 0

"""Differential fuzzing: random RMA programs, cross-detector oracles.

Hypothesis generates small random one-epoch MPI-RMA programs (puts,
gets, accumulates, instrumented loads/stores on RMA-visible memory) and
runs *all* detectors on the very same event stream.  The oracle
relations:

* **Our contribution == MC-CChecker** on the boolean verdict: the
  post-mortem clock-based analysis has neither the lower-bound bug nor
  the order-insensitivity bug nor a stack blind spot, so on flush-free
  heap-only programs the two must agree exactly.
* **MUST-RMA implies ours**: on these programs MUST-RMA has no false
  -positive source (no flush in the grammar), only false-negative ones
  (shadow-cell eviction), so whenever it reports, ours must too.
* **Ours implies the legacy tool or a lower-bound miss**: the original
  RMA-Analyzer misses races only through its path-limited search.

Every run also re-checks the structural invariants of our detector's
BSTs (disjointness, AVL/augmentation consistency).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import OurDetector, StridedDetector
from repro.detectors import McCChecker, MustRma, RmaAnalyzerLegacy
from repro.intervals import DebugInfo
from repro.mpi import BYTE, World
from repro.mpi.simulator import Buffer

WIN_BYTES = 32
NRANKS = 3


@dataclass(frozen=True)
class FuzzOp:
    kind: str  # put | get | acc | load | store
    target: int  # one-sided target / ignored for local
    disp: int
    count: int
    accum_op: str
    line: int


ops = st.builds(
    FuzzOp,
    st.sampled_from(["put", "get", "acc", "load", "store"]),
    st.integers(0, NRANKS - 1),
    st.integers(0, WIN_BYTES - 1),
    st.integers(1, 8),
    st.sampled_from(["sum", "max"]),
    st.integers(1, 5),
)

programs = st.lists(
    st.tuples(st.integers(0, NRANKS - 1), ops), min_size=1, max_size=12
)


def make_program(schedule: List):
    """One lock_all epoch executing the scheduled ops in global order."""

    def program(ctx):
        win = yield ctx.win_allocate("w", WIN_BYTES, BYTE)
        buf = ctx.alloc("buf", WIN_BYTES, BYTE, rma_hint=True)
        ctx.win_lock_all(win)
        yield ctx.barrier()
        for rank, op in schedule:
            if ctx.rank == rank:
                _execute(ctx, win, buf, op)
            yield  # strict global order, identical for every detector
        yield ctx.barrier()
        ctx.win_unlock_all(win)
        yield ctx.win_free(win)

    return program


def _execute(ctx, win, buf, op: FuzzOp) -> None:
    count = min(op.count, WIN_BYTES - op.disp)
    debug = DebugInfo("fuzz.c", op.line)
    if op.kind == "put":
        ctx.put(win, op.target, op.disp, buf, op.disp, count, debug=debug)
    elif op.kind == "get":
        ctx.get(win, op.target, op.disp, buf, op.disp, count, debug=debug)
    elif op.kind == "acc":
        ctx.accumulate(win, op.target, op.disp, buf, op.disp, count,
                       op=op.accum_op, debug=debug)
    elif op.kind == "load":
        winbuf = Buffer(win.region_of(ctx.rank), BYTE)
        ctx.load(winbuf, op.disp, count, debug=debug)
    else:
        winbuf = Buffer(win.region_of(ctx.rank), BYTE)
        ctx.store(winbuf, op.disp, 1, count, debug=debug)


def run_all(schedule):
    ours = OurDetector()
    legacy = RmaAnalyzerLegacy()
    must = MustRma()
    mcc = McCChecker()
    World(NRANKS, [ours, legacy, must, mcc]).run(make_program(schedule))
    return ours, legacy, must, mcc


@given(programs)
@settings(max_examples=120, deadline=None)
def test_strided_extension_verdict_parity(schedule):
    """The §6(3) extension must never change a verdict."""
    plain = OurDetector()
    strided = StridedDetector()
    World(NRANKS, [plain, strided]).run(make_program(schedule))
    assert plain.race_detected == strided.race_detected, (
        f"plain={plain.reports[:2]} strided={strided.reports[:2]}"
    )


@given(programs)
@settings(max_examples=120, deadline=None)
def test_ours_agrees_with_postmortem_oracle(schedule):
    ours, _legacy, _must, mcc = run_all(schedule)
    assert ours.race_detected == mcc.race_detected, (
        f"ours={ours.reports[:2]} mcc={mcc.reports[:2]}"
    )


@given(programs)
@settings(max_examples=120, deadline=None)
def test_must_rma_never_outreports_ours_here(schedule):
    ours, _legacy, must, _mcc = run_all(schedule)
    if must.race_detected:
        assert ours.race_detected


@given(programs)
@settings(max_examples=120, deadline=None)
def test_bst_invariants_survive_fuzzing(schedule):
    ours = OurDetector()
    world = World(NRANKS, [ours])
    # keep the window alive so the stores are inspectable: no win_free

    def program(ctx):
        win = yield ctx.win_allocate("w", WIN_BYTES, BYTE)
        buf = ctx.alloc("buf", WIN_BYTES, BYTE, rma_hint=True)
        ctx.win_lock_all(win)
        yield ctx.barrier()
        for rank, op in schedule:
            if ctx.rank == rank:
                _execute(ctx, win, buf, op)
            yield
        # inspect BEFORE the epoch closes (stores are live)
        if ctx.rank == 0:
            for r in range(ctx.size):
                bst = ours.bst_of(r, win.wid)
                if bst is not None and len(bst):
                    bst.check_invariants()
                    snap = bst.snapshot()
                    for a, b in zip(snap, snap[1:]):
                        assert not a.interval.overlaps(b.interval)
        yield ctx.barrier()
        ctx.win_unlock_all(win)
        yield ctx.win_free(win)

    world.run(program)


@given(programs)
@settings(max_examples=60, deadline=None)
def test_verdicts_deterministic(schedule):
    a = run_all(schedule)
    b = run_all(schedule)
    for first, second in zip(a, b):
        assert first.reports_total == second.reports_total

"""Tests for the compile-time local-concurrency checker (§7 extension)."""

import pytest

from repro.intervals import Interval
from repro.staticcheck import (
    SOp,
    StaticProgram,
    check_program,
    code1_static,
    code2_static,
    from_codespec,
    instrumentation_plan,
)


def prog(*rank_ops):
    """Build a StaticProgram from (rank, SOp) pairs plus closing unlocks."""
    p = StaticProgram()
    ranks = set()
    for rank, op in rank_ops:
        p.add(rank, op)
        ranks.add(rank)
    for rank in ranks | {0}:
        p.add(rank, SOp("unlock_all", 99))
    return p


def put(line, buf="buf", rng=(0, 8), target=1, win=(0, 8)):
    return SOp("put", line, buf, Interval(*rng), target=target,
               win_range=Interval(*win))


def get(line, buf="buf", rng=(0, 8), target=1, win=(0, 8)):
    return SOp("get", line, buf, Interval(*rng), target=target,
               win_range=Interval(*win))


def load(line, buf="buf", rng=(0, 8)):
    return SOp("load", line, buf, Interval(*rng))


def store(line, buf="buf", rng=(0, 8)):
    return SOp("store", line, buf, Interval(*rng))


class TestIrValidation:
    def test_onesided_requires_target(self):
        with pytest.raises(ValueError):
            SOp("put", 1, "buf", Interval(0, 8))

    def test_local_requires_range(self):
        with pytest.raises(ValueError):
            SOp("load", 1, "buf")

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            SOp("swizzle", 1, "buf", Interval(0, 8))


class TestLocalDetection:
    def test_get_then_load_is_static_race(self):
        report = check_program(prog((0, get(1)), (0, load(2))))
        assert len(report.races) == 1
        race = report.races[0]
        assert (race.first_line, race.second_line) == (1, 2)
        assert race.definite

    def test_load_then_get_is_safe(self):
        report = check_program(prog((0, load(1)), (0, get(2))))
        assert report.clean

    def test_put_then_store_is_static_race(self):
        report = check_program(prog((0, put(1)), (0, store(2))))
        assert len(report.races) == 1

    def test_put_then_load_is_safe(self):
        report = check_program(prog((0, put(1)), (0, load(2))))
        assert report.clean

    def test_two_gets_same_buffer_race(self):
        report = check_program(prog((0, get(1)), (0, get(2))))
        assert len(report.races) == 1

    def test_disjoint_ranges_safe(self):
        report = check_program(
            prog((0, get(1, rng=(0, 8))), (0, load(2, rng=(8, 16))))
        )
        assert report.clean

    def test_different_symbols_safe(self):
        report = check_program(
            prog((0, get(1, buf="a")), (0, load(2, buf="b")))
        )
        assert report.clean

    def test_completion_by_unlock(self):
        p = StaticProgram()
        p.add(0, get(1))
        p.add(0, SOp("unlock_all", 2))
        p.add(0, load(3))
        p.add(1, SOp("unlock_all", 2))
        report = check_program(p)
        assert report.clean

    def test_completion_by_flush(self):
        """Per-process view: flush orders the caller's own ops."""
        p = StaticProgram()
        p.add(0, put(1))
        p.add(0, SOp("flush_all", 2))
        p.add(0, put(3))  # same window range: completed, safe locally
        p.add(0, SOp("unlock_all", 4))
        p.add(1, SOp("unlock_all", 4))
        report = check_program(p)
        assert report.clean

    def test_completed_write_then_rma_read_safe(self):
        p = StaticProgram()
        p.add(0, get(1))
        p.add(0, SOp("fence", 2))
        p.add(0, put(3))  # reads buf; the completed get is like a store
        p.add(0, SOp("unlock_all", 4))
        report = check_program(p)
        assert report.clean


class TestCrossRankWarnings:
    def test_two_origins_same_window_range(self):
        report = check_program(
            prog((0, put(1, target=2)), (1, put(5, target=2)))
        )
        assert report.clean  # no definite verdict possible statically
        assert len(report.may_races) == 1
        assert not report.may_races[0].definite

    def test_read_read_not_warned(self):
        report = check_program(
            prog((0, get(1, target=2)), (1, get(5, target=2)))
        )
        assert not report.may_races

    def test_different_targets_not_warned(self):
        report = check_program(
            prog((0, put(1, target=1)), (1, put(5, target=2)))
        )
        assert not report.may_races


class TestPaperCodes:
    def test_code1_statically_detectable(self):
        report = check_program(code1_static())
        assert len(report.races) == 1
        assert "line 11" in report.races[0].message
        assert "line 12" in report.races[0].message

    def test_code2_statically_clean(self):
        report = check_program(code2_static(50))
        assert report.clean
        assert not report.may_races


class TestSuiteEvaluation:
    def test_origin_side_only_limitation(self):
        """[16]'s limitation: same-process races only, zero static FPs."""
        from repro.microbench import generate_suite

        suite = generate_suite()
        tp = fp = 0
        for spec in suite:
            report = check_program(from_codespec(spec))
            if report.races:
                if spec.racy:
                    tp += 1
                else:
                    fp += 1
        races = sum(1 for s in suite if s.racy)
        assert fp == 0
        assert 0 < tp < races  # some but not all: origin-side only

    def test_static_races_are_same_process(self):
        from repro.microbench import generate_suite

        for spec in generate_suite():
            report = check_program(from_codespec(spec))
            if report.races:
                assert spec.first.caller == spec.second.caller


class TestInstrumentationPlan:
    def test_onesided_always_instrumented(self):
        plan = instrumentation_plan(prog((0, put(1))))
        assert plan[1]

    def test_unrelated_local_skipped(self):
        plan = instrumentation_plan(
            prog((0, put(1)), (0, load(2, buf="other")))
        )
        assert plan[1] and not plan[2]

    def test_aliasing_local_kept(self):
        plan = instrumentation_plan(prog((0, put(1)), (0, load(2))))
        assert plan[2]

    def test_target_side_local_kept(self):
        """A load of the window the put reaches must stay instrumented."""
        p = prog(
            (0, put(1, target=1, win=(0, 8))),
            (1, SOp("load", 2, "win", Interval(0, 8))),
        )
        plan = instrumentation_plan(p)
        assert plan[2]

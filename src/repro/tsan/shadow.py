"""ThreadSanitizer-style shadow memory.

TSan keeps a small fixed number of *shadow cells* per 8-byte granule of
application memory; each cell describes one recent access (who, when,
read/write, which bytes).  A new access is checked against the cells of
every granule it touches: overlapping bytes + at least one write + not
ordered by happens-before = race.  When a granule's cell set is full the
oldest cell is evicted — a genuine TSan behaviour that can drop history
(we keep the default of 4 cells).

Unlike real TSan we store the exact byte interval in the cell rather
than a (offset, size) code, so sub-granule adjacency never produces a
spurious overlap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from ..intervals import Interval, MemoryAccess
from .vector_clock import Stamp, VectorClock

__all__ = ["ShadowCell", "ShadowMemory", "GRANULE"]

GRANULE = 8  # bytes per shadow granule
CELLS_PER_GRANULE = 4


@dataclass(frozen=True, slots=True)
class ShadowCell:
    """One remembered access."""

    stamp: Stamp
    interval: Interval
    is_write: bool
    access: MemoryAccess  # for reporting


class ShadowMemory:
    """Per-rank shadow state: (rank, granule index) -> recent cells."""

    def __init__(self) -> None:
        self._cells: Dict[Tuple[int, int], List[ShadowCell]] = {}
        self.cells_touched = 0  # work counter (overhead accounting)

    @staticmethod
    def _granules(interval: Interval) -> Iterator[int]:
        return iter(range(interval.lo // GRANULE, (interval.hi - 1) // GRANULE + 1))

    def check_and_update(
        self,
        rank: int,
        access: MemoryAccess,
        stamp: Stamp,
        clock: VectorClock,
        is_write: bool,
    ) -> List[ShadowCell]:
        """Race-check ``access`` on ``rank``'s memory, then record it.

        Returns the conflicting cells (empty when no race).  ``clock`` is
        the accessor's view at the time of the access.
        """
        conflicts: List[ShadowCell] = []
        new_cell = ShadowCell(stamp, access.interval, is_write, access)
        for g in self._granules(access.interval):
            key = (rank, g)
            cells = self._cells.get(key)
            if cells is None:
                cells = []
                self._cells[key] = cells
            for cell in cells:
                self.cells_touched += 1
                if not cell.interval.overlaps(access.interval):
                    continue
                if not (cell.is_write or is_write):
                    continue
                if cell.stamp == stamp:
                    continue  # the same logical event (multi-granule access)
                if cell.access.is_atomic and access.is_atomic and (
                    cell.access.accum_op == access.accum_op
                    or cell.access.origin == access.origin
                ):
                    # same-op accumulates are element-wise atomic, and
                    # same-origin accumulates are ordered by MPI's
                    # default accumulate_ordering
                    continue
                if (
                    cell.access.excl_epoch is not None
                    and access.excl_epoch is not None
                    and cell.access.excl_epoch != access.excl_epoch
                ):
                    continue  # serialized by exclusive MPI_Win_lock epochs
                if clock.knows(cell.stamp):
                    continue  # ordered: no race
                conflicts.append(cell)
            cells.append(new_cell)
            if len(cells) > CELLS_PER_GRANULE:
                cells.pop(0)  # evict the oldest (TSan history loss)
        # deduplicate conflicts found in several granules
        seen = set()
        unique: List[ShadowCell] = []
        for cell in conflicts:
            ident = (cell.stamp, cell.interval, cell.is_write)
            if ident not in seen:
                seen.add(ident)
                unique.append(cell)
        return unique

    def clear_rank(self, rank: int) -> None:
        for key in [k for k in self._cells if k[0] == rank]:
            del self._cells[key]

    def clear(self) -> None:
        self._cells.clear()

    def __len__(self) -> int:
        """Total live cells (the MUST-RMA analysis-state size metric)."""
        return sum(len(cells) for cells in self._cells.values())

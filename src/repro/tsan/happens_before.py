"""Happens-before engine for MPI-RMA executions.

Models the concurrency structure MUST-RMA derives from MPI calls:

* each rank's program order is one axis ``("app", r)``;
* every one-sided operation is asynchronous from its issue point until
  its epoch completes.  We give each (rank, window) an axis
  ``("rma", r, wid)``: an operation's *stamp* is a fresh tick on that
  axis, while the clock used to *order the operation against others* is
  the issuing rank's application clock at issue time (the op knows
  everything the program knew, but nobody knows the op until it
  completes);
* ``MPI_Win_unlock_all`` completes the rank's outstanding operations on
  that window: the app clock absorbs the RMA axis;
* ``MPI_Barrier`` / ``MPI_Win_allocate`` join all application clocks
  (two-sided synchronization), which *propagates completion knowledge*
  but — per the MPI standard, and per the paper's §6 discussion — does
  **not** complete outstanding one-sided operations;
* ``MPI_Win_flush`` is deliberately not modelled (MUST-RMA "does not
  instrument it well"), which reproduces the CFD-Proxy false positive.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .vector_clock import Entity, Stamp, VectorClock

__all__ = ["HappensBefore"]


class HappensBefore:
    """Vector-clock bookkeeping for ``nranks`` simulated processes."""

    def __init__(self, nranks: int = 0) -> None:
        """``nranks`` pre-creates clocks; ranks also appear lazily."""
        self._app: Dict[int, VectorClock] = {}
        for r in range(nranks):
            self.app_clock(r)
        # last issued op time per (rank, wid)
        self._issued: Dict[Tuple[int, int], int] = {}

    # -- clocks ------------------------------------------------------------

    def app_clock(self, rank: int) -> VectorClock:
        vc = self._app.get(rank)
        if vc is None:
            vc = VectorClock()
            vc.tick(("app", rank))
            self._app[rank] = vc
        return vc

    # -- events ----------------------------------------------------------------

    def local_event(self, rank: int) -> Tuple[Stamp, VectorClock]:
        """A local load/store: stamped on the app axis."""
        vc = self.app_clock(rank)
        entity: Entity = ("app", rank)
        t = vc.tick(entity)
        return (entity, t), vc.copy()

    def rma_event(self, rank: int, wid: int) -> Tuple[Stamp, VectorClock]:
        """A one-sided op: fresh tick on the RMA axis, app clock as view."""
        key = (rank, wid)
        t = self._issued.get(key, 0) + 1
        self._issued[key] = t
        entity: Entity = ("rma", rank, wid)
        view = self.app_clock(rank).copy()  # does NOT include this op's tick
        return (entity, t), view

    def complete_epoch(self, rank: int, wid: int) -> None:
        """unlock_all: the rank's ops on this window are now complete."""
        t = self._issued.get((rank, wid), 0)
        self.app_clock(rank).set_at_least(("rma", rank, wid), t)

    def barrier(self) -> None:
        """Join all application clocks (completion knowledge propagates)."""
        top = VectorClock()
        for vc in self._app.values():
            top.join(vc)
        for r in list(self._app):
            self._app[r] = top.copy()
            self._app[r].tick(("app", r))

    def clock_size(self) -> int:
        """Entries in a rank's clock — the message payload MUST-RMA ships."""
        return max((len(vc) for vc in self._app.values()), default=0)

"""ThreadSanitizer-style substrate: vector clocks, happens-before, shadow memory.

Used by the MUST-RMA behavioural model
(:class:`repro.detectors.must_rma.MustRma`) and by the MC-CChecker
post-mortem analysis.
"""

from .happens_before import HappensBefore
from .shadow import GRANULE, ShadowCell, ShadowMemory
from .vector_clock import Entity, Stamp, VectorClock, join_all

__all__ = [
    "Entity",
    "GRANULE",
    "HappensBefore",
    "ShadowCell",
    "ShadowMemory",
    "Stamp",
    "VectorClock",
    "join_all",
]

"""Vector clocks over a dynamic set of logical entities.

The MUST-RMA model (like MUST itself) tracks happens-before with vector
clocks.  Entities are not just ranks: each rank has an *application*
axis (its program order) and, per window, an *RMA* axis standing for the
asynchronous one-sided operations in flight (see
:mod:`repro.tsan.happens_before`).  Axes therefore appear dynamically,
so the clock is dict-based; its size grows with the number of processes
— which is exactly the scaling cost the paper measures for MUST-RMA in
Figs 11/12 ("the size of the vector clock that is sent to other
processes also increases").
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Tuple

__all__ = ["Entity", "Stamp", "VectorClock"]

Entity = Hashable  # e.g. ("app", rank) or ("rma", rank, wid)
Stamp = Tuple[Entity, int]  # one event: (axis, time)


class VectorClock:
    """A mapping entity -> logical time, with join/tick/ordering."""

    __slots__ = ("c",)

    def __init__(self, init: Dict[Entity, int] | None = None) -> None:
        self.c: Dict[Entity, int] = dict(init) if init else {}

    def copy(self) -> "VectorClock":
        return VectorClock(self.c)

    def get(self, entity: Entity) -> int:
        return self.c.get(entity, 0)

    def tick(self, entity: Entity) -> int:
        """Advance one axis; returns the new time."""
        t = self.c.get(entity, 0) + 1
        self.c[entity] = t
        return t

    def set_at_least(self, entity: Entity, time: int) -> None:
        if self.c.get(entity, 0) < time:
            self.c[entity] = time

    def join(self, other: "VectorClock") -> None:
        """Pointwise maximum (synchronization edge)."""
        for entity, t in other.c.items():
            if self.c.get(entity, 0) < t:
                self.c[entity] = t

    def knows(self, stamp: Stamp) -> bool:
        """True when the event ``stamp`` happens-before this clock."""
        entity, t = stamp
        return self.c.get(entity, 0) >= t

    def __len__(self) -> int:
        return len(self.c)

    def __repr__(self) -> str:
        items = ", ".join(f"{k}:{v}" for k, v in sorted(self.c.items(), key=str))
        return f"VC({items})"


def join_all(clocks: Iterable[VectorClock]) -> VectorClock:
    """The least upper bound of several clocks (barrier semantics)."""
    out = VectorClock()
    for clock in clocks:
        out.join(clock)
    return out

"""A tiny stdlib HTTP client for the daemon (``repro submit`` / ``jobs``).

Nothing here is clever: ``urllib.request`` against the JSON endpoints,
with the one convention that matters — a daemon on an ephemeral port is
discovered through the ``serve.json`` file its state directory
publishes (:func:`resolve_server`).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Optional, Tuple, Union

__all__ = [
    "ServerUnavailable",
    "poll_job",
    "request",
    "resolve_server",
    "submit_trace",
]

TERMINAL_STATES = ("done", "failed", "quarantined")


class ServerUnavailable(Exception):
    """The daemon cannot be reached (connection refused, no serve.json)."""


def resolve_server(server: Optional[str],
                   state: Optional[Union[str, Path]]) -> str:
    """Base URL from ``--server`` or a state dir's ``serve.json``."""
    if server:
        return server.rstrip("/")
    if state is None:
        raise ServerUnavailable("give --server URL or --state DIR")
    path = Path(state) / "serve.json"
    try:
        with open(path) as fh:
            ep = json.load(fh)
        return f"http://{ep['host']}:{ep['port']}"
    except (OSError, ValueError, KeyError) as exc:
        raise ServerUnavailable(
            f"no running daemon found via {path}: {exc}") from exc


def request(url: str, *, method: str = "GET", data: Optional[bytes] = None,
            timeout: float = 30.0) -> Tuple[int, dict, dict]:
    """One HTTP exchange → ``(status, headers, parsed-json-payload)``.

    Non-2xx responses are returned, not raised — admission rejections
    (429) carry policy the caller wants to read.  Transport failures
    raise :class:`ServerUnavailable`.
    """
    req = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        req.add_header("Content-Type", "application/octet-stream")
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            body = resp.read()
            status, headers = resp.status, dict(resp.headers)
    except urllib.error.HTTPError as exc:
        body = exc.read()
        status, headers = exc.code, dict(exc.headers)
    except (urllib.error.URLError, OSError, TimeoutError) as exc:
        raise ServerUnavailable(f"{url}: {exc}") from exc
    try:
        payload = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        payload = {"raw": body.decode("utf-8", "replace")}
    return status, headers, payload


def submit_trace(base: str, trace: Union[str, Path], *,
                 detector: str = "our", tenant: str = "default",
                 timeout: float = 60.0) -> Tuple[int, dict, dict]:
    """POST one trace file; returns the raw ``(status, headers, payload)``."""
    data = Path(trace).read_bytes()
    url = f"{base}/jobs?detector={detector}&tenant={tenant}"
    return request(url, method="POST", data=data, timeout=timeout)


def poll_job(base: str, job_id: str, *, timeout_s: float = 120.0,
             interval_s: float = 0.2) -> dict:
    """Poll until the job reaches a terminal state (or time runs out).

    Returns the last observed job dict either way; the caller inspects
    ``state``.  Tolerates a daemon restart mid-poll (connection errors
    are retried until the deadline — recovery is the point).
    """
    deadline = time.monotonic() + timeout_s
    last: dict = {"id": job_id, "state": "unknown"}
    while time.monotonic() < deadline:
        try:
            status, _, payload = request(f"{base}/jobs/{job_id}",
                                         timeout=min(10.0, timeout_s))
        except ServerUnavailable:
            time.sleep(interval_s)
            continue
        if status == 200:
            last = payload
            if payload.get("state") in TERMINAL_STATES:
                return payload
        time.sleep(interval_s)
    return last

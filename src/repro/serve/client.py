"""A tiny stdlib HTTP client for the daemon (``repro submit`` / ``jobs``).

Nothing here is clever: ``urllib.request`` against the JSON endpoints,
with the one convention that matters — a daemon on an ephemeral port is
discovered through the ``serve.json`` file its state directory
publishes (:func:`resolve_server`).
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Callable, Optional, Tuple, Union

__all__ = [
    "ServerUnavailable",
    "poll_job",
    "request",
    "resolve_server",
    "submit_trace",
    "submit_with_retry",
]

TERMINAL_STATES = ("done", "failed", "quarantined")


class ServerUnavailable(Exception):
    """The daemon cannot be reached (connection refused, no serve.json)."""


def resolve_server(server: Optional[str],
                   state: Optional[Union[str, Path]]) -> str:
    """Base URL from ``--server`` or a state dir's ``serve.json``."""
    if server:
        return server.rstrip("/")
    if state is None:
        raise ServerUnavailable("give --server URL or --state DIR")
    path = Path(state) / "serve.json"
    try:
        with open(path) as fh:
            ep = json.load(fh)
        return f"http://{ep['host']}:{ep['port']}"
    except (OSError, ValueError, KeyError) as exc:
        raise ServerUnavailable(
            f"no running daemon found via {path}: {exc}") from exc


def request(url: str, *, method: str = "GET", data: Optional[bytes] = None,
            timeout: float = 30.0) -> Tuple[int, dict, dict]:
    """One HTTP exchange → ``(status, headers, parsed-json-payload)``.

    Non-2xx responses are returned, not raised — admission rejections
    (429) carry policy the caller wants to read.  Transport failures
    raise :class:`ServerUnavailable`.
    """
    req = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        req.add_header("Content-Type", "application/octet-stream")
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            body = resp.read()
            status, headers = resp.status, dict(resp.headers)
    except urllib.error.HTTPError as exc:
        body = exc.read()
        status, headers = exc.code, dict(exc.headers)
    except (urllib.error.URLError, OSError, TimeoutError) as exc:
        raise ServerUnavailable(f"{url}: {exc}") from exc
    try:
        payload = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        payload = {"raw": body.decode("utf-8", "replace")}
    return status, headers, payload


def submit_trace(base: str, trace: Union[str, Path], *,
                 detector: str = "our", tenant: str = "default",
                 timeout: float = 60.0) -> Tuple[int, dict, dict]:
    """POST one trace file; returns the raw ``(status, headers, payload)``."""
    data = Path(trace).read_bytes()
    url = f"{base}/jobs?detector={detector}&tenant={tenant}"
    return request(url, method="POST", data=data, timeout=timeout)


def _retry_after_s(headers: dict) -> Optional[float]:
    """Parse a ``Retry-After`` header (seconds form) if present and sane."""
    for key, value in headers.items():
        if key.lower() == "retry-after":
            try:
                return max(0.0, float(value))
            except (TypeError, ValueError):
                return None
    return None


def submit_with_retry(base: str, trace: Union[str, Path], *,
                      detector: str = "our", tenant: str = "default",
                      max_wait_s: float = 60.0,
                      backoff_base: float = 0.25,
                      backoff_max: float = 8.0,
                      timeout: float = 60.0,
                      sleep: Callable[[float], None] = time.sleep,
                      rng: Optional[random.Random] = None,
                      ) -> Tuple[int, dict, dict, int]:
    """Submit, riding out 429/503 backpressure the polite way.

    A 429 (queue full, tenant cap) or 503 (draining) is the daemon
    shedding load, not failing — the client's job is to come back
    *later and unsynchronized*.  Each rejection waits the larger of the
    server's ``Retry-After`` hint and a jittered capped exponential
    backoff (full jitter on the exponential part, so a burst of
    rejected clients does not re-arrive as the same burst), until the
    submission lands or ``max_wait_s`` of total waiting is exhausted —
    then the last rejection is returned for the caller to report.

    Returns ``(status, headers, payload, attempts)``.  Transport
    failures still raise :class:`ServerUnavailable` immediately; only
    explicit backpressure responses are retried.  ``sleep`` and ``rng``
    exist for tests (injectable clock and determinism).
    """
    if max_wait_s < 0:
        raise ValueError("max_wait_s must be >= 0")
    rng = rng if rng is not None else random.Random()
    waited = 0.0
    attempts = 0
    while True:
        attempts += 1
        status, headers, payload = submit_trace(
            base, trace, detector=detector, tenant=tenant, timeout=timeout)
        if status not in (429, 503):
            return status, headers, payload, attempts
        backoff = min(backoff_max, backoff_base * (2 ** (attempts - 1)))
        delay = max(_retry_after_s(headers) or 0.0, backoff * rng.random())
        if waited + delay > max_wait_s:
            return status, headers, payload, attempts
        sleep(delay)
        waited += delay


def poll_job(base: str, job_id: str, *, timeout_s: float = 120.0,
             interval_s: float = 0.2) -> dict:
    """Poll until the job reaches a terminal state (or time runs out).

    Returns the last observed job dict either way; the caller inspects
    ``state``.  Tolerates a daemon restart mid-poll (connection errors
    are retried until the deadline — recovery is the point).
    """
    deadline = time.monotonic() + timeout_s
    last: dict = {"id": job_id, "state": "unknown"}
    while time.monotonic() < deadline:
        try:
            status, _, payload = request(f"{base}/jobs/{job_id}",
                                         timeout=min(10.0, timeout_s))
        except ServerUnavailable:
            time.sleep(interval_s)
            continue
        if status == 200:
            last = payload
            if payload.get("state") in TERMINAL_STATES:
                return payload
        time.sleep(interval_s)
    return last

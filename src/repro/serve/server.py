"""The HTTP face of the daemon: stdlib ``http.server``, zero deps.

Endpoints::

    POST /jobs?detector=our&tenant=t   submit a trace (body = trace bytes)
    GET  /jobs                         job table
    GET  /jobs/<id>                    one job's state
    GET  /jobs/<id>/result             full result JSON (done jobs)
    GET  /jobs/<id>/report.html        self-contained HTML race report
    GET  /healthz                      liveness (200 while the process runs)
    GET  /readyz                       readiness (503 once draining)
    GET  /metrics                      obs registry (text; ?format=json)

Failure posture:

* An upload that stops short of its ``Content-Length`` (client severed
  mid-upload) is rejected with 400 and its spool file removed — a
  half-received trace never becomes a job.
* Admission rejections are 429 with ``Retry-After`` (see
  :class:`~repro.serve.scheduler.Scheduler`).
* SIGTERM triggers a graceful drain: readiness flips to 503, the
  listener stops accepting, in-flight jobs checkpoint and are journaled
  back to ``queued``, and the process exits 0.  ``kill -9`` is the case
  the journal exists for: the next start replays it and resumes.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Optional, Tuple, Union
from urllib.parse import parse_qs, urlsplit

from .. import obs
from ..mpi.errors import TraceFormatError
from ..pipeline import TraceReader
from .scheduler import AdmissionError, Scheduler

__all__ = ["ServeConfig", "ReproServer", "serve_forever", "write_endpoint"]

#: characters allowed in a tenant name (it lands in metric labels)
_TENANT_OK = set("abcdefghijklmnopqrstuvwxyz"
                 "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-")


@dataclass(frozen=True)
class ServeConfig:
    """Everything ``repro serve`` needs, as one frozen bag."""

    state_dir: str
    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 2
    max_queue: int = 16
    tenant_cap: int = 4
    retries: int = 2
    deadline_s: Optional[float] = None
    max_rss_mb: Optional[int] = None
    ckpt_every: int = 1
    drain_s: float = 10.0
    max_body_mb: int = 256
    cache_max: Optional[int] = 256
    quiet: bool = True


def write_endpoint(state_dir: Union[str, Path], host: str, port: int) -> Path:
    """Atomically publish ``serve.json`` (host/port/pid) in the state dir.

    Clients (``repro submit --state``) and the chaos harness discover a
    daemon on an ephemeral port through this file.
    """
    path = Path(state_dir) / "serve.json"
    tmp = path.with_suffix(".tmp")
    with open(tmp, "w") as fh:
        json.dump({"host": host, "port": port, "pid": os.getpid(),
                   "started_at": time.time()}, fh)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return path


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing -------------------------------------------------------------

    @property
    def scheduler(self) -> Scheduler:
        return self.server.scheduler

    def log_message(self, fmt, *args):  # noqa: N802 - stdlib name
        if not self.server.config.quiet:
            super().log_message(fmt, *args)

    def _send_json(self, code: int, payload, *, headers=()) -> None:
        body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
        self._send_bytes(code, body, "application/json", headers)

    def _send_bytes(self, code: int, body: bytes, ctype: str,
                    headers=()) -> None:
        try:
            self.send_response(code)
            self.send_header("Content-Type", ctype)
            self.send_header("Content-Length", str(len(body)))
            for k, v in headers:
                self.send_header(k, v)
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass  # the client left; nothing of ours is at stake

    def _count(self, route: str, method: str) -> None:
        self.scheduler._count("serve.http.requests", route=route,
                              method=method)

    # -- GET ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib name
        url = urlsplit(self.path)
        parts = [p for p in url.path.split("/") if p]
        if url.path == "/healthz":
            self._count("healthz", "GET")
            self._send_json(200, {"ok": True, "pid": os.getpid()})
        elif url.path == "/readyz":
            self._count("readyz", "GET")
            if self.server.draining.is_set():
                self._send_json(503, {"ready": False, "reason": "draining"})
            else:
                self._send_json(200, {"ready": True})
        elif url.path == "/metrics":
            self._count("metrics", "GET")
            self._metrics(url)
        elif parts == ["jobs"]:
            self._count("jobs", "GET")
            self._send_json(200, {"jobs": self.scheduler.list_jobs()})
        elif len(parts) == 2 and parts[0] == "jobs":
            self._count("job", "GET")
            job = self.scheduler.get_job(parts[1])
            if job is None:
                self._send_json(404, {"error": f"no job {parts[1]!r}"})
            else:
                self._send_json(200, job)
        elif len(parts) == 3 and parts[0] == "jobs":
            self._job_artifact(parts[1], parts[2])
        else:
            self._send_json(404, {"error": f"no route {url.path!r}"})

    def _metrics(self, url) -> None:
        reg = self.scheduler.registry
        if not reg.enabled:
            self._send_json(200, {"schema": "repro-obs-v1", "counters": {},
                                  "gauges": {}, "histograms": {}, "spans": {}})
            return
        with self.scheduler._lock:
            snap = reg.snapshot()
        fmt = parse_qs(url.query).get("format", [""])[0]
        if fmt == "json":
            self._send_json(200, snap)
        else:
            self._send_bytes(200, (obs.render_metrics(snap) + "\n")
                             .encode("utf-8"), "text/plain; charset=utf-8")

    def _job_artifact(self, jid: str, what: str) -> None:
        job = self.scheduler.get_job(jid)
        if job is None:
            self._send_json(404, {"error": f"no job {jid!r}"})
            return
        if job["state"] != "done":
            self._send_json(409, {"error": f"job {jid} is {job['state']!r}, "
                                           "not done", "job": job})
            return
        result = self.scheduler.get_result(jid)
        if result is None:
            self._send_json(404, {"error": f"result for {jid} is missing"})
            return
        if what == "result":
            self._count("result", "GET")
            self._send_json(200, result)
        elif what == "report.html":
            self._count("report", "GET")
            from ..obs.htmlreport import render_html_report

            html = render_html_report(
                result, title=f"repro race report — job {jid}")
            self._send_bytes(200, html.encode("utf-8"),
                             "text/html; charset=utf-8")
        else:
            self._send_json(404, {"error": f"no artifact {what!r}"})

    # -- POST -----------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - stdlib name
        url = urlsplit(self.path)
        if url.path != "/jobs":
            self._send_json(404, {"error": f"no route {url.path!r}"})
            return
        self._count("submit", "POST")
        if self.server.draining.is_set():
            self._send_json(503, {"error": "draining"},
                            headers=[("Retry-After", "5")])
            return
        params = parse_qs(url.query)
        detector = params.get("detector", ["our"])[0]
        tenant = params.get("tenant", ["default"])[0]
        from ..pipeline import DETECTOR_SPECS

        if detector not in DETECTOR_SPECS:
            self._send_json(400, {"error": f"unknown detector {detector!r}; "
                                           f"have {sorted(DETECTOR_SPECS)}"})
            return
        if not tenant or len(tenant) > 64 or set(tenant) - _TENANT_OK:
            self._send_json(400, {"error": "invalid tenant name"})
            return
        spooled = self._spool_body()
        if spooled is None:
            return  # error already sent
        try:
            # a cheap structural check before admission: an upload that
            # is not a trace at all never becomes a job
            TraceReader(spooled)
        except TraceFormatError as exc:
            spooled.unlink(missing_ok=True)
            self.scheduler._count("serve.uploads.rejected", reason="corrupt")
            self._send_json(400, {"error": f"not a readable trace: {exc}"})
            return
        try:
            job = self.scheduler.submit_file(spooled, tenant=tenant,
                                             detector=detector)
        except AdmissionError as exc:
            spooled.unlink(missing_ok=True)
            self._send_json(
                429, {"error": exc.reason,
                      "retry_after_s": exc.retry_after_s},
                headers=[("Retry-After",
                          str(max(1, int(exc.retry_after_s))))])
            return
        self._send_json(202, job.to_dict())

    def _spool_body(self) -> Optional[Path]:
        """Stream the upload to a spool file; None (+response) on failure."""
        length = self.headers.get("Content-Length")
        if length is None:
            self._send_json(411, {"error": "Content-Length required"})
            return None
        try:
            length = int(length)
        except ValueError:
            self._send_json(400, {"error": "bad Content-Length"})
            return None
        limit = self.server.config.max_body_mb * (1 << 20)
        if length <= 0:
            self._send_json(400, {"error": "empty upload"})
            return None
        if length > limit:
            self._send_json(413, {"error": f"upload exceeds "
                                           f"{self.server.config.max_body_mb}"
                                           " MiB"})
            return None
        spool = (self.scheduler.traces_dir
                 / f".upload-{threading.get_ident()}-{time.monotonic_ns()}.tmp")
        got = 0
        try:
            with open(spool, "wb") as fh:
                while got < length:
                    block = self.rfile.read(min(1 << 20, length - got))
                    if not block:
                        break  # client severed the connection mid-upload
                    fh.write(block)
                    got += len(block)
        except (OSError, ConnectionError):
            got = -1
        if got != length:
            spool.unlink(missing_ok=True)
            self.scheduler._count("serve.uploads.rejected",
                                  reason="truncated")
            self._send_json(400, {"error": f"truncated upload: got "
                                           f"{max(got, 0)} of {length} bytes"})
            return None
        return spool


class ReproServer(ThreadingHTTPServer):
    """ThreadingHTTPServer wired to one scheduler."""

    daemon_threads = True

    def __init__(self, config: ServeConfig, scheduler: Scheduler) -> None:
        self.config = config
        self.scheduler = scheduler
        self.draining = threading.Event()
        super().__init__((config.host, config.port), _Handler)


def serve_forever(config: ServeConfig,
                  *, ready_callback=None) -> int:
    """Run the daemon until SIGTERM/SIGINT; returns the process exit code.

    Startup order is recovery-first: replay the journal, requeue
    interrupted jobs, start the workers, then open the listener and
    publish ``serve.json`` — by the time a client can reach the port,
    every pre-crash job is already moving again.
    """
    from ..faultinject.daemon import install_serve_faults_from_env

    install_serve_faults_from_env()
    scheduler = Scheduler(
        config.state_dir,
        workers=config.workers, max_queue=config.max_queue,
        tenant_cap=config.tenant_cap, retries=config.retries,
        deadline_s=config.deadline_s, max_rss_mb=config.max_rss_mb,
        ckpt_every=config.ckpt_every, cache_max=config.cache_max,
    )
    recovered = scheduler.recover()
    scheduler.start()
    httpd = ReproServer(config, scheduler)
    host, port = httpd.server_address[:2]
    endpoint = write_endpoint(config.state_dir, host, port)
    stop = threading.Event()

    def _terminate(signum, frame):
        stop.set()
        httpd.draining.set()
        threading.Thread(target=httpd.shutdown, daemon=True).start()

    old_term = signal.signal(signal.SIGTERM, _terminate)
    old_int = signal.signal(signal.SIGINT, _terminate)
    print(f"repro serve: listening on http://{host}:{port} "
          f"(state {config.state_dir}, {config.workers} worker(s), "
          f"queue {config.max_queue}, recovered {recovered['jobs']} job(s), "
          f"requeued {recovered['requeued']})", flush=True)
    if ready_callback is not None:
        ready_callback(host, port)
    try:
        httpd.serve_forever(poll_interval=0.1)
    finally:
        signal.signal(signal.SIGTERM, old_term)
        signal.signal(signal.SIGINT, old_int)
        httpd.server_close()
        live = scheduler.drain(timeout=config.drain_s)
        endpoint.unlink(missing_ok=True)
        print(f"repro serve: drained; {len(live)} job(s) requeued for "
              "the next start", flush=True)
    return 0

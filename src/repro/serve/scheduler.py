"""The job scheduler: bounded queue, worker threads, crash recovery.

The scheduler owns the daemon's job table and the policy around it:

* **Admission control.**  The queue is bounded (``max_queue`` jobs
  queued+running) and each tenant has a concurrent-job cap; past either
  limit :meth:`submit` raises :class:`AdmissionError` and the HTTP layer
  answers 429 with a ``Retry-After`` — overload sheds load at the door
  instead of growing an unbounded backlog.
* **Durability.**  Every transition is journaled (fsync'd) *before*
  the scheduler acts on it, so the on-disk journal is never behind the
  in-memory state it would need to reconstruct.
* **Checkpointed execution.**  Each job runs a serial checkpointed
  analysis (``analyze_trace(..., ckpt_dir=<per-job dir>, resume=True)``)
  in a worker thread.  The per-job checkpoint directory is keyed by
  trace content hash + detector, so two jobs can never clobber each
  other's checkpoint generations, and a *restarted* job (crash recovery,
  retry) resumes from its newest checkpoint cursor — deterministic
  replay makes the final verdicts byte-identical either way.
* **Retry and poison quarantine.**  Unexpected analysis failures retry
  with capped exponential backoff; a job that keeps failing — or keeps
  taking the daemon down with it (attempts exhausted at recovery) — is
  *quarantined*: parked terminally, never silently dropped, never
  allowed to crash-loop the service.
* **Graceful drain.**  :meth:`drain` stops the workers and (through the
  engine's drain hook) makes every in-flight analysis checkpoint and
  stop at its next chunk boundary; the interrupted jobs are journaled
  back to ``queued`` and complete after the next start.
"""

from __future__ import annotations

import os
import queue as _queue
import shutil
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from .. import obs
from ..mpi.errors import TraceFormatError
from ..pipeline import CheckpointError, analyze_trace, backoff_delay
from ..pipeline import checkpoint as _ckpt
from ..pipeline.format import compare_chain, trace_chain
from .cache import VerdictCache, trace_sha256
from .journal import JobJournal

__all__ = ["AdmissionError", "Job", "Scheduler", "job_ckpt_dir"]

#: job states.  queued/running are *live*; the rest are terminal.
LIVE_STATES = ("queued", "running")
TERMINAL_STATES = ("done", "failed", "quarantined")

#: exception types whose failure is deterministic — retrying the same
#: trace bytes can only fail the same way, so the job fails immediately
_NO_RETRY = (TraceFormatError, CheckpointError, ValueError)


class AdmissionError(Exception):
    """The daemon refused a submission (backpressure, not failure)."""

    def __init__(self, reason: str, retry_after_s: float = 1.0) -> None:
        super().__init__(reason)
        self.reason = reason
        self.retry_after_s = retry_after_s


def job_ckpt_dir(base: Union[str, Path], sha: str, detector: str) -> Path:
    """Per-job checkpoint directory, keyed by trace content hash.

    Two jobs pointed at one shared checkpoint base must never clobber
    each other's ``serial-*.ckpt`` generations; keying the subdirectory
    by content hash + detector isolates them (and lets an *identical*
    resubmission reuse the same resumable state, which is safe because
    identical inputs checkpoint identical bytes).
    """
    return Path(base) / f"{sha[:16]}-{detector}"


@dataclass
class Job:
    """One submitted analysis and everything the journal knows about it."""

    id: str
    tenant: str
    detector: str
    trace_sha: str
    trace_path: str
    state: str = "queued"
    attempts: int = 0
    submitted_at: float = 0.0
    updated_at: float = 0.0
    reason: Optional[str] = None
    cached: bool = False
    races: Optional[int] = None
    events: Optional[int] = None
    wall_seconds: Optional[float] = None
    #: incremental lineage: the already-analyzed trace whose chunk chain
    #: this trace extends, and how many chunks that prefix covers —
    #: journaled at submit so crash recovery re-runs the job with the
    #: same prefix-resume plan it was admitted with
    resumed_from: Optional[str] = None
    prefix_chunks: int = 0
    #: resume accounting of the winning attempt (lane/from_seq/skipped)
    resumed: List[dict] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "id": self.id, "tenant": self.tenant, "detector": self.detector,
            "trace_sha": self.trace_sha, "trace_path": self.trace_path,
            "state": self.state, "attempts": self.attempts,
            "submitted_at": self.submitted_at, "updated_at": self.updated_at,
            "reason": self.reason, "cached": self.cached,
            "races": self.races, "events": self.events,
            "wall_seconds": self.wall_seconds,
            "resumed_from": self.resumed_from,
            "prefix_chunks": self.prefix_chunks, "resumed": self.resumed,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Job":
        return cls(**{k: d.get(k, None) for k in (
            "id", "tenant", "detector", "trace_sha", "trace_path", "state",
            "attempts", "submitted_at", "updated_at", "reason", "cached",
            "races", "events", "wall_seconds", "resumed_from")},
            prefix_chunks=int(d.get("prefix_chunks") or 0),
            resumed=list(d.get("resumed") or ()))


class Scheduler:
    """Durable multi-tenant job execution over a thread worker pool."""

    def __init__(
        self,
        state_dir: Union[str, Path],
        *,
        workers: int = 2,
        max_queue: int = 16,
        tenant_cap: int = 4,
        retries: int = 2,
        deadline_s: Optional[float] = None,
        max_rss_mb: Optional[int] = None,
        ckpt_every: int = 1,
        backoff_base: float = 0.05,
        backoff_max: float = 2.0,
        compact_every: int = 512,
        cache_max: Optional[int] = 256,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if tenant_cap < 1:
            raise ValueError("tenant_cap must be >= 1")
        self.state_dir = Path(state_dir)
        self.traces_dir = self.state_dir / "traces"
        self.ckpt_base = self.state_dir / "ckpt"
        for d in (self.state_dir, self.traces_dir, self.ckpt_base):
            d.mkdir(parents=True, exist_ok=True)
        self.journal = JobJournal(self.state_dir / "jobs.journal")
        self.cache = VerdictCache(self.state_dir / "cache",
                                  max_entries=cache_max,
                                  on_evict=self._cache_evicted)
        self.workers = workers
        self.max_queue = max_queue
        self.tenant_cap = tenant_cap
        self.retries = retries
        self.deadline_s = deadline_s
        self.max_rss_mb = max_rss_mb
        self.ckpt_every = ckpt_every
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.compact_every = compact_every

        self.jobs: Dict[str, Job] = {}
        self._seq = 0
        self._lock = threading.RLock()
        self._queue: "_queue.Queue[Optional[str]]" = _queue.Queue()
        self._threads: List[threading.Thread] = []
        self.drain_event = threading.Event()
        #: the registry the daemon's own counters land in (worker-thread
        #: analysis scopes are thread-local and merge back in here)
        self.registry = obs.active()

    # -- counters (thread-shared registry → guard with the lock) -------------

    def _count(self, name: str, n: int = 1, **labels: str) -> None:
        if self.registry.enabled:
            with self._lock:
                self.registry.counter(name, **labels).add(n)

    def _cache_evicted(self, sha: str, detector: str) -> None:
        """LRU eviction callback: drop the entry's checkpoint state too.

        An evicted verdict can no longer be a prefix-resume ancestor
        (its chain sidecar is gone), so its retained final checkpoint
        is dead weight — delete the whole per-job checkpoint directory.
        """
        self._count("serve.cache.evicted")
        shutil.rmtree(job_ckpt_dir(self.ckpt_base, sha, detector),
                      ignore_errors=True)

    def _set_gauges(self) -> None:
        if not self.registry.enabled:
            return
        with self._lock:
            states = [j.state for j in self.jobs.values()]
            self.registry.gauge("serve.jobs.queued").set(
                states.count("queued"))
            self.registry.gauge("serve.jobs.running").set(
                states.count("running"))

    # -- journal helpers ------------------------------------------------------

    def _journal_submit(self, job: Job) -> None:
        self.journal.append({"op": "submit", "job": job.to_dict()})

    def _journal_state(self, job: Job) -> None:
        self.journal.append({"op": "state", "job": job.to_dict()})
        self._count("serve.journal.records")
        if self.journal.appended >= self.compact_every:
            self._compact()

    def _compact(self) -> None:
        records = [{"op": "job", "job": j.to_dict()}
                   for _, j in sorted(self.jobs.items())]
        self.journal.compact(records)
        self._count("serve.journal.compactions")

    def _transition(self, job: Job, state: str, *, reason: Optional[str] = None,
                    **fields) -> None:
        with self._lock:
            job.state = state
            job.reason = reason
            job.updated_at = time.time()
            for k, v in fields.items():
                setattr(job, k, v)
            self._journal_state(job)
        self._set_gauges()

    # -- recovery -------------------------------------------------------------

    def recover(self) -> dict:
        """Replay the journal into the job table; requeue interrupted jobs.

        Jobs found *running* were in flight when the daemon died: their
        checkpoints are on disk, so they go back on the queue and resume
        from their newest checkpoint cursor.  A job whose attempts were
        already exhausted (it kept dying mid-run) is quarantined instead
        — a poison job must not crash-loop the daemon.
        """
        with self._lock:
            records = self.journal.replay()
            for note in self.journal.quarantined:
                self._count("serve.journal.quarantined")
            for rec in records:
                op = rec.get("op")
                if op in ("submit", "job", "state") and "job" in rec:
                    job = Job.from_dict(rec["job"])
                    self.jobs[job.id] = job
            for job in self.jobs.values():
                digits = job.id.lstrip("j")
                if digits.isdigit():
                    self._seq = max(self._seq, int(digits))
            requeued = quarantined = 0
            for jid in sorted(self.jobs):
                job = self.jobs[jid]
                if job.state not in LIVE_STATES:
                    continue
                if job.attempts > self.retries:
                    self._transition(job, "quarantined", reason="poison")
                    self._count("serve.jobs.quarantined")
                    quarantined += 1
                else:
                    if job.state == "running":
                        self._transition(job, "queued", reason="recovered")
                    self._queue.put(job.id)
                    requeued += 1
        self._set_gauges()
        return {"jobs": len(self.jobs), "requeued": requeued,
                "quarantined": quarantined,
                "journal_quarantined": list(self.journal.quarantined)}

    # -- admission ------------------------------------------------------------

    def _live_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {"": 0}
        for job in self.jobs.values():
            if job.state in LIVE_STATES:
                counts[""] += 1
                counts[job.tenant] = counts.get(job.tenant, 0) + 1
        return counts

    def submit_file(self, spooled: Union[str, Path], *, tenant: str = "default",
                    detector: str = "our",
                    sha: Optional[str] = None) -> Job:
        """Admit one spooled trace upload as a job.

        ``spooled`` must live on the same filesystem as the scheduler's
        spool directory (the HTTP layer writes uploads there); it is
        renamed into content-addressed storage.  Raises
        :class:`AdmissionError` on backpressure — *after* which the
        spooled file is still the caller's to clean up.
        """
        spooled = Path(spooled)
        if sha is None:
            sha = trace_sha256(spooled)
        with self._lock:
            # an identical trace+detector already analyzed? serve the
            # verdicts from the cache without running anything
            cached = self.cache.get(sha, detector)
            # ... or currently live? attach to it instead of double-running
            if cached is None:
                for job in self.jobs.values():
                    if (job.state in LIVE_STATES and job.trace_sha == sha
                            and job.detector == detector):
                        self._count("serve.jobs.deduped")
                        spooled.unlink(missing_ok=True)
                        return job
                counts = self._live_counts()
                if counts[""] >= self.max_queue:
                    self._count("serve.admission.rejected",
                                reason="queue_full")
                    raise AdmissionError("queue_full")
                if counts.get(tenant, 0) >= self.tenant_cap:
                    self._count("serve.admission.rejected",
                                reason="tenant_cap")
                    raise AdmissionError("tenant_cap")
            stored = self.traces_dir / f"{sha}.trace"
            if not stored.exists():
                os.replace(spooled, stored)
            else:
                spooled.unlink(missing_ok=True)
            resumed_from, prefix_chunks = (None, 0)
            if cached is None:
                resumed_from, prefix_chunks = self._find_prefix_ancestor(
                    stored, detector, sha)
            self._seq += 1
            now = time.time()
            job = Job(
                id=f"j{self._seq:06d}", tenant=tenant, detector=detector,
                trace_sha=sha, trace_path=str(stored),
                submitted_at=now, updated_at=now,
                resumed_from=resumed_from, prefix_chunks=prefix_chunks,
            )
            self.jobs[job.id] = job
            self._journal_submit(job)
            self._count("serve.jobs.submitted", tenant=tenant)
            if cached is not None:
                self._count("serve.cache.hits")
                job.cached = True
                self._transition(job, "done", races=len(cached["verdicts"]),
                                 events=cached.get("events_total"),
                                 wall_seconds=0.0)
                return job
            self._count("serve.cache.misses")
            self._queue.put(job.id)
        self._set_gauges()
        return job

    def _find_prefix_ancestor(self, stored: Path, detector: str,
                              sha: str) -> tuple:
        """Longest already-analyzed trace this upload append-only extends.

        The verdict cache keeps a chunk-chain sidecar for every finished
        job; comparing the new trace's chain against each sidecar is one
        O(min(len)) hex compare — ``relation == "extension"`` proves the
        new bytes are the old trace plus appended chunks, so its final
        checkpoint cursor is a valid starting point.  Candidates that
        share a prefix but then *diverge* (a rewritten tail resubmitted)
        are counted and skipped: resuming over them would analyze the
        wrong history.
        """
        try:
            new_chain = trace_chain(stored)
        except (TraceFormatError, OSError):
            return None, 0  # v1/quarantined traces have no chain index
        if not new_chain.get("chunks"):
            return None, 0
        best_sha, best_common = None, 0
        for anc_sha, anc_chain in self.cache.iter_chains(detector):
            if anc_sha == sha:
                continue
            rel = compare_chain(anc_chain, new_chain)
            if rel["relation"] == "extension" and rel["common"] > best_common:
                best_sha, best_common = anc_sha, rel["common"]
            elif rel["relation"] == "diverged" and rel["common"] >= 1:
                self._count("incremental.divergences")
        if best_sha is not None:
            self._count("incremental.prefix_hits")
        return best_sha, best_common

    def submit_bytes(self, data: bytes, **kwargs) -> Job:
        """Convenience for tests/benchmarks: spool ``data`` and submit."""
        tmp = self.traces_dir / f".upload-{threading.get_ident()}.tmp"
        tmp.write_bytes(data)
        try:
            return self.submit_file(tmp, **kwargs)
        finally:
            tmp.unlink(missing_ok=True)

    # -- execution ------------------------------------------------------------

    def start(self) -> None:
        _ckpt.install_drain_event(self.drain_event)
        for i in range(self.workers):
            t = threading.Thread(target=self._worker_loop,
                                 name=f"serve-worker-{i}", daemon=True)
            t.start()
            self._threads.append(t)

    def _worker_loop(self) -> None:
        while not self.drain_event.is_set():
            try:
                jid = self._queue.get(timeout=0.2)
            except _queue.Empty:
                continue
            if jid is None:
                continue
            with self._lock:
                job = self.jobs.get(jid)
                if job is None or job.state not in LIVE_STATES:
                    continue
            self._run(job)

    def _run(self, job: Job) -> None:
        self._transition(job, "running", attempts=job.attempts + 1)
        self._count("serve.jobs.started")
        ckpt_dir = job_ckpt_dir(self.ckpt_base, job.trace_sha, job.detector)
        if job.resumed_from and self._seed_ckpt_dir(job, ckpt_dir):
            print(f"repro serve: {job.id} prefix-resume from "
                  f"{job.resumed_from[:16]} "
                  f"({job.prefix_chunks} chunk(s) already analyzed)",
                  flush=True)
        t0 = time.perf_counter()
        try:
            result = analyze_trace(
                job.trace_path, detector=job.detector, jobs=1,
                ckpt_dir=ckpt_dir, ckpt_every=self.ckpt_every,
                deadline_s=self.deadline_s, max_rss_mb=self.max_rss_mb,
                resume=True,
            )
        except _NO_RETRY as exc:
            # deterministic failure: the same bytes would fail the same
            # way on every retry, so fail the job now
            self._transition(job, "failed",
                             reason=f"{type(exc).__name__}: {exc}")
            self._count("serve.jobs.failed", reason="bad-input")
            return
        except Exception as exc:  # noqa: BLE001 - the retry boundary
            self._retry_or_quarantine(
                job, f"{type(exc).__name__}: {exc}")
            return
        wall = time.perf_counter() - t0
        if self.registry.enabled:
            with self._lock:
                if result.obs:
                    self.registry.merge(result.obs)
                self.registry.histogram("serve.job.wall_ms").observe(
                    int(wall * 1000))
        if result.partial:
            stopped = (result.checkpoint or {}).get("stopped")
            if stopped == "drain":
                # drain interrupted it mid-trace: checkpointed, so it
                # goes back on the queue and resumes after restart
                self._transition(job, "queued", reason="drained")
                self._count("serve.jobs.drained")
            else:
                self._transition(job, "failed", reason=f"guard:{stopped}")
                self._count("serve.jobs.failed", reason=str(stopped))
            return
        self.cache.put(job.trace_sha, job.detector, result.to_dict())
        resumed = (result.checkpoint or {}).get("resumed") or []
        self._transition(job, "done", races=result.races,
                         events=result.events_total, wall_seconds=wall,
                         resumed=list(resumed))
        self._count("serve.jobs.completed")
        self._retain_incremental_state(job, ckpt_dir)

    def _seed_ckpt_dir(self, job: Job, ckpt_dir: Path) -> bool:
        """Copy the prefix ancestor's final checkpoint into this job's dir.

        Idempotent and crash-safe: if the job's own directory already
        holds serial checkpoints (an interrupted earlier attempt of this
        very job), its own — strictly further along — cursor wins and no
        seeding happens.  Copies go through tmp + ``os.replace`` so a
        crash mid-seed never leaves a torn ``.ckpt`` for resume to trip
        over.  Returns True when a resumable cursor is in place.
        """
        try:
            if any(ckpt_dir.glob("serial-*.ckpt")):
                return True
            anc_dir = job_ckpt_dir(self.ckpt_base, job.resumed_from,
                                   job.detector)
            seeds = sorted(anc_dir.glob("serial-*.ckpt"))
            if not seeds:
                return False  # ancestor state evicted since admission
            ckpt_dir.mkdir(parents=True, exist_ok=True)
            for src in seeds:
                tmp = ckpt_dir / (src.name + ".tmp")
                shutil.copyfile(src, tmp)
                os.replace(tmp, ckpt_dir / src.name)
            return True
        except OSError:
            return False  # seeding is an optimization; never fail the job

    def _retain_incremental_state(self, job: Job, ckpt_dir: Path) -> None:
        """After success: index the trace's chain, keep one checkpoint.

        A finished chain-bearing trace becomes a prefix-resume ancestor
        for future uploads, which needs exactly two artifacts: its chunk
        chain in the cache sidecar and its newest checkpoint cursor.
        Everything else (older checkpoint generations) is pruned; traces
        without a computable chain (v1 format) keep the old behaviour of
        dropping the whole checkpoint directory.
        """
        try:
            chain = trace_chain(job.trace_path)
        except (TraceFormatError, OSError):
            chain = None
        if chain and chain.get("chunks") and chain.get("complete"):
            self.cache.put_chain(job.trace_sha, job.detector, chain)
            try:
                _ckpt.CheckpointStore(ckpt_dir, "serial").prune(keep=1)
            except OSError:
                pass
        else:
            shutil.rmtree(ckpt_dir, ignore_errors=True)

    def _retry_or_quarantine(self, job: Job, why: str) -> None:
        if job.attempts > self.retries:
            self._transition(job, "quarantined", reason=f"poison: {why}")
            self._count("serve.jobs.quarantined")
            return
        self._count("serve.jobs.retried")
        delay = backoff_delay(job.attempts, base=self.backoff_base,
                              cap=self.backoff_max)
        self._transition(job, "queued", reason=f"retry: {why}")
        if self.drain_event.wait(delay):
            return  # draining: the job stays queued for the next start
        with self._lock:
            self._queue.put(job.id)

    # -- drain ----------------------------------------------------------------

    def drain(self, timeout: float = 10.0) -> List[str]:
        """Stop accepting work, checkpoint in-flight jobs, stop workers.

        Returns the ids of jobs still live afterwards (queued for the
        next start) — with a functioning engine drain hook that list is
        exactly the interrupted/never-started jobs, all resumable.
        """
        self.drain_event.set()
        deadline = time.monotonic() + timeout
        for t in self._threads:
            t.join(max(0.0, deadline - time.monotonic()))
        _ckpt.install_drain_event(None)
        with self._lock:
            live = [j.id for j in self.jobs.values()
                    if j.state in LIVE_STATES]
            # a worker thread that outlived the join timeout may still
            # be mid-analysis; its journal state stays "running" and
            # recovery requeues it — durably correct either way
            self._compact()
            self.journal.close()
        return sorted(live)

    # -- introspection --------------------------------------------------------

    def list_jobs(self) -> List[dict]:
        with self._lock:
            return [self.jobs[j].to_dict() for j in sorted(self.jobs)]

    def get_job(self, jid: str) -> Optional[dict]:
        with self._lock:
            job = self.jobs.get(jid)
            return job.to_dict() if job is not None else None

    def get_result(self, jid: str) -> Optional[dict]:
        with self._lock:
            job = self.jobs.get(jid)
            if job is None or job.state != "done":
                return None
            return self.cache.get(job.trace_sha, job.detector)

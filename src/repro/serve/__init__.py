"""``repro.serve`` — the crash-safe analysis daemon.

Analysis-as-a-service over the substrate the pipeline already provides:
trace uploads become durable *jobs* (``repro-jobs-v1`` journal,
:mod:`~repro.serve.journal`), a bounded scheduler with per-tenant caps
runs each one as a checkpointed serial analysis
(:mod:`~repro.serve.scheduler`), finished verdicts are content-hash
cached (:mod:`~repro.serve.cache`), and a zero-dependency stdlib HTTP
server fronts the whole thing (:mod:`~repro.serve.server`).

The design center is crash safety, in the same spirit as the paper's
insistence on trustworthy race reports: after a hard daemon kill, a
restart replays the journal, requeues every interrupted job, and each
resumes from its newest ``repro-ckpt-v1`` cursor — final verdicts are
byte-identical to a direct ``repro analyze`` of the same trace.  The
chaos suite under ``tests/serve/`` certifies exactly that, failure by
injected failure.

Quickstart::

    repro serve --state /tmp/svc --port 8787 &
    repro submit mv.trace --server http://127.0.0.1:8787 --wait
    repro jobs --server http://127.0.0.1:8787
"""

from .cache import VerdictCache, trace_sha256
from .client import (
    ServerUnavailable,
    poll_job,
    request,
    resolve_server,
    submit_trace,
    submit_with_retry,
)
from .journal import JOURNAL_MAGIC, JOURNAL_SCHEMA, JobJournal, JournalError
from .scheduler import AdmissionError, Job, Scheduler, job_ckpt_dir
from .server import ReproServer, ServeConfig, serve_forever, write_endpoint

__all__ = [
    "AdmissionError",
    "JOURNAL_MAGIC",
    "JOURNAL_SCHEMA",
    "Job",
    "JobJournal",
    "JournalError",
    "ReproServer",
    "Scheduler",
    "ServeConfig",
    "ServerUnavailable",
    "VerdictCache",
    "job_ckpt_dir",
    "poll_job",
    "request",
    "resolve_server",
    "serve_forever",
    "submit_trace",
    "submit_with_retry",
    "trace_sha256",
    "write_endpoint",
]

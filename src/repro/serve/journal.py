"""The durable job journal: ``repro-jobs-v1``, append-only, crc32'd.

The daemon's source of truth about jobs is this file — *not* the
in-memory queue, which dies with the process.  Every job transition
(submitted, queued, running, done, failed, quarantined) is appended as
one crc32-framed JSON record and fsync'd before the daemon acts on it,
so after a hard ``kill -9`` a restart replays the journal and knows
exactly which jobs existed and how far each had gotten.  Combined with
the per-job ``repro-ckpt-v1`` checkpoints, recovery resumes every
in-flight analysis from its last checkpoint cursor instead of losing or
re-running it from byte zero.

Format (little-endian), in the same family as ``repro-ckpt-v1``::

    8s  magic    "REPROJL1"
    u32 header length
    ...  JSON header: {"schema": "repro-jobs-v1"}
    then zero or more records:
    u32 payload length
    u32 payload crc32
    ...  JSON record payload (utf-8)

Failure model:

* **Torn tail** (daemon killed mid-append): the final record frame is
  incomplete at EOF.  Replay trims it — the transition never happened,
  exactly the semantics of a write that did not commit.
* **Corrupt record** (bit rot, a chaos injector): the crc catches it.
  The damaged suffix is quarantined to ``<journal>.bad`` — never
  silently dropped — and replay keeps the valid prefix.  Jobs whose
  later transitions were lost recover as *queued* and simply re-run;
  deterministic replay makes that safe.
* **Rotation**: the journal grows by one record per transition, so the
  daemon periodically *compacts* it — the live job table is rewritten
  as one record per job into ``<journal>.tmp``, fsync'd, and atomically
  ``os.replace``'d over the old file (the same tmp+fsync+replace
  pattern as trace finalize and checkpoint writes).  A crash anywhere
  during rotation leaves either the old or the new journal, both valid.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path
from typing import List, Optional, Tuple, Union

__all__ = [
    "JOURNAL_MAGIC",
    "JOURNAL_SCHEMA",
    "JobJournal",
    "JournalError",
]

JOURNAL_MAGIC = b"REPROJL1"
JOURNAL_SCHEMA = "repro-jobs-v1"

_U32 = struct.Struct("<I")

#: cap on a single record frame — a length field beyond this is
#: corruption, not a real record
_MAX_RECORD = 1 << 24


class JournalError(Exception):
    """The journal file is structurally unusable (bad magic/header)."""


class JobJournal:
    """One append-only ``repro-jobs-v1`` file of job-state records."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._fh = None
        #: human-readable notes about damage found during replay
        self.quarantined: List[str] = []
        #: records appended since open/compaction (drives rotation)
        self.appended = 0

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            finally:
                self._fh = None

    def _ensure_open(self) -> None:
        if self._fh is None:
            if not self.path.exists():
                self._create_empty()
            self._fh = open(self.path, "ab")

    def _create_empty(self) -> None:
        header = json.dumps({"schema": JOURNAL_SCHEMA},
                            sort_keys=True).encode("utf-8")
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(tmp, "wb") as fh:
            fh.write(JOURNAL_MAGIC)
            fh.write(_U32.pack(len(header)))
            fh.write(header)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)

    # -- appending ------------------------------------------------------------

    def append(self, record: dict) -> None:
        """Durably append one record (write + flush + fsync)."""
        self._ensure_open()
        payload = json.dumps(record, sort_keys=True).encode("utf-8")
        frame = _U32.pack(len(payload)) + _U32.pack(zlib.crc32(payload))
        self._fh.write(frame + payload)
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.appended += 1

    # -- replay ---------------------------------------------------------------

    def replay(self) -> List[dict]:
        """All valid records, oldest first; damage quarantined, not hidden.

        A corrupt record (crc mismatch, implausible length) quarantines
        the entire damaged suffix to ``<journal>.bad`` and truncates the
        journal back to its last valid record, so subsequent appends
        extend a clean file.  A bare torn tail (incomplete final frame,
        the normal artifact of a crash mid-append) is trimmed the same
        way but without a ``.bad`` file — nothing was lost that ever
        committed.
        """
        self.close()
        if not self.path.exists():
            return []
        blob = self.path.read_bytes()
        if blob[:len(JOURNAL_MAGIC)] != JOURNAL_MAGIC:
            raise JournalError(f"{self.path.name}: bad journal magic")
        pos = len(JOURNAL_MAGIC)
        if len(blob) < pos + _U32.size:
            raise JournalError(f"{self.path.name}: truncated journal header")
        (hlen,) = _U32.unpack_from(blob, pos)
        pos += _U32.size
        try:
            header = json.loads(blob[pos:pos + hlen].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise JournalError(f"{self.path.name}: bad header json: {exc}")
        if header.get("schema") != JOURNAL_SCHEMA:
            raise JournalError(
                f"{self.path.name}: unknown schema {header.get('schema')!r}")
        pos += hlen

        records: List[dict] = []
        good_end = pos
        corrupt: Optional[str] = None
        while pos < len(blob):
            rec, new_pos, why = self._read_record(blob, pos)
            if rec is None:
                corrupt = why
                break
            records.append(rec)
            good_end = new_pos
            pos = new_pos
        if pos < len(blob) or corrupt:
            self._trim(blob, good_end, corrupt)
        return records

    def _read_record(self, blob: bytes, pos: int
                     ) -> Tuple[Optional[dict], int, Optional[str]]:
        """One frame at ``pos`` → (record, next_pos, None) or (None, pos, why).

        ``why`` is None for a clean torn tail (incomplete frame at EOF)
        and a description for genuine corruption.
        """
        if pos + 2 * _U32.size > len(blob):
            return None, pos, None  # torn frame header at EOF
        nbytes = _U32.unpack_from(blob, pos)[0]
        crc = _U32.unpack_from(blob, pos + _U32.size)[0]
        if nbytes > _MAX_RECORD:
            return None, pos, f"implausible record length {nbytes}"
        start = pos + 2 * _U32.size
        payload = blob[start:start + nbytes]
        if len(payload) != nbytes:
            return None, pos, None  # torn payload at EOF
        if zlib.crc32(payload) != crc:
            return None, pos, "record crc mismatch"
        try:
            rec = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return None, pos, f"undecodable record: {exc}"
        if not isinstance(rec, dict):
            return None, pos, "record is not an object"
        return rec, start + nbytes, None

    def _trim(self, blob: bytes, good_end: int, corrupt: Optional[str]) -> None:
        """Truncate past the last valid record; quarantine corrupt bytes."""
        if corrupt:
            bad = self.path.with_suffix(self.path.suffix + ".bad")
            with open(bad, "wb") as fh:
                fh.write(blob[good_end:])
            self.quarantined.append(
                f"{corrupt}: {len(blob) - good_end} byte(s) quarantined "
                f"to {bad.name}")
        else:
            self.quarantined.append(
                f"torn tail: {len(blob) - good_end} byte(s) trimmed")
        with open(self.path, "r+b") as fh:
            fh.truncate(good_end)
            fh.flush()
            os.fsync(fh.fileno())

    # -- rotation -------------------------------------------------------------

    def compact(self, records: List[dict], fault_hook=None) -> None:
        """Atomically rewrite the journal as exactly ``records``.

        The caller passes its live job table rendered as one record per
        job; the rewrite goes through ``<journal>.tmp`` + fsync +
        ``os.replace``, so a crash mid-rotation leaves a valid journal
        (old or new, never a hybrid).

        ``fault_hook(stage)`` — test instrumentation only — is invoked
        at the crash-interesting points (``"mid-write"`` with the tmp
        file half written, ``"pre-replace"`` with it complete but not
        yet swapped in, ``"post-replace"`` after the swap): a chaos test
        ``kill -9``'s the process inside the hook and asserts that
        replay sees the old or the new journal, never a torn hybrid.
        """
        self.close()
        header = json.dumps({"schema": JOURNAL_SCHEMA},
                            sort_keys=True).encode("utf-8")
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        with open(tmp, "wb") as fh:
            fh.write(JOURNAL_MAGIC)
            fh.write(_U32.pack(len(header)))
            fh.write(header)
            for i, rec in enumerate(records):
                payload = json.dumps(rec, sort_keys=True).encode("utf-8")
                fh.write(_U32.pack(len(payload)))
                fh.write(_U32.pack(zlib.crc32(payload)))
                fh.write(payload)
                if fault_hook is not None and i == len(records) // 2:
                    fh.flush()
                    fault_hook("mid-write")
            fh.flush()
            os.fsync(fh.fileno())
        if fault_hook is not None:
            fault_hook("pre-replace")
        os.replace(tmp, self.path)
        if fault_hook is not None:
            fault_hook("post-replace")
        self.appended = 0

"""Content-hash verdict cache: identical traces answer instantly.

Analysis is deterministic — the same trace bytes under the same
detector always produce the same canonical verdicts — so the daemon
keys finished results by ``(sha256(trace), detector)`` and serves a
repeat submission from disk without re-running anything.  Entries are
full ``PipelineResult.to_dict()`` payloads (verdicts, forensics,
timeline), which is also exactly what the HTML report renderer eats.

Writes are atomic (tmp + ``os.replace``): a daemon killed mid-store
leaves either a complete entry or none.  Reads treat any undecodable
entry as a miss and quarantine it to ``*.bad`` — a corrupt cache file
must never turn into a wrong verdict.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Optional, Union

__all__ = ["VerdictCache", "trace_sha256"]


def trace_sha256(path: Union[str, Path]) -> str:
    """Streaming sha256 of a trace file's bytes."""
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        for block in iter(lambda: fh.read(1 << 20), b""):
            h.update(block)
    return h.hexdigest()


class VerdictCache:
    """One directory of ``<sha256>-<detector>.json`` result entries."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.dir = Path(directory)
        self.dir.mkdir(parents=True, exist_ok=True)

    def _path(self, sha: str, detector: str) -> Path:
        return self.dir / f"{sha}-{detector}.json"

    def get(self, sha: str, detector: str) -> Optional[dict]:
        path = self._path(sha, detector)
        try:
            with open(path) as fh:
                entry = json.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self._quarantine(path)
            return None
        if not isinstance(entry, dict) or "verdicts" not in entry:
            self._quarantine(path)
            return None
        return entry

    def put(self, sha: str, detector: str, result: dict) -> Path:
        path = self._path(sha, detector)
        tmp = path.with_suffix(".tmp")
        with open(tmp, "w") as fh:
            json.dump(result, fh, sort_keys=True)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        return path

    def _quarantine(self, path: Path) -> None:
        try:
            os.replace(path, path.with_suffix(".json.bad"))
        except OSError:
            pass

"""Content-hash verdict cache: identical traces answer instantly.

Analysis is deterministic — the same trace bytes under the same
detector always produce the same canonical verdicts — so the daemon
keys finished results by ``(sha256(trace), detector)`` and serves a
repeat submission from disk without re-running anything.  Entries are
full ``PipelineResult.to_dict()`` payloads (verdicts, forensics,
timeline), which is also exactly what the HTML report renderer eats.

Next to each entry the scheduler may store a *chain sidecar*
(``<sha>-<detector>.chain.json``): the trace's per-chunk rolling hash
chain (:func:`repro.pipeline.format.trace_chain`).  Sidecars are the
admission-time index for incremental re-analysis — a new upload whose
chain extends a cached trace's chain resumes from that trace's last
checkpoint cursor instead of chunk 0.

The cache is bounded: past ``max_entries`` verdict entries the
least-recently-*used* (hits refresh mtime) are evicted with atomic
deletes — entry first, then sidecar, so a crash mid-evict can strand a
sidecar but never a verdict whose sidecar vanished.  ``on_evict(sha,
detector)`` lets the owner drop per-entry satellite state (checkpoint
directories) and count the eviction.

Writes are atomic (tmp + ``os.replace``): a daemon killed mid-store
leaves either a complete entry or none.  Reads treat any undecodable
entry as a miss and quarantine it to ``*.bad`` — a corrupt cache file
must never turn into a wrong verdict.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Callable, Iterator, Optional, Tuple, Union

__all__ = ["VerdictCache", "trace_sha256"]

#: hex sha256 length — cache file names are ``<sha>-<detector>...``
_SHA_LEN = 64


def trace_sha256(path: Union[str, Path]) -> str:
    """Streaming sha256 of a trace file's bytes."""
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        for block in iter(lambda: fh.read(1 << 20), b""):
            h.update(block)
    return h.hexdigest()


class VerdictCache:
    """One directory of ``<sha256>-<detector>.json`` result entries."""

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        max_entries: Optional[int] = None,
        on_evict: Optional[Callable[[str, str], None]] = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.dir = Path(directory)
        self.dir.mkdir(parents=True, exist_ok=True)
        self.max_entries = max_entries
        self.on_evict = on_evict

    def _path(self, sha: str, detector: str) -> Path:
        return self.dir / f"{sha}-{detector}.json"

    def _chain_path(self, sha: str, detector: str) -> Path:
        return self.dir / f"{sha}-{detector}.chain.json"

    def get(self, sha: str, detector: str) -> Optional[dict]:
        path = self._path(sha, detector)
        try:
            with open(path) as fh:
                entry = json.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self._quarantine(path)
            return None
        if not isinstance(entry, dict) or "verdicts" not in entry:
            self._quarantine(path)
            return None
        try:
            os.utime(path)  # LRU: a hit makes the entry recently used
        except OSError:
            pass
        return entry

    def put(self, sha: str, detector: str, result: dict) -> Path:
        path = self._write_json(self._path(sha, detector), result)
        self._evict()
        return path

    # -- chain sidecars -------------------------------------------------------

    def put_chain(self, sha: str, detector: str, chain: dict) -> Path:
        """Store a trace's rolling-chain index next to its verdicts."""
        return self._write_json(self._chain_path(sha, detector), chain)

    def get_chain(self, sha: str, detector: str) -> Optional[dict]:
        path = self._chain_path(sha, detector)
        try:
            with open(path) as fh:
                chain = json.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self._quarantine(path)
            return None
        if not isinstance(chain, dict) or not chain.get("chunks"):
            self._quarantine(path)
            return None
        return chain

    def iter_chains(self, detector: str) -> Iterator[Tuple[str, dict]]:
        """Yield ``(sha, chain)`` for every stored sidecar of ``detector``.

        Only sidecars whose verdict entry still exists are yielded — an
        evicted or quarantined entry has no checkpoint to resume from,
        so its chain must not nominate it as a prefix ancestor.
        """
        suffix = f"-{detector}.chain.json"
        for path in sorted(self.dir.glob(f"*{suffix}")):
            sha = path.name[:-len(suffix)]
            if len(sha) != _SHA_LEN or not self._path(sha, detector).exists():
                continue
            chain = self.get_chain(sha, detector)
            if chain is not None:
                yield sha, chain

    # -- internals ------------------------------------------------------------

    @staticmethod
    def _write_json(path: Path, payload: dict) -> Path:
        tmp = path.with_suffix(".tmp")
        with open(tmp, "w") as fh:
            json.dump(payload, fh, sort_keys=True)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        return path

    def _entries(self):
        """Verdict entries (not sidecars, not quarantine) with mtimes."""
        out = []
        for path in self.dir.glob("*.json"):
            name = path.name
            if name.endswith(".chain.json") or len(name) <= _SHA_LEN + 1:
                continue
            try:
                mtime = path.stat().st_mtime
            except OSError:
                continue
            stem = name[:-len(".json")]
            sha, detector = stem[:_SHA_LEN], stem[_SHA_LEN + 1:]
            if len(sha) != _SHA_LEN or not detector:
                continue
            out.append((mtime, path, sha, detector))
        out.sort()
        return out

    def _evict(self) -> None:
        if self.max_entries is None:
            return
        entries = self._entries()
        excess = len(entries) - self.max_entries
        for mtime, path, sha, detector in entries[:max(0, excess)]:
            try:
                path.unlink()
            except OSError:
                continue
            try:
                self._chain_path(sha, detector).unlink()
            except OSError:
                pass
            if self.on_evict is not None:
                self.on_evict(sha, detector)

    def _quarantine(self, path: Path) -> None:
        try:
            os.replace(path, Path(str(path) + ".bad"))
        except OSError:
            pass

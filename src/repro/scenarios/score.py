"""Score every detector against the labeled corpus.

Each scenario is recorded once through the interposition/trace pipeline
(:func:`~repro.scenarios.build.record_scenario`); the recorded trace is
then replayed into a fresh instance of every dynamic detector via the
pipeline's shared event dispatch (:func:`repro.pipeline.shard.dispatch_event`),
and the scenario is additionally lowered onto the static checker.  The
scenario's ``RACE_LABELS`` act as the oracle: per (tool, category) the
scorer reports precision, recall and abort-location accuracy — the
fraction of correctly-flagged races whose reported *new* access is the
labeled abort site, i.e. where the tool's ``MPI_Abort`` would fire.

When a tool disagrees with the oracle, the disagreement is classified
against the known defect classes of the differential harness
(``tests/property/test_differential.py``), extended with the classes the
richer corpus can reach; anything unclassified is a
``genuine-regression`` — the signal the regression gate exists for.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from .. import obs
from ..core import OurDetector
from ..detectors import McCChecker, MustRma, ParkMirror, RmaAnalyzerLegacy
from ..pipeline.shard import dispatch_event
from ..staticcheck import check_program
from .build import record_scenario
from .generate import CORPUS_SCHEMA
from .model import Scenario
from .staticlower import lower_scenario

__all__ = [
    "TOOL_NAMES",
    "classify_disagreement",
    "gate_violations",
    "known_legacy_false_positive",
    "score_corpus",
]

#: the paper's tool first, then the comparison zoo, then the static pass
TOOL_NAMES = ("our", "rma_analyzer", "must_rma", "mc_cchecker",
              "park_mirror", "staticcheck")

_DETECTORS = {
    "our": OurDetector,
    "rma_analyzer": RmaAnalyzerLegacy,
    "must_rma": MustRma,
    "mc_cchecker": McCChecker,
    "park_mirror": ParkMirror,
}

#: location pairs a tool reported: (stored "file:line", new "file:line")
_Pairs = List[Tuple[str, str]]


def _dynamic_verdict(sc: Scenario, trace, tool: str) -> Tuple[bool, _Pairs]:
    detector = _DETECTORS[tool]()
    for event in trace.events:
        dispatch_event(detector, event, sc.nranks)
    detector.finalize()
    pairs = [
        (f"{r.stored.debug.filename}:{r.stored.debug.line}",
         f"{r.new.debug.filename}:{r.new.debug.line}")
        for r in detector.reports
    ]
    return bool(detector.reports), pairs


def _static_verdict(sc: Scenario) -> Tuple[bool, _Pairs]:
    report = check_program(lower_scenario(sc))
    pairs = [
        (f"{sc.file}:{r.first_line}", f"{sc.file}:{r.second_line}")
        for r in report.all_findings()
    ]
    return bool(pairs), pairs


def known_legacy_false_positive(sc: Scenario) -> bool:
    """The §5.2 order-insensitivity class, lifted to scenarios.

    Same predicate as the differential harness's
    ``known_legacy_false_positive`` over two-op microbenchmarks: a safe
    scenario whose first site is a local access and whose second is a
    one-sided operation by the same caller (the ``ord`` controls are
    constructed to overlap with at least one write).
    """
    if sc.racy:
        return False
    op0, op1 = sc.ops
    return (
        op0.caller == op1.caller
        and all(not a.is_onesided for a in op0.actions)
        and any(a.is_onesided for a in op1.actions)
    )


def classify_disagreement(sc: Scenario, tool: str, kind: str) -> str:
    """Name the defect class of one (scenario, tool, fp|fn) disagreement.

    Classes extend the PR-3 differential taxonomy; an unknown
    combination is a ``genuine-regression`` and should fail the gate.
    """
    if tool == "rma_analyzer":
        if kind == "fp" and known_legacy_false_positive(sc):
            return "legacy-order-insensitive-fp"
        if kind == "fp" and sc.variant == "excl":
            return "legacy-no-exclusive-lock-model"
        if kind == "fn" and sc.access_shape in ("strided", "overlapping"):
            return "legacy-lower-bound-search-fn"
    elif tool == "park_mirror":
        if kind == "fn" and (sc.race_kind == "local"
                             or sc.access_shape == "hybrid"):
            return "park-window-side-only-fn"
        if kind == "fp" and sc.variant == "excl":
            return "park-no-exclusive-lock-model"
        if kind == "fp" and sc.variant == "atomic":
            return "park-no-atomicity-model"
    elif tool == "staticcheck":
        if kind == "fn" and sc.race_kind == "remote":
            return "static-origin-side-only-fn"
        if kind == "fp" and sc.variant in ("atomic", "excl"):
            return "static-overapprox-cross-process"
    return "genuine-regression"


class _Tally:
    __slots__ = ("tp", "fp", "fn", "tn", "abort_hits")

    def __init__(self) -> None:
        self.tp = self.fp = self.fn = self.tn = self.abort_hits = 0

    def to_dict(self) -> dict:
        tp, fp, fn = self.tp, self.fp, self.fn
        return {
            "tp": tp, "fp": fp, "fn": fn, "tn": self.tn,
            "precision": tp / (tp + fp) if tp + fp else 1.0,
            "recall": tp / (tp + fn) if tp + fn else 1.0,
            "abort_accuracy": self.abort_hits / tp if tp else None,
        }


def score_corpus(
    scenarios: Sequence[Scenario],
    tools: Iterable[str] = TOOL_NAMES,
) -> dict:
    """The machine-readable ``repro-scenarios-v1`` score report."""
    tools = tuple(tools)
    overall: Dict[str, _Tally] = {t: _Tally() for t in tools}
    percat: Dict[str, Dict[str, _Tally]] = {t: {} for t in tools}
    disagreements: List[dict] = []
    seeds = sorted({sc.seed for sc in scenarios})
    racy = sum(1 for sc in scenarios if sc.racy)

    for sc in scenarios:
        trace = record_scenario(sc)
        for tool in tools:
            if tool == "staticcheck":
                verdict, pairs = _static_verdict(sc)
            else:
                verdict, pairs = _dynamic_verdict(sc, trace, tool)
            if verdict and sc.racy:
                outcome = "tp"
            elif verdict:
                outcome = "fp"
            elif sc.racy:
                outcome = "fn"
            else:
                outcome = "tn"
            obs.counter("scenarios.verdict", detector=tool,
                        outcome=outcome).add(1)
            for tally in (overall[tool],
                          percat[tool].setdefault(sc.category, _Tally())):
                setattr(tally, outcome, getattr(tally, outcome) + 1)
                if outcome == "tp" and any(
                    new == sc.labels.abort_location for _, new in pairs
                ):
                    tally.abort_hits += 1
            if outcome in ("fp", "fn"):
                disagreements.append({
                    "scenario": sc.name,
                    "category": sc.category,
                    "variant": sc.variant,
                    "tool": tool,
                    "kind": outcome,
                    "class": classify_disagreement(sc, tool, outcome),
                })

    return {
        "schema": CORPUS_SCHEMA,
        "scenarios": len(scenarios),
        "racy": racy,
        "controls": len(scenarios) - racy,
        "seeds": seeds,
        "tools": {
            t: {
                "overall": overall[t].to_dict(),
                "categories": {
                    cat: tally.to_dict()
                    for cat, tally in sorted(percat[t].items())
                },
            }
            for t in tools
        },
        "disagreements": disagreements,
    }


def gate_violations(
    report: dict,
    *,
    detector: str = "our",
    min_precision: float = 1.0,
    min_recall: float = 1.0,
    include_hybrid: bool = False,
) -> List[str]:
    """Gate check: per-category precision/recall floor for one tool.

    Hybrid categories are excluded by default — the paper's Table-3
    claim (0 FP / 0 FN) is stated for the non-hybrid microbenchmark
    families; pass ``include_hybrid=True`` to gate everything.  Also
    flags every ``genuine-regression`` disagreement of ``detector``.
    """
    tool = report.get("tools", {}).get(detector)
    if tool is None:
        return [f"no scores for detector {detector!r} in report"]
    out: List[str] = []
    for cat, metrics in tool["categories"].items():
        shape = cat.split("/")[1] if cat.count("/") == 2 else ""
        if shape == "hybrid" and not include_hybrid:
            continue
        if metrics["precision"] < min_precision:
            out.append(f"{detector} precision {metrics['precision']:.3f} "
                       f"< {min_precision} on {cat}")
        if metrics["recall"] < min_recall:
            out.append(f"{detector} recall {metrics['recall']:.3f} "
                       f"< {min_recall} on {cat}")
    for d in report.get("disagreements", ()):
        if d["tool"] == detector and d["class"] == "genuine-regression":
            out.append(f"{detector} genuine regression ({d['kind']}) "
                       f"on {d['scenario']}")
    return out

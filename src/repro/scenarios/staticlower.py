"""Lower a scenario onto the :mod:`repro.staticcheck` symbolic IR.

The lowering plays the role of the compiler front-end: each rank's view
of the scenario becomes a straight-line :class:`StaticProgram` over the
symbols ``"buf"`` (its origin buffer) and ``"win"`` (window memory, owned
by the access's target).  Epoch calls map onto the IR's sync vocabulary
— ``lock``/``pscw`` epochs complete one-sided operations exactly like
``lock_all`` epochs do from the issuing process's program-order point of
view, so both lower to ``lock_all``/``unlock_all``.

Vector derived datatypes are lowered block by block (the static pass
knows the datatype layout at compile time), which is what lets the
checker thread a contiguous access through a vector footprint's gaps
without a false alarm.
"""

from __future__ import annotations

from typing import List

from ..intervals import Interval
from ..staticcheck import SOp, StaticProgram
from .model import Action, Scenario

__all__ = ["lower_scenario"]


def _action_sops(a: Action, line: int) -> List[SOp]:
    if a.kind in ("put_vector", "get_vector"):
        kind = "put" if a.kind == "put_vector" else "get"
        return [
            SOp(kind, line, buf="buf",
                buf_range=Interval(a.off + b * a.blocklen,
                                   a.off + (b + 1) * a.blocklen),
                target=a.target,
                win_range=Interval(a.disp + b * a.stride,
                                   a.disp + b * a.stride + a.blocklen))
            for b in range(a.blocks)
        ]
    if a.is_onesided:
        return [SOp(a.kind, line, buf="buf",
                    buf_range=Interval(a.off, a.off + a.count),
                    target=a.target,
                    win_range=Interval(a.disp, a.disp + a.count))]
    symbol = "buf" if a.space == "buf" else "win"
    return [SOp(a.kind, line, buf=symbol,
                buf_range=Interval(a.off, a.off + a.count))]


def lower_scenario(sc: Scenario) -> StaticProgram:
    """The per-rank symbolic op sequences of one scenario."""
    prog = StaticProgram()
    open_op = "fence" if sc.epoch_style == "fence" else "lock_all"
    close_op = "fence" if sc.epoch_style == "fence" else "unlock_all"
    callers = sorted({op.caller for op in sc.ops})
    for rank in callers:
        prog.add(rank, SOp(open_op))
    for op in sc.ops:
        if op.excl:
            prog.add(op.caller, SOp("lock_all"))
        for a in op.actions:
            for sop in _action_sops(a, op.line):
                prog.add(op.caller, sop)
        if op.excl:
            prog.add(op.caller, SOp("unlock_all"))
    for rank in callers:
        prog.add(rank, SOp(close_op))
    return prog

"""Turn a :class:`~repro.scenarios.model.Scenario` into a runnable
simulated-MPI program.

Memory layout: every rank allocates one heap origin buffer (``buf``,
marked may-alias-RMA upfront, as a static alias analysis would) and the
window is ``MPI_Win_allocate``'d.  The two site operations execute in
spec order, strictly separated by a scheduling point — never by MPI
synchronization — so the only ordering facts available to detectors are
program order and the epoch structure.

The epoch skeleton follows the scenario's style:

* ``fence`` — a fence before and after the operation passes;
* ``lock_all`` — every rank brackets the passes with lock_all/unlock_all;
* ``lock`` — each rank takes shared per-target locks for exactly the
  targets it accesses (a rank that load/stores its own exposed window
  memory locks itself, as the separate memory model requires); ``excl``
  site ops instead wrap themselves in their own exclusive lock epoch;
* ``pscw`` — ranks whose window memory is accessed post/wait an
  exposure epoch, ranks issuing one-sided operations start/complete an
  access epoch (posts are scheduled strictly before starts, standing in
  for the post->start handshake).
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, Set, Tuple

from ..intervals import DebugInfo
from ..mpi import BYTE, Buffer, RankContext, World
from ..mpi.interposition import DetectorProtocol
from ..mpi.trace import TraceLog
from .model import Action, Scenario, SiteOp

__all__ = ["build_program", "run_scenario", "record_scenario"]


def _rma_targets(op: SiteOp) -> Set[int]:
    return {a.target for a in op.actions if a.is_onesided}


def _lock_plan(sc: Scenario) -> Dict[int, Set[int]]:
    """rank -> targets it must hold shared locks on (lock style)."""
    plan: Dict[int, Set[int]] = {}
    for op in sc.ops:
        if op.excl:
            continue  # takes its own exclusive per-op epoch
        need = plan.setdefault(op.caller, set())
        need |= _rma_targets(op)
        if any(not a.is_onesided and a.space == "win" for a in op.actions):
            need.add(op.caller)
    return plan


def _pscw_roles(sc: Scenario) -> Tuple[Set[int], Set[int]]:
    """(starters, posters): access-epoch vs exposure-epoch ranks."""
    starters: Set[int] = set()
    posters: Set[int] = set()
    for op in sc.ops:
        starters |= {op.caller} if _rma_targets(op) else set()
        posters |= _rma_targets(op)
        if any(not a.is_onesided and a.space == "win" for a in op.actions):
            posters.add(op.caller)
    return starters, posters


def _run_action(ctx: RankContext, win, buf: Buffer, a: Action,
                debug: DebugInfo) -> None:
    if a.kind == "put":
        ctx.put(win, a.target, a.disp, buf, a.off, a.count, debug=debug)
    elif a.kind == "get":
        ctx.get(win, a.target, a.disp, buf, a.off, a.count, debug=debug)
    elif a.kind == "accumulate":
        ctx.accumulate(win, a.target, a.disp, buf, a.off, a.count,
                       a.accum_op or "sum", debug=debug)
    elif a.kind == "put_vector":
        ctx.put_vector(win, a.target, a.disp, buf, a.off, a.blocks,
                       a.blocklen, a.stride, debug=debug)
    elif a.kind == "get_vector":
        ctx.get_vector(win, a.target, a.disp, buf, a.off, a.blocks,
                       a.blocklen, a.stride, debug=debug)
    elif a.kind in ("load", "store"):
        mem = buf if a.space == "buf" else Buffer(win.region_of(ctx.rank),
                                                  BYTE)
        if a.kind == "load":
            ctx.load(mem, a.off, a.count, debug=debug)
        else:
            ctx.store(mem, a.off, 0x5A, a.count, debug=debug)
    else:  # pragma: no cover - the generator only emits the kinds above
        raise ValueError(f"unknown action kind {a.kind!r}")


def build_program(sc: Scenario) -> Callable[[RankContext], Generator]:
    """The SPMD generator program of one scenario."""

    lock_plan = _lock_plan(sc)
    starters, posters = _pscw_roles(sc)

    def program(ctx: RankContext) -> Generator:
        win = yield ctx.win_allocate("w", sc.win_bytes, BYTE)
        buf = ctx.alloc("buf", sc.buf_bytes, BYTE, rma_hint=True)

        # -- open the epoch structure ---------------------------------
        if sc.epoch_style == "fence":
            yield ctx.win_fence(win)
        elif sc.epoch_style == "lock_all":
            ctx.win_lock_all(win)
            yield  # every epoch is open before any operation runs
        elif sc.epoch_style == "lock":
            for t in sorted(lock_plan.get(ctx.rank, ())):
                ctx.win_lock(win, t)
            yield
        else:  # pscw: posts strictly before the matching starts
            if ctx.rank in posters:
                ctx.win_post(win, group=sorted(starters))
            yield
            if ctx.rank in starters:
                ctx.win_start(win, group=sorted(posters))
            yield

        # -- the two site operations, strictly ordered ----------------
        for op in sc.ops:
            if ctx.rank == op.caller:
                debug = DebugInfo(sc.file, op.line)
                if op.excl:
                    (t,) = _rma_targets(op)
                    ctx.win_lock(win, t, exclusive=True)
                for a in op.actions:
                    _run_action(ctx, win, buf, a, debug)
                if op.excl:
                    ctx.win_unlock(win, t)
            yield  # scheduling point only - no MPI synchronization

        # -- close the epoch structure --------------------------------
        if sc.epoch_style == "fence":
            yield ctx.win_fence(win)
        elif sc.epoch_style == "lock_all":
            ctx.win_unlock_all(win)
        elif sc.epoch_style == "lock":
            for t in sorted(lock_plan.get(ctx.rank, ())):
                ctx.win_unlock(win, t)
        else:  # pscw: completes strictly before the matching waits
            if ctx.rank in starters:
                ctx.win_complete(win)
            yield
            if ctx.rank in posters:
                ctx.win_wait(win)
        yield ctx.win_free(win)

    return program


def run_scenario(
    sc: Scenario, detector: DetectorProtocol
) -> Tuple[bool, World]:
    """Run one scenario under one live detector."""
    world = World(sc.nranks, [detector])
    world.run(build_program(sc))
    return bool(getattr(detector, "reports", [])), world


def record_scenario(sc: Scenario) -> TraceLog:
    """Record one scenario's trace through the interposition pipeline."""
    world = World(sc.nranks, [], trace=True)
    world.run(build_program(sc))
    return world.trace_log

"""Seeded, ground-truth-labeled MPI-RMA scenario corpus + scoring harness.

The paper validates its detector on a fixed 154-code microbenchmark
suite; this package generalizes that into an unbounded labeled corpus
(RMARaceBench-style) that serves as the standing regression gate for
all detector work:

* :mod:`repro.scenarios.model` — the scenario/label data model;
* :mod:`repro.scenarios.generate` — the seeded composer over the axes
  epoch style x access shape x race kind x rank count;
* :mod:`repro.scenarios.build` — scenarios as runnable simulated-MPI
  programs (record/replay through the existing pipeline);
* :mod:`repro.scenarios.staticlower` — the :mod:`repro.staticcheck`
  front-end for scenarios;
* :mod:`repro.scenarios.score` — precision/recall/abort-location
  scoring of every detector, with disagreement classification.

CLI: ``repro scenarios generate|score|gate``.
"""

from .build import build_program, record_scenario, run_scenario
from .generate import (
    CORPUS_SCHEMA,
    compose_scenario,
    corpus_to_jsonl,
    generate_corpus,
    load_corpus,
)
from .model import (
    ACCESS_SHAPES,
    Action,
    EPOCH_STYLES,
    RACE_KINDS,
    RaceLabels,
    Scenario,
    SiteOp,
)
from .score import (
    TOOL_NAMES,
    classify_disagreement,
    gate_violations,
    known_legacy_false_positive,
    score_corpus,
)
from .staticlower import lower_scenario

__all__ = [
    "ACCESS_SHAPES",
    "Action",
    "CORPUS_SCHEMA",
    "EPOCH_STYLES",
    "RACE_KINDS",
    "RaceLabels",
    "Scenario",
    "SiteOp",
    "TOOL_NAMES",
    "build_program",
    "classify_disagreement",
    "compose_scenario",
    "corpus_to_jsonl",
    "gate_violations",
    "generate_corpus",
    "known_legacy_false_positive",
    "load_corpus",
    "lower_scenario",
    "record_scenario",
    "run_scenario",
    "score_corpus",
]

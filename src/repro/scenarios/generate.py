"""Seeded composition of the labeled scenario corpus.

:func:`compose_scenario` deterministically maps ``(seed, index)`` to one
labeled scenario: the axis combination is chosen by cycling the fixed
cartesian product ``EPOCH_STYLES x ACCESS_SHAPES x RACE_KINDS`` (kind
cycles fastest, so every third scenario is a known-negative control) and
all remaining free choices — rank count, geometry, operation pair,
control variant — are drawn from a ``random.Random`` seeded with
``f"{seed}:{index}"``.  No global state, no set/dict iteration: the same
seed always produces the byte-identical corpus.

The negative controls are the interesting half of the corpus.  Beyond
plain disjoint accesses they include the defect classes that separate
the detectors under comparison:

* ``ord`` — a local access *followed by* a one-sided operation on the
  same bytes of the same process (safe by program order, §5.2); the
  legacy RMA-Analyzer's order-insensitive predicate flags it;
* ``excl`` — two conflicting puts serialized by exclusive
  ``MPI_Win_lock`` epochs; tools without a lock model flag it;
* ``atomic`` — two same-op ``MPI_Accumulate`` calls on the same range
  (element-wise atomic, §2.1);
* ``readshare`` — two puts reading one shared origin buffer;
* ``gap`` — a contiguous access threaded through the holes of a vector
  derived-datatype footprint (byte-precision stress).
"""

from __future__ import annotations

import itertools
import random
from typing import List, Sequence, Tuple

from .. import obs
from .model import (
    ACCESS_SHAPES,
    Action,
    EPOCH_STYLES,
    RACE_KINDS,
    RaceLabels,
    Scenario,
    SiteOp,
)

__all__ = [
    "CORPUS_SCHEMA",
    "compose_scenario",
    "corpus_to_jsonl",
    "generate_corpus",
    "load_corpus",
]

CORPUS_SCHEMA = "repro-scenarios-v1"
WIN_BYTES = 128
BUF_BYTES = 128
LINE0, LINE1 = 10, 20
_PRIV_DISP = (64, 96)  # window ranges private to op 0 / op 1
_PRIV_OFF = (64, 96)  # buffer ranges private to op 0 / op 1

#: fixed axis iteration order (kind cycles fastest)
_COMBOS: Tuple[Tuple[str, str, str], ...] = tuple(
    itertools.product(EPOCH_STYLES, ACCESS_SHAPES, RACE_KINDS)
)

_MPI_NAME = {
    "put": "MPI_Put", "get": "MPI_Get", "accumulate": "MPI_Accumulate",
    "put_vector": "MPI_Put", "get_vector": "MPI_Get",
    "load": "LOAD", "store": "STORE",
}
#: ACCESS_SET entry of an op at the *window* conflict site
_WIN_SITE = {
    "put": "rma write", "accumulate": "rma write", "put_vector": "rma write",
    "get": "rma read", "get_vector": "rma read",
    "load": "load", "store": "store",
}
#: ACCESS_SET entry of an op at the *origin buffer* conflict site
_BUF_SITE = {
    "get": "rma write", "get_vector": "rma write",
    "put": "rma read", "put_vector": "rma read", "accumulate": "rma read",
    "load": "load", "store": "store",
}

_CONSISTENCY = {
    "fence": ("MPI_Win_fence",),
    "lock": ("MPI_Win_lock", "MPI_Win_unlock"),
    "lock_all": ("MPI_Win_lock_all", "MPI_Win_unlock_all"),
    "pscw": ("MPI_Win_post", "MPI_Win_start",
             "MPI_Win_complete", "MPI_Win_wait"),
}

_REMOTE_PAIRS = (("put", "put"), ("put", "get"), ("get", "put"),
                 ("accumulate", "put"), ("put", "accumulate"))
_LOCAL_PAIRS = (("get", "get"), ("get", "put"), ("put", "get"))
_HYBRID_REMOTE_PAIRS = (("put", "store"), ("put", "load"), ("get", "store"))
_HYBRID_LOCAL_PAIRS = (("get", "load"), ("get", "store"), ("put", "store"))
_ORD_PAIRS = (("load", "get"), ("store", "put"), ("store", "get"))


def _rma(kind: str, target: int, disp: int, off: int, count: int,
         accum_op: str = None) -> Action:
    return Action(kind=kind, off=off, count=count, target=target, disp=disp,
                  accum_op=accum_op)


def _vec(kind: str, target: int, disp: int, off: int,
         blocks: int, blocklen: int, stride: int) -> Action:
    return Action(kind=kind, off=off, count=blocks * blocklen, target=target,
                  disp=disp, blocks=blocks, blocklen=blocklen, stride=stride)


def _loc(kind: str, off: int, count: int, space: str = "buf") -> Action:
    return Action(kind=kind, off=off, count=count, space=space)


def compose_scenario(seed: int, index: int) -> Scenario:
    """Deterministically compose labeled scenario ``index`` of ``seed``."""
    style, shape, kind = _COMBOS[index % len(_COMBOS)]
    rng = random.Random(f"{seed}:{index}")
    nranks = rng.randint(2, 8)
    origin, target = 0, 1
    origin2 = 2 if nranks >= 3 else target  # 2 ranks: self-targeting RMA
    count = rng.choice((4, 8))
    d0 = rng.choice((0, 8, 16)) if shape == "strided" \
        else rng.choice((0, 2, 8, 18, 24))
    o0 = rng.choice((0, 8, 16))
    L, S = count // 2, count  # vector block length / stride

    variant = "racy"
    excl = False
    if kind == "remote":
        if shape == "hybrid":
            k0, k1 = rng.choice(_HYBRID_REMOTE_PAIRS)
            a0 = (_rma(k0, target, d0, _PRIV_OFF[0], count),)
            a1 = (_loc(k1, d0, count, space="win"),)
            callers = (origin, target)
            sites = (_WIN_SITE[k0], _WIN_SITE[k1])
        elif shape == "strided":
            k0, k1 = rng.choice((("put_vector", "put"), ("put_vector", "get"),
                                 ("get_vector", "put")))
            a0 = (_vec(k0, target, d0, _PRIV_OFF[0], 3, L, S),)
            a1 = (_rma(k1, target, d0 + S, _PRIV_OFF[1], L),)
            callers = (origin, origin2)
            sites = (_WIN_SITE[k0], _WIN_SITE[k1])
        else:  # adjacent / overlapping
            k0, k1 = rng.choice(_REMOTE_PAIRS)
            d1 = d0 if shape == "adjacent" else d0 + count // 2
            a0 = (_rma(k0, target, d0, _PRIV_OFF[0], count,
                       "sum" if k0 == "accumulate" else None),)
            a1 = (_rma(k1, target, d1, _PRIV_OFF[1], count,
                       "sum" if k1 == "accumulate" else None),)
            callers = (origin, origin2)
            sites = (_WIN_SITE[k0], _WIN_SITE[k1])
    elif kind == "local":
        callers = (origin, origin)
        if shape == "hybrid":
            k0, k1 = rng.choice(_HYBRID_LOCAL_PAIRS)
            a0 = (_rma(k0, target, _PRIV_DISP[0], o0, count),)
            a1 = (_loc(k1, o0, count),)
            sites = (_BUF_SITE[k0], _BUF_SITE[k1])
        elif shape == "strided":
            k0 = "get"
            k1 = rng.choice(("get", "put"))
            # a strided local footprint: one loop of gets whose buffer
            # offsets stride while the window side stays contiguous
            a0 = tuple(_rma("get", target, d0 + b * L, o0 + b * S, L)
                       for b in range(3))
            a1 = (_rma(k1, target, _PRIV_DISP[1], o0 + S, L),)
            sites = (_BUF_SITE[k0], _BUF_SITE[k1])
        else:  # adjacent / overlapping
            k0, k1 = rng.choice(_LOCAL_PAIRS)
            o1 = o0 if shape == "adjacent" else o0 + count // 2
            a0 = (_rma(k0, target, _PRIV_DISP[0], o0, count),)
            a1 = (_rma(k1, target, _PRIV_DISP[1], o1, count),)
            sites = (_BUF_SITE[k0], _BUF_SITE[k1])
    else:  # known-negative controls
        if shape == "hybrid":
            variant = rng.choice(("ord", "ord", "disjoint"))
            if variant == "ord":
                k0, k1 = rng.choice(_ORD_PAIRS)
                a0 = (_loc(k0, o0, count),)
                a1 = (_rma(k1, target, _PRIV_DISP[1], o0, count),)
                callers = (origin, origin)
                sites = (_BUF_SITE[k0], _BUF_SITE[k1])
            else:
                k0, k1 = "put", "store"
                a0 = (_rma(k0, target, d0, _PRIV_OFF[0], count),)
                a1 = (_loc(k1, d0 + count, count, space="win"),)
                callers = (origin, target)
                sites = (_WIN_SITE[k0], _WIN_SITE[k1])
        elif shape == "strided":
            variant = "gap"
            k0, k1 = "put_vector", rng.choice(("put", "get"))
            a0 = (_vec(k0, target, d0, _PRIV_OFF[0], 3, L, S),)
            a1 = (_rma(k1, target, d0 + L, _PRIV_OFF[1], S - L),)
            callers = (origin, origin2)
            sites = (_WIN_SITE[k0], _WIN_SITE[k1])
        else:  # adjacent / overlapping
            options = ["disjoint", "atomic", "readshare"]
            if style == "lock":
                options.append("excl")
            variant = rng.choice(options)
            if variant == "atomic":
                k0 = k1 = "accumulate"
                a0 = (_rma(k0, target, d0, _PRIV_OFF[0], count, "sum"),)
                a1 = (_rma(k1, target, d0, _PRIV_OFF[1], count, "sum"),)
                callers = (origin, origin2)
                sites = (_WIN_SITE[k0], _WIN_SITE[k1])
            elif variant == "readshare":
                k0 = k1 = "put"
                a0 = (_rma(k0, target, _PRIV_DISP[0], o0, count),)
                a1 = (_rma(k1, target, _PRIV_DISP[1], o0, count),)
                callers = (origin, origin)
                sites = (_BUF_SITE[k0], _BUF_SITE[k1])
            elif variant == "excl":
                k0 = k1 = "put"
                excl = True
                a0 = (_rma(k0, target, d0, _PRIV_OFF[0], count),)
                a1 = (_rma(k1, target, d0, _PRIV_OFF[1], count),)
                callers = (origin, origin2)
                sites = (_WIN_SITE[k0], _WIN_SITE[k1])
            else:  # disjoint: touching blocks (adjacent) or a gap
                k0, k1 = rng.choice(_REMOTE_PAIRS)
                d1 = d0 + count if shape == "adjacent" else d0 + count + 8
                a0 = (_rma(k0, target, d0, _PRIV_OFF[0], count,
                           "sum" if k0 == "accumulate" else None),)
                a1 = (_rma(k1, target, d1, _PRIV_OFF[1], count,
                           "sum" if k1 == "accumulate" else None),)
                callers = (origin, origin2)
                sites = (_WIN_SITE[k0], _WIN_SITE[k1])

    name = f"s{index:04d}_{style}_{shape}_{kind}_{variant}"
    file = f"{name}.c"
    op0 = SiteOp(callers[0], LINE0, _MPI_NAME[k0], a0, excl)
    op1 = SiteOp(callers[1], LINE1, _MPI_NAME[k1], a1, excl)
    racy = kind != "none"
    race_pair = (
        (f"{op0.mpi_name}@{file}:{LINE0}", f"{op1.mpi_name}@{file}:{LINE1}")
        if racy else ()
    )
    consistency = (
        ("MPI_Win_lock(MPI_LOCK_EXCLUSIVE)", "MPI_Win_unlock")
        if variant == "excl" else _CONSISTENCY[style]
    )
    sync = ("MPI_Win_allocate", "MPI_Win_free")
    desc = (
        f"{shape} {kind} conflict under {style}: "
        f"{op0.mpi_name} vs {op1.mpi_name}"
        if racy else
        f"race-free {variant} control under {style}: "
        f"{op0.mpi_name} vs {op1.mpi_name}"
    )
    labels = RaceLabels(
        race_kind=kind, access_set=sites, race_pair=race_pair,
        consistency_calls=consistency, sync_calls=sync, nprocs=nranks,
        abort_location=f"{file}:{LINE1}" if racy else "",
        description=desc,
    )
    return Scenario(
        name=name, index=index, seed=seed, epoch_style=style,
        access_shape=shape, race_kind=kind, variant=variant, nranks=nranks,
        win_bytes=WIN_BYTES, buf_bytes=BUF_BYTES, ops=(op0, op1),
        labels=labels,
    )


def generate_corpus(seed: int, n: int) -> List[Scenario]:
    """The first ``n`` scenarios of ``seed``, in index order."""
    out: List[Scenario] = []
    for i in range(n):
        sc = compose_scenario(seed, i)
        obs.counter("scenarios.generated", category=sc.category).add(1)
        out.append(sc)
    return out


def corpus_to_jsonl(scenarios: Sequence[Scenario]) -> str:
    """Canonical JSONL encoding: one scenario per line, sorted keys."""
    return "".join(sc.to_json() + "\n" for sc in scenarios)


def load_corpus(path) -> List[Scenario]:
    """Read a corpus written by ``repro scenarios generate``."""
    out: List[Scenario] = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                out.append(Scenario.from_json(line))
            except (KeyError, TypeError, ValueError) as exc:
                raise ValueError(
                    f"{path}:{lineno}: not a {CORPUS_SCHEMA} scenario "
                    f"record ({exc})"
                ) from exc
    return out

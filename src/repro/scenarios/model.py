"""Data model of the labeled scenario corpus.

A *scenario* is a small, fully-determined MPI-RMA program over one
window and one origin buffer per rank, described by two *site
operations* (the potentially-conflicting pair) plus the epoch structure
that surrounds them.  Scenarios are composed by
:mod:`repro.scenarios.generate` along four orthogonal axes:

* **epoch style** — ``fence`` (active target), ``lock`` (per-target
  passive locks), ``lock_all`` (the paper's main mode) or ``pscw``
  (general active target: post/start/complete/wait);
* **access shape** — ``adjacent`` (touching but contiguous blocks),
  ``overlapping`` (partially shifted blocks), ``strided`` (a vector
  derived-datatype footprint against a contiguous block) or ``hybrid``
  (a one-sided operation against a plain load/store);
* **race kind** — ``local`` (the conflict lives in the origin's buffer),
  ``remote`` (it lives in the target's window) or ``none`` (a
  known-negative control: disjoint, program-ordered, exclusive-lock
  serialized, atomic-accumulate or read-shared);
* **rank count** — 2..8 simulated processes.

Every scenario carries RMARaceBench-style ``RACE_LABELS`` ground truth
(:class:`RaceLabels`), which the scoring harness treats as the oracle.
The model is plain data — JSON round-trippable with a canonical byte
encoding so that a seeded corpus is byte-identical across runs.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Optional, Tuple

__all__ = [
    "ACCESS_SHAPES",
    "Action",
    "EPOCH_STYLES",
    "RACE_KINDS",
    "RaceLabels",
    "Scenario",
    "SiteOp",
]

EPOCH_STYLES = ("fence", "lock", "lock_all", "pscw")
ACCESS_SHAPES = ("adjacent", "overlapping", "strided", "hybrid")
RACE_KINDS = ("local", "remote", "none")


@dataclass(frozen=True)
class Action:
    """One primitive call of a site operation.

    ``kind`` is one of ``put | get | accumulate | put_vector |
    get_vector | load | store``.  One-sided kinds use ``target``/``disp``
    for the window side and ``off``/``count`` for the caller's origin
    buffer; ``load``/``store`` touch ``off``/``count`` bytes of the
    caller's buffer (``space="buf"``) or of the caller's own window
    memory (``space="win"``).
    """

    kind: str
    off: int
    count: int
    space: str = "buf"
    target: Optional[int] = None
    disp: Optional[int] = None
    accum_op: Optional[str] = None
    # vector derived-datatype shape (put_vector / get_vector only)
    blocks: Optional[int] = None
    blocklen: Optional[int] = None
    stride: Optional[int] = None

    @property
    def is_onesided(self) -> bool:
        return self.kind in ("put", "get", "accumulate",
                             "put_vector", "get_vector")


@dataclass(frozen=True)
class SiteOp:
    """One of the two potentially-conflicting program sites.

    All actions of a site share one source line (the site *is* one
    source statement; a strided local footprint is one loop).  ``excl``
    wraps the site in its own exclusive ``MPI_Win_lock`` epoch — only
    meaningful under the ``lock`` epoch style.
    """

    caller: int
    line: int
    mpi_name: str  # "MPI_Put" | "MPI_Get" | "MPI_Accumulate" | "LOAD" | "STORE"
    actions: Tuple[Action, ...]
    excl: bool = False


@dataclass(frozen=True)
class RaceLabels:
    """RMARaceBench-style ground-truth metadata (the oracle)."""

    race_kind: str  # "local" | "remote" | "none"
    access_set: Tuple[str, ...]  # e.g. ("rma write", "load")
    race_pair: Tuple[str, ...]  # ("MPI_Put@name.c:10", "STORE@name.c:20")
    consistency_calls: Tuple[str, ...]
    sync_calls: Tuple[str, ...]
    nprocs: int
    abort_location: str  # "name.c:20"; "" for race-free controls
    description: str


@dataclass(frozen=True)
class Scenario:
    """One labeled, runnable MPI-RMA program."""

    name: str
    index: int
    seed: int
    epoch_style: str
    access_shape: str
    race_kind: str
    variant: str  # racy | disjoint | ord | excl | atomic | readshare | gap
    nranks: int
    win_bytes: int
    buf_bytes: int
    ops: Tuple[SiteOp, SiteOp]
    labels: RaceLabels

    @property
    def file(self) -> str:
        return f"{self.name}.c"

    @property
    def category(self) -> str:
        """The scoring bucket: style/shape/kind."""
        return f"{self.epoch_style}/{self.access_shape}/{self.race_kind}"

    @property
    def racy(self) -> bool:
        return self.race_kind != "none"

    # -- canonical serialization ------------------------------------------

    def to_dict(self) -> dict:
        return asdict(self)

    def to_json(self) -> str:
        """Canonical one-line encoding (sorted keys, no whitespace)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_dict(cls, d: dict) -> "Scenario":
        ops = tuple(
            SiteOp(
                caller=o["caller"], line=o["line"], mpi_name=o["mpi_name"],
                actions=tuple(Action(**a) for a in o["actions"]),
                excl=o.get("excl", False),
            )
            for o in d["ops"]
        )
        labels = dict(d["labels"])
        for key in ("access_set", "race_pair", "consistency_calls",
                    "sync_calls"):
            labels[key] = tuple(labels[key])
        return cls(
            name=d["name"], index=d["index"], seed=d["seed"],
            epoch_style=d["epoch_style"], access_shape=d["access_shape"],
            race_kind=d["race_kind"], variant=d["variant"],
            nranks=d["nranks"], win_bytes=d["win_bytes"],
            buf_bytes=d["buf_bytes"], ops=ops,  # type: ignore[arg-type]
            labels=RaceLabels(**labels),
        )

    @classmethod
    def from_json(cls, line: str) -> "Scenario":
        return cls.from_dict(json.loads(line))

"""The two-operation microbenchmark model.

The paper validates the detectors on a suite of small MPI-RMA programs,
each combining **two operations** while varying (§5.2):

* the operations themselves (``MPI_Get``, ``MPI_Put``, ``Load``,
  ``Store``),
* their order,
* their callers (the first origin, the target, a second origin),
* the location accessed by both ("in window" / "out window").

This module defines the vocabulary: an :class:`OpInst` is one operation
bound to a caller (and target), a :class:`SiteSpec` picks which of each
op's memory *slots* coincide, and :class:`CodeSpec` is a full runnable
code with a semantically derived ground-truth verdict.

Slots: a one-sided operation touches two locations — its local buffer
(``buf``) and the target's window range (``win``); a local operation
touches one buffer.  A code makes exactly one slot of each op land on
the same bytes; everything else is kept disjoint.

Ground truth follows the paper's definition (§2.2) plus the program
-order refinement (§5.2): the pair races iff the two slot accesses
overlap, at least one is RMA, at least one is a WRITE, and they are not
ordered — the only intra-epoch ordering being "a local access by a
process happens before the one-sided calls that process issues later".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..intervals import AccessType

__all__ = [
    "OpKind",
    "Rank",
    "OpInst",
    "SlotKind",
    "Placement",
    "SiteSpec",
    "CodeSpec",
    "slot_access_type",
    "ground_truth",
]

ORIGIN1, TARGET, ORIGIN2 = 0, 1, 2
Rank = int


class OpKind(enum.Enum):
    GET = "get"
    PUT = "put"
    LOAD = "load"
    STORE = "store"

    @property
    def is_onesided(self) -> bool:
        return self in (OpKind.GET, OpKind.PUT)


class SlotKind(enum.Enum):
    BUF = "buf"  # the op's local buffer (one-sided origin side, or the
    #              single operand of Load/Store)
    WIN = "win"  # the window range a one-sided op reaches


class Placement(enum.Enum):
    """Where the coinciding *buffer* lives (window sites are always 'in')."""

    IN_WINDOW = "inwindow"
    OUT_WINDOW = "outwindow"


@dataclass(frozen=True)
class OpInst:
    """One operation bound to its caller (and, if one-sided, its target)."""

    kind: OpKind
    caller: Rank
    target: Optional[Rank] = None  # one-sided only

    def __post_init__(self) -> None:
        if self.kind.is_onesided and self.target is None:
            raise ValueError(f"{self.kind} needs a target")
        if not self.kind.is_onesided and self.target is not None:
            raise ValueError(f"{self.kind} takes no target")

    @property
    def is_self_targeting(self) -> bool:
        return self.kind.is_onesided and self.target == self.caller

    def slot_owner(self, slot: SlotKind) -> Rank:
        """Which rank's memory a slot lives in."""
        if slot is SlotKind.BUF:
            return self.caller
        assert self.kind.is_onesided and self.target is not None
        return self.target

    def __str__(self) -> str:
        if self.kind.is_onesided:
            return f"{self.kind.value}({self.caller}->{self.target})"
        return f"{self.kind.value}({self.caller})"


def slot_access_type(op: OpInst, slot: SlotKind) -> AccessType:
    """Access type an operation performs on one of its slots (§2.1 table)."""
    if op.kind is OpKind.GET:
        return AccessType.RMA_WRITE if slot is SlotKind.BUF else AccessType.RMA_READ
    if op.kind is OpKind.PUT:
        return AccessType.RMA_READ if slot is SlotKind.BUF else AccessType.RMA_WRITE
    if slot is not SlotKind.BUF:
        raise ValueError(f"{op.kind} has no {slot} slot")
    return (
        AccessType.LOCAL_READ if op.kind is OpKind.LOAD else AccessType.LOCAL_WRITE
    )


@dataclass(frozen=True)
class SiteSpec:
    """Which slot of each op coincides, and where that memory lives."""

    first_slot: SlotKind
    second_slot: SlotKind
    owner: Rank
    placement: Placement

    def __post_init__(self) -> None:
        if (
            self.placement is Placement.OUT_WINDOW
            and SlotKind.WIN in (self.first_slot, self.second_slot)
        ):
            raise ValueError("window slots are always in-window")


@dataclass(frozen=True)
class CodeSpec:
    """One microbenchmark: two ops + the shared site + ground truth.

    ``disjoint=True`` marks a twin whose two operations use the same
    slots but *different* memory locations — always safe; it exercises
    the detectors' precision on non-overlapping accesses.
    """

    name: str
    first: OpInst
    second: OpInst
    site: SiteSpec
    racy: bool
    disjoint: bool = False
    sync_mode: str = "lock_all"  # "lock_all" | "fence"

    @property
    def expected(self) -> str:
        return "race" if self.racy else "safe"


def ground_truth(first: OpInst, second: OpInst, site: SiteSpec) -> bool:
    """Does this code contain a data race?  Derived, not tabulated.

    Race (§2.2): overlapping accesses, >=1 RMA, >=1 WRITE, unordered.
    The only intra-epoch order is program order *up to the issue point*:
    a local access by rank r is ordered before operations r issues later;
    everything else (one-sided vs one-sided of any rank, one-sided vs a
    later local access of the issuer, anything cross-process) is
    concurrent until the epoch's synchronization.
    """
    t1 = slot_access_type(first, site.first_slot)
    t2 = slot_access_type(second, site.second_slot)
    if not (t1.is_rma or t2.is_rma):
        return False
    if not (t1.is_write or t2.is_write):
        return False
    if first.caller == second.caller:
        if t1.is_local and not t2.is_local:
            return False  # local completed before the one-sided was issued
        if t1.is_local and t2.is_local:
            return False  # plain sequential code
    return True

"""Turn a :class:`CodeSpec` into a runnable simulated-MPI program.

Memory conventions (mirroring how the paper's C microbenchmarks are
written):

* codes whose two operations are both issued by ORIGIN 1 (the ``ll_*``
  family) declare their window memory as a local array and expose it
  with ``MPI_Win_create`` — i.e. a **stack** array, which is what makes
  MUST-RMA miss the ``ll_*_inwindow_*`` races (Table 2, §5.2);
* every other code allocates its window with ``MPI_Win_allocate``
  (heap);
* out-of-window shared buffers are ``malloc``'d (heap) and visible to
  all detectors.

Each code runs on three ranks.  Operations execute in spec order, the
second strictly after the first (also across ranks), separated only by
a scheduling point — *not* by any MPI synchronization, so the ordering
facts detectors may use are exactly program order and the epoch
structure.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, Tuple

from ..intervals import DebugInfo
from ..mpi import BYTE, Buffer, RankContext, World
from ..mpi.interposition import DetectorProtocol
from .model import ORIGIN1, CodeSpec, OpInst, OpKind, Placement, SlotKind

__all__ = ["NRANKS", "build_program", "run_code"]

NRANKS = 3
WIN_BYTES = 64
N = 8  # bytes touched by every access
_SHARED_DISP = (8, 24)  # primary site; secondary site for disjoint twins
_PRIV_DISP = (40, 48)  # private window ranges of op 0 / op 1


def _is_ll_family(spec: CodeSpec) -> bool:
    return spec.first.caller == ORIGIN1 and spec.second.caller == ORIGIN1


def _shared_slot(spec: CodeSpec, i: int) -> SlotKind:
    return spec.site.first_slot if i == 0 else spec.site.second_slot


def build_program(spec: CodeSpec) -> Callable[[RankContext], Generator]:
    """The SPMD generator program for one microbenchmark code."""

    site = spec.site
    ll_family = _is_ll_family(spec)

    def program(ctx: RankContext) -> Generator:
        # window: stack-backed Win_create for ll codes, Win_allocate else
        if ll_family:
            backing = ctx.stack_alloc("winmem", WIN_BYTES, BYTE)
            win = yield ctx.win_create("w", backing)
        else:
            win = yield ctx.win_allocate("w", WIN_BYTES, BYTE)

        # shared out-of-window buffers (malloc'd) on the site owner
        shared_heap: Dict[int, Buffer] = {}
        if site.placement is Placement.OUT_WINDOW and ctx.rank == site.owner:
            n_sites = 2 if spec.disjoint else 1
            for j in range(n_sites):
                shared_heap[j] = ctx.alloc(f"shared{j}", N, BYTE, rma_hint=True)

        # private local buffers for one-sided ops whose BUF slot is not shared
        priv: Dict[int, Buffer] = {}
        for i, op in enumerate((spec.first, spec.second)):
            if (
                op.kind.is_onesided
                and ctx.rank == op.caller
                and _shared_slot(spec, i) is not SlotKind.BUF
            ):
                priv[i] = ctx.alloc(f"priv{i}", N, BYTE, rma_hint=True)

        if spec.sync_mode == "fence":
            yield ctx.win_fence(win)
        else:
            ctx.win_lock_all(win)
            yield  # every rank's epoch is open before any operation runs
        for i, op in enumerate((spec.first, spec.second)):
            if ctx.rank == op.caller:
                _execute(ctx, win, spec, i, op, shared_heap, priv)
            yield  # strict inter-operation ordering, no MPI sync
        if spec.sync_mode == "fence":
            yield ctx.win_fence(win)
        else:
            ctx.win_unlock_all(win)
        yield ctx.win_free(win)

    return program


def _shared_buffer(
    ctx: RankContext,
    win,
    spec: CodeSpec,
    j: int,
    shared_heap: Dict[int, Buffer],
) -> Tuple[Buffer, int]:
    """(buffer, element offset) of shared site ``j`` on the owner rank."""
    if spec.site.placement is Placement.OUT_WINDOW:
        return shared_heap[j], 0
    return Buffer(win.region_of(spec.site.owner), BYTE), _SHARED_DISP[j]


def _execute(
    ctx: RankContext,
    win,
    spec: CodeSpec,
    i: int,
    op: OpInst,
    shared_heap: Dict[int, Buffer],
    priv: Dict[int, Buffer],
) -> None:
    slot = _shared_slot(spec, i)
    j = i if spec.disjoint else 0
    debug = DebugInfo(f"{spec.name}.c", 10 + i)

    if not op.kind.is_onesided:
        buf, off = _shared_buffer(ctx, win, spec, j, shared_heap)
        if op.kind is OpKind.LOAD:
            ctx.load(buf, off, N, debug=debug)
        else:
            ctx.store(buf, off, i + 1, N, debug=debug)
        return

    if slot is SlotKind.BUF:
        buf, off = _shared_buffer(ctx, win, spec, j, shared_heap)
        disp = _PRIV_DISP[i]
    else:
        buf, off = priv[i], 0
        disp = _SHARED_DISP[j]
    assert op.target is not None
    if op.kind is OpKind.GET:
        ctx.get(win, op.target, disp, buf, off, N, debug=debug)
    else:
        ctx.put(win, op.target, disp, buf, off, N, debug=debug)


def run_code(
    spec: CodeSpec, detector: DetectorProtocol
) -> Tuple[bool, World]:
    """Run one code under one detector; returns (error_reported, world)."""
    world = World(NRANKS, [detector])
    world.run(build_program(spec))
    return bool(getattr(detector, "reports", [])), world

"""Generator of the validation microbenchmark suite (paper §5.2).

The paper's suite has 154 hand-written C codes; its exact enumeration is
not published, so this module *regenerates* a suite from the same
combinatorial recipe — "every combination of two one-sided operations by
varying the order of the operations, the callers of the operations, and
the location that will be accessed twice" — with the paper's three
processes (ORIGIN 1, TARGET, ORIGIN 2).

The generated structure is validated against the paper's *behavioural*
counts, which are properties of the tools rather than of the suite's
size (see ``tests/microbench``):

* the original RMA-Analyzer produces exactly **6 false positives** —
  the ``{load,store}-then-{get,put}`` same-process safe codes in both
  placements (§5.2's ``ll_load_get_inwindow_origin_safe`` family);
* the MUST-RMA model produces exactly **15 false negatives** — the
  races whose shared location is a stack array (out-of-window buffers,
  and the self-targeting codes' stack buffers), which ThreadSanitizer
  does not instrument;
* our contribution has **0 / 0**.

Memory conventions (mirroring how such C microbenchmarks are written):
out-of-window buffers are stack arrays (``int buf[N]`` in ``main``);
window memory comes from ``MPI_Win_allocate`` (heap).  Each overlapping
code also gets a *disjoint twin* (same operation pair, non-overlapping
locations, always safe) so true negatives are exercised as widely as
true positives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .model import (
    ORIGIN1,
    ORIGIN2,
    TARGET,
    CodeSpec,
    OpInst,
    OpKind,
    Placement,
    SiteSpec,
    SlotKind,
    ground_truth,
)

__all__ = ["SuiteConfig", "generate_suite", "suite_by_name"]

_CALLER_LETTER = {ORIGIN1: "l", TARGET: "t", ORIGIN2: "o"}
_OWNER_LABEL = {ORIGIN1: "origin", TARGET: "target", ORIGIN2: "origin2"}

_ONESIDED = (OpKind.GET, OpKind.PUT)
_LOCAL = (OpKind.LOAD, OpKind.STORE)

# the three one-sided routes of the Fig. 3 scenario, plus self-targeting
_ROUTE_OT = (ORIGIN1, TARGET)
_ROUTE_TO = (TARGET, ORIGIN1)
_ROUTE_O2 = (ORIGIN2, TARGET)
_ROUTE_SELF = (ORIGIN1, ORIGIN1)


@dataclass(frozen=True)
class SuiteConfig:
    """Knobs of the enumeration (defaults reproduce the validated counts)."""

    #: include T's own one-sided ops paired with T's local accesses —
    #: relabel-symmetric to the ``ll`` family, excluded by default
    include_tt_locals: bool = False
    #: for each overlapping code, also emit a disjoint (trivially safe) twin
    disjoint_twins: bool = True
    #: epoch style the generated codes run under: passive-target
    #: ``lock_all`` (the paper's suite) or active-target ``fence``
    sync_mode: str = "lock_all"


def _name(
    first: OpInst,
    second: OpInst,
    site: SiteSpec,
    racy: bool,
    taken: Dict[str, int],
    *,
    disjoint: bool = False,
) -> str:
    pair = _CALLER_LETTER[first.caller] + _CALLER_LETTER[second.caller]
    placement = "disjoint" if disjoint else site.placement.value
    base = (
        f"{pair}_{first.kind.value}_{second.kind.value}_{placement}_"
        f"{_OWNER_LABEL[site.owner]}_{'race' if racy else 'safe'}"
    )
    n = taken.get(base, 0)
    taken[base] = n + 1
    return base if n == 0 else f"{base}{'bcdefgh'[n - 1]}"


def _emit(
    out: List[CodeSpec],
    taken: Dict[str, int],
    first: OpInst,
    second: OpInst,
    site: SiteSpec,
    config: SuiteConfig,
) -> None:
    racy = ground_truth(first, second, site)
    out.append(
        CodeSpec(_name(first, second, site, racy, taken), first, second,
                 site, racy, sync_mode=config.sync_mode)
    )
    if config.disjoint_twins:
        out.append(
            CodeSpec(
                _name(first, second, site, False, taken, disjoint=True),
                first,
                second,
                site,
                False,
                disjoint=True,
                sync_mode=config.sync_mode,
            )
        )


def _buf_placements() -> Tuple[Placement, Placement]:
    return (Placement.IN_WINDOW, Placement.OUT_WINDOW)


def generate_suite(config: Optional[SuiteConfig] = None) -> List[CodeSpec]:
    """All codes of the suite, deterministically ordered."""
    config = config or SuiteConfig()
    out: List[CodeSpec] = []
    taken: Dict[str, int] = {}

    # 1. same-route one-sided pairs ------------------------------------------
    for caller, target in (_ROUTE_OT, _ROUTE_TO, _ROUTE_O2):
        for k1 in _ONESIDED:
            for k2 in _ONESIDED:
                first = OpInst(k1, caller, target)
                second = OpInst(k2, caller, target)
                for placement in _buf_placements():
                    _emit(out, taken, first, second,
                          SiteSpec(SlotKind.BUF, SlotKind.BUF, caller, placement),
                          config)
                _emit(out, taken, first, second,
                      SiteSpec(SlotKind.WIN, SlotKind.WIN, target,
                               Placement.IN_WINDOW),
                      config)

    # 2. cross-route one-sided pairs (both orders) ------------------------------
    cross: List[Tuple[Tuple[int, int], Tuple[int, int], List[Tuple[SlotKind, SlotKind, int]]]] = [
        # O1->T vs T->O1 (the Fig. 2b shape): overlap at either rank
        (_ROUTE_OT, _ROUTE_TO, [(SlotKind.BUF, SlotKind.WIN, ORIGIN1),
                                (SlotKind.WIN, SlotKind.BUF, TARGET)]),
        (_ROUTE_TO, _ROUTE_OT, [(SlotKind.WIN, SlotKind.BUF, ORIGIN1),
                                (SlotKind.BUF, SlotKind.WIN, TARGET)]),
        # O1->T vs O2->T: both reach T's window
        (_ROUTE_OT, _ROUTE_O2, [(SlotKind.WIN, SlotKind.WIN, TARGET)]),
        (_ROUTE_O2, _ROUTE_OT, [(SlotKind.WIN, SlotKind.WIN, TARGET)]),
        # T->O1 vs O2->T: T's buffer sits in the window O2 reaches
        (_ROUTE_TO, _ROUTE_O2, [(SlotKind.BUF, SlotKind.WIN, TARGET)]),
        (_ROUTE_O2, _ROUTE_TO, [(SlotKind.WIN, SlotKind.BUF, TARGET)]),
    ]
    for route1, route2, sites in cross:
        for k1 in _ONESIDED:
            for k2 in _ONESIDED:
                first = OpInst(k1, *route1)
                second = OpInst(k2, *route2)
                for slot1, slot2, owner in sites:
                    _emit(out, taken, first, second,
                          SiteSpec(slot1, slot2, owner, Placement.IN_WINDOW),
                          config)

    # 3. self-targeting pairs (ORIGIN1 reaches its own window) --------------------
    for k1 in _ONESIDED:
        for k2 in _ONESIDED:
            first = OpInst(k1, *_ROUTE_SELF)
            second = OpInst(k2, *_ROUTE_SELF)
            _emit(out, taken, first, second,
                  SiteSpec(SlotKind.WIN, SlotKind.WIN, ORIGIN1,
                           Placement.IN_WINDOW),
                  config)
            for placement in _buf_placements():
                _emit(out, taken, first, second,
                      SiteSpec(SlotKind.BUF, SlotKind.BUF, ORIGIN1, placement),
                      config)

    # 4. one-sided x local (both orders) -------------------------------------------
    local_combos: List[Tuple[Tuple[int, int], int, SlotKind, int, List[Placement]]] = [
        # (route, local caller, one-sided shared slot, owner, placements)
        (_ROUTE_OT, ORIGIN1, SlotKind.BUF, ORIGIN1, list(_buf_placements())),
        (_ROUTE_OT, TARGET, SlotKind.WIN, TARGET, [Placement.IN_WINDOW]),
        (_ROUTE_TO, ORIGIN1, SlotKind.WIN, ORIGIN1, [Placement.IN_WINDOW]),
        (_ROUTE_O2, TARGET, SlotKind.WIN, TARGET, [Placement.IN_WINDOW]),
    ]
    if config.include_tt_locals:
        local_combos.append(
            (_ROUTE_TO, TARGET, SlotKind.BUF, TARGET, list(_buf_placements()))
        )
    for route, local_caller, os_slot, owner, placements in local_combos:
        for os_kind in _ONESIDED:
            for local_kind in _LOCAL:
                os_op = OpInst(os_kind, *route)
                local_op = OpInst(local_kind, local_caller)
                for placement in placements:
                    # one-sided first, then the local access
                    _emit(out, taken, os_op, local_op,
                          SiteSpec(os_slot, SlotKind.BUF, owner, placement),
                          config)
                    # local access first, then the one-sided
                    _emit(out, taken, local_op, os_op,
                          SiteSpec(SlotKind.BUF, os_slot, owner, placement),
                          config)

    return out


def suite_by_name(config: Optional[SuiteConfig] = None) -> Dict[str, CodeSpec]:
    return {spec.name: spec for spec in generate_suite(config)}

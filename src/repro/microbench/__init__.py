"""The validation microbenchmark suite (paper §5.2).

* :func:`generate_suite` — the two-operation combinatorial suite,
* :func:`run_suite` / :class:`ConfusionMatrix` — Table-3 style results,
* :func:`build_program` — CodeSpec -> runnable simulated-MPI program,
* :mod:`repro.microbench.codes` — the paper's named Codes 1/2 and the
  four Table-2 benchmark names.
"""

from .builder import NRANKS, build_program, run_code
from .codes import CODE2_ITERATIONS, TABLE2_NAMES, code1_program, code2_program
from .model import (
    CodeSpec,
    OpInst,
    OpKind,
    Placement,
    SiteSpec,
    SlotKind,
    ground_truth,
    slot_access_type,
)
from .runner import ConfusionMatrix, Verdict, run_suite
from .suite import SuiteConfig, generate_suite, suite_by_name

__all__ = [
    "CODE2_ITERATIONS",
    "CodeSpec",
    "ConfusionMatrix",
    "NRANKS",
    "OpInst",
    "OpKind",
    "Placement",
    "SiteSpec",
    "SlotKind",
    "SuiteConfig",
    "TABLE2_NAMES",
    "Verdict",
    "build_program",
    "code1_program",
    "code2_program",
    "generate_suite",
    "ground_truth",
    "run_code",
    "run_suite",
    "slot_access_type",
    "suite_by_name",
]

"""The named example codes of the paper (Codes 1-3 and the Table 2 four).

* :func:`code1_program` — Fig. 8a: ``Load(4); MPI_Put(2,12); Store(7)``,
  the three-access program whose race the original RMA-Analyzer misses
  because of its lower-bound-only search (Fig. 5).
* :func:`code2_program` — Fig. 8b: a 1,000-iteration ``MPI_Get`` loop
  plus one extra Get; 5,002 recorded accesses that the merging
  algorithm collapses to a 2-node BST (§4.2's worked example).
* Code 3 (Fig. 9a, the duplicated ``MPI_Put`` in MiniVite) lives with
  the application: ``repro.apps.minivite`` with ``inject_put_race=True``.
* :data:`TABLE2_NAMES` — the four microbenchmark names of Table 2,
  resolvable through :func:`repro.microbench.suite.suite_by_name`.
"""

from __future__ import annotations

from typing import Generator

from ..intervals import DebugInfo
from ..mpi import BYTE, RankContext

__all__ = [
    "TABLE2_NAMES",
    "code1_program",
    "code2_program",
    "CODE2_ITERATIONS",
]

#: the four suite codes compared in paper Table 2
TABLE2_NAMES = (
    "ll_get_load_outwindow_origin_race",
    "ll_get_get_inwindow_origin_safe",
    "ll_get_load_inwindow_origin_race",
    "ll_load_get_inwindow_origin_safe",
)

_SRC1 = "code1.c"
_SRC2 = "code2.c"

CODE2_ITERATIONS = 1000


def code1_program(ctx: RankContext) -> Generator:
    """Fig. 8a on two ranks; rank 0 is the origin.

    The three bold accesses, using the paper's own indices::

        temp = buf[4]        # Load(4)        -> Local_Read  [4]
        Put(buf[2], 10, X)   # MPI_Put(2,12)  -> RMA_Read    [2...12]
        buf[7] = 1234        # Store(7)       -> Local_Write [7]   <- race!
    """
    win = yield ctx.win_allocate("X", 64, BYTE)
    buf = ctx.alloc("buf", 16, BYTE, rma_hint=True)
    ctx.win_lock_all(win)
    yield
    if ctx.rank == 0:
        ctx.load(buf, 4, 1, debug=DebugInfo(_SRC1, 10))
        ctx.put(win, 1, 0, buf, off=2, count=11, debug=DebugInfo(_SRC1, 11))
        ctx.store(buf, 7, 99, 1, debug=DebugInfo(_SRC1, 12))
    yield
    ctx.win_unlock_all(win)
    yield ctx.win_free(win)


def code2_program(
    ctx: RankContext, iterations: int = CODE2_ITERATIONS
) -> Generator:
    """Fig. 8b on two ranks; rank 0 gets one byte per iteration.

    ::

        for (i = 0; i < 1000; i++)
            Get(buf[i], 1, X);
        Get(buf[0], 1, X);

    Every loop iteration contributes five accesses (``i`` is read or
    written four times, ``buf`` once); the merging algorithm collapses
    the whole thing to two nodes (one for ``i``, one for ``buf``).
    """
    win = yield ctx.win_allocate("X", max(iterations, 1), BYTE)
    if ctx.rank == 0:
        buf = ctx.alloc("buf", max(iterations, 1), BYTE, rma_hint=True)
        ivar = ctx.alloc("i", 4, BYTE, rma_hint=True)
    ctx.win_lock_all(win)
    yield
    if ctx.rank == 0:
        # i = 0 — the one extra access besides the 5-per-iteration pattern
        # (the paper counts 5,002 = 5 * 1000 + 2 nodes for the original tool)
        ctx.store(ivar, 0, 0, 4, debug=DebugInfo(_SRC2, 8))
        for i in range(iterations):
            # the four accesses to the loop variable i (cmp, use, inc-r/w)
            ctx.load(ivar, 0, 4, debug=DebugInfo(_SRC2, 9))
            ctx.load(ivar, 0, 4, debug=DebugInfo(_SRC2, 10))
            ctx.get(win, 1, i, buf, off=i, count=1, debug=DebugInfo(_SRC2, 10))
            ctx.load(ivar, 0, 4, debug=DebugInfo(_SRC2, 9))
            ctx.store(ivar, 0, 1, 4, debug=DebugInfo(_SRC2, 9))
        # the extra Get(buf[0], 1, X) after the loop
        ctx.get(win, 1, 0, buf, off=0, count=1, debug=DebugInfo(_SRC2, 11))
    yield
    ctx.win_unlock_all(win)
    yield ctx.win_free(win)

"""Run the suite against detectors and build the Table-3 confusion matrix."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..mpi.interposition import DetectorProtocol
from .builder import run_code
from .model import CodeSpec
from .suite import SuiteConfig, generate_suite

__all__ = ["Verdict", "ConfusionMatrix", "run_suite", "DetectorFactory"]

DetectorFactory = Callable[[], DetectorProtocol]


@dataclass(frozen=True)
class Verdict:
    """One code's outcome under one detector."""

    code: CodeSpec
    reported: bool

    @property
    def kind(self) -> str:
        if self.code.racy:
            return "TP" if self.reported else "FN"
        return "FP" if self.reported else "TN"


@dataclass
class ConfusionMatrix:
    """Aggregated verdicts — one paper-Table-3 column."""

    detector: str
    verdicts: List[Verdict] = field(default_factory=list)

    def add(self, verdict: Verdict) -> None:
        self.verdicts.append(verdict)

    def count(self, kind: str) -> int:
        return sum(1 for v in self.verdicts if v.kind == kind)

    @property
    def fp(self) -> int:
        return self.count("FP")

    @property
    def fn(self) -> int:
        return self.count("FN")

    @property
    def tp(self) -> int:
        return self.count("TP")

    @property
    def tn(self) -> int:
        return self.count("TN")

    def of_kind(self, kind: str) -> List[Verdict]:
        return [v for v in self.verdicts if v.kind == kind]

    def __str__(self) -> str:
        return (
            f"{self.detector}: FP={self.fp} FN={self.fn} "
            f"TP={self.tp} TN={self.tn} (n={len(self.verdicts)})"
        )


def run_suite(
    factory: DetectorFactory,
    *,
    codes: Optional[Sequence[CodeSpec]] = None,
    config: Optional[SuiteConfig] = None,
) -> ConfusionMatrix:
    """Run every code under a fresh detector instance from ``factory``."""
    codes = list(codes) if codes is not None else generate_suite(config)
    sample = factory()
    matrix = ConfusionMatrix(getattr(sample, "name", type(sample).__name__))
    for spec in codes:
        detector = factory()
        reported, _world = run_code(spec, detector)
        matrix.add(Verdict(spec, reported))
    return matrix

"""Common detector machinery.

Every tool modelled in this reproduction — the original RMA-Analyzer,
our contribution, the MUST-RMA model, Park et al.'s mirror windows and
the MC-CChecker post-mortem analysis — plugs into the simulated
runtime's interposition layer through the hook set defined here (the
runtime side of the contract is
:class:`repro.mpi.interposition.DetectorProtocol`).

Detectors *record* :class:`RaceReport` objects; in ``abort_on_race``
mode they raise :class:`DataRaceError` instead, emulating the real
tool's ``MPI_Abort`` (Fig. 9b).  Each detector also exposes node/work
statistics because half of the paper's evaluation (Fig. 10, Table 4) is
about the size of the analysis state, not about verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .. import obs
from ..core.report import DataRaceError, RaceReport
from ..intervals import MemoryAccess
from ..mpi.memory import RegionInfo
from ..mpi.window import Window

__all__ = ["Detector", "NodeStats"]


@dataclass
class NodeStats:
    """Analysis-state size summary, aggregated over (rank, window) stores.

    ``max_nodes_per_rank[r]`` is the high-water node count of rank r's
    largest store; ``total_max_nodes`` sums the high-water marks of every
    store — the quantity comparable to the paper's "number of nodes in
    the BST" (Table 4, and the 90,004 -> 54 CFD-Proxy reduction).
    """

    total_max_nodes: int = 0
    total_current_nodes: int = 0
    max_nodes_per_rank: Dict[int, int] = field(default_factory=dict)
    accesses_processed: int = 0
    accesses_filtered: int = 0
    #: per-memory-rank breakdowns (summed over windows) — filled by
    #: detectors that key state by rank; the sharded pipeline needs them
    #: to publish only a shard's *canonical* (own-rank) state, since a
    #: shard's detector also holds private replicas of other ranks
    current_nodes_per_rank: Dict[int, int] = field(default_factory=dict)
    peak_nodes_sum_per_rank: Dict[int, int] = field(default_factory=dict)

    @property
    def max_nodes_one_rank(self) -> int:
        return max(self.max_nodes_per_rank.values(), default=0)


class Detector:
    """Base class: no-op hooks, report collection, cost declaration."""

    #: human-readable tool name (used in reports and experiment tables)
    name: str = "base"
    #: bytes the tool itself sends per one-sided op (RMA-Analyzer's
    #: per-operation MPI_Send notification, §5.1)
    rma_notify_bytes: int = 0

    #: reports kept in memory; further races are only counted (the real
    #: tools abort at the first race, so keeping every report of a
    #: pathological run would be pure overhead)
    MAX_KEPT_REPORTS = 1000

    #: instance attributes never checkpointed: cached obs handles are
    #: bound to a per-process registry and must be re-bound lazily after
    #: a restore (possibly in a different process)
    _CKPT_SKIP = frozenset({"_obs_reg", "_c_events"})

    def __init__(self, *, abort_on_race: bool = False) -> None:
        self.reports: List[RaceReport] = []
        self.reports_total = 0
        self.abort_on_race = abort_on_race
        #: cumulative abstract work units (comparisons, shadow cells,
        #: clock entries) — the cost model charges their deltas
        self.work_units: float = 0.0
        # pre-formatted per-tool metric keys plus cached counter handles:
        # the event path runs per analysed access, so increments go
        # through handles rebound on registry identity (obs.scope /
        # obs.reset swaps) rather than per-call registry lookups
        self._k_events = obs.metric_key("detector.events",
                                        {"tool": self.name})
        self._k_verdicts = obs.metric_key("detector.verdicts",
                                          {"tool": self.name})
        self._obs_reg = None
        self._obs_published = False

    def _bind_obs(self, reg) -> None:
        """(Re)bind cached instrument handles; subclasses extend."""
        self._obs_reg = reg
        self._c_events = reg.counter(self._k_events)

    def _count_event(self) -> None:
        """Count one analysed event against this tool (hot path)."""
        reg = obs.active()
        if reg.enabled:
            if reg is not self._obs_reg:
                self._bind_obs(reg)
            self._c_events.value += 1

    # -- cost declaration ---------------------------------------------------

    def sync_notify_bytes(self, nranks: int) -> int:
        """Extra bytes the tool sends at each sync (vector clocks etc.)."""
        return 0

    def analysis_work(self) -> float:
        """Cumulative work units; see :attr:`work_units`."""
        return self.work_units

    # -- verdict plumbing ------------------------------------------------------

    #: timeline events shown per rank in a forensics bundle
    FORENSICS_CONTEXT = 8

    def _report(
        self, rank: int, wid: int, stored: MemoryAccess, new: MemoryAccess,
        *, phase: str = "check",
    ) -> None:
        self.reports_total += 1
        reg = obs.active()
        reg.counter(self._k_verdicts).inc()
        if len(self.reports) < self.MAX_KEPT_REPORTS:
            forensics = None
            if reg.enabled:
                from ..core.forensics import capture_forensics

                forensics = capture_forensics(
                    self, reg.timeline, rank, wid, stored, new,
                    phase=phase, k=self.FORENSICS_CONTEXT,
                )
            report = RaceReport(rank, wid, stored, new, self.name,
                                forensics)
            self.reports.append(report)
            if self.abort_on_race:
                raise DataRaceError(report)

    # -- checkpointing ---------------------------------------------------------

    def snapshot(self) -> dict:
        """Checkpointable state of this detector (``repro-ckpt-v1``).

        Captures every instance attribute except the per-process obs
        handles (:attr:`_CKPT_SKIP`); containers are copied one level
        deep so the live detector can keep mutating them.  Values deeper
        down are captured by reference — serialize the snapshot before
        applying more events if it must outlive this process.
        Subclasses with non-serializable or recursion-deep state
        override :meth:`_encode_state` / :meth:`_decode_state`.
        """
        state = {}
        for key, value in self.__dict__.items():
            if key in self._CKPT_SKIP:
                continue
            if isinstance(value, (list, set, dict)):
                value = value.copy()
            state[key] = value
        return {"class": type(self).__name__,
                "state": self._encode_state(state)}

    def restore(self, snap: dict) -> None:
        """Adopt a :meth:`snapshot`; the detector resumes mid-analysis."""
        if snap.get("class") != type(self).__name__:
            raise ValueError(
                "checkpoint is for detector %r, not %r"
                % (snap.get("class"), type(self).__name__))
        self.__dict__.update(self._decode_state(dict(snap["state"])))
        # cached instrument handles are stale (wrong process/registry):
        # the next _count_event() re-binds against the active registry
        self._obs_reg = None

    def _encode_state(self, state: dict) -> dict:
        """Subclass hook: make the state dict serialization-safe."""
        return state

    def _decode_state(self, state: dict) -> dict:
        """Subclass hook: invert :meth:`_encode_state`."""
        return state

    # -- forensic state hooks (subclasses override) ----------------------------

    def forensic_sync_state(self, wid: int) -> dict:
        """Tool-specific synchronization state of one window, JSON-able."""
        return {}

    def forensic_tree_state(self, rank: int, wid: int) -> Optional[dict]:
        """Statistics of the analysis store the race was found in."""
        return None

    @property
    def race_detected(self) -> bool:
        return self.reports_total > 0

    def reset_reports(self) -> None:
        self.reports.clear()
        self.reports_total = 0

    # -- hooks (no-ops by default) ------------------------------------------------

    def on_win_create(self, window: Window) -> None: ...

    def on_win_free(self, wid: int) -> None: ...

    def on_epoch_start(self, rank: int, wid: int) -> None: ...

    def on_epoch_end(self, rank: int, wid: int) -> None: ...

    def on_flush(self, rank: int, wid: int) -> None: ...

    def on_request_complete(self, rank: int, wid: int, access) -> None:
        """MPI_Wait on a request-based op (default: not modelled)."""

    def on_barrier(self) -> None: ...

    def on_fence(self, wid: int, nranks: int) -> None:
        """MPI_Win_fence: collective completion of all ops on the window.

        The default treats it as every rank's epoch ending and a new one
        starting, plus a barrier — sound for every modelled tool because
        a fence really does complete and order everything on the window.
        """
        for rank in range(nranks):
            self.on_epoch_end(rank, wid)
        self.on_barrier()
        for rank in range(nranks):
            self.on_epoch_start(rank, wid)

    def on_local(
        self, rank: int, access: MemoryAccess, region: RegionInfo
    ) -> None: ...

    def on_rma(
        self,
        op: str,
        rank: int,
        target: int,
        wid: int,
        origin_access: MemoryAccess,
        target_access: MemoryAccess,
        origin_region: RegionInfo,
        target_region: RegionInfo,
    ) -> None: ...

    def finalize(self) -> None:
        """Called once after the program ends (post-mortem analyses run here)."""

    # -- statistics ------------------------------------------------------------------

    def node_stats(self) -> NodeStats:
        """Size of the analysis state; subclasses override."""
        return NodeStats()

    def publish_obs(self, own_rank: Optional[int] = None) -> None:
        """Publish this instance's final statistics into the registry.

        Called by every stats consumer (``run_app``, the pipeline's
        shard-group finish, the serial replay path) *after*
        :meth:`finalize`; idempotent per instance, so the counters sum
        correctly when a worker owns several shard detectors.  These
        registry values are the single source of truth the CLI metrics
        table, ``--metrics-json`` and the Table-4 driver all read.

        ``own_rank`` restricts the node-state publication to one memory
        rank's stores: a sharded worker's detector also holds private
        replicas of other ranks (RMA events fan out to both sides), and
        publishing those too would overcount the merged ``bst.nodes*``
        values relative to serial replay.  Detectors without per-rank
        breakdowns in :meth:`node_stats` fall back to their full
        (replica-inclusive) state.
        """
        if self._obs_published:
            return
        self._obs_published = True
        reg = obs.active()
        if not reg.enabled:
            return
        tool = self.name
        stats = self.node_stats()
        if own_rank is not None and (stats.peak_nodes_sum_per_rank
                                     or stats.current_nodes_per_rank):
            nodes_cur = stats.current_nodes_per_rank.get(own_rank, 0)
            nodes_peak = stats.peak_nodes_sum_per_rank.get(own_rank, 0)
            peak_one = stats.max_nodes_per_rank.get(own_rank, 0)
        else:
            nodes_cur = stats.total_current_nodes
            nodes_peak = stats.total_max_nodes
            peak_one = stats.max_nodes_one_rank
        reg.gauge("bst.nodes", tool=tool).set(nodes_cur)
        reg.counter("bst.nodes_peak", tool=tool).add(nodes_peak)
        reg.gauge("bst.nodes_peak_one_rank", tool=tool).set(peak_one)
        reg.counter("detector.processed", tool=tool).add(
            stats.accesses_processed)
        reg.counter("detector.filtered", tool=tool).add(
            stats.accesses_filtered)
        filt = getattr(self, "filter", None)
        if filt is not None:
            reg.counter("filter.seen", tool=tool).add(filt.seen)
            reg.counter("filter.kept", tool=tool).add(filt.kept)
        self._publish_extra(reg)

    def _publish_extra(self, reg) -> None:
        """Subclass hook for tool-specific registry publications."""

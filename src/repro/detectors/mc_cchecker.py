"""Model of MC-CChecker (Diep et al., EuroMPI'18) — post-mortem analysis.

Related-work baseline (§3): MC-CChecker improves MC-Checker with "a
clock-based approach based on the encoded vector clock": the execution
is recorded, then concurrent regions are derived from the synchronization
events and all pairs of conflicting accesses inside concurrent regions
are reported *after the run*.

The model records every (access, stamp, clock-view) online — recording
is what the real tool's profiling layer does too — and runs the whole
pairwise analysis in :meth:`finalize`.  It shares the happens-before
construction with the MUST-RMA model but has neither the stack blind
spot nor an alias filter: its weakness in the paper's narrative is not
accuracy but that it reports *post mortem* (no early abort, so the
failing execution is long gone) and that the recorded trace grows with
the execution (the scalability complaint against MC-Checker).  Verdicts
become available only after ``finalize``.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..intervals import MemoryAccess
from ..mpi.memory import RegionInfo
from ..mpi.window import Window
from ..tsan import GRANULE, HappensBefore, Stamp, VectorClock
from .base import Detector, NodeStats

__all__ = ["McCChecker"]


@dataclass(frozen=True)
class _Rec:
    """One recorded access with its concurrency context."""

    memory_rank: int
    access: MemoryAccess
    stamp: Stamp
    clock: VectorClock
    order: int


class McCChecker(Detector):
    """Record online, detect at finalize (post-mortem, clock-based)."""

    name = "MC-CChecker"
    rma_notify_bytes = 0

    def __init__(self, *, abort_on_race: bool = False) -> None:
        super().__init__(abort_on_race=abort_on_race)
        self._hb = HappensBefore()
        self._records: List[_Rec] = []
        self._order = 0
        self.finalized = False

    # -- recording ------------------------------------------------------------

    def _record(self, memory_rank: int, access: MemoryAccess, stamp, clock) -> None:
        self._order += 1
        self.work_units += 1 + len(clock)  # record + clock snapshot
        self._records.append(_Rec(memory_rank, access, stamp, clock, self._order))

    def on_win_create(self, window: Window) -> None:
        for r in range(len(window.regions)):
            self._hb.app_clock(r)
        self._hb.barrier()

    def on_epoch_end(self, rank: int, wid: int) -> None:
        self._hb.complete_epoch(rank, wid)

    def on_barrier(self) -> None:
        self._hb.barrier()

    def on_local(
        self, rank: int, access: MemoryAccess, region: RegionInfo
    ) -> None:
        stamp, clock = self._hb.local_event(rank)
        self._record(rank, access, stamp, clock)

    def on_rma(
        self,
        op: str,
        rank: int,
        target: int,
        wid: int,
        origin_access: MemoryAccess,
        target_access: MemoryAccess,
        origin_region: RegionInfo,
        target_region: RegionInfo,
    ) -> None:
        stamp, clock = self._hb.rma_event(rank, wid)
        self._record(rank, origin_access, stamp, clock)
        stamp, clock = self._hb.rma_event(rank, wid)
        self._record(target, target_access, stamp, clock)

    # -- post-mortem analysis ------------------------------------------------------

    def finalize(self) -> None:
        """Pairwise check of all recorded accesses, bucketed by granule."""
        buckets: Dict[Tuple[int, int], List[_Rec]] = defaultdict(list)
        for rec in self._records:
            iv = rec.access.interval
            for g in range(iv.lo // GRANULE, (iv.hi - 1) // GRANULE + 1):
                buckets[(rec.memory_rank, g)].append(rec)
        seen_pairs = set()
        for recs in buckets.values():
            for i, a in enumerate(recs):
                for b in recs[i + 1 :]:
                    pair = (a.order, b.order)
                    self.work_units += 1
                    if pair in seen_pairs:
                        continue
                    if not a.access.interval.overlaps(b.access.interval):
                        continue
                    if not (a.access.is_write or b.access.is_write):
                        continue
                    if a.access.is_atomic and b.access.is_atomic and (
                        a.access.accum_op == b.access.accum_op
                        or a.access.origin == b.access.origin
                    ):
                        continue  # accumulate atomicity / ordering
                    if (
                        a.access.excl_epoch is not None
                        and b.access.excl_epoch is not None
                        and a.access.excl_epoch != b.access.excl_epoch
                    ):
                        continue  # exclusive-lock serialization
                    # concurrent iff neither event is in the other's view;
                    # a.clock is a's view *at its own event time*, so a
                    # knows b only through later syncs -> compare via the
                    # later event's view (b happened after a in recording)
                    if b.clock.knows(a.stamp):
                        continue
                    seen_pairs.add(pair)
                    self._report(a.memory_rank, -1, a.access, b.access,
                                 phase="post_mortem")
        self.finalized = True

    def node_stats(self) -> NodeStats:
        stats = NodeStats()
        stats.total_current_nodes = len(self._records)
        stats.total_max_nodes = len(self._records)
        stats.accesses_processed = len(self._records)
        return stats

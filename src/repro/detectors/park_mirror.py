"""Model of Park & Chung's mirror-window race detection (ICIS 2009).

Related-work baseline (§3): "creates a mirror window each time a window
is created.  Then, each time a new MPI-RMA communication accesses a
memory space in the window, a check for data races is performed in the
corresponding mirror window containing all previous accesses to that
window.  This approach does not consider local Load and Store accesses,
thus leading to false negative results."

We model exactly that: a per-(target, window) mirror holding only the
*window-side* accesses of one-sided operations.  Origin-side buffer
accesses and all Load/Store events are invisible, so every race whose
conflicting pair involves a local access or an origin-side buffer is
missed — the structural false negatives the paper attributes to the
approach.  (The real implementation is also MPI-2 only; our simulated
apps use MPI-3 ``lock_all`` epochs, which we accept as-if supported so
the model can run on the same workloads.)
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..bst import IntervalBST
from ..intervals import MemoryAccess
from ..mpi.memory import RegionInfo
from .base import Detector, NodeStats

__all__ = ["ParkMirror"]


class ParkMirror(Detector):
    """Mirror-window checking: RMA-vs-RMA races in window memory only."""

    name = "Park-Mirror"
    rma_notify_bytes = 32  # mirror updates travel to the target

    def __init__(self, *, abort_on_race: bool = False) -> None:
        super().__init__(abort_on_race=abort_on_race)
        self._mirrors: Dict[Tuple[int, int], IntervalBST] = {}
        self._processed = 0
        self._max_nodes: Dict[Tuple[int, int], int] = {}

    def _mirror(self, target: int, wid: int) -> IntervalBST:
        key = (target, wid)
        bst = self._mirrors.get(key)
        if bst is None:
            bst = IntervalBST()
            self._mirrors[key] = bst
        return bst

    def on_rma(
        self,
        op: str,
        rank: int,
        target: int,
        wid: int,
        origin_access: MemoryAccess,
        target_access: MemoryAccess,
        origin_region: RegionInfo,
        target_region: RegionInfo,
    ) -> None:
        mirror = self._mirror(target, wid)
        self._processed += 1
        w0 = mirror.stats.comparisons + mirror.stats.rotations
        for stored in mirror.find_overlapping(target_access.interval):
            if stored.is_write or target_access.is_write:
                self._report(target, wid, stored, target_access,
                             phase="mirror_compare")
                break
        mirror.insert(target_access)
        self.work_units += mirror.stats.comparisons + mirror.stats.rotations - w0
        key = (target, wid)
        self._max_nodes[key] = max(
            self._max_nodes.get(key, 0), mirror.stats.max_size
        )

    def on_epoch_end(self, rank: int, wid: int) -> None:
        bst = self._mirrors.get((rank, wid))
        if bst is not None:
            bst.clear()

    # local accesses intentionally not handled: the model's blind spot

    def node_stats(self) -> NodeStats:
        stats = NodeStats()
        for (rank, _wid), peak in self._max_nodes.items():
            stats.total_max_nodes += peak
            stats.max_nodes_per_rank[rank] = max(
                stats.max_nodes_per_rank.get(rank, 0), peak
            )
        stats.total_current_nodes = sum(len(b) for b in self._mirrors.values())
        stats.accesses_processed = self._processed
        return stats

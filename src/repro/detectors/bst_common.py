"""Shared machinery of the BST-based detectors.

Both the original RMA-Analyzer and the paper's contribution keep one
interval BST per (rank, window): "When an MPI window is created, each
MPI process creates a BST.  The BST is then filled with all memory
locations the owner process or other processes accesses" (§3).  The two
tools differ in *how* they search and insert — exactly the knobs the
subclasses override:

* ``_check(bst, access)``   — race search strategy,
* ``_insert(bst, access)``  — storage strategy (append vs Algorithm 1),
* flush/barrier handling    — §6 semantics.

Local accesses of a rank are routed to its BST of every window with an
open epoch (accesses outside any epoch cannot race with one-sided
traffic and are dropped, matching the tool's "collects all memory
accesses that are contained within each epoch").
"""

from __future__ import annotations

import copy
from typing import Dict, Optional, Set, Tuple

from ..aliasing import AliasFilter, FilterPolicy
from ..bst import IntervalBST, TreeStats
from ..intervals import MemoryAccess
from ..mpi.memory import RegionInfo
from ..mpi.window import Window
from .base import Detector, NodeStats

__all__ = ["BstDetector"]

Key = Tuple[int, int]  # (rank, wid)


class BstDetector(Detector):
    """Base of the two RMA-Analyzer variants (original and improved)."""

    #: the per-operation target notification (an MPI_Send with the access
    #: descriptor: interval, type, debug info — a small fixed message)
    rma_notify_bytes: int = 48

    def __init__(
        self,
        *,
        abort_on_race: bool = False,
        filter_policy: FilterPolicy = FilterPolicy.ALIAS,
        balanced: bool = True,
    ) -> None:
        super().__init__(abort_on_race=abort_on_race)
        self._stores: Dict[Key, IntervalBST] = {}
        self._open_epochs: Set[Key] = set()
        self._windows: Dict[int, Window] = {}
        self._balanced = balanced
        self.filter = AliasFilter(filter_policy)
        self._seq = 0
        self._processed = 0
        # high-water node counts survive clears and window frees
        self._max_nodes: Dict[Key, int] = {}
        # tree-op totals of stores dropped at window free (the live
        # stores' stats are summed on top at publication time)
        self._closed_stats = TreeStats()

    # -- storage plumbing ---------------------------------------------------------

    def _store(self, rank: int, wid: int) -> IntervalBST:
        key = (rank, wid)
        bst = self._stores.get(key)
        if bst is None:
            bst = IntervalBST(balanced=self._balanced)
            self._stores[key] = bst
        return bst

    def _note_high_water(self, key: Key) -> None:
        bst = self._stores.get(key)
        if bst is not None:
            prev = self._max_nodes.get(key, 0)
            if bst.stats.max_size > prev:
                self._max_nodes[key] = bst.stats.max_size

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    # -- strategy points (subclasses implement) --------------------------------------

    def _check(self, bst: IntervalBST, access: MemoryAccess, rank: int, wid: int) -> None:
        raise NotImplementedError

    def _insert(self, bst: IntervalBST, access: MemoryAccess) -> None:
        raise NotImplementedError

    def _record(self, rank: int, wid: int, access: MemoryAccess) -> None:
        """Check-then-insert one access into one store (the §3 two traversals)."""
        bst = self._store(rank, wid)
        self._processed += 1
        self._count_event()
        stats = bst.stats
        w0 = stats.comparisons + stats.rotations
        self._check(bst, access, rank, wid)
        self._insert(bst, access)
        self.work_units += stats.comparisons + stats.rotations - w0
        self._note_high_water((rank, wid))

    # -- hooks ---------------------------------------------------------------------------

    def on_win_create(self, window: Window) -> None:
        self._windows[window.wid] = window

    def on_win_free(self, wid: int) -> None:
        for key in [k for k in self._stores if k[1] == wid]:
            self._note_high_water(key)
            self._closed_stats.merge(self._stores[key].stats)
            del self._stores[key]
        self._windows.pop(wid, None)

    def on_epoch_start(self, rank: int, wid: int) -> None:
        self._open_epochs.add((rank, wid))

    def on_epoch_end(self, rank: int, wid: int) -> None:
        key = (rank, wid)
        self._open_epochs.discard(key)
        bst = self._stores.get(key)
        if bst is not None:
            self._note_high_water(key)
            bst.clear()

    def on_local(
        self, rank: int, access: MemoryAccess, region: RegionInfo
    ) -> None:
        if not self.filter.instrument(region):
            return
        routed = False
        for r, wid in list(self._open_epochs):
            if r == rank:
                self._record(rank, wid, access)
                routed = True
        if not routed:
            return  # outside all epochs: the tool does not track it

    def on_rma(
        self,
        op: str,
        rank: int,
        target: int,
        wid: int,
        origin_access: MemoryAccess,
        target_access: MemoryAccess,
        origin_region: RegionInfo,
        target_region: RegionInfo,
    ) -> None:
        # origin side, recorded locally by the issuing process
        self._record(rank, wid, origin_access)
        # target side, recorded at the target (delivered by the tool's
        # MPI_Send notification, costed by the interposition layer)
        self._record(target, wid, target_access)

    # -- checkpointing ---------------------------------------------------------

    def _encode_state(self, state: dict) -> dict:
        """Replace the interval BSTs with structure-preserving states.

        Node-linked trees pickle recursively (an unbalanced ablation
        tree is O(n) deep), so each store goes through
        :meth:`IntervalBST.save_state` — an iterative preorder encoding
        that also carries the tie counter and TreeStats, keeping the
        restored detector's future behavior (and published metrics)
        byte-identical.
        """
        state["_stores"] = {
            key: bst.save_state() for key, bst in self._stores.items()}
        state["_closed_stats"] = self._closed_stats.to_dict()
        state["filter"] = copy.copy(self.filter)
        return state

    def _decode_state(self, state: dict) -> dict:
        state["_stores"] = {
            key: IntervalBST.from_state(s)
            for key, s in state["_stores"].items()}
        state["_closed_stats"] = TreeStats.from_dict(state["_closed_stats"])
        return state

    # -- statistics -------------------------------------------------------------------------

    def node_stats(self) -> NodeStats:
        stats = NodeStats()
        for key, bst in self._stores.items():
            self._note_high_water(key)
        for (rank, wid), peak in self._max_nodes.items():
            stats.total_max_nodes += peak
            cur = stats.max_nodes_per_rank.get(rank, 0)
            stats.max_nodes_per_rank[rank] = max(cur, peak)
            stats.peak_nodes_sum_per_rank[rank] = (
                stats.peak_nodes_sum_per_rank.get(rank, 0) + peak)
        stats.total_current_nodes = sum(len(b) for b in self._stores.values())
        for (rank, wid), bst in self._stores.items():
            stats.current_nodes_per_rank[rank] = (
                stats.current_nodes_per_rank.get(rank, 0) + len(bst))
        stats.accesses_processed = self._processed
        stats.accesses_filtered = self.filter.filtered
        return stats

    def _publish_extra(self, reg) -> None:
        """Tree operation totals, live stores plus freed ones (Fig. 10)."""
        tool = self.name
        total = TreeStats()
        total.merge(self._closed_stats)
        for bst in self._stores.values():
            total.merge(bst.stats)
        reg.counter("bst.comparisons", tool=tool).add(total.comparisons)
        reg.counter("bst.rotations", tool=tool).add(total.rotations)
        reg.counter("bst.inserts", tool=tool).add(total.inserts)
        reg.counter("bst.removals", tool=tool).add(total.removals)
        reg.counter("bst.queries", tool=tool).add(total.queries)
        # the query path accounts fan-out in TreeStats buckets (see
        # repro.bst.avl); fold them into the histogram bucket for bucket
        hist = reg.histogram("bst.query_fanout", tool=tool)
        assert len(hist.counts) == len(total.fanout)
        for i, n in enumerate(total.fanout):
            hist.counts[i] += n
        hist.n += total.queries
        hist.total += total.query_hits
        if total.max_fanout > hist.vmax:
            hist.vmax = total.max_fanout

    def bst_of(self, rank: int, wid: int) -> Optional[IntervalBST]:
        """Direct access for tests and figure drivers."""
        return self._stores.get((rank, wid))

    # -- forensics ----------------------------------------------------------------

    def forensic_sync_state(self, wid: int) -> dict:
        """Which ranks hold an open epoch on ``wid``, and window liveness."""
        return {
            "open_epochs": sorted(
                r for (r, w) in self._open_epochs if w == wid),
            "window_known": wid in self._windows,
        }

    def forensic_tree_state(self, rank: int, wid: int) -> Optional[dict]:
        """The racing (rank, window) store's tree statistics right now."""
        bst = self._stores.get((rank, wid))
        if bst is None:
            return None
        stats = bst.stats
        return {
            "nodes": len(bst),
            "max_size": stats.max_size,
            "comparisons": stats.comparisons,
            "rotations": stats.rotations,
            "inserts": stats.inserts,
            "removals": stats.removals,
            "queries": stats.queries,
            "query_hits": stats.query_hits,
        }

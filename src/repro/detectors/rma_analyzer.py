"""The original RMA-Analyzer (Aitkaci et al. 2021) — the paper's baseline.

Behavioural model of the tool *before* the paper's improvements, with
all three defects the paper attributes to it:

1. **Lower-bound-only search** (§4.1): the race check and the
   intersection retrieval walk a single BST path chosen by the new
   access's lower bound (:func:`legacy_find_overlapping`), so an
   intersecting wide interval off that path is missed — the Code 1
   false negative of Fig. 5a.
2. **No fragmentation, no merging**: every access is appended as its
   own node, so the BST grows linearly with the number of dynamic
   accesses (Code 2: 5,002 nodes; CFD-Proxy: 90,004 nodes).
3. **Order-insensitive race predicate** (§5.2): ``Load`` followed by
   ``MPI_Get`` on the same buffer by the same process is flagged even
   though program order makes it safe — the 6 false positives of
   Table 3 (``ll_load_get_*`` and friends).

It also ignores ``MPI_Win_flush`` and ``MPI_Barrier`` entirely ("not
well instrumented", §6), which is what produces the CFD-Proxy false
positive across flush-synchronized iterations.
"""

from __future__ import annotations

from ..aliasing import FilterPolicy
from ..bst import IntervalBST, legacy_find_overlapping
from ..intervals import MemoryAccess, is_race_legacy
from .bst_common import BstDetector

__all__ = ["RmaAnalyzerLegacy"]


class RmaAnalyzerLegacy(BstDetector):
    """The unimproved tool: append-only multiset + path-limited search."""

    name = "RMA-Analyzer"

    def __init__(self, **kwargs) -> None:
        kwargs.setdefault("filter_policy", FilterPolicy.ALIAS)
        super().__init__(**kwargs)

    def _check(
        self, bst: IntervalBST, access: MemoryAccess, rank: int, wid: int
    ) -> None:
        # first traversal: the (unsound) intersection search
        for stored in legacy_find_overlapping(bst, access.interval):
            if is_race_legacy(stored, access):
                self._report(rank, wid, stored, access,
                             phase="legacy_search")
                return  # the real tool aborts at the first race

    def _insert(self, bst: IntervalBST, access: MemoryAccess) -> None:
        # second traversal: plain multiset insertion, nothing is merged
        bst.insert(access)

"""The data-race detectors under comparison.

* :class:`RmaAnalyzerLegacy` — the original tool (paper's baseline),
* :class:`repro.core.OurDetector` — the paper's contribution (lives in
  :mod:`repro.core`, re-exported here for convenience),
* :class:`MustRma` — the MUST + ThreadSanitizer model,
* :class:`ParkMirror` — mirror-window checking (related work),
* :class:`McCChecker` — clock-based post-mortem analysis (related work).
"""

from .base import Detector, NodeStats
from .bst_common import BstDetector
from .mc_cchecker import McCChecker
from .must_rma import MustRma
from .park_mirror import ParkMirror
from .rma_analyzer import RmaAnalyzerLegacy

__all__ = [
    "BstDetector",
    "Detector",
    "McCChecker",
    "MustRma",
    "NodeStats",
    "ParkMirror",
    "RmaAnalyzerLegacy",
]


def __getattr__(name: str):
    # OurDetector is defined in repro.core (it *is* the contribution);
    # lazy import avoids a package cycle
    if name == "OurDetector":
        from ..core.detector import OurDetector

        return OurDetector
    raise AttributeError(name)

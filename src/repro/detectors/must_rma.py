"""Behavioural model of MUST-RMA (Schwitanski et al., Correctness'22).

MUST-RMA combines MUST's MPI-aware happens-before construction with
ThreadSanitizer as the underlying shared-memory race checker.  The
properties the paper measures are all modelled here:

* **Concurrent regions via vector clocks** — every access is stamped
  and checked against shadow memory under the happens-before relation
  of :class:`repro.tsan.HappensBefore`.  This makes the detector
  order-aware, so it has **no false positives** on the microbenchmark
  suite (Table 3, FP = 0).
* **Stack-array blind spot** — "ThreadSanitizer does not instrument
  stack arrays", so races on stack buffers are missed: the 15 false
  negatives of Table 3 and the ``ll_get_load_inwindow_origin_race``
  miss of Table 2.
* **Over-instrumentation** — no alias filtering: every non-stack local
  access is processed, which is the paper's explanation for MUST-RMA's
  large overhead in Fig. 10.
* **Vector-clock traffic** — at every synchronization the tool ships
  clocks whose size grows with the rank count; Figs 11/12 show the
  resulting scaling penalty.  :meth:`sync_notify_bytes` charges it.
* **Flush not modelled** — reproduces the CFD-Proxy false positive of
  the §6 discussion.
"""

from __future__ import annotations

from typing import Optional

from ..aliasing import AliasFilter, FilterPolicy
from ..intervals import MemoryAccess
from ..mpi.memory import RegionInfo
from ..mpi.window import Window
from ..tsan import HappensBefore, ShadowMemory
from .base import Detector, NodeStats

__all__ = ["MustRma"]

_VC_ENTRY_BYTES = 12  # axis id + 64-bit time, roughly


class MustRma(Detector):
    """MUST + TSan model: vector-clock happens-before over shadow memory."""

    name = "MUST-RMA"
    rma_notify_bytes = 0  # no per-op message; clocks ride on syncs

    def __init__(self, *, abort_on_race: bool = False) -> None:
        super().__init__(abort_on_race=abort_on_race)
        self.filter = AliasFilter(FilterPolicy.TSAN)
        self.shadow = ShadowMemory()
        self._hb: Optional[HappensBefore] = None
        self._nranks = 0
        self._processed = 0

    # -- cost declaration -----------------------------------------------------

    def sync_notify_bytes(self, nranks: int) -> int:
        # two axes per rank (app + rma), shipped at each sync
        return 2 * nranks * _VC_ENTRY_BYTES

    # -- lazily sized happens-before state ---------------------------------------

    def _ensure_hb(self, rank: int) -> HappensBefore:
        if self._hb is None:
            self._hb = HappensBefore()
        self._nranks = max(self._nranks, rank + 1)
        self._hb.app_clock(rank)  # ranks appear lazily
        return self._hb

    # -- hooks ----------------------------------------------------------------------

    def on_win_create(self, window: Window) -> None:
        hb = self._ensure_hb(len(window.regions) - 1)
        for r in range(len(window.regions)):
            hb.app_clock(r)
        hb.barrier()  # win_allocate is collective

    def on_epoch_end(self, rank: int, wid: int) -> None:
        hb = self._ensure_hb(rank)
        hb.complete_epoch(rank, wid)

    def on_barrier(self) -> None:
        if self._hb is not None:
            self._hb.barrier()
            # joining every rank's clock: O(ranks * clock size)
            self.work_units += self._nranks * self._hb.clock_size()

    # flush intentionally ignored (§6: "not well instrumented")

    def on_local(
        self, rank: int, access: MemoryAccess, region: RegionInfo
    ) -> None:
        if not self.filter.instrument(region):
            return  # TSan does not see stack arrays
        hb = self._ensure_hb(rank)
        stamp, clock = hb.local_event(rank)
        self._processed += 1
        self._count_event()
        c0 = self.shadow.cells_touched
        conflicts = self.shadow.check_and_update(
            rank, access, stamp, clock, access.is_write
        )
        # clock copy + shadow-cell scans: the per-access TSan cost
        self.work_units += len(clock) + (self.shadow.cells_touched - c0)
        for cell in conflicts:
            self._report(rank, -1, cell.access, access,
                         phase="shadow_check")

    def on_rma(
        self,
        op: str,
        rank: int,
        target: int,
        wid: int,
        origin_access: MemoryAccess,
        target_access: MemoryAccess,
        origin_region: RegionInfo,
        target_region: RegionInfo,
    ) -> None:
        hb = self._ensure_hb(max(rank, target))
        # the origin-side access (TSan skips it if the buffer is on the stack)
        if not origin_region.is_stack:
            stamp, clock = hb.rma_event(rank, wid)
            self._processed += 1
            self._count_event()
            c0 = self.shadow.cells_touched
            conflicts = self.shadow.check_and_update(
                rank, origin_access, stamp, clock, origin_access.is_write
            )
            self.work_units += len(clock) + (self.shadow.cells_touched - c0)
            for cell in conflicts:
                self._report(rank, wid, cell.access, origin_access,
                             phase="shadow_check")
        # the target-side access — also skipped when the window was
        # created over a stack array (MPI_Win_create on a local array;
        # §5.2: "when using heap arrays, the error is detected")
        if not target_region.is_stack:
            stamp, clock = hb.rma_event(rank, wid)
            self._processed += 1
            self._count_event()
            c0 = self.shadow.cells_touched
            conflicts = self.shadow.check_and_update(
                target, target_access, stamp, clock, target_access.is_write
            )
            self.work_units += len(clock) + (self.shadow.cells_touched - c0)
            for cell in conflicts:
                self._report(target, wid, cell.access, target_access,
                             phase="shadow_check")

    # -- statistics -------------------------------------------------------------------

    def node_stats(self) -> NodeStats:
        stats = NodeStats()
        stats.total_current_nodes = len(self.shadow)
        stats.total_max_nodes = len(self.shadow)
        stats.accesses_processed = self._processed
        stats.accesses_filtered = self.filter.filtered
        return stats

    @property
    def clock_size(self) -> int:
        return self._hb.clock_size() if self._hb else 0

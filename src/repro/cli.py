"""Command-line entry point: ``python -m repro`` / the ``repro`` script.

Subcommands::

    repro list                 # available experiments
    repro run <exp> [...]      # regenerate one or more tables/figures
    repro all                  # every experiment, in paper order
    repro suite                # microbenchmark suite summary

Examples::

    repro run table3
    repro run fig10 fig11
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .experiments import EXPERIMENTS

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Rethinking Data Race Detection in MPI-RMA "
            "Programs' (Correctness@SC-W 2023)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one or more experiments")
    run.add_argument("experiments", nargs="+", metavar="EXP",
                     help=f"one of: {', '.join(EXPERIMENTS)}")
    run.add_argument("--json", action="store_true",
                     help="emit machine-readable JSON instead of tables")

    sub.add_parser("all", help="run every experiment in paper order")

    suite = sub.add_parser("suite", help="microbenchmark suite summary")
    suite.add_argument("--names", action="store_true",
                       help="also print every generated code name")
    return parser


def _jsonable(value):
    """Best-effort conversion of experiment payloads to JSON types."""
    import dataclasses

    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _jsonable(dataclasses.asdict(value))
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def _run_one(exp_id: str, *, as_json: bool = False) -> int:
    fn = EXPERIMENTS.get(exp_id)
    if fn is None:
        print(f"unknown experiment {exp_id!r}; try 'repro list'",
              file=sys.stderr)
        return 2
    t0 = time.perf_counter()
    result = fn()
    dt = time.perf_counter() - t0
    if as_json:
        import json

        print(json.dumps({
            "experiment": result.exp_id,
            "title": result.title,
            "seconds": round(dt, 3),
            "data": _jsonable(result.data),
        }, indent=2))
    else:
        print(result)
        print(f"[{exp_id} regenerated in {dt:.1f}s]\n")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "list":
        for exp_id, fn in EXPERIMENTS.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{exp_id:8s} {doc}")
        return 0

    if args.command == "run":
        status = 0
        for exp_id in args.experiments:
            status = max(status, _run_one(exp_id, as_json=args.json))
        return status

    if args.command == "all":
        status = 0
        for exp_id in EXPERIMENTS:
            status = max(status, _run_one(exp_id))
        return status

    if args.command == "suite":
        from .microbench import generate_suite

        suite = generate_suite()
        races = sum(1 for s in suite if s.racy)
        print(f"{len(suite)} codes: {races} race / {len(suite) - races} safe")
        if args.names:
            for spec in suite:
                print(f"  {spec.name}")
        return 0

    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

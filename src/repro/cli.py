"""Command-line entry point: ``python -m repro`` / the ``repro`` script.

Subcommands::

    repro list                 # available experiments
    repro run <exp> [...]      # regenerate one or more tables/figures
    repro all                  # every experiment, in paper order
    repro suite                # microbenchmark suite summary
    repro record <app>         # record an application trace to disk
    repro analyze <trace>      # (sharded) post-mortem race analysis
    repro explain <trace>      # annotated race forensics for a trace
    repro serve                # crash-safe analysis daemon (HTTP)
    repro submit <trace>       # submit a trace to a running daemon
    repro jobs                 # inspect a daemon's job table

Examples::

    repro run table3
    repro run fig10 fig11
    repro record minivite --ranks 8 -o mv.trace
    repro analyze mv.trace --detector our --jobs 4
    repro analyze mv.trace --trace-out mv.chrome.json --report-html mv.html
    repro explain mv.trace --jobs 4
    repro serve --state /tmp/svc --port 8787
    repro submit mv.trace --server http://127.0.0.1:8787 --wait

Exit codes are a contract (see :mod:`repro.exitcodes`): 0 success,
1 gate violation, 2 usage/operational error, 3 recorded app failed,
4 partial (resumable) analysis, 5 submitted job failed, 6 server
unavailable, 7 trace diverged from its analyzed prefix, 143 SIGTERM.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from . import __version__
from .exitcodes import (
    EX_APP_FAILED,
    EX_DIVERGED,
    EX_ERROR,
    EX_GATE_FAILED,
    EX_JOB_FAILED,
    EX_OK,
    EX_PARTIAL,
    EX_UNAVAILABLE,
)
from .experiments import EXPERIMENTS

__all__ = ["main", "build_parser"]

#: CLI names of the recordable apps / detectors (kept in sync with
#: repro.pipeline lazily — importing the pipeline here would drag the
#: whole app layer into every CLI start)
_RECORD_APPS = ("cfd", "histogram", "minivite")
_DETECTORS = ("mc", "must", "our", "rma")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Rethinking Data Race Detection in MPI-RMA "
            "Programs' (Correctness@SC-W 2023)"
        ),
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one or more experiments")
    run.add_argument("experiments", nargs="+", metavar="EXP",
                     help=f"one of: {', '.join(EXPERIMENTS)}")
    run.add_argument("--json", action="store_true",
                     help="emit machine-readable JSON instead of tables")
    run.add_argument("--trace-out", default=None, metavar="PATH",
                     help="export the run's event timeline as Chrome "
                          "trace-event JSON (chrome://tracing, Perfetto); "
                          "bounded by the REPRO_OBS_TIMELINE ring")
    _add_metrics_args(run)

    sub.add_parser("all", help="run every experiment in paper order")

    suite = sub.add_parser("suite", help="microbenchmark suite summary")
    suite.add_argument("--names", action="store_true",
                       help="also print every generated code name")

    rec = sub.add_parser(
        "record", help="run an application and record its trace",
        description="Run a simulated application with the streaming "
                    "recorder attached (no detector) and write the trace.",
    )
    rec.add_argument("app", choices=_RECORD_APPS,
                     help="application to record")
    rec.add_argument("--ranks", type=int, default=None, metavar="N",
                     help="simulated MPI ranks (default: per-app)")
    rec.add_argument("--size", type=int, default=None, metavar="S",
                     help="workload size knob (vertices / iterations / "
                          "samples, per app)")
    rec.add_argument("--inject-race", action="store_true",
                     help="inject the Fig. 9a duplicated-put race "
                          "(minivite only)")
    rec.add_argument("-o", "--out", default=None, metavar="PATH",
                     help="output trace path (default: <app>.trace)")
    rec.add_argument("--format", choices=("binary", "json"),
                     default="binary",
                     help="trace format: repro-trace-v2 chunked binary "
                          "(default) or v1 JSON lines")
    _add_metrics_args(rec)

    an = sub.add_parser(
        "analyze", help="post-mortem race analysis of a recorded trace",
        description="Stream a recorded trace (either format, auto-"
                    "detected) through a detector; --jobs shards the "
                    "analysis by rank over a multiprocessing pool.",
    )
    an.add_argument("trace", help="trace file written by 'repro record'")
    an.add_argument("--detector", choices=_DETECTORS, default="our",
                    help="detector to replay under (default: our)")
    an.add_argument("--jobs", type=int, default=1, metavar="N",
                    help="worker processes (default 1 = serial replay)")
    an.add_argument("--dispatch", choices=("queue", "file"),
                    default="queue",
                    help="parallel fan-out: batched bounded queues "
                         "(default) or per-worker file re-reads")
    an.add_argument("--batch-size", type=int, default=512, metavar="B",
                    help="events per queue batch (default 512)")
    an.add_argument("--timeout", type=float, default=None, metavar="SEC",
                    help="seconds without a worker heartbeat before it "
                         "counts as stalled and is replaced (default: "
                         "crash detection only)")
    an.add_argument("--retries", type=int, default=2, metavar="R",
                    help="re-runs of a dead worker's shard-group before "
                         "degrading to serial replay (default 2; file "
                         "dispatch only)")
    an.add_argument("--salvage", action="store_true",
                    help="best-effort read of damaged traces: quarantine "
                         "corrupt/truncated chunks instead of aborting, "
                         "and report the loss")
    an.add_argument("--ckpt-dir", default=None, metavar="DIR",
                    help="write repro-ckpt-v1 checkpoints of in-flight "
                         "analysis state to DIR; worker retries resume "
                         "mid-trace instead of replaying from byte 0")
    an.add_argument("--ckpt-every", type=int, default=4, metavar="N",
                    help="checkpoint cadence in trace chunks (default 4)")
    an.add_argument("--deadline-s", type=float, default=None, metavar="SEC",
                    help="wall-clock budget: past it the analysis "
                         "checkpoints, stops, and reports a partial "
                         "verdict (exit code 4, resumable with --resume; "
                         "needs --ckpt-dir)")
    an.add_argument("--max-rss-mb", type=int, default=None, metavar="MB",
                    help="per-worker memory high-watermark: past it a "
                         "worker checkpoints and is recycled (serial: "
                         "stops like --deadline-s; needs --ckpt-dir)")
    an.add_argument("--follow", action="store_true",
                    help="tail a live-growing trace: at end-of-file wait "
                         "for more chunks instead of finishing; requires "
                         "--ckpt-dir (progress checkpoints at chunk "
                         "boundaries survive kill -9)")
    an.add_argument("--follow-timeout-s", type=float, default=None,
                    metavar="SEC",
                    help="with --follow: stop (partial, resumable) after "
                         "SEC seconds without new chunks or a trailer")
    an.add_argument("--resume", default=None, metavar="DIR",
                    help="resume from the newest valid checkpoint in DIR "
                         "(implies --ckpt-dir DIR)")
    an.add_argument("--json", action="store_true",
                    help="emit the full machine-readable report")
    an.add_argument("--trace-out", default=None, metavar="PATH",
                    help="export the full trace as Chrome trace-event "
                         "JSON with detected races overlaid")
    an.add_argument("--report-html", default=None, metavar="PATH",
                    help="write a self-contained HTML race report "
                         "(race cards + per-rank timeline lanes)")
    _add_metrics_args(an)

    ex = sub.add_parser(
        "explain", help="annotated race forensics for a recorded trace",
        description="Analyze a trace and print, per detected race, the "
                    "racing pair with both source locations, the "
                    "window's epoch/sync state at detection time, and "
                    "the surrounding per-rank event timeline.",
    )
    ex.add_argument("trace", help="trace file written by 'repro record'")
    ex.add_argument("--detector", choices=_DETECTORS, default="our",
                    help="detector to replay under (default: our)")
    ex.add_argument("--jobs", type=int, default=1, metavar="N",
                    help="worker processes (default 1 = serial replay)")
    ex.add_argument("--context", type=int, default=8, metavar="K",
                    help="surrounding timeline events shown per rank "
                         "(default 8)")
    ex.add_argument("--json", action="store_true",
                    help="emit the repro-forensics-v1 bundles as JSON")
    ex.add_argument("--html", default=None, metavar="PATH",
                    help="also write the self-contained HTML report")

    sc = sub.add_parser(
        "scenarios",
        help="labeled scenario corpus: generate / score / gate",
        description="Seeded, ground-truth-labeled MPI-RMA scenarios "
                    "(RMARaceBench-style) and the detector scoring "
                    "harness over them.",
    )
    scsub = sc.add_subparsers(dest="scenarios_cmd", required=True)

    gen = scsub.add_parser(
        "generate", help="compose a labeled corpus (deterministic per seed)")
    gen.add_argument("--seed", type=int, default=7, metavar="S",
                     help="corpus seed; the same seed always produces a "
                          "byte-identical corpus (default 7)")
    gen.add_argument("-n", "--count", type=int, default=60, metavar="N",
                     help="number of scenarios (default 60)")
    gen.add_argument("-o", "--out", default="scenarios.jsonl", metavar="PATH",
                     help="output corpus, JSON lines (default "
                          "scenarios.jsonl; '-' for stdout)")
    _add_metrics_args(gen)

    sco = scsub.add_parser(
        "score", help="score every detector against a labeled corpus")
    sco.add_argument("corpus", help="corpus written by 'scenarios generate'")
    sco.add_argument("-o", "--out", default=None, metavar="PATH",
                     help="write the repro-scenarios-v1 JSON report here "
                          "(default: stdout)")
    sco.add_argument("--tools", default=None, metavar="T1,T2",
                     help="comma-separated tool subset (default: all)")
    _add_metrics_args(sco)

    gate = scsub.add_parser(
        "gate", help="fail when a detector scores below the floor")
    gate.add_argument("corpus", nargs="?", default=None,
                      help="corpus to score (omit with --report)")
    gate.add_argument("--report", default=None, metavar="PATH",
                      help="gate a previously written score report "
                           "instead of re-scoring")
    gate.add_argument("--detector", default="our",
                      help="tool the floor applies to (default: our)")
    gate.add_argument("--min-precision", type=float, default=1.0,
                      metavar="P", help="per-category floor (default 1.0)")
    gate.add_argument("--min-recall", type=float, default=1.0,
                      metavar="R", help="per-category floor (default 1.0)")
    gate.add_argument("--include-hybrid", action="store_true",
                      help="also gate the hybrid local+remote categories "
                           "(default: non-hybrid only, the Table-3 claim)")
    _add_metrics_args(gate)

    srv = sub.add_parser(
        "serve", help="run the crash-safe analysis daemon",
        description="Serve trace analysis over HTTP with a durable "
                    "(journaled, fsync'd) job queue: after a hard kill, "
                    "a restart replays the journal and resumes every "
                    "in-flight analysis from its last checkpoint.",
    )
    srv.add_argument("--state", required=True, metavar="DIR",
                     help="daemon state directory (journal, traces, "
                          "checkpoints, verdict cache, serve.json)")
    srv.add_argument("--host", default="127.0.0.1",
                     help="bind address (default 127.0.0.1)")
    srv.add_argument("--port", type=int, default=0, metavar="P",
                     help="listen port (default 0 = ephemeral; the "
                          "chosen port is published in serve.json)")
    srv.add_argument("--workers", type=int, default=2, metavar="N",
                     help="analysis worker threads (default 2)")
    srv.add_argument("--max-queue", type=int, default=16, metavar="N",
                     help="admission bound on queued+running jobs; past "
                          "it submissions get 429 (default 16)")
    srv.add_argument("--tenant-cap", type=int, default=4, metavar="N",
                     help="concurrent live jobs per tenant (default 4)")
    srv.add_argument("--retries", type=int, default=2, metavar="R",
                     help="retries before a repeatedly failing job is "
                          "quarantined as poison (default 2)")
    srv.add_argument("--deadline-s", type=float, default=None, metavar="SEC",
                     help="per-job wall-clock budget (checkpoint + fail "
                          "past it; default: none)")
    srv.add_argument("--max-rss-mb", type=int, default=None, metavar="MB",
                     help="per-job memory high-watermark (default: none)")
    srv.add_argument("--ckpt-every", type=int, default=1, metavar="N",
                     help="per-job checkpoint cadence in trace chunks "
                          "(default 1 — the daemon favors resumability)")
    srv.add_argument("--drain-s", type=float, default=10.0, metavar="SEC",
                     help="graceful-drain budget on SIGTERM (default 10)")
    srv.add_argument("--cache-max", type=int, default=256, metavar="N",
                     help="verdict-cache entries kept before LRU eviction "
                          "(0 = unbounded; default %(default)s)")
    srv.add_argument("--max-body-mb", type=int, default=256, metavar="MB",
                     help="largest accepted trace upload (default 256)")
    srv.add_argument("--verbose", action="store_true",
                     help="log every HTTP request")

    sb = sub.add_parser(
        "submit", help="submit a trace to a running daemon",
        description="Upload a recorded trace to 'repro serve' and print "
                    "the accepted job; --wait polls to a terminal state "
                    "(riding out daemon restarts).",
    )
    sb.add_argument("trace", help="trace file written by 'repro record'")
    sb.add_argument("--server", default=None, metavar="URL",
                    help="daemon base URL, e.g. http://127.0.0.1:8787")
    sb.add_argument("--state", default=None, metavar="DIR",
                    help="discover the daemon via DIR/serve.json instead "
                         "of --server")
    sb.add_argument("--detector", choices=_DETECTORS, default="our",
                    help="detector to analyze under (default: our)")
    sb.add_argument("--tenant", default="default",
                    help="tenant name for admission accounting")
    sb.add_argument("--max-wait-s", type=float, default=0.0, metavar="SEC",
                    help="on 429/503 backpressure, retry with the server's "
                         "Retry-After plus jittered exponential backoff for "
                         "up to SEC seconds (default: no retry)")
    sb.add_argument("--wait", action="store_true",
                    help="poll until the job is done/failed/quarantined")
    sb.add_argument("--timeout-s", type=float, default=120.0, metavar="SEC",
                    help="--wait polling budget (default 120)")
    sb.add_argument("--json", action="store_true",
                    help="emit the final job record as JSON")

    jb = sub.add_parser(
        "jobs", help="inspect a running daemon's job table",
        description="List a daemon's jobs, or show one job by id.",
    )
    jb.add_argument("job", nargs="?", default=None,
                    help="job id to show (default: list all)")
    jb.add_argument("--server", default=None, metavar="URL",
                    help="daemon base URL")
    jb.add_argument("--state", default=None, metavar="DIR",
                    help="discover the daemon via DIR/serve.json")
    jb.add_argument("--json", action="store_true",
                    help="emit raw JSON")
    return parser


def _add_metrics_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--metrics", action="store_true",
                     help="print the observability metrics table "
                          "(counters, gauges, histograms, spans)")
    sub.add_argument("--metrics-json", default=None, metavar="PATH",
                     help="dump the metrics snapshot (repro-obs-v1 "
                          "JSON) to PATH")


def _atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path`` via tmp + fsync + ``os.replace``.

    Reports are consumed by CI and gating scripts; a SIGTERM or crash
    mid-write must leave either the old file or the new one on disk,
    never a torn hybrid that parses as a truncated result.
    """
    import os

    tmp = f"{path}.tmp"
    with open(tmp, "w") as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def _emit_metrics(snap, *, show: bool, json_path: Optional[str]) -> None:
    """Render/dump one registry snapshot for --metrics/--metrics-json."""
    from . import obs

    if snap is None:  # REPRO_OBS=off — emit an empty-but-valid snapshot
        snap = {"schema": "repro-obs-v1", "counters": {}, "gauges": {},
                "histograms": {}, "spans": {}}
    if show:
        print(obs.render_metrics(snap))
    if json_path:
        _atomic_write_text(json_path, obs.snapshot_to_json(snap) + "\n")


def _jsonable(value):
    """Best-effort conversion of experiment payloads to JSON types."""
    import dataclasses

    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _jsonable(dataclasses.asdict(value))
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def _run_one(exp_id: str, *, as_json: bool = False) -> int:
    fn = EXPERIMENTS.get(exp_id)
    if fn is None:
        print(f"unknown experiment {exp_id!r}; "
              f"valid names: {', '.join(EXPERIMENTS)}",
              file=sys.stderr)
        return EX_ERROR
    t0 = time.perf_counter()
    result = fn()
    dt = time.perf_counter() - t0
    if as_json:
        import json

        print(json.dumps({
            "experiment": result.exp_id,
            "title": result.title,
            "seconds": round(dt, 3),
            "data": _jsonable(result.data),
        }, indent=2))
    else:
        print(result)
        print(f"[{exp_id} regenerated in {dt:.1f}s]\n")
    return EX_OK


def _graceful_sigterm() -> None:
    """Turn SIGTERM into ``SystemExit(143)`` so cleanup actually runs.

    ``record`` and ``analyze`` hold resources a hard kill would leak:
    pooled worker processes (reaped in the engine's ``finally``) and
    ``<out>.tmp`` recorder files (removed by the writer's ``abort``).
    Python's default SIGTERM disposition ends the process without
    unwinding either, so the CLI converts the signal into an exception.
    Only the default handler is replaced — an embedder's own handler
    (or pytest's) stays untouched unless it is SIG_DFL.
    """
    import signal
    import threading

    if threading.current_thread() is not threading.main_thread():
        return  # pragma: no cover - signal API is main-thread only
    if signal.getsignal(signal.SIGTERM) == signal.SIG_DFL:
        signal.signal(signal.SIGTERM,
                      lambda signum, frame: sys.exit(128 + signum))


def main(argv: Optional[List[str]] = None) -> int:
    _graceful_sigterm()
    args = build_parser().parse_args(argv)

    if args.command == "list":
        for exp_id, fn in EXPERIMENTS.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{exp_id:8s} {doc}")
        return EX_OK

    if args.command == "run":
        from . import obs

        status = EX_OK
        # one fresh scope over every experiment: the detectors publish
        # into it and the CLI prints Table-4-consistent counts from it
        with obs.scope() as reg:
            for exp_id in args.experiments:
                status = max(status, _run_one(exp_id, as_json=args.json))
            if args.metrics or args.metrics_json:
                snap = reg.snapshot() if reg.enabled else None
                _emit_metrics(snap, show=args.metrics,
                              json_path=args.metrics_json)
            if args.trace_out:
                _write_chrome(args.trace_out,
                              timeline=(reg.timeline.snapshot()
                                        if reg.timeline.enabled else None))
        return status

    if args.command == "all":
        status = EX_OK
        for exp_id in EXPERIMENTS:
            status = max(status, _run_one(exp_id))
        return status

    if args.command == "suite":
        from .microbench import generate_suite

        suite = generate_suite()
        races = sum(1 for s in suite if s.racy)
        print(f"{len(suite)} codes: {races} race / {len(suite) - races} safe")
        if args.names:
            for spec in suite:
                print(f"  {spec.name}")
        return EX_OK

    if args.command == "record":
        return _record(args)

    if args.command == "analyze":
        return _analyze(args)

    if args.command == "explain":
        return _explain(args)

    if args.command == "scenarios":
        return _scenarios(args)

    if args.command == "serve":
        return _serve(args)

    if args.command == "submit":
        return _submit(args)

    if args.command == "jobs":
        return _jobs(args)

    return EX_ERROR  # pragma: no cover


def _write_chrome(path: str, *, timeline=None, trace_path=None,
                  nranks: int = 0, verdicts=()) -> None:
    """Write a Chrome trace-event file from either producer.

    ``trace_path`` re-streams a recorded trace (full fidelity);
    ``timeline`` exports a bounded repro-timeline-v1 snapshot.
    """
    from .obs.chrometrace import (
        chrome_events_from_timeline,
        chrome_events_from_trace,
        write_chrome_trace,
    )

    if trace_path is not None:
        from .pipeline import TraceReader

        reader = TraceReader(trace_path)
        events = chrome_events_from_trace(iter(reader), reader.nranks)
    else:
        events = chrome_events_from_timeline(timeline)
    n = write_chrome_trace(path, events, verdicts)
    print(f"chrome trace: {n} events -> {path}")


def _record(args) -> int:
    from . import obs
    from .mpi.errors import MpiSimError
    from .pipeline import record_app

    out = args.out or f"{args.app}.trace"
    with obs.scope() as reg:
        try:
            t0 = time.perf_counter()
            result = record_app(
                args.app, nranks=args.ranks, size=args.size,
                inject_race=args.inject_race, out=out, format=args.format,
            )
            dt = time.perf_counter() - t0
        except ValueError as exc:
            print(f"repro record: {exc}", file=sys.stderr)
            return EX_ERROR
        except MpiSimError as exc:
            # the *recorded application* misbehaved (deadlock, RMA
            # misuse): one line naming the failure, no partial trace
            # left behind
            print(f"repro record: {args.app} failed: "
                  f"{type(exc).__name__}: {exc}", file=sys.stderr)
            return EX_APP_FAILED
        if args.metrics or args.metrics_json:
            snap = reg.snapshot() if reg.enabled else None
            _emit_metrics(snap, show=args.metrics,
                          json_path=args.metrics_json)
    print(f"recorded {result.app} on {result.nranks} ranks: "
          f"{result.events} events -> {result.path} "
          f"({args.format}, {dt:.1f}s)")
    return EX_OK


def _analyze(args) -> int:
    from .mpi.errors import TraceFormatError, WorkerCrashedError
    from .pipeline import (
        CheckpointError,
        TraceDivergedError,
        analyze_trace,
        detector_display_name,
    )

    ckpt_dir = args.ckpt_dir
    resume = False
    if args.resume is not None:
        if ckpt_dir is not None and ckpt_dir != args.resume:
            print("repro analyze: --resume and --ckpt-dir disagree",
                  file=sys.stderr)
            return EX_ERROR
        ckpt_dir = args.resume
        resume = True
    try:
        result = analyze_trace(
            args.trace, detector=args.detector, jobs=args.jobs,
            dispatch=args.dispatch, batch_size=args.batch_size,
            timeout=args.timeout, retries=args.retries,
            salvage=args.salvage,
            ckpt_dir=ckpt_dir, ckpt_every=args.ckpt_every,
            deadline_s=args.deadline_s, max_rss_mb=args.max_rss_mb,
            resume=resume, follow=args.follow,
            follow_timeout_s=args.follow_timeout_s,
        )
    except TraceDivergedError as exc:
        # the trace on disk is not an extension of the analyzed prefix:
        # retrying cannot help and resuming would blend two histories —
        # a dedicated exit code so wrappers re-record instead of re-run
        print(f"repro analyze: DIVERGED: {exc}", file=sys.stderr)
        return EX_DIVERGED
    except (TraceFormatError, WorkerCrashedError, CheckpointError, OSError,
            ValueError) as exc:
        print(f"repro analyze: {exc}", file=sys.stderr)
        return EX_ERROR

    if args.metrics or args.metrics_json:
        _emit_metrics(result.obs, show=args.metrics,
                      json_path=args.metrics_json)
    if args.trace_out:
        try:
            _write_chrome(args.trace_out, trace_path=args.trace,
                          verdicts=result.verdicts)
        except OSError as exc:
            print(f"repro analyze: --trace-out failed: {exc}",
                  file=sys.stderr)
            return EX_ERROR
    if args.report_html:
        from .obs.htmlreport import render_html_report

        try:
            _atomic_write_text(args.report_html, render_html_report(
                result.to_dict(),
                title=f"repro race report — {args.trace}"))
        except OSError as exc:
            print(f"repro analyze: --report-html failed: {exc}",
                  file=sys.stderr)
            return EX_ERROR
        print(f"html report -> {args.report_html}")

    if args.json:
        import json

        print(json.dumps(result.to_dict(), indent=2))
        return EX_PARTIAL if result.partial else EX_OK

    name = detector_display_name(args.detector)
    print(f"{args.trace}: {result.events_total} events, "
          f"{result.nranks} ranks")
    print(f"detector {name!r}, jobs={result.jobs} "
          f"({result.dispatch} dispatch): "
          f"{result.events_per_sec:,.0f} events/s "
          f"in {result.wall_seconds:.2f}s")
    if result.jobs > 1:
        for stats in result.shard_stats:
            print(f"  shard {stats.shard}: {stats.events} events, "
                  f"peak {stats.peak_nodes} BST nodes, "
                  f"{stats.races} race(s)")
        if any(result.queue_peak):
            print(f"  queue depth peaks: {result.queue_peak}")
    if result.failed_workers:
        for failure in result.failed_workers:
            print(f"  worker {failure['worker']} {failure['reason']} "
                  f"(attempt {failure['attempt']}, "
                  f"shards {failure['shards']})")
        if result.retries:
            print(f"  recovered via {result.retries} worker retr"
                  f"{'y' if result.retries == 1 else 'ies'}")
        if result.degraded:
            print("  DEGRADED: missing shard-groups replayed serially")
    if result.salvage and (result.salvage["quarantined_chunks"]
                           or result.salvage["truncated"]):
        s = result.salvage
        print(f"  salvage: {len(s['quarantined_chunks'])} chunk(s) "
              f"quarantined, {s['events_lost']} event(s) lost"
              + (", file truncated" if s["truncated"] else ""))
    ck = result.checkpoint
    if ck:
        line = (f"  checkpoints: {ck['written']} written -> {ck['dir']} "
                f"(every {ck['every']} chunk(s))")
        if ck["recycles"]:
            line += f", {ck['recycles']} memory-guard recycle(s)"
        print(line)
        for rec in ck["resumed"]:
            print(f"  resumed lane {rec['lane']} from checkpoint "
                  f"#{rec['from_seq']}: {rec['events_skipped']} event(s) "
                  "skipped")
        for name in ck["quarantined"]:
            print(f"  quarantined corrupt checkpoint: {name}")
    print(f"races: {result.races}")
    for verdict in result.verdicts[:5]:
        stored, new = verdict["stored"], verdict["new"]
        print(f"  rank {verdict['rank']} win {verdict['window']}: "
              f"{new['type']} {new['file']}:{new['line']} vs "
              f"{stored['type']} {stored['file']}:{stored['line']}")
    if result.races > 5:
        print(f"  ... and {result.races - 5} more")
    if result.partial:
        frac = result.analyzed_fraction
        pct = f"{frac:.1%} of" if frac is not None else "part of"
        print(f"PARTIAL: {pct} the trace analyzed before the "
              f"{ck['stopped'] or 'resource'} guard stopped the run; "
              f"resume with: repro analyze {args.trace} --resume {ck['dir']}")
        return EX_PARTIAL
    return EX_OK


def _explain(args) -> int:
    from .core.forensics import render_explain_all
    from .detectors.base import Detector
    from .mpi.errors import TraceFormatError, WorkerCrashedError
    from .pipeline import analyze_trace

    if args.context < 1:
        print("repro explain: --context must be positive", file=sys.stderr)
        return EX_ERROR
    # the bundle is captured at detection time inside the (possibly
    # forked) workers, so the context width is set before analysis
    Detector.FORENSICS_CONTEXT = args.context
    try:
        result = analyze_trace(args.trace, detector=args.detector,
                               jobs=args.jobs)
    except (TraceFormatError, WorkerCrashedError, OSError,
            ValueError) as exc:
        print(f"repro explain: {exc}", file=sys.stderr)
        return EX_ERROR

    if args.json:
        import json

        print(json.dumps({"trace": args.trace,
                          "detector": result.detector,
                          "races": result.races,
                          "forensics": result.forensics}, indent=2))
    elif not result.races:
        print(f"{args.trace}: no races detected "
              f"(detector {result.detector!r}) — nothing to explain.")
    elif not result.forensics:
        print(f"{args.trace}: {result.races} race(s) detected, but no "
              f"forensics were captured — is REPRO_OBS=off?")
        for verdict in result.verdicts:
            stored, new = verdict["stored"], verdict["new"]
            print(f"  rank {verdict['rank']} win {verdict['window']}: "
                  f"{new['type']} {new['file']}:{new['line']} vs "
                  f"{stored['type']} {stored['file']}:{stored['line']}")
    else:
        print(render_explain_all(result.forensics))
    if args.html:
        from .obs.htmlreport import render_html_report

        _atomic_write_text(args.html, render_html_report(
            result.to_dict(),
            title=f"repro race report — {args.trace}"))
        print(f"html report -> {args.html}")
    return EX_OK


def _scenarios(args) -> int:
    import json

    from . import obs
    from .scenarios import (
        TOOL_NAMES,
        corpus_to_jsonl,
        gate_violations,
        generate_corpus,
        load_corpus,
        score_corpus,
    )

    with obs.scope() as reg:
        if args.scenarios_cmd == "generate":
            corpus = generate_corpus(args.seed, args.count)
            payload = corpus_to_jsonl(corpus)
            if args.out == "-":
                sys.stdout.write(payload)
            else:
                _atomic_write_text(args.out, payload)
                racy = sum(1 for sc in corpus if sc.racy)
                styles = len({sc.epoch_style for sc in corpus})
                shapes = len({sc.access_shape for sc in corpus})
                print(f"{len(corpus)} scenarios (seed {args.seed}): "
                      f"{racy} racy / {len(corpus) - racy} controls, "
                      f"{styles} epoch styles x {shapes} access shapes "
                      f"-> {args.out}")
            status = EX_OK

        elif args.scenarios_cmd == "score":
            tools = (tuple(args.tools.split(",")) if args.tools
                     else TOOL_NAMES)
            unknown = [t for t in tools if t not in TOOL_NAMES]
            if unknown:
                print(f"repro scenarios score: unknown tool(s) "
                      f"{', '.join(unknown)}; valid: "
                      f"{', '.join(TOOL_NAMES)}", file=sys.stderr)
                return EX_ERROR
            try:
                corpus = load_corpus(args.corpus)
            except (OSError, ValueError) as exc:
                print(f"repro scenarios score: {exc}", file=sys.stderr)
                return EX_ERROR
            report = score_corpus(corpus, tools)
            text = json.dumps(report, indent=2) + "\n"
            if args.out:
                _atomic_write_text(args.out, text)
                print(f"scored {len(corpus)} scenarios with "
                      f"{len(tools)} tool(s) -> {args.out}")
            else:
                sys.stdout.write(text)
            status = EX_OK

        else:  # gate
            if (args.corpus is None) == (args.report is None):
                print("repro scenarios gate: give a corpus or --report "
                      "(not both)", file=sys.stderr)
                return EX_ERROR
            try:
                if args.report is not None:
                    with open(args.report) as fh:
                        report = json.load(fh)
                else:
                    report = score_corpus(load_corpus(args.corpus))
            except (OSError, ValueError) as exc:
                print(f"repro scenarios gate: {exc}", file=sys.stderr)
                return EX_ERROR
            violations = gate_violations(
                report, detector=args.detector,
                min_precision=args.min_precision,
                min_recall=args.min_recall,
                include_hybrid=args.include_hybrid,
            )
            scope = "all" if args.include_hybrid else "non-hybrid"
            if violations:
                for v in violations:
                    print(f"GATE: {v}")
                print(f"gate FAILED: {len(violations)} violation(s) "
                      f"({scope} categories, floor "
                      f"P>={args.min_precision} R>={args.min_recall})")
                status = EX_GATE_FAILED
            else:
                what = "category" if args.include_hybrid \
                    else "non-hybrid category"
                print(f"gate passed: {args.detector!r} meets "
                      f"P>={args.min_precision} R>={args.min_recall} on "
                      f"every {what}")
                status = EX_OK

        if args.metrics or args.metrics_json:
            snap = reg.snapshot() if reg.enabled else None
            _emit_metrics(snap, show=args.metrics,
                          json_path=args.metrics_json)
    return status


def _serve(args) -> int:
    from .serve import ServeConfig, serve_forever

    try:
        config = ServeConfig(
            state_dir=args.state, host=args.host, port=args.port,
            workers=args.workers, max_queue=args.max_queue,
            tenant_cap=args.tenant_cap, retries=args.retries,
            deadline_s=args.deadline_s, max_rss_mb=args.max_rss_mb,
            ckpt_every=args.ckpt_every, drain_s=args.drain_s,
            max_body_mb=args.max_body_mb,
            cache_max=args.cache_max if args.cache_max > 0 else None,
            quiet=not args.verbose,
        )
        return serve_forever(config)
    except (OSError, ValueError) as exc:
        print(f"repro serve: {exc}", file=sys.stderr)
        return EX_ERROR


def _job_line(job: dict) -> str:
    tail = ""
    if job.get("state") == "done":
        tail = (f"  races={job.get('races')}"
                + ("  (cached)" if job.get("cached") else ""))
    elif job.get("reason"):
        tail = f"  {job['reason']}"
    return (f"{job.get('id', '?'):8s} {job.get('state', '?'):12s} "
            f"{job.get('detector', '?'):5s} tenant={job.get('tenant', '?')}"
            f"{tail}")


def _submit(args) -> int:
    import json

    from .serve import (
        ServerUnavailable,
        poll_job,
        resolve_server,
        submit_trace,
        submit_with_retry,
    )

    attempts = 1
    try:
        base = resolve_server(args.server, args.state)
        if args.max_wait_s > 0:
            status, headers, payload, attempts = submit_with_retry(
                base, args.trace, detector=args.detector,
                tenant=args.tenant, max_wait_s=args.max_wait_s)
        else:
            status, headers, payload = submit_trace(
                base, args.trace, detector=args.detector, tenant=args.tenant)
    except ServerUnavailable as exc:
        print(f"repro submit: {exc}", file=sys.stderr)
        return EX_UNAVAILABLE
    except OSError as exc:
        print(f"repro submit: {exc}", file=sys.stderr)
        return EX_ERROR
    if status in (429, 503):
        retry = headers.get("Retry-After", "?")
        tried = f" after {attempts} attempt(s)" if attempts > 1 else ""
        print(f"repro submit: rejected{tried}: {payload.get('error')} "
              f"(Retry-After: {retry}s)", file=sys.stderr)
        return EX_UNAVAILABLE
    if status not in (200, 202):
        print(f"repro submit: HTTP {status}: {payload.get('error', payload)}",
              file=sys.stderr)
        return EX_ERROR
    job = payload
    if args.wait and job.get("state") not in ("done", "failed",
                                              "quarantined"):
        job = poll_job(base, job["id"], timeout_s=args.timeout_s)
    if args.json:
        print(json.dumps(job, indent=2))
    else:
        print(_job_line(job))
    state = job.get("state")
    if state == "done":
        return EX_OK
    if state in ("failed", "quarantined"):
        return EX_JOB_FAILED
    # accepted but not waited for (or still live at the poll deadline)
    return EX_OK if not args.wait else EX_PARTIAL


def _jobs(args) -> int:
    import json

    from .serve import ServerUnavailable, request, resolve_server

    try:
        base = resolve_server(args.server, args.state)
        if args.job:
            status, _, payload = request(f"{base}/jobs/{args.job}")
        else:
            status, _, payload = request(f"{base}/jobs")
    except ServerUnavailable as exc:
        print(f"repro jobs: {exc}", file=sys.stderr)
        return EX_UNAVAILABLE
    if status != 200:
        print(f"repro jobs: HTTP {status}: {payload.get('error', payload)}",
              file=sys.stderr)
        return EX_ERROR
    if args.json:
        print(json.dumps(payload, indent=2))
        return EX_OK
    jobs = payload.get("jobs", [payload] if args.job else [])
    if not jobs:
        print("no jobs")
    for job in jobs:
        print(_job_line(job))
    return EX_OK


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Byte-address intervals.

All detectors in this package reason about *consecutive* byte ranges of a
process-local virtual address space (the paper only considers consecutive
accesses: "all the addresses in the interval are accessed").  We represent
a range as a half-open interval ``[lo, hi)`` of non-negative integers so
that adjacency and intersection tests are exact and unambiguous:

* ``[2, 5)`` and ``[5, 9)`` are *adjacent* (mergeable, non-overlapping),
* ``[2, 5)`` and ``[4, 9)`` *overlap* on ``[4, 5)``.

The paper's figures use inclusive notation (``[2...12]``); helpers
:func:`Interval.from_inclusive` / :meth:`Interval.to_inclusive` convert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

__all__ = ["Interval"]


@dataclass(frozen=True, slots=True, order=True)
class Interval:
    """A half-open byte range ``[lo, hi)`` with ``lo < hi``.

    Instances are immutable, hashable, and totally ordered by
    ``(lo, hi)`` which is the order the interval BSTs rely on.
    """

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if not isinstance(self.lo, int) or not isinstance(self.hi, int):
            raise TypeError(f"interval bounds must be ints, got {self.lo!r}, {self.hi!r}")
        if self.lo < 0:
            raise ValueError(f"negative address {self.lo}")
        if self.lo >= self.hi:
            raise ValueError(f"empty or inverted interval [{self.lo}, {self.hi})")

    # -- constructors --------------------------------------------------

    @classmethod
    def from_inclusive(cls, first: int, last: int) -> "Interval":
        """Build from the paper's inclusive ``[first...last]`` notation."""
        return cls(first, last + 1)

    @classmethod
    def point(cls, addr: int, size: int = 1) -> "Interval":
        """An access of ``size`` bytes starting at ``addr``."""
        return cls(addr, addr + size)

    # -- basic queries --------------------------------------------------

    def to_inclusive(self) -> Tuple[int, int]:
        """Return ``(first, last)`` inclusive bounds (paper notation)."""
        return self.lo, self.hi - 1

    def __len__(self) -> int:
        return self.hi - self.lo

    def __contains__(self, addr: int) -> bool:
        return self.lo <= addr < self.hi

    def contains_interval(self, other: "Interval") -> bool:
        """True when ``other`` lies fully inside ``self``."""
        return self.lo <= other.lo and other.hi <= self.hi

    def overlaps(self, other: "Interval") -> bool:
        """True when the two ranges share at least one byte."""
        return self.lo < other.hi and other.lo < self.hi

    def is_adjacent(self, other: "Interval") -> bool:
        """True when the ranges touch without overlapping."""
        return self.hi == other.lo or other.hi == self.lo

    def touches(self, other: "Interval") -> bool:
        """Overlapping or adjacent (i.e. their union is one interval)."""
        return self.lo <= other.hi and other.lo <= self.hi

    # -- set-like algebra ------------------------------------------------

    def intersection(self, other: "Interval") -> Optional["Interval"]:
        """The shared range, or ``None`` when disjoint."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        return Interval(lo, hi) if lo < hi else None

    def union(self, other: "Interval") -> "Interval":
        """Union of two *touching* intervals (raises otherwise)."""
        if not self.touches(other):
            raise ValueError(f"cannot union disjoint intervals {self} and {other}")
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def difference(self, other: "Interval") -> Tuple[Optional["Interval"], Optional["Interval"]]:
        """``self \\ other`` as ``(left_part, right_part)`` (either may be None).

        This is the geometric half of the paper's fragmentation step: the
        left part is ``l_frag`` and the right part is ``r_frag`` when
        ``self`` is the stored access and ``other`` the new one (Fig. 6).
        """
        left = Interval(self.lo, other.lo) if self.lo < other.lo else None
        right = Interval(other.hi, self.hi) if other.hi < self.hi else None
        if not self.overlaps(other):
            return (self, None)
        return (left, right)

    def split_at(self, *cuts: int) -> Iterator["Interval"]:
        """Yield the sub-intervals delimited by the in-range ``cuts``."""
        points = sorted({c for c in cuts if self.lo < c < self.hi})
        lo = self.lo
        for c in points:
            yield Interval(lo, c)
            lo = c
        yield Interval(lo, self.hi)

    def shift(self, delta: int) -> "Interval":
        """Translate by ``delta`` bytes (used to map window offsets to addresses)."""
        return Interval(self.lo + delta, self.hi + delta)

    # -- display ---------------------------------------------------------

    def __str__(self) -> str:  # paper-style inclusive rendering
        first, last = self.to_inclusive()
        return f"[{first}]" if first == last else f"[{first}...{last}]"

"""Access-type combination — paper Table 1.

When the fragmentation step (§4.1) creates the ``intersection_frag`` of a
stored access and a new access, the fragment must carry a single access
type and a single debug info.  Table 1 of the paper defines the result:

* an RMA access *prevails* over a local access,
* a WRITE access *prevails* over a READ access,
* on a tie (same access type) the debug info of the *most recent*
  access is kept.

The red cells of Table 1 (a race may exist) are never reached during
fragmentation because :func:`repro.core.insertion.insert_access` only
fragments after the race check passed; they are still representable here
(`combined_type` is total) so the table can be regenerated and tested
exhaustively.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Tuple

from .access import AccessType, MemoryAccess

__all__ = ["combined_type", "combine_accesses", "table1_rows",
           "MIXED_ACCUM_OP"]

#: accumulate marker of a fragment built from accesses that were not
#: same-op atomics.  It keeps ``is_atomic`` true — the same-*origin*
#: accumulate-ordering exemption must survive combination — but can
#: never equal a real reduction op, so the same-*op* exemption cannot
#: fire against it: the fragment stands for several accesses of which
#: at least one would conflict with any later cross-origin accumulate.
MIXED_ACCUM_OP = "<mixed>"


def _rank(t: AccessType) -> Tuple[int, int]:
    """Dominance key: RMA beats local, then WRITE beats READ."""
    return (1 if t.is_rma else 0, 1 if t.is_write else 0)


def combined_type(stored: AccessType, new: AccessType) -> Tuple[AccessType, int]:
    """Resulting type of an intersection fragment, per Table 1.

    Returns ``(type, which)`` where ``which`` is 1 when the *stored*
    access's type (and debug info) wins and 2 when the *new* one wins —
    mirroring the ``*-1`` / ``*-2`` suffixes of the paper's table.  Ties
    keep the most recent access (the new one, ``which == 2``).
    """
    if _rank(new) >= _rank(stored):
        return new, 2
    return stored, 1


def combine_accesses(stored: MemoryAccess, new: MemoryAccess) -> MemoryAccess:
    """Build the ``intersection_frag`` payload for two intersecting accesses.

    The caller is responsible for restricting the result to the actual
    geometric intersection; this function only decides type/provenance.
    """
    _, which = combined_type(stored.type, new.type)
    winner = new if which == 2 else stored
    inter = stored.interval.intersection(new.interval)
    if inter is None:
        raise ValueError(f"accesses do not intersect: {stored} vs {new}")
    frag = winner.with_interval(inter)
    if (
        (stored.is_atomic or new.is_atomic)
        and stored.accum_op != new.accum_op
    ):
        # e.g. same-origin Accumulate(sum) then Accumulate(max): exempt
        # from racing with each other (accumulate ordering), but the
        # fragment must not inherit a single op — a later cross-origin
        # accumulate matching the winner's op would wrongly pass the
        # same-op atomicity exemption and hide a real race
        frag = replace(frag, accum_op=MIXED_ACCUM_OP)
    return frag


def table1_rows() -> list[list[str]]:
    """Regenerate paper Table 1 as a list of rows of cell strings.

    Cells show ``<Type>-<which>`` exactly like the paper, with ``x``
    substituted for the red data-race cells (see
    :func:`repro.intervals.conflict.types_conflict`).
    """
    from .conflict import types_conflict  # local import: avoid cycle

    order = [
        AccessType.LOCAL_READ,
        AccessType.LOCAL_WRITE,
        AccessType.RMA_READ,
        AccessType.RMA_WRITE,
    ]
    rows: list[list[str]] = []
    for stored in order:
        row: list[str] = [f"{stored.short}-1"]
        for new in order:
            if types_conflict(stored, new):
                row.append("x")
            else:
                t, which = combined_type(stored, new)
                row.append(f"{t.short}-{which}")
        rows.append(row)
    return rows

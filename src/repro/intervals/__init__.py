"""Interval and memory-access algebra shared by every detector.

Public surface:

* :class:`Interval` — half-open byte ranges with exact overlap/adjacency,
* :class:`AccessType`, :class:`DebugInfo`, :class:`MemoryAccess`,
* :func:`combined_type` / :func:`combine_accesses` — paper Table 1,
* :func:`is_race` / :func:`is_race_legacy` — the race predicates,
* :func:`fig3_matrix` — the paper's Figure 3 regenerated from semantics.
"""

from .access import AccessType, DebugInfo, MemoryAccess
from .access import make_access
from .combine import combine_accesses, combined_type, table1_rows
from .conflict import (
    Caller,
    Op,
    Placement,
    fig3_matrix,
    format_fig3,
    is_race,
    is_race_legacy,
    types_conflict,
)
from .interval import Interval

__all__ = [
    "AccessType",
    "Caller",
    "DebugInfo",
    "Interval",
    "MemoryAccess",
    "Op",
    "Placement",
    "combine_accesses",
    "combined_type",
    "fig3_matrix",
    "format_fig3",
    "is_race",
    "is_race_legacy",
    "make_access",
    "table1_rows",
    "types_conflict",
]

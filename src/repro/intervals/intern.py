"""Interned-id tables shared by every flat-core detector in a process.

The flat detector core (:mod:`repro.bst.flat`,
:mod:`repro.core.flatcore`) stores each access as a plain 9-tuple of
ints — no :class:`MemoryAccess` objects on the hot path.  The two
non-integer fields are interned here:

* :data:`SITES` maps a :class:`DebugInfo` (filename, line) to a small
  int and back,
* :data:`ACCUMS` maps an accumulate-op string (or ``None``) to a small
  int and back; id 0 is reserved for ``None`` so ``rec[7]`` doubles as
  the ``is_atomic`` truth value.

Both tables are process-wide singletons on purpose: every detector in
the process shares one id space, so records can move between stores
(and between a detector and a race report) without translation.  Ids
are *process-local* — checkpoints always resolve them back to strings
(:meth:`repro.bst.flat.FlatIntervalStore.save_state`), never persist
raw ids.

Interning is bijective, which is what makes tuple equality/hashing on
records agree exactly with :class:`MemoryAccess` equality/hashing —
the property the flat core's ``Counter``-based insertion delta and the
object-core differential tests rely on.

Record layout (index → field)::

    0 lo   1 hi   2 type(int)   3 site id   4 origin
    5 seq  6 flush_gen          7 accum id  8 excl_epoch (int|None)
"""

from __future__ import annotations

import threading
from typing import Hashable, List, Optional, Tuple

from .access import AccessType, DebugInfo, MemoryAccess
from .combine import MIXED_ACCUM_OP
from .interval import Interval

__all__ = [
    "ACCUMS",
    "MIXED_ID",
    "SITES",
    "InternTable",
    "access_to_rec",
    "rec_to_access",
]

#: the flat access record: (lo, hi, type, site, origin, seq, flush_gen,
#: accum, excl_epoch) — see module docstring for the index map
Rec = Tuple[int, int, int, int, int, int, int, int, Optional[int]]


class InternTable:
    """Append-only bidirectional value ↔ small-int map.

    The hit path is a single dict probe; the miss path takes a lock so
    concurrent analyses (``repro serve`` worker threads) can never mint
    two ids for one value.  Ids are never reused or reordered.
    """

    __slots__ = ("_ids", "_vals", "_lock")

    def __init__(self, seed: Tuple[Hashable, ...] = ()) -> None:
        self._vals: List = list(seed)
        self._ids = {v: i for i, v in enumerate(self._vals)}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._vals)

    def id_of(self, value: Hashable) -> int:
        i = self._ids.get(value)
        if i is None:
            with self._lock:
                i = self._ids.get(value)
                if i is None:
                    self._vals.append(value)
                    i = len(self._vals) - 1
                    self._ids[value] = i
        return i

    def value(self, i: int):
        return self._vals[i]


#: (filename, line) provenance table — seeded lazily by the first access
SITES = InternTable()

#: accumulate-op table; id 0 == ``None`` (not atomic), so ``rec[7]``
#: is truthy exactly when the access is atomic
ACCUMS = InternTable(seed=(None,))

#: interned id of the §4.1 mixed-accumulate sentinel (see
#: :data:`repro.intervals.combine.MIXED_ACCUM_OP`)
MIXED_ID = ACCUMS.id_of(MIXED_ACCUM_OP)


def access_to_rec(access: MemoryAccess) -> Rec:
    """Intern one :class:`MemoryAccess` into a flat record tuple."""
    iv = access.interval
    return (
        iv.lo,
        iv.hi,
        int(access.type),
        SITES.id_of(access.debug),
        access.origin,
        access.seq,
        access.flush_gen,
        ACCUMS.id_of(access.accum_op),
        access.excl_epoch,
    )


def rec_to_access(rec: Rec) -> MemoryAccess:
    """Materialize a record back into an equal :class:`MemoryAccess`."""
    return MemoryAccess(
        Interval(rec[0], rec[1]),
        AccessType(rec[2]),
        SITES.value(rec[3]),
        rec[4],
        rec[5],
        rec[6],
        ACCUMS.value(rec[7]),
        rec[8],
    )

"""Memory accesses as seen by the data-race detectors.

The paper distinguishes four access types (§2.1): an operation is either
local to the process (``Local_*``) or part of a remote memory access
(``RMA_*``), and is either a read (``*_Read``) or a write (``*_Write``).
A single MPI-RMA call contributes *two* accesses, one on each side:

====================  =======================  =======================
call                  origin side              target side
====================  =======================  =======================
``MPI_Put``           ``RMA_Read`` (source)    ``RMA_Write`` (window)
``MPI_Get``           ``RMA_Write`` (dest)     ``RMA_Read`` (window)
``Store``             ``Local_Write``          --
``Load``              ``Local_Read``           --
====================  =======================  =======================

Every access carries the exact byte interval touched, the issuing rank
(needed for the program-order refinement of §5.2) and debug information
(file/line), which RMA-Analyzer keeps so that race reports point at
source lines (Fig. 9b).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional

from .interval import Interval

__all__ = ["AccessType", "DebugInfo", "MemoryAccess"]


class AccessType(enum.IntEnum):
    """The four access kinds of the paper, §2.1."""

    LOCAL_READ = 0
    LOCAL_WRITE = 1
    RMA_READ = 2
    RMA_WRITE = 3

    @property
    def is_rma(self) -> bool:
        return self in (AccessType.RMA_READ, AccessType.RMA_WRITE)

    @property
    def is_local(self) -> bool:
        return not self.is_rma

    @property
    def is_write(self) -> bool:
        return self in (AccessType.LOCAL_WRITE, AccessType.RMA_WRITE)

    @property
    def is_read(self) -> bool:
        return not self.is_write

    def __str__(self) -> str:
        return {
            AccessType.LOCAL_READ: "LOCAL_READ",
            AccessType.LOCAL_WRITE: "LOCAL_WRITE",
            AccessType.RMA_READ: "RMA_READ",
            AccessType.RMA_WRITE: "RMA_WRITE",
        }[self]

    @property
    def short(self) -> str:
        """Compact paper-style name (``Local_R`` etc., Table 1 headers)."""
        return {
            AccessType.LOCAL_READ: "Local_R",
            AccessType.LOCAL_WRITE: "Local_W",
            AccessType.RMA_READ: "RMA_R",
            AccessType.RMA_WRITE: "RMA_W",
        }[self]


@dataclass(frozen=True, slots=True)
class DebugInfo:
    """Source location of the instruction that produced an access.

    Two fragments can only be merged when they carry *equal* debug info
    (§4.2): otherwise a later race report could blame the wrong line.
    """

    filename: str
    line: int

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}"


_UNKNOWN_DEBUG = DebugInfo("<unknown>", 0)


@dataclass(frozen=True, slots=True)
class MemoryAccess:
    """One recorded memory access: interval + type + provenance.

    ``origin`` is the rank that *issued* the operation (for an incoming
    ``MPI_Put`` recorded at the target, ``origin`` is the remote rank).
    ``seq`` is a monotonically increasing per-detector sequence number
    used only for deterministic tie-breaking and debugging.

    ``flush_gen`` is the issuer's ``MPI_Win_flush`` generation at the time
    the access was recorded (§6 discussion): a detector with *precise*
    flush support exempts pairs whose stored access was completed by a
    later flush of the same issuer.  Detectors that ignore flush leave it
    at 0.

    ``accum_op`` is set for the target-side write of an
    ``MPI_Accumulate``: the paper's §2.1 atomicity property guarantees
    element-wise atomicity of accumulates *with the same operation* on
    the same window, so two such writes do not race with each other
    (they still race with everything else).

    ``excl_epoch`` identifies the exclusive ``MPI_Win_lock`` epoch the
    access was issued under (None outside exclusive locks).  Exclusive
    lock epochs on the same (window, target) are mutually exclusive, so
    accesses from *different* exclusive epochs cannot race.
    """

    interval: Interval
    type: AccessType
    debug: DebugInfo = _UNKNOWN_DEBUG
    origin: int = 0
    seq: int = 0
    flush_gen: int = 0
    accum_op: Optional[str] = None
    excl_epoch: Optional[int] = None

    @property
    def is_atomic(self) -> bool:
        return self.accum_op is not None

    # -- convenience proxies ----------------------------------------------

    @property
    def lo(self) -> int:
        return self.interval.lo

    @property
    def hi(self) -> int:
        return self.interval.hi

    @property
    def is_rma(self) -> bool:
        return self.type.is_rma

    @property
    def is_write(self) -> bool:
        return self.type.is_write

    def overlaps(self, other: "MemoryAccess") -> bool:
        return self.interval.overlaps(other.interval)

    def with_interval(self, interval: Interval) -> "MemoryAccess":
        """The same access restricted/extended to another interval."""
        return replace(self, interval=interval)

    def same_site(self, other: "MemoryAccess") -> bool:
        """Same access type *and* same debug info — the §4.2 merge criterion.

        The flush generation must match too: merging a completed range
        into an uncompleted one would corrupt the §6 flush exemption.
        Likewise the accumulate operation: only same-op atomic ranges may
        coalesce, or the atomicity exemption would leak.
        """
        return (
            self.type == other.type
            and self.debug == other.debug
            and self.origin == other.origin
            and self.flush_gen == other.flush_gen
            and self.accum_op == other.accum_op
        )

    def __str__(self) -> str:
        return f"({self.interval}, {self.type})"


def make_access(
    lo: int,
    hi: int,
    type: AccessType,
    *,
    filename: str = "<unknown>",
    line: int = 0,
    origin: int = 0,
    seq: int = 0,
) -> MemoryAccess:
    """Terse constructor used heavily by tests."""
    return MemoryAccess(Interval(lo, hi), type, DebugInfo(filename, line), origin, seq)

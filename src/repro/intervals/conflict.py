"""The data-race predicate and the paper's Fig. 3 race matrix.

A data race (§2.2) occurs when two operations access the same memory
range, at least one of them is an RMA access and at least one of them is
a WRITE.  The paper's §5.2 refines this with *program order within a
process*: when a process performs a local access and **then** issues an
RMA operation on the same range, no race is possible — the local access
completed before the RMA call was even made.  The converse (RMA first,
local access second) races, because the RMA is asynchronous and may
complete at any point before the end of the epoch (completion property,
§2.1).  The original RMA-Analyzer ignored this refinement and therefore
reported false positives such as ``ll_load_get_inwindow_origin_safe``
(Table 2).

Two predicates are exported:

* :func:`is_race` — the *fixed* predicate used by "our contribution";
* :func:`is_race_legacy` — the order-insensitive predicate of the
  original RMA-Analyzer (used by the baseline detector).

:func:`fig3_matrix` regenerates the paper's Figure 3 by constructing the
actual access footprints of every operation pair on three processes and
evaluating :func:`is_race` on each side.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .access import AccessType, DebugInfo, MemoryAccess
from .interval import Interval

__all__ = [
    "types_conflict",
    "is_race",
    "is_race_legacy",
    "Op",
    "Caller",
    "Placement",
    "fig3_matrix",
    "format_fig3",
]


def types_conflict(stored: AccessType, new: AccessType) -> bool:
    """Table 1's red cells: conflicting pair assuming same-process recording order.

    ``stored`` was recorded before ``new`` by the same process.  A pair
    conflicts when at least one access is RMA, at least one is a write,
    *and* the stored access is not a completed local access followed by
    an RMA call (program order).
    """
    if not (stored.is_rma or new.is_rma):
        return False
    if not (stored.is_write or new.is_write):
        return False
    if stored.is_local and new.is_rma:
        return False  # local access completed before the RMA was issued
    return True


def is_race(stored: MemoryAccess, new: MemoryAccess) -> bool:
    """Race predicate of "our contribution" (order-aware within a process).

    ``stored`` is an access already recorded in the BST, ``new`` the
    incoming one.  Cross-process pairs have no program-order relation
    within an epoch (ordering property, §2.1), so any conflicting pair
    races; same-process pairs are exempted when the stored access is a
    local access that happened before the new RMA call was issued.
    Concurrent ``MPI_Accumulate`` writes *with the same operation* are
    exempt as well — the atomicity property (§2.1) guarantees their
    element-wise result regardless of order.
    """
    if not stored.interval.overlaps(new.interval):
        return False
    if not (stored.is_rma or new.is_rma):
        return False
    if not (stored.is_write or new.is_write):
        return False
    if stored.is_atomic and new.is_atomic and (
        stored.accum_op == new.accum_op  # element-wise atomic, any order
        or stored.origin == new.origin   # same-origin accumulate ordering
    ):
        return False
    if (
        stored.excl_epoch is not None
        and new.excl_epoch is not None
        and stored.excl_epoch != new.excl_epoch
    ):
        return False  # serialized by exclusive MPI_Win_lock epochs
    if stored.origin == new.origin:
        return types_conflict(stored.type, new.type)
    return True


def is_race_legacy(stored: MemoryAccess, new: MemoryAccess) -> bool:
    """Original RMA-Analyzer predicate: no program-order refinement.

    Flags e.g. ``Load(x); MPI_Get(x -> remote)`` by the same process —
    the false positives of Tables 2 and 3.  (Atomicity of same-op
    accumulates is honoured — the MPI layer guarantees it, the
    order-insensitivity bug is elsewhere.)
    """
    if not stored.interval.overlaps(new.interval):
        return False
    if not (stored.is_rma or new.is_rma):
        return False
    if not (stored.is_write or new.is_write):
        return False
    if stored.is_atomic and new.is_atomic and (
        stored.accum_op == new.accum_op
        or stored.origin == new.origin
    ):
        return False
    return True


# ---------------------------------------------------------------------------
# Figure 3: the race matrix on three processes
# ---------------------------------------------------------------------------


class Op(enum.Enum):
    """Operations that can appear in a Fig. 3 cell."""

    GET = "get"
    PUT = "put"
    LOAD = "load"
    STORE = "store"

    @property
    def is_onesided(self) -> bool:
        return self in (Op.GET, Op.PUT)


class Caller(enum.Enum):
    """Who issues the second operation (Fig. 3 column groups)."""

    ORIGIN1 = "origin1"
    TARGET = "target"
    ORIGIN2 = "origin2"


class Placement(enum.Enum):
    """Whether the local buffers involved sit inside the owner's window.

    Fig. 3 splits some cells into an "in window" and an "out window"
    sub-cell: a remote operation can only reach a local buffer when that
    buffer lies inside the owner's exposed window.
    """

    IN_WINDOW = "inwindow"
    OUT_WINDOW = "outwindow"


# Ranks of the three processes in the Fig. 3 scenario.
_O1, _T, _O2 = 0, 1, 2

# Site identifiers for the footprint model.  ``buf(r)`` is a process-local
# buffer of rank ``r``; ``win(r)`` is the accessed range of rank ``r``'s
# window.  Under Placement.IN_WINDOW a rank's buffer *is* its window
# range, making it remotely reachable.
_Site = Tuple[str, int]


@dataclass(frozen=True)
class _Footprint:
    """One access of an operation: which site, which type, which process's memory."""

    site: _Site
    type: AccessType
    memory_of: int  # rank whose address space holds the site
    issuer: int


def _footprints(op: Op, issuer: int, target: int) -> List[_Footprint]:
    """Access footprints of one operation in the Fig. 3 scenario.

    One-sided operations touch the issuer's buffer and the target's
    window range; local operations touch the issuer's buffer only.
    """
    buf = ("buf", issuer)
    win = ("win", target)
    if op is Op.GET:
        return [
            _Footprint(buf, AccessType.RMA_WRITE, issuer, issuer),
            _Footprint(win, AccessType.RMA_READ, target, issuer),
        ]
    if op is Op.PUT:
        return [
            _Footprint(buf, AccessType.RMA_READ, issuer, issuer),
            _Footprint(win, AccessType.RMA_WRITE, target, issuer),
        ]
    if op is Op.LOAD:
        return [_Footprint(buf, AccessType.LOCAL_READ, issuer, issuer)]
    return [_Footprint(buf, AccessType.LOCAL_WRITE, issuer, issuer)]


def _sites_may_coincide(a: _Site, b: _Site, placement: Placement) -> bool:
    """Can the two sites be the "location accessed twice"?

    Sites must live in the same address space.  A buffer and a window
    range of the same rank can only coincide when the buffer is placed
    inside the window.
    """
    kind_a, rank_a = a
    kind_b, rank_b = b
    if rank_a != rank_b:
        return False
    if kind_a == kind_b:
        return True
    return placement is Placement.IN_WINDOW


_IV = Interval(0, 8)  # any shared range; only identity matters here


def _cell_bits(
    op1: Op, caller: Caller, op2: Op, placement: Placement
) -> Tuple[int, int]:
    """(target_bit, origin_bit) for one Fig. 3 cell under one placement.

    A bit is 1 when *some* choice of coinciding location makes
    :func:`is_race` true on that process's memory (left bit: the TARGET
    process, right bit: ORIGIN 1 — matching "the right bit refers to an
    error at origin side while the left bit refers to an error at target
    side").
    """
    issuer2 = {Caller.ORIGIN1: _O1, Caller.TARGET: _T, Caller.ORIGIN2: _O2}[caller]
    # Second one-sided ops by O1/O2 target T; by T they target O1 (Fig. 2b).
    target2 = _O1 if issuer2 == _T else _T
    fps1 = _footprints(op1, _O1, _T)
    fps2 = _footprints(op2, issuer2, target2)

    bits = {_T: 0, _O1: 0}
    for f1 in fps1:
        for f2 in fps2:
            if f1.memory_of != f2.memory_of or f1.memory_of not in bits:
                continue
            if not _sites_may_coincide(f1.site, f2.site, placement):
                continue
            stored = MemoryAccess(_IV, f1.type, DebugInfo("a", 1), f1.issuer, 0)
            new = MemoryAccess(_IV, f2.type, DebugInfo("b", 2), f2.issuer, 1)
            if is_race(stored, new):
                bits[f1.memory_of] = 1
    return bits[_T], bits[_O1]


def fig3_matrix() -> Dict[Tuple[Op, Caller, Op], Dict[Placement, Tuple[int, int]]]:
    """Regenerate Figure 3.

    Keys are ``(first_op, caller_of_second, second_op)``; values map each
    placement to its ``(target_bit, origin_bit)`` pair.  Cells whose bits
    do not depend on the placement still carry both entries (equal).
    """
    columns: List[Tuple[Caller, Op]] = (
        [(Caller.ORIGIN1, op) for op in (Op.GET, Op.PUT, Op.LOAD, Op.STORE)]
        + [(Caller.TARGET, op) for op in (Op.GET, Op.PUT, Op.LOAD, Op.STORE)]
        + [(Caller.ORIGIN2, op) for op in (Op.GET, Op.PUT)]
    )
    out: Dict[Tuple[Op, Caller, Op], Dict[Placement, Tuple[int, int]]] = {}
    for op1 in (Op.GET, Op.PUT):
        for caller, op2 in columns:
            out[(op1, caller, op2)] = {
                p: _cell_bits(op1, caller, op2, p) for p in Placement
            }
    return out


def format_fig3(matrix: Optional[Dict] = None) -> str:
    """Render the Fig. 3 matrix as an ASCII table (one line per cell)."""
    matrix = matrix if matrix is not None else fig3_matrix()
    lines = ["first   caller    second  inwin  outwin"]
    for (op1, caller, op2), bits in matrix.items():
        inw = bits[Placement.IN_WINDOW]
        outw = bits[Placement.OUT_WINDOW]
        lines.append(
            f"{op1.value:<7} {caller.value:<9} {op2.value:<7} "
            f"{inw[0]}{inw[1]:<5}  {outw[0]}{outw[1]}"
        )
    return "\n".join(lines)

"""Event routing: which shard(s) must see which trace event.

The pipeline shards the analysis **by memory rank** — exactly the axis
along which every modelled detector keys its canonical state:

* the BST detectors keep one interval tree per ``(rank, window)``
  (:class:`~repro.detectors.bst_common.BstDetector`),
* MUST-RMA's shadow memory cells live per ``(rank, granule)``,
* MC-CChecker buckets its recorded accesses per ``(memory_rank,
  granule)``.

A rank's whole state therefore evolves from a *projection* of the event
stream, and the projections are:

* a local access of rank ``r`` concerns only ``r``'s memory → shard ``r``;
* an RMA op touches the origin's buffer **and** the target's window →
  shards ``origin`` and ``target`` (each shard's detector re-derives
  both sides, but only the side stored under the shard's own rank is
  canonical — the other is a private replica whose verdicts the
  aggregator drops, see :func:`own_reports`);
* synchronization (fence/barrier/flush/epoch/window events) orders
  *everything* — it is replicated to every shard, which is also what
  keeps clock-based detectors sound: all happens-before edges between
  any two retained events survive the projection.

Within one shard, events arrive in global trace order, so a shard's
detector makes byte-for-byte the decisions the serial replay makes for
that rank's stores.

:func:`dispatch_event` is the single trace-event → detector-hook mapping
shared by serial replay (:func:`repro.mpi.trace_io.replay_trace`) and
the pipeline workers.
"""

from __future__ import annotations

from typing import List, Tuple

from ..mpi.interposition import DetectorProtocol
from ..mpi.trace import LocalEvent, RmaEvent, SyncEvent, SyncKind, TraceEvent

__all__ = [
    "ReplayWindow",
    "dispatch_batch",
    "dispatch_event",
    "own_reports",
    "shards_of",
]


class ReplayWindow:
    """Just enough of a Window for detector ``on_win_create`` hooks."""

    def __init__(self, wid: int, nranks: int) -> None:
        self.wid = wid
        self.name = f"replay-{wid}"
        self.regions = [None] * nranks


def shards_of(event: TraceEvent, nranks: int) -> Tuple[int, ...]:
    """The shard ids (memory ranks) that must process ``event``."""
    if isinstance(event, LocalEvent):
        return (event.rank,)
    if isinstance(event, RmaEvent):
        if event.rank == event.target:
            return (event.rank,)
        return (event.rank, event.target)
    # sync events order everything: replicate
    return tuple(range(nranks))


def dispatch_event(
    detector: DetectorProtocol, event: TraceEvent, nranks: int
) -> None:
    """Feed one recorded event to a detector, as the live runtime would."""
    if isinstance(event, LocalEvent):
        detector.on_local(event.rank, event.access, event.region)
    elif isinstance(event, RmaEvent):
        detector.on_rma(
            event.op, event.rank, event.target, event.wid,
            event.origin_access, event.target_access,
            event.origin_region, event.target_region,
        )
    elif isinstance(event, SyncEvent):
        kind = event.kind
        if kind is SyncKind.WIN_CREATE:
            detector.on_win_create(ReplayWindow(event.wid, nranks))
        elif kind is SyncKind.WIN_FREE:
            detector.on_win_free(event.wid)
        elif kind is SyncKind.LOCK_ALL:
            detector.on_epoch_start(event.rank, event.wid)
        elif kind is SyncKind.UNLOCK_ALL:
            detector.on_epoch_end(event.rank, event.wid)
        elif kind in (SyncKind.FLUSH, SyncKind.FLUSH_ALL):
            detector.on_flush(event.rank, event.wid)
        elif kind is SyncKind.BARRIER:
            detector.on_barrier()
        elif kind is SyncKind.FENCE:
            detector.on_fence(event.wid, nranks)


def dispatch_batch(
    detector: DetectorProtocol,
    events,
    nranks: int,
    *,
    timeline=None,
    lane=None,
) -> int:
    """Feed a whole chunk of events to one detector; returns the count.

    Detectors exposing ``ingest_batch`` (the flat core) take the chunk
    wholesale — per-event dispatch overhead (isinstance ladder, hook
    indirection, timeline lookup) is paid once per chunk.  Everything
    else gets the per-event loop with identical semantics.

    ``timeline``/``lane`` preserve the callers' forensics feed ordering:
    each event is recorded *before* it is analyzed (``lane=None`` uses
    fanout recording as serial replay does; an int ``lane`` records into
    that shard's ring as the worker loop does).
    """
    ingest = getattr(detector, "ingest_batch", None)
    if ingest is not None:
        return ingest(events, nranks, timeline=timeline, lane=lane)
    n = 0
    if timeline is None:
        for event in events:
            dispatch_event(detector, event, nranks)
            n += 1
    elif lane is None:
        for event in events:
            timeline.record_event_fanout(event, nranks)
            dispatch_event(detector, event, nranks)
            n += 1
    else:
        for event in events:
            timeline.record_event(lane, event)
            dispatch_event(detector, event, nranks)
            n += 1
    return n


def own_reports(detector: DetectorProtocol, shard: int) -> List:
    """The shard's canonical verdicts: races stored under its own rank.

    A shard's detector also maintains replica stores for the *other*
    side of RMA ops involving this rank; races those replicas find are
    found canonically (from the full projection) by the owning shard,
    so they are dropped here to keep the merged verdict set exact.
    """
    return [r for r in getattr(detector, "reports", []) if r.rank == shard]

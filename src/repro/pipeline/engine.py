"""The sharded analysis engine: worker pool, batching, aggregation.

``analyze_trace`` is the one entry point.  With ``jobs=1`` it replays
the trace through a single detector in-process (the baseline every
speedup is measured against); with ``jobs>1`` it runs the sharded
pipeline:

* the **producer** (parent process) streams events off the trace,
  routes each to its shard(s) (:func:`repro.pipeline.shard.shards_of`),
  and ships them in batches over one *bounded* queue per worker — a slow
  worker back-pressures the producer instead of ballooning memory;
* each **worker** owns ``nranks / jobs`` shards, one fresh detector
  instance per shard, and dispatches its batches in arrival order
  (which is global trace order, so per-shard analysis is deterministic);
* the **aggregator** collects per-shard verdicts, drops replica-side
  reports (:func:`repro.pipeline.shard.own_reports` runs in the worker),
  deduplicates, and produces one canonically ordered verdict list plus
  pipeline metrics (events/s, per-shard BST peaks, queue depths).

``dispatch="file"`` is an alternative fan-out for on-disk traces: every
worker streams the file itself and keeps only its shards' events.  The
producer then ships nothing at all — on machines where decode is cheap
relative to detector work this trades duplicated decoding for zero IPC.

The engine is *supervised* (see :mod:`repro.pipeline.resilience`):
workers heartbeat on the result queue, every wait is bounded, and a
crashed or wedged worker is detected rather than hung on.  In file
dispatch the dead worker's shard-group is re-run with capped
exponential backoff (replay is deterministic, so retried verdicts are
byte-identical); once ``retries`` is exhausted — or immediately in
queue dispatch, whose in-flight batches die with the worker — the
engine *degrades* to serial in-process replay of the missing shards
and flags the result ``degraded`` instead of failing the whole
analysis.  ``salvage=True`` additionally reads damaged traces
best-effort (:class:`TraceReader` ``strict=False``), with the loss
accounted in ``PipelineResult.salvage``.

Verdict parity: for every modelled detector the merged verdict set is
byte-identical (after canonical ordering) to a serial
:func:`~repro.mpi.trace_io.replay_trace` over the same trace — the
property the tier-1 parity tests pin down on the miniVite and CFD-Proxy
traces, and that the chaos suite (``tests/resilience/``) re-asserts
under injected worker kills and stalls.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import queue as _queue
import time
from dataclasses import dataclass, field
from itertools import islice
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

from .. import obs
from ..core.report import RaceReport
from ..mpi.errors import TraceChainMismatch, WorkerCrashedError
from ..mpi.trace import TraceEvent, TraceLog
from ..mpi.trace_io import LoadedTrace, _access_to_dict
from . import checkpoint as _ckpt
from .checkpoint import (
    CheckpointPlan,
    CheckpointStore,
    TraceDivergedError,
)
from .format import FORMAT_V2, TraceReader, trace_chain
from .resilience import (
    HEARTBEAT_INTERVAL,
    WorkerFailure,
    backoff_delay,
    collect_results,
    reap_processes,
)
from .shard import dispatch_batch, dispatch_event, own_reports, shards_of

__all__ = [
    "DETECTOR_SPECS",
    "PipelineResult",
    "ShardStats",
    "analyze_trace",
    "canonical_forensics",
    "canonical_verdicts",
    "detector_display_name",
]


def _our():
    core = os.environ.get("REPRO_CORE", "flat")
    if core == "flat":
        from ..core import FlatDetector

        return FlatDetector()
    if core == "object":
        # legacy escape hatch, kept one release as the differential oracle
        from ..core import OurDetector

        return OurDetector()
    raise ValueError(
        f"unknown REPRO_CORE {core!r}; have 'flat' (default) and 'object'")


def _rma():
    from ..detectors import RmaAnalyzerLegacy

    return RmaAnalyzerLegacy()


def _mc():
    from ..detectors import McCChecker

    return McCChecker()


def _must():
    from ..detectors import MustRma

    return MustRma()


#: CLI names → detector factories (all existing detectors, unchanged)
DETECTOR_SPECS: Dict[str, Callable] = {
    "our": _our,
    "rma": _rma,
    "mc": _mc,
    "must": _must,
}

#: backstop on memory-guard worker recycles per analysis.  The guard
#: only recycles after at least one new chunk of progress, so every
#: recycle advances the trace — this cap exists to bound pathological
#: configurations (max_rss below the interpreter's baseline), not to be
#: reached in practice.
_MAX_RECYCLES = 256


def _make_detector(name: str):
    try:
        return DETECTOR_SPECS[name]()
    except KeyError:
        raise ValueError(
            f"unknown detector {name!r}; have {sorted(DETECTOR_SPECS)}"
        ) from None


def detector_display_name(name: str) -> str:
    return _make_detector(name).name


# -- verdict canonicalization -------------------------------------------------


def _verdict_dict(report: RaceReport) -> dict:
    return {
        "rank": report.rank,
        "window": report.window,
        "stored": _access_to_dict(report.stored),
        "new": _access_to_dict(report.new),
        "detector": report.detector,
    }


def canonical_verdicts(reports: Iterable[RaceReport]) -> List[dict]:
    """Deduplicated race verdicts in one deterministic order.

    Serial replay reports races in discovery order; the pipeline merges
    per-shard lists.  Canonicalizing both through this function makes
    'same verdicts' a byte-for-byte comparison of the JSON dumps.
    """
    unique = {}
    for report in reports:
        d = _verdict_dict(report)
        unique[json.dumps(d, sort_keys=True)] = d
    return [unique[k] for k in sorted(unique)]


def canonical_forensics(reports: Iterable[RaceReport]) -> List[dict]:
    """Deduplicated ``repro-forensics-v1`` bundles, verdict-keyed order.

    Forensics travel *outside* the verdict dicts (verdict parity with
    plain serial replay stays byte-exact), deduplicated by the same
    verdict key.  The first occurrence per key wins: a race pair's rank
    maps to exactly one shard, which sees the same event subsequence as
    serial replay, so first-occurrence bundles are identical either way.
    """
    unique: Dict[str, dict] = {}
    for report in reports:
        if report.forensics is None:
            continue
        key = json.dumps(_verdict_dict(report), sort_keys=True)
        if key not in unique:
            unique[key] = report.forensics
    return [unique[k] for k in sorted(unique)]


# -- results -----------------------------------------------------------------


@dataclass
class ShardStats:
    """Per-shard tail of the pipeline: what one detector instance saw."""

    shard: int
    events: int = 0
    races: int = 0
    peak_nodes: int = 0
    processed: int = 0
    #: canonical (own-rank) reports — carried for aggregation, not shown
    reports: List[RaceReport] = field(default_factory=list, repr=False)

    def to_dict(self) -> dict:
        return {
            "shard": self.shard,
            "events": self.events,
            "races": self.races,
            "peak_nodes": self.peak_nodes,
            "processed": self.processed,
        }


@dataclass
class PipelineResult:
    """Merged verdicts + metrics of one analysis run."""

    detector: str
    nranks: int
    jobs: int
    dispatch: str
    events_total: int
    wall_seconds: float
    verdicts: List[dict]
    shard_stats: List[ShardStats]
    queue_peak: List[int] = field(default_factory=list)
    #: worker respawns the supervisor performed (file-dispatch retries)
    retries: int = 0
    #: True when some shard-groups fell back to serial in-process replay
    degraded: bool = False
    #: every worker attempt that crashed/stalled, as plain dicts
    failed_workers: List[dict] = field(default_factory=list)
    #: salvage accounting when the trace was read with ``strict=False``
    salvage: Optional[dict] = None
    #: True when a resource guard (deadline / memory, serial mode)
    #: stopped the analysis early; the verdicts cover only
    #: ``analyzed_fraction`` of the trace and the run is resumable from
    #: its checkpoint directory
    partial: bool = False
    #: fraction of the trace's events analyzed (1.0 for a completed
    #: checkpointed run, None when unknowable or checkpointing was off)
    analyzed_fraction: Optional[float] = None
    #: checkpoint/resume accounting: dir, cadence, files written,
    #: per-lane ``resumed`` records (from_seq, events_skipped),
    #: quarantined checkpoint files, recycles.  None with no --ckpt-dir
    checkpoint: Optional[dict] = None
    #: merged observability snapshot of this run (schema repro-obs-v1);
    #: None when metrics are disabled (REPRO_OBS=off)
    obs: Optional[dict] = None
    #: one repro-forensics-v1 bundle per verdict (same canonical order
    #: as ``verdicts``); empty when obs or the timeline is disabled
    forensics: List[dict] = field(default_factory=list)
    #: materialized repro-timeline-v1 snapshot (see :attr:`timeline`)
    _timeline_snap: Optional[dict] = field(default=None, repr=False)
    #: the run's live timeline, formatted lazily on first access —
    #: analysis never pays snapshot formatting unless someone exports
    _timeline_live: Optional[object] = field(default=None, repr=False)

    @property
    def timeline(self) -> Optional[dict]:
        """Merged repro-timeline-v1 snapshot (None when the timeline is off).

        Formatting a snapshot walks every retained lane event, so the
        engine hands over the live timeline and the dict is built here,
        on first read — ``analyze_trace`` itself stays snapshot-free.
        """
        if self._timeline_snap is None and self._timeline_live is not None:
            self._timeline_snap = self._timeline_live.snapshot()
            self._timeline_live = None
        return self._timeline_snap

    @timeline.setter
    def timeline(self, snap: Optional[dict]) -> None:
        self._timeline_snap = snap
        self._timeline_live = None

    @property
    def races(self) -> int:
        return len(self.verdicts)

    @property
    def events_per_sec(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.events_total / self.wall_seconds

    def to_dict(self) -> dict:
        return {
            "detector": self.detector,
            "nranks": self.nranks,
            "jobs": self.jobs,
            "dispatch": self.dispatch,
            "events_total": self.events_total,
            "wall_seconds": round(self.wall_seconds, 6),
            "events_per_sec": round(self.events_per_sec, 1),
            "races": self.races,
            "verdicts": self.verdicts,
            "shards": [s.to_dict() for s in self.shard_stats],
            "queue_peak": self.queue_peak,
            "retries": self.retries,
            "degraded": self.degraded,
            "failed_workers": list(self.failed_workers),
            "salvage": self.salvage,
            "partial": self.partial,
            "analyzed_fraction": self.analyzed_fraction,
            "checkpoint": self.checkpoint,
            "obs": self.obs,
            "forensics": self.forensics,
            "timeline": self.timeline,
        }


# -- worker side -------------------------------------------------------------


class _ShardGroup:
    """The shards one worker owns: a fresh detector instance per shard."""

    def __init__(self, shards: Sequence[int], detector: str, nranks: int) -> None:
        self.nranks = nranks
        self.detectors = {s: _make_detector(detector) for s in shards}
        self.events = {s: 0 for s in shards}

    def dispatch(self, shard: int, batch: Sequence[TraceEvent]) -> None:
        det = self.detectors[shard]
        tl = obs.active().timeline
        # the shard's lane is fed *before* analyzing each event, so a
        # race's forensics include the access that triggered it
        dispatch_batch(
            det, batch, self.nranks,
            timeline=tl if tl.enabled else None, lane=shard,
        )
        self.events[shard] += len(batch)
        obs.active().counter("pipeline.events.analyzed").add(len(batch))

    def snapshot_state(self) -> dict:
        """Checkpointable state of every shard detector (+ event counts)."""
        return {
            "detectors": {s: d.snapshot() for s, d in self.detectors.items()},
            "events": dict(self.events),
        }

    def restore_state(self, state: dict) -> None:
        for shard, det in self.detectors.items():
            det.restore(state["detectors"][shard])
        self.events.update(state["events"])

    def finish(self) -> List[ShardStats]:
        out = []
        for shard in sorted(self.detectors):
            det = self.detectors[shard]
            det.finalize()
            # publish only the shard's canonical (own-rank) node state;
            # replica stores are published by their home shard
            det.publish_obs(own_rank=shard)
            reports = own_reports(det, shard)
            stats = det.node_stats()
            out.append(ShardStats(
                shard=shard,
                events=self.events[shard],
                races=len(reports),
                peak_nodes=stats.max_nodes_per_rank.get(shard, 0),
                processed=stats.accesses_processed,
                reports=reports,
            ))
        return out


def _worker_payload(group: _ShardGroup, attempt: int = 0) -> dict:
    """The worker's "done" payload: shard stats + its registry snapshot.

    ``finish()`` publishes each detector's final statistics into the
    worker's registry first, so the snapshot carries them back to the
    parent for merging.  ``attempt`` tags the payload with the attempt
    that produced it: the parent merges *only* the winning attempt's
    registry, so a stale attempt's snapshot can never double-count
    metrics or timeline events.
    """
    stats = group.finish()
    reg = obs.active()
    return {
        "stats": stats,
        "attempt": attempt,
        "obs": reg.snapshot() if reg.enabled else None,
        "timeline": (reg.timeline.snapshot()
                     if reg.timeline.enabled else None),
    }


# -- checkpoint plumbing ------------------------------------------------------


def _ckpt_meta(detector: str, nranks: int, path, shards, cursor: dict) -> dict:
    """JSON header metadata pinning what this checkpoint belongs to."""
    trace_bytes = None
    if path is not None:
        try:
            trace_bytes = os.path.getsize(path)
        except OSError:
            pass
    return {
        "detector": detector,
        "nranks": nranks,
        "trace": str(path) if path is not None else None,
        "trace_bytes": trace_bytes,
        "shards": list(shards),
        "events_applied": cursor["events_applied"],
        "chunk": cursor.get("chunk"),
        "chain": cursor.get("chain"),
    }


def _ckpt_expect(detector: str, nranks: int, path) -> dict:
    """Header fields a checkpoint must match to be resumed here.

    Trace identity is pinned by size, not path, so a trace copied or
    moved next to its checkpoint directory still resumes.
    """
    expect = {"detector": detector, "nranks": nranks}
    if path is not None:
        try:
            expect["trace_bytes"] = os.path.getsize(path)
        except OSError:
            pass
    return expect


def _verify_resume_trace(meta: dict, path) -> None:
    """Check the trace on disk still begins with the checkpointed prefix.

    Chain-carrying checkpoints (v2 traces) verify by *content*: the
    rolling chain recomputed over the first ``meta["chunk"]`` chunks
    must equal the cursor's chain value, which proves byte-identity of
    the analyzed prefix — and therefore admits append-only extensions,
    the whole point of incremental re-analysis.  A shorter or differing
    file raises :class:`TraceDivergedError`.  Checkpoints without a
    chain (v1 traces, in-memory sources, pre-chain files) fall back to
    the legacy exact-size pin.
    """
    if path is None:
        return
    chain = meta.get("chain")
    chunk = meta.get("chunk")
    if chain and chunk:
        reg = obs.active()
        try:
            got = trace_chain(path, upto=chunk)
        except TraceChainMismatch as exc:
            reg.counter("incremental.divergences").add(1)
            raise TraceDivergedError(
                f"{path}: trace does not match the checkpointed prefix "
                f"({exc})", path=str(path), chunk=exc.chunk) from exc
        if len(got["chunks"]) < chunk:
            reg.counter("incremental.divergences").add(1)
            raise TraceDivergedError(
                f"{path}: trace does not match the checkpointed prefix "
                f"(only {len(got['chunks'])} complete chunk(s) on disk, "
                f"checkpoint covers {chunk})", path=str(path))
        if got["chunks"][chunk - 1] != chain:
            reg.counter("incremental.divergences").add(1)
            raise TraceDivergedError(
                f"{path}: trace does not match the checkpointed prefix "
                f"(chain diverged at or before chunk {chunk})",
                path=str(path), chunk=chunk)
        return
    want = meta.get("trace_bytes")
    if want is not None:
        try:
            got_bytes = os.path.getsize(path)
        except OSError:
            return
        if got_bytes != want:
            raise _ckpt.CheckpointError(
                f"checkpoint trace_bytes={want!r} does not match this "
                f"analysis ({got_bytes!r})")


def _ckpt_state(body: dict, cursor: dict, ticks: int) -> dict:
    """Payload for one checkpoint: analysis state + registry deltas."""
    reg = obs.active()
    state = dict(body)
    state["cursor"] = cursor
    state["ticks"] = ticks
    state["obs"] = reg.snapshot() if reg.enabled else None
    state["timeline"] = (reg.timeline.snapshot()
                         if reg.timeline.enabled else None)
    return state


def _ckpt_restore_registry(reg, state: dict) -> None:
    """Fold a checkpoint's obs/timeline deltas back into a registry."""
    if state.get("obs") and reg.enabled:
        reg.merge(state["obs"])
    if state.get("timeline") and reg.timeline.enabled:
        reg.timeline.merge(state["timeline"])


def _virtual_chunks(events, start: Optional[dict]):
    """Chunk-wise iteration over an in-memory event list (LoadedTrace).

    Mirrors :meth:`TraceReader.iter_chunks` for sources with no file to
    seek: resume skips ``events_applied`` events by position.
    """
    size = TraceReader.VIRTUAL_CHUNK_EVENTS
    total = start["events_applied"] if start is not None else 0
    it = iter(events)
    if total:
        next(islice(it, total - 1, total), None)  # advance past the prefix
    while True:
        chunk = list(islice(it, size))
        if not chunk:
            break
        total += len(chunk)
        yield chunk, {"kind": "seq", "events_applied": total,
                      "salvage": None}


def _payload_stats(payload) -> list:
    """Shard stats from a worker payload (dict) or inline replay (list)."""
    if isinstance(payload, dict):
        return payload["stats"]
    return payload


def _worker_queue(worker_id, shards, detector, nranks, in_q, out_q,
                  attempt=0, fault_plan=None):
    """Queue-dispatch worker: drain (shard, batch) items until sentinel."""
    reg = obs.reset()  # fork copied the parent's registry: start clean
    group = _ShardGroup(shards, detector, nranks)
    ticks = 0
    last_hb = time.monotonic()
    while True:
        item = in_q.get()
        if item is None:
            break
        shard, batch = item
        with reg.span("worker.analyze"):
            group.dispatch(shard, batch)
        ticks += 1
        if fault_plan is not None:
            fault_plan.fire(worker_id, attempt, ticks)
        now = time.monotonic()
        if now - last_hb >= HEARTBEAT_INTERVAL:
            out_q.put(("hb", worker_id, attempt, ticks))
            last_hb = now
    out_q.put(("done", worker_id, attempt, _worker_payload(group, attempt)))


def _worker_file(worker_id, shards, detector, nranks, path, out_q,
                 attempt=0, fault_plan=None, strict=True, ckpt=None):
    """File-dispatch worker: stream the trace itself, keep own shards.

    With a :class:`~repro.pipeline.checkpoint.CheckpointPlan`, the
    worker iterates the trace *chunk-wise* and at chunk boundaries (the
    only points where the reader cursor is crash-consistent):

    * every ``ckpt.every`` chunks it writes its lane's checkpoint;
    * past ``ckpt.deadline_at`` it checkpoints, reports a ``partial``
      payload and stops cleanly (resumable);
    * past ``ckpt.max_rss_mb`` it checkpoints and asks the engine to
      *recycle* it — respawn a fresh process that resumes mid-trace.

    A retry attempt (``attempt > 0``) or an explicit ``ckpt.resume``
    restores the newest valid checkpoint first and replays only the
    events after it, instead of re-running the shard-group from byte 0.
    """
    reg = obs.reset()  # fork copied the parent's registry: start clean
    group = _ShardGroup(shards, detector, nranks)
    own = set(shards)
    ticks = 0
    last_hb = time.monotonic()

    store = None
    start = None
    ckpt_info = {"written": 0, "resumed_from": None, "events_skipped": 0,
                 "quarantined": []}
    if ckpt is not None:
        store = CheckpointStore(ckpt.dir, f"w{worker_id}")
        if ckpt.resume or attempt > 0:
            loaded = store.load_latest(
                expect=_ckpt_expect(detector, nranks, path))
            ckpt_info["quarantined"] = list(store.quarantined)
            if loaded is not None:
                header, state = loaded
                group.restore_state(state["group"])
                _ckpt_restore_registry(reg, state)
                start = state["cursor"]
                ticks = state["ticks"]
                ckpt_info["resumed_from"] = header["seq"]
                ckpt_info["events_skipped"] = start["events_applied"]

    reader = TraceReader(path, strict=strict)
    chunks_since = 0
    stop = None
    cursor = start
    with reg.span("worker.read"):
        for events_chunk, cursor in reader.iter_chunks(start=start):
            for event in events_chunk:
                for shard in shards_of(event, nranks):
                    if shard in own:
                        with reg.span("worker.analyze"):
                            group.dispatch(shard, (event,))
                        ticks += 1
                        if fault_plan is not None:
                            fault_plan.fire(worker_id, attempt, ticks)
                if not (ticks & 0x3F):  # check the clock every 64 ticks
                    now = time.monotonic()
                    if now - last_hb >= HEARTBEAT_INTERVAL:
                        out_q.put(("hb", worker_id, attempt, ticks))
                        last_hb = now
            if ckpt is None:
                continue
            chunks_since += 1
            wrote = False
            if ckpt.every and chunks_since >= ckpt.every:
                store.write(
                    _ckpt_meta(detector, nranks, path, shards, cursor),
                    _ckpt_state({"group": group.snapshot_state()},
                                cursor, ticks))
                ckpt_info["written"] += 1
                chunks_since = 0
                wrote = True
            if ckpt.deadline_at is not None and time.time() >= ckpt.deadline_at:
                stop = "deadline"
            elif ckpt.max_rss_mb is not None:
                # guard checks run only at chunk boundaries, i.e. after at
                # least one chunk of progress this attempt — so every
                # recycle advances the trace and recycling terminates.
                # An unavailable RSS probe (None) disables the guard.
                rss = _ckpt.current_rss_mb()
                if rss is not None and rss > ckpt.max_rss_mb:
                    stop = "recycle"
            if stop is not None:
                if not wrote:
                    store.write(
                        _ckpt_meta(detector, nranks, path, shards, cursor),
                        _ckpt_state({"group": group.snapshot_state()},
                                    cursor, ticks))
                    ckpt_info["written"] += 1
                break

    if stop == "recycle":
        out_q.put(("recycle", worker_id, attempt, {"ckpt": ckpt_info}))
        return
    payload = _worker_payload(group, attempt)
    payload["ckpt"] = ckpt_info if ckpt is not None else None
    payload["events_applied"] = (cursor["events_applied"]
                                 if cursor is not None else ticks)
    if not strict:
        payload["salvage"] = reader.salvage_report()
    kind = "partial" if stop == "deadline" else "done"
    out_q.put((kind, worker_id, attempt, payload))


def _run_shards_inline(events, shards, detector, nranks):
    """Degraded path: replay one shard-group serially, in this process.

    Replay is deterministic, so the verdicts are exactly what the dead
    worker would have reported — the analysis completes, just without
    that worker's parallelism.
    """
    group = _ShardGroup(shards, detector, nranks)
    own = set(shards)
    for event in events:
        for shard in shards_of(event, nranks):
            if shard in own:
                group.dispatch(shard, (event,))
    return group.finish()


# -- driver ------------------------------------------------------------------

Source = Union[str, Path, TraceReader, LoadedTrace]


def _as_stream(source: Source, *, strict: bool = True):
    """(events, nranks, path-or-None, reader-or-None) for any source.

    The events iterable is *re-iterable* for every supported source —
    a :class:`TraceReader` opens the file anew per pass and a
    :class:`LoadedTrace` holds a list — which is what makes retry and
    degraded replay possible at all.
    """
    if isinstance(source, (str, Path)):
        source = TraceReader(source, strict=strict)
    if isinstance(source, TraceReader):
        return source, source.nranks, source.path, source
    if isinstance(source, LoadedTrace):
        return source.log.events, source.nranks, None, None
    raise TypeError(f"cannot analyze {type(source).__name__}")


def _salvage_info(reader: Optional[TraceReader]) -> Optional[dict]:
    if reader is None or reader.strict:
        return None
    return reader.salvage_report()


def _serial(events, nranks, detector_name, reader=None):
    det = _make_detector(detector_name)
    reg = obs.active()
    t0 = time.perf_counter()
    n = 0
    tl = reg.timeline
    # the timeline's lane projection (fed before each dispatch) matches
    # the sharded pipeline's routing, so lanes stay byte-identical
    timeline = tl if tl.enabled else None
    # fused wire path: a strict v2 binary trace feeding a flat-core
    # detector with no timeline to feed skips event decoding entirely —
    # the detector ingests raw chunk payloads (byte-identical results;
    # the interned record stream is the same).  REPRO_WIRE=off forces
    # the decoded path — a debugging aid, and how A/B measurements
    # (e.g. the timeline-cost bench) keep both legs on one code path.
    wire = None
    ingest_wire = getattr(det, "ingest_wire", None)
    if (timeline is None and reader is not None
            and ingest_wire is not None
            and os.environ.get("REPRO_WIRE", "").lower()
            not in ("off", "0", "false", "no")):
        wire = reader.wire_stream()
    with reg.span("worker.analyze"):
        if wire is not None:
            for payload, off, nevents in wire:
                n += ingest_wire(payload, off, nevents, wire, nranks)
        elif isinstance(events, (list, tuple)):
            n = dispatch_batch(det, events, nranks, timeline=timeline)
        else:
            it = iter(events)
            while True:
                chunk = list(islice(it, 4096))
                if not chunk:
                    break
                n += dispatch_batch(det, chunk, nranks, timeline=timeline)
    det.finalize()
    wall = time.perf_counter() - t0
    reg.counter("pipeline.events.read").add(n)
    reg.counter("pipeline.events.analyzed").add(n)
    det.publish_obs()
    stats = det.node_stats()
    peak = max(stats.max_nodes_per_rank.values(), default=0)
    shard = ShardStats(
        shard=-1, events=n, races=len(det.reports), peak_nodes=peak,
        processed=stats.accesses_processed, reports=list(det.reports),
    )
    return PipelineResult(
        detector=detector_name, nranks=nranks, jobs=1, dispatch="serial",
        events_total=n, wall_seconds=wall,
        verdicts=canonical_verdicts(det.reports), shard_stats=[shard],
        salvage=_salvage_info(reader),
        forensics=canonical_forensics(det.reports),
    )


def _serial_ckpt(events, nranks, detector_name, reader, plan, path,
                 follow=False, follow_timeout_s=None):
    """Serial analysis with checkpoints and resource guards.

    The chunk-wise twin of :func:`_serial`: per-event work is identical
    (same timeline fanout before each dispatch, same counters — added
    per chunk rather than at the end, so a mid-run checkpoint's registry
    snapshot already accounts the events it covers).  Hitting the
    deadline or the memory guard checkpoints, stops, and returns a
    *partial* result with ``analyzed_fraction``; ``plan.resume`` picks
    up from the newest valid checkpoint in the directory.

    ``follow=True`` tails a still-growing v2 trace: when the file ends
    without a trailer the loop checkpoints, polls with capped backoff
    (``incremental.tail_retries``), and re-enters from the last cursor
    as new chunks land — the trailer ends the run normally.  The
    deadline/drain guards keep firing while idle, and
    ``follow_timeout_s`` without progress stops the run as a *partial*,
    resumable result (``stopped="follow-timeout"``).  A prefix
    rewritten underneath the follow trips the stored-chain verification
    and aborts with :class:`TraceDivergedError`.
    """
    det = _make_detector(detector_name)
    reg = obs.active()
    t0 = time.perf_counter()
    store = CheckpointStore(plan.dir, "serial")
    shards = list(range(nranks))

    start = None
    resumed = []
    if plan.resume:
        loaded = store.load_latest(
            expect={"detector": detector_name, "nranks": nranks})
        if loaded is not None:
            header, state = loaded
            _verify_resume_trace(header["meta"], path)
            det.restore(state["detector"])
            _ckpt_restore_registry(reg, state)
            start = state["cursor"]
            skipped_chunks = start.get("chunk") or 0
            if skipped_chunks:
                reg.counter("incremental.chunks_skipped").add(skipped_chunks)
            resumed.append({
                "lane": "serial",
                "from_seq": header["seq"],
                "events_skipped": start["events_applied"],
                "chunks_skipped": skipped_chunks,
            })

    if follow and reader is not None:
        reader.tail = True

    n = start["events_applied"] if start is not None else 0
    cursor = start
    chunks_since = 0
    stop = None
    written = 0
    c_read = reg.counter("pipeline.events.read")
    c_analyzed = reg.counter("pipeline.events.analyzed")
    tl = reg.timeline

    def _write(cur):
        nonlocal written, chunks_since
        store.write(
            _ckpt_meta(detector_name, nranks, path, shards, cur),
            _ckpt_state({"detector": det.snapshot()}, cur, cur["events_applied"]))
        written += 1
        chunks_since = 0

    def _guard_stop():
        if plan.deadline_at is not None and time.time() >= plan.deadline_at:
            return "deadline"
        if _ckpt.drain_requested():
            # the serving daemon is draining (SIGTERM): stop exactly
            # like a deadline — checkpointed, partial, resumable
            return "drain"
        if plan.max_rss_mb is not None:
            # serial mode cannot recycle itself; the memory guard
            # stops like the deadline does, leaving a resumable run.
            # An unavailable RSS probe (None) disables the guard.
            rss = _ckpt.current_rss_mb()
            if rss is not None and rss > plan.max_rss_mb:
                return "memory"
        return None

    poll_s = 0.05
    last_progress = time.time()
    with reg.span("worker.analyze"):
        while True:
            if reader is not None:
                chunks = reader.iter_chunks(start=cursor)
            else:
                chunks = _virtual_chunks(events, cursor)
            progressed = False
            try:
                for chunk, cursor in chunks:
                    # same lane projection the sharded pipeline routes
                    # by (fed before each dispatch), so serial and
                    # sharded lanes are byte-identical
                    dispatch_batch(
                        det, chunk, nranks,
                        timeline=tl if tl.enabled else None)
                    n = cursor["events_applied"]
                    c_read.add(len(chunk))
                    c_analyzed.add(len(chunk))
                    chunks_since += 1
                    progressed = True
                    wrote = False
                    if plan.every and chunks_since >= plan.every:
                        _write(cursor)
                        wrote = True
                    stop = _guard_stop()
                    if stop is not None:
                        if not wrote:
                            _write(cursor)
                        break
            except TraceChainMismatch as exc:
                # the prefix our detector state was built from has been
                # rewritten underneath the follow — checkpointed state
                # is untrustworthy, abort loudly
                reg.counter("incremental.divergences").add(1)
                raise TraceDivergedError(
                    f"{path}: trace does not match the analyzed prefix "
                    f"({exc})", path=str(path), chunk=exc.chunk) from exc
            if stop is not None:
                break
            if not follow or reader is None or reader.complete:
                break
            # trailerless tail: the recorder is (presumably) still
            # writing.  Checkpoint the boundary, then poll for growth.
            if progressed:
                last_progress = time.time()
                poll_s = 0.05
                if chunks_since and cursor is not None:
                    _write(cursor)
            stop = _guard_stop()
            if stop is None and follow_timeout_s is not None \
                    and time.time() - last_progress >= follow_timeout_s:
                stop = "follow-timeout"
            if stop is not None:
                if chunks_since and cursor is not None:
                    _write(cursor)
                break
            if cursor is not None and path is not None:
                try:
                    size = os.path.getsize(path)
                except OSError:
                    size = None
                if size is not None and size < cursor["pos"]:
                    reg.counter("incremental.divergences").add(1)
                    raise TraceDivergedError(
                        f"{path}: trace does not match the analyzed prefix "
                        f"(file shrank below the last cursor: {size} < "
                        f"{cursor['pos']} bytes)", path=str(path))
            reg.counter("incremental.tail_retries").add(1)
            time.sleep(poll_s)
            poll_s = min(poll_s * 2, 1.0)

    det.finalize()
    wall = time.perf_counter() - t0
    det.publish_obs()
    stats = det.node_stats()
    peak = max(stats.max_nodes_per_rank.values(), default=0)
    shard = ShardStats(
        shard=-1, events=n, races=len(det.reports), peak_nodes=peak,
        processed=stats.accesses_processed, reports=list(det.reports),
    )
    if reader is not None:
        total = reader.total_events()
    else:
        total = len(events) if hasattr(events, "__len__") else None
    if stop is not None and total is not None and n >= total:
        stop = None  # the guard fired on the last chunk: nothing is missing
    partial = stop is not None
    if partial:
        fraction = (n / total) if total else None
    else:
        fraction = 1.0
    return PipelineResult(
        detector=detector_name, nranks=nranks, jobs=1, dispatch="serial",
        events_total=n, wall_seconds=wall,
        verdicts=canonical_verdicts(det.reports), shard_stats=[shard],
        salvage=_salvage_info(reader),
        forensics=canonical_forensics(det.reports),
        partial=partial,
        analyzed_fraction=fraction,
        checkpoint={
            "dir": plan.dir,
            "every": plan.every,
            "written": written,
            "resumed": resumed,
            "quarantined": list(store.quarantined),
            "recycles": 0,
            "stopped": stop,
        },
    )


def _mp_context():
    try:
        return mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return mp.get_context("spawn")


def analyze_trace(
    source: Source,
    *,
    detector: str = "our",
    jobs: int = 1,
    dispatch: str = "queue",
    batch_size: int = 512,
    queue_depth: int = 8,
    timeout: Optional[float] = None,
    retries: int = 2,
    backoff_base: float = 0.1,
    backoff_max: float = 2.0,
    salvage: bool = False,
    recover: bool = True,
    fault_plan=None,
    ckpt_dir: Optional[Union[str, Path]] = None,
    ckpt_every: int = 4,
    deadline_s: Optional[float] = None,
    max_rss_mb: Optional[int] = None,
    resume: bool = False,
    follow: bool = False,
    follow_timeout_s: Optional[float] = None,
) -> PipelineResult:
    """Analyze a recorded trace, optionally sharded over ``jobs`` processes.

    Runs under a fresh :mod:`repro.obs` scope: per-stage spans, pipeline
    counters and the workers' merged registries land in
    ``PipelineResult.obs`` (and fold into the caller's registry on
    exit).  See :func:`_analyze_impl` for the full parameter reference.
    """
    with obs.scope() as reg:
        with reg.span("pipeline.analyze"):
            result = _analyze_impl(
                source, detector=detector, jobs=jobs, dispatch=dispatch,
                batch_size=batch_size, queue_depth=queue_depth,
                timeout=timeout, retries=retries,
                backoff_base=backoff_base, backoff_max=backoff_max,
                salvage=salvage, recover=recover, fault_plan=fault_plan,
                ckpt_dir=ckpt_dir, ckpt_every=ckpt_every,
                deadline_s=deadline_s, max_rss_mb=max_rss_mb, resume=resume,
                follow=follow, follow_timeout_s=follow_timeout_s,
            )
        if reg.enabled:
            if result.salvage is not None:
                reg.counter("pipeline.salvage.events_lost").add(
                    result.salvage.get("events_lost", 0))
                reg.counter("pipeline.salvage.chunks_quarantined").add(
                    len(result.salvage.get("quarantined_chunks", ())))
            result.obs = reg.snapshot()
            if reg.timeline.enabled:
                result._timeline_live = reg.timeline
        return result


def _analyze_impl(
    source: Source,
    *,
    detector: str = "our",
    jobs: int = 1,
    dispatch: str = "queue",
    batch_size: int = 512,
    queue_depth: int = 8,
    timeout: Optional[float] = None,
    retries: int = 2,
    backoff_base: float = 0.1,
    backoff_max: float = 2.0,
    salvage: bool = False,
    recover: bool = True,
    fault_plan=None,
    ckpt_dir: Optional[Union[str, Path]] = None,
    ckpt_every: int = 4,
    deadline_s: Optional[float] = None,
    max_rss_mb: Optional[int] = None,
    resume: bool = False,
    follow: bool = False,
    follow_timeout_s: Optional[float] = None,
) -> PipelineResult:
    """Analyze a recorded trace, optionally sharded over ``jobs`` processes.

    ``source`` may be a path (either trace format, auto-detected), an
    open :class:`TraceReader`, or an in-memory :class:`LoadedTrace`.
    ``dispatch="file"`` requires a path-backed source.

    Resilience knobs:

    * ``timeout`` — seconds without a heartbeat before a worker counts
      as stalled and is terminated (``None``: crash detection only);
    * ``retries`` — how many times a dead worker's shard-group may be
      re-run (file dispatch) before degrading to serial replay;
    * ``backoff_base`` / ``backoff_max`` — capped exponential delay
      between retry rounds;
    * ``salvage`` — read damaged traces best-effort, quarantining
      corrupt chunks (``PipelineResult.salvage`` accounts the loss);
    * ``recover=False`` — raise
      :class:`~repro.mpi.errors.WorkerCrashedError` on the first worker
      failure instead of retrying/degrading;
    * ``fault_plan`` — a :class:`~repro.faultinject.FaultPlan` forwarded
      to the workers (chaos testing only).

    Checkpoint knobs (see :mod:`repro.pipeline.checkpoint`):

    * ``ckpt_dir`` — directory for ``repro-ckpt-v1`` files; enables
      checkpointing, retry-resume, and the resource guards;
    * ``ckpt_every`` — cadence in trace chunks between checkpoints;
    * ``deadline_s`` — wall-clock budget: past it the analysis
      checkpoints and returns a *partial*, resumable result;
    * ``max_rss_mb`` — per-worker memory high-watermark: past it a
      worker checkpoints and is recycled (serial: stops like deadline);
    * ``resume`` — start from the newest valid checkpoint in
      ``ckpt_dir`` instead of from byte 0.

    Follow knobs (incremental analysis of a still-growing trace):

    * ``follow`` — tail a live-appended v2 trace: analyze chunks as
      they land, checkpoint at chunk boundaries, finish when the
      recorder writes the trailer.  Requires ``ckpt_dir``, ``jobs=1``
      and a path-backed strict v2 source; a rewritten prefix aborts
      with :class:`~repro.pipeline.checkpoint.TraceDivergedError`;
    * ``follow_timeout_s`` — stop a follow that has seen no new chunk
      for this many seconds, as a partial, resumable result.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    if dispatch not in ("queue", "file"):
        raise ValueError(f"unknown dispatch mode {dispatch!r}")
    if retries < 0:
        raise ValueError("retries must be >= 0")
    if timeout is not None and timeout <= 0:
        raise ValueError("timeout must be positive")
    if ckpt_dir is None and (deadline_s is not None or max_rss_mb is not None
                             or resume):
        raise ValueError(
            "deadline_s/max_rss_mb/resume need a checkpoint directory")
    if ckpt_every < 1:
        raise ValueError("ckpt_every must be >= 1")
    if deadline_s is not None and deadline_s <= 0:
        raise ValueError("deadline_s must be positive")
    if follow_timeout_s is not None and follow_timeout_s <= 0:
        raise ValueError("follow_timeout_s must be positive")
    if follow_timeout_s is not None and not follow:
        raise ValueError("follow_timeout_s needs follow=True")
    if follow:
        if ckpt_dir is None:
            raise ValueError("follow needs a checkpoint directory")
        if jobs != 1:
            raise ValueError("follow requires jobs=1 (serial analysis)")
        if salvage:
            raise ValueError(
                "follow and salvage are incompatible — a quarantined chunk "
                "breaks the chain that tail resume depends on")
    plan = None
    if ckpt_dir is not None:
        plan = CheckpointPlan(
            dir=str(ckpt_dir), every=ckpt_every,
            deadline_at=(time.time() + deadline_s
                         if deadline_s is not None else None),
            max_rss_mb=max_rss_mb, resume=resume,
        )
    events, nranks, path, reader = _as_stream(source, strict=not salvage)
    if reader is not None and not reader.strict:
        salvage = True  # honor an already-open salvage reader
    if follow:
        if reader is None or path is None or reader.format != FORMAT_V2:
            raise ValueError(
                "follow needs a path-backed repro-trace-v2 source — only "
                "binary chunk framing distinguishes a torn append from "
                "corruption")
        if salvage:
            raise ValueError("follow requires a strict reader")
    jobs = max(1, min(jobs, nranks))
    if jobs == 1:
        if plan is not None:
            return _serial_ckpt(events, nranks, detector, reader, plan, path,
                                follow=follow,
                                follow_timeout_s=follow_timeout_s)
        return _serial(events, nranks, detector, reader=reader)
    if plan is not None and dispatch != "file":
        raise ValueError(
            "checkpointing with jobs>1 requires dispatch='file' — queue "
            "batches die with their worker and cannot be replayed")
    if dispatch == "file" and path is None:
        raise ValueError("dispatch='file' needs a path-backed trace source")
    _make_detector(detector)  # validate the name before forking

    ctx = _mp_context()
    out_q = ctx.Queue()
    reg = obs.active()
    worker_shards = [list(range(w, nranks, jobs)) for w in range(jobs)]
    all_procs: List = []          # every process ever spawned, for cleanup
    in_qs: List = []
    failures_all: List[WorkerFailure] = []
    #: per-worker attempt counter — retries *and* recycles bump it, and
    #: collect_results drops any message tagged with an older attempt
    attempts: Dict[int, int] = {w: 0 for w in range(jobs)}
    partial_workers: set = set()
    retry_spawns = 0
    recycle_spawns = 0
    recycle_ckpt_written = 0
    recycle_quarantined: List[str] = []
    clean_exit = False
    t0 = time.perf_counter()

    def _spawn(target, args_tail, worker):
        proc = ctx.Process(
            target=target,
            args=(worker, worker_shards[worker], detector, nranks,
                  *args_tail),
            daemon=True,
        )
        all_procs.append(proc)
        proc.start()
        return proc

    try:
        if dispatch == "file":
            procs = {
                w: _spawn(_worker_file,
                          (path, out_q, 0, fault_plan, not salvage, plan), w)
                for w in range(jobs)
            }
            # count events once in the parent for the throughput metric
            with reg.span("pipeline.read"):
                events_total = sum(1 for _ in events)
            reg.counter("pipeline.events.read").add(events_total)
            with reg.span("pipeline.collect"):
                outcome = collect_results(out_q, procs, worker_shards,
                                          timeout=timeout, attempts=attempts)
            payloads = outcome.payloads
            partial_workers.update(outcome.partial_workers)
            failures = outcome.failures
            recycled = outcome.recycled
            failures_all.extend(failures)
            if failures and not recover:
                first = failures[0]
                raise WorkerCrashedError(
                    first.worker, first.shards,
                    reason=first.reason, exitcode=first.exitcode,
                )
            # Supervision loop: retried workers (with a checkpoint plan
            # they resume from their lane's newest checkpoint instead of
            # replaying from byte 0) consume the retry budget; recycled
            # workers (memory guard) are respawned for free — their exit
            # was voluntary, checkpointed progress, not a failure.
            rnd = 0
            recycles_by_worker: Dict[int, int] = {}
            exhausted: List[WorkerFailure] = []
            while failures or recycled:
                if failures and rnd >= retries:
                    break
                respawn: set = set()
                if failures:
                    rnd += 1
                    retry_spawns += len(failures)
                    reg.counter("pipeline.retries").add(len(failures))
                    with reg.span("pipeline.retry"):
                        time.sleep(backoff_delay(rnd, base=backoff_base,
                                                 cap=backoff_max))
                    respawn.update(f.worker for f in failures)
                for rec in recycled:
                    w = rec["worker"]
                    info = (rec["info"] or {}).get("ckpt") or {}
                    recycle_ckpt_written += info.get("written", 0)
                    recycle_quarantined.extend(info.get("quarantined", ()))
                    recycles_by_worker[w] = recycles_by_worker.get(w, 0) + 1
                    if recycles_by_worker[w] > _MAX_RECYCLES:
                        fail = WorkerFailure(
                            w, list(worker_shards[w]), "recycle limit",
                            attempt=attempts[w])
                        exhausted.append(fail)
                        failures_all.append(fail)
                        continue
                    recycle_spawns += 1
                    reg.counter("pipeline.ckpt.recycles").inc()
                    respawn.add(w)
                if not respawn:
                    break
                new_procs = {}
                for w in sorted(respawn):
                    attempts[w] += 1
                    new_procs[w] = _spawn(
                        _worker_file,
                        (path, out_q, attempts[w], fault_plan, not salvage,
                         plan), w)
                with reg.span("pipeline.collect"):
                    outcome = collect_results(out_q, new_procs,
                                              worker_shards,
                                              timeout=timeout,
                                              attempts=attempts)
                payloads.update(outcome.payloads)
                partial_workers.update(outcome.partial_workers)
                failures = outcome.failures
                recycled = outcome.recycled
                failures_all.extend(failures)
            # workers still recycled when the loop bailed (retry budget
            # spent on others) have no payload — degrade covers them
            for rec in recycled:
                w = rec["worker"]
                fail = WorkerFailure(w, list(worker_shards[w]),
                                     "recycle limit", attempt=attempts[w])
                failures.append(fail)
                failures_all.append(fail)
            failures = failures + exhausted
            queue_peak = [0] * jobs
        else:
            in_qs = [ctx.Queue(queue_depth) for _ in range(jobs)]
            procs = {
                w: _spawn(_worker_queue, (in_qs[w], out_q, 0, fault_plan), w)
                for w in range(jobs)
            }
            # queue depth lives in the registry (the former hand-rolled
            # queue_peak list); PipelineResult reads the gauge peaks back
            depth_gauges = [
                reg.gauge("pipeline.queue_depth", worker=str(w))
                for w in range(jobs)
            ]
            buffers: List[List[TraceEvent]] = [[] for _ in range(nranks)]
            events_total = 0
            lost: set = set()

            def _fail_worker(worker: int, reason: str) -> None:
                lost.add(worker)
                failures_all.append(WorkerFailure(
                    worker, list(worker_shards[worker]), reason,
                    exitcode=procs[worker].exitcode, attempt=0,
                ))

            def _put_bounded(worker: int, item) -> None:
                """put() that survives a dead or wedged consumer."""
                waited = 0.0
                while worker not in lost:
                    try:
                        in_qs[worker].put(item, timeout=0.2)
                        return
                    except _queue.Full:
                        if not procs[worker].is_alive():
                            _fail_worker(worker, "crashed")
                            return
                        waited += 0.2
                        if timeout is not None and waited > timeout:
                            procs[worker].terminate()
                            procs[worker].join(1.0)
                            _fail_worker(worker, "stalled")
                            return

            def ship(shard: int) -> None:
                worker = shard % jobs
                batch = buffers[shard]
                buffers[shard] = []
                if worker in lost:
                    return
                try:  # qsize is advisory; not implemented everywhere
                    depth_gauges[worker].set(in_qs[worker].qsize() + 1)
                except NotImplementedError:  # pragma: no cover
                    pass
                _put_bounded(worker, (shard, batch))

            with reg.span("pipeline.produce"):
                for event in events:
                    events_total += 1
                    for shard in shards_of(event, nranks):
                        buffers[shard].append(event)
                        if len(buffers[shard]) >= batch_size:
                            ship(shard)
                for shard in range(nranks):
                    if buffers[shard]:
                        ship(shard)
                for w in range(jobs):
                    _put_bounded(w, None)
            reg.counter("pipeline.events.read").add(events_total)
            queue_peak = [depth_gauges[w].peak for w in range(jobs)]
            live = {w: p for w, p in procs.items() if w not in lost}
            with reg.span("pipeline.collect"):
                outcome = collect_results(out_q, live, worker_shards,
                                          timeout=timeout, attempt=0)
            payloads = outcome.payloads
            failures_all.extend(outcome.failures)
            failures = [f for f in failures_all]
            if failures and not recover:
                first = failures[0]
                raise WorkerCrashedError(
                    first.worker, first.shards,
                    reason=first.reason, exitcode=first.exitcode,
                )
            # a queue worker's in-flight batches died with it: no replay
            # material for a respawn, so failures go straight to the
            # degraded path below

        degraded = False
        if failures:
            # serial in-process replay of every still-missing shard-group
            with reg.span("pipeline.degrade"):
                for failure in {f.worker: f for f in failures}.values():
                    payloads[failure.worker] = _run_shards_inline(
                        events, worker_shards[failure.worker], detector,
                        nranks,
                    )
            reg.counter("pipeline.degraded").inc()
            degraded = True
        if failures_all:
            reg.counter("pipeline.worker_failures").add(len(failures_all))
        if reg.enabled:
            # fold the worker registries into this run's scope — only
            # the *winning* attempt per worker, so a stale attempt's
            # snapshot can never double-count counters/timeline events
            for w in payloads:
                p = payloads[w]
                if not isinstance(p, dict):
                    continue  # inline degrade replay ran in this registry
                if p.get("attempt", 0) != attempts.get(w, 0):
                    continue
                if p.get("obs"):
                    reg.merge(p["obs"])
                if p.get("timeline"):
                    reg.timeline.merge(p["timeline"])
        all_stats = [
            s for w in sorted(payloads) for s in _payload_stats(payloads[w])
        ]
        clean_exit = True
    finally:
        reap_processes(all_procs)
        if not clean_exit:
            for q in in_qs:
                # don't let a dead consumer's unflushed queue buffer
                # block interpreter shutdown
                q.cancel_join_thread()

    wall = time.perf_counter() - t0
    with reg.span("pipeline.aggregate"):
        merged = canonical_verdicts(
            r for s in all_stats for r in s.reports
        )
        forensics = canonical_forensics(
            r for s in all_stats for r in s.reports
        )
    # a lane whose deadline fired on its final chunk analyzed everything:
    # nothing is missing from it, so it does not make the result partial
    partial_workers = {
        w for w in partial_workers
        if not (isinstance(payloads.get(w), dict)
                and payloads[w].get("events_applied") is not None
                and payloads[w]["events_applied"] >= events_total)
    }
    partial = bool(partial_workers)
    ckpt_summary = None
    fraction = None
    if plan is not None:
        written = recycle_ckpt_written
        resumed = []
        quarantined = list(recycle_quarantined)
        for w in sorted(payloads):
            p = payloads[w]
            if not isinstance(p, dict) or not p.get("ckpt"):
                continue
            info = p["ckpt"]
            written += info.get("written", 0)
            quarantined.extend(info.get("quarantined", ()))
            if info.get("resumed_from") is not None:
                resumed.append({
                    "lane": f"w{w}",
                    "from_seq": info["resumed_from"],
                    "events_skipped": info.get("events_skipped", 0),
                })
        ckpt_summary = {
            "dir": plan.dir,
            "every": plan.every,
            "written": written,
            "resumed": resumed,
            "quarantined": quarantined,
            "recycles": recycle_spawns,
            "stopped": "deadline" if partial else None,
        }
        if reg.enabled and written:
            reg.counter("pipeline.ckpt.written").add(written)
        if partial:
            # every lane checkpointed at or past its reported position;
            # the conservative claim is the least-advanced partial lane
            applied = [
                payloads[w].get("events_applied")
                for w in partial_workers
                if isinstance(payloads.get(w), dict)
            ]
            applied = [a for a in applied if a is not None]
            if applied and events_total:
                fraction = min(applied) / events_total
        else:
            fraction = 1.0
    return PipelineResult(
        detector=detector, nranks=nranks, jobs=jobs, dispatch=dispatch,
        events_total=events_total, wall_seconds=wall, verdicts=merged,
        forensics=forensics,
        shard_stats=sorted(all_stats, key=lambda s: s.shard),
        queue_peak=queue_peak,
        retries=retry_spawns,
        degraded=degraded,
        failed_workers=[f.to_dict() for f in failures_all],
        salvage=_salvage_info(reader),
        partial=partial,
        analyzed_fraction=fraction,
        checkpoint=ckpt_summary,
    )

"""The sharded analysis engine: worker pool, batching, aggregation.

``analyze_trace`` is the one entry point.  With ``jobs=1`` it replays
the trace through a single detector in-process (the baseline every
speedup is measured against); with ``jobs>1`` it runs the sharded
pipeline:

* the **producer** (parent process) streams events off the trace,
  routes each to its shard(s) (:func:`repro.pipeline.shard.shards_of`),
  and ships them in batches over one *bounded* queue per worker — a slow
  worker back-pressures the producer instead of ballooning memory;
* each **worker** owns ``nranks / jobs`` shards, one fresh detector
  instance per shard, and dispatches its batches in arrival order
  (which is global trace order, so per-shard analysis is deterministic);
* the **aggregator** collects per-shard verdicts, drops replica-side
  reports (:func:`repro.pipeline.shard.own_reports` runs in the worker),
  deduplicates, and produces one canonically ordered verdict list plus
  pipeline metrics (events/s, per-shard BST peaks, queue depths).

``dispatch="file"`` is an alternative fan-out for on-disk traces: every
worker streams the file itself and keeps only its shards' events.  The
producer then ships nothing at all — on machines where decode is cheap
relative to detector work this trades duplicated decoding for zero IPC.

Verdict parity: for every modelled detector the merged verdict set is
byte-identical (after canonical ordering) to a serial
:func:`~repro.mpi.trace_io.replay_trace` over the same trace — the
property the tier-1 parity tests pin down on the miniVite and CFD-Proxy
traces.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

from ..core.report import RaceReport
from ..mpi.trace import TraceEvent, TraceLog
from ..mpi.trace_io import LoadedTrace, _access_to_dict
from .format import TraceReader
from .shard import dispatch_event, own_reports, shards_of

__all__ = [
    "DETECTOR_SPECS",
    "PipelineResult",
    "ShardStats",
    "analyze_trace",
    "canonical_verdicts",
    "detector_display_name",
]


def _our():
    from ..core import OurDetector

    return OurDetector()


def _rma():
    from ..detectors import RmaAnalyzerLegacy

    return RmaAnalyzerLegacy()


def _mc():
    from ..detectors import McCChecker

    return McCChecker()


def _must():
    from ..detectors import MustRma

    return MustRma()


#: CLI names → detector factories (all existing detectors, unchanged)
DETECTOR_SPECS: Dict[str, Callable] = {
    "our": _our,
    "rma": _rma,
    "mc": _mc,
    "must": _must,
}


def _make_detector(name: str):
    try:
        return DETECTOR_SPECS[name]()
    except KeyError:
        raise ValueError(
            f"unknown detector {name!r}; have {sorted(DETECTOR_SPECS)}"
        ) from None


def detector_display_name(name: str) -> str:
    return _make_detector(name).name


# -- verdict canonicalization -------------------------------------------------


def _verdict_dict(report: RaceReport) -> dict:
    return {
        "rank": report.rank,
        "window": report.window,
        "stored": _access_to_dict(report.stored),
        "new": _access_to_dict(report.new),
        "detector": report.detector,
    }


def canonical_verdicts(reports: Iterable[RaceReport]) -> List[dict]:
    """Deduplicated race verdicts in one deterministic order.

    Serial replay reports races in discovery order; the pipeline merges
    per-shard lists.  Canonicalizing both through this function makes
    'same verdicts' a byte-for-byte comparison of the JSON dumps.
    """
    unique = {}
    for report in reports:
        d = _verdict_dict(report)
        unique[json.dumps(d, sort_keys=True)] = d
    return [unique[k] for k in sorted(unique)]


# -- results -----------------------------------------------------------------


@dataclass
class ShardStats:
    """Per-shard tail of the pipeline: what one detector instance saw."""

    shard: int
    events: int = 0
    races: int = 0
    peak_nodes: int = 0
    processed: int = 0
    #: canonical (own-rank) reports — carried for aggregation, not shown
    reports: List[RaceReport] = field(default_factory=list, repr=False)

    def to_dict(self) -> dict:
        return {
            "shard": self.shard,
            "events": self.events,
            "races": self.races,
            "peak_nodes": self.peak_nodes,
            "processed": self.processed,
        }


@dataclass
class PipelineResult:
    """Merged verdicts + metrics of one analysis run."""

    detector: str
    nranks: int
    jobs: int
    dispatch: str
    events_total: int
    wall_seconds: float
    verdicts: List[dict]
    shard_stats: List[ShardStats]
    queue_peak: List[int] = field(default_factory=list)

    @property
    def races(self) -> int:
        return len(self.verdicts)

    @property
    def events_per_sec(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.events_total / self.wall_seconds

    def to_dict(self) -> dict:
        return {
            "detector": self.detector,
            "nranks": self.nranks,
            "jobs": self.jobs,
            "dispatch": self.dispatch,
            "events_total": self.events_total,
            "wall_seconds": round(self.wall_seconds, 6),
            "events_per_sec": round(self.events_per_sec, 1),
            "races": self.races,
            "verdicts": self.verdicts,
            "shards": [s.to_dict() for s in self.shard_stats],
            "queue_peak": self.queue_peak,
        }


# -- worker side -------------------------------------------------------------


class _ShardGroup:
    """The shards one worker owns: a fresh detector instance per shard."""

    def __init__(self, shards: Sequence[int], detector: str, nranks: int) -> None:
        self.nranks = nranks
        self.detectors = {s: _make_detector(detector) for s in shards}
        self.events = {s: 0 for s in shards}

    def dispatch(self, shard: int, batch: Sequence[TraceEvent]) -> None:
        det = self.detectors[shard]
        nranks = self.nranks
        for event in batch:
            dispatch_event(det, event, nranks)
        self.events[shard] += len(batch)

    def finish(self) -> List[ShardStats]:
        out = []
        for shard in sorted(self.detectors):
            det = self.detectors[shard]
            det.finalize()
            reports = own_reports(det, shard)
            stats = det.node_stats()
            out.append(ShardStats(
                shard=shard,
                events=self.events[shard],
                races=len(reports),
                peak_nodes=stats.max_nodes_per_rank.get(shard, 0),
                processed=stats.accesses_processed,
                reports=reports,
            ))
        return out


def _worker_queue(worker_id, shards, detector, nranks, in_q, out_q):
    """Queue-dispatch worker: drain (shard, batch) items until sentinel."""
    group = _ShardGroup(shards, detector, nranks)
    while True:
        item = in_q.get()
        if item is None:
            break
        shard, batch = item
        group.dispatch(shard, batch)
    out_q.put((worker_id, group.finish()))


def _worker_file(worker_id, shards, detector, nranks, path, out_q):
    """File-dispatch worker: stream the trace itself, keep own shards."""
    group = _ShardGroup(shards, detector, nranks)
    own = set(shards)
    for event in TraceReader(path):
        for shard in shards_of(event, nranks):
            if shard in own:
                group.dispatch(shard, (event,))
    out_q.put((worker_id, group.finish()))


# -- driver ------------------------------------------------------------------

Source = Union[str, Path, TraceReader, LoadedTrace]


def _as_stream(source: Source):
    """(iterable of events, nranks, path-or-None) for any trace source."""
    if isinstance(source, (str, Path)):
        source = TraceReader(source)
    if isinstance(source, TraceReader):
        return source, source.nranks, source.path
    if isinstance(source, LoadedTrace):
        return source.log.events, source.nranks, None
    raise TypeError(f"cannot analyze {type(source).__name__}")


def _serial(events, nranks, detector_name):
    det = _make_detector(detector_name)
    t0 = time.perf_counter()
    n = 0
    for event in events:
        dispatch_event(det, event, nranks)
        n += 1
    det.finalize()
    wall = time.perf_counter() - t0
    stats = det.node_stats()
    peak = max(stats.max_nodes_per_rank.values(), default=0)
    shard = ShardStats(
        shard=-1, events=n, races=len(det.reports), peak_nodes=peak,
        processed=stats.accesses_processed, reports=list(det.reports),
    )
    return PipelineResult(
        detector=detector_name, nranks=nranks, jobs=1, dispatch="serial",
        events_total=n, wall_seconds=wall,
        verdicts=canonical_verdicts(det.reports), shard_stats=[shard],
    )


def _mp_context():
    try:
        return mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return mp.get_context("spawn")


def _collect(out_q, procs, jobs):
    """Drain worker results *before* joining (results can be large)."""
    payloads: Dict[int, List[ShardStats]] = {}
    while len(payloads) < jobs:
        worker_id, stats = out_q.get()
        payloads[worker_id] = stats
    for p in procs:
        p.join()
    return [s for w in sorted(payloads) for s in payloads[w]]


def analyze_trace(
    source: Source,
    *,
    detector: str = "our",
    jobs: int = 1,
    dispatch: str = "queue",
    batch_size: int = 512,
    queue_depth: int = 8,
) -> PipelineResult:
    """Analyze a recorded trace, optionally sharded over ``jobs`` processes.

    ``source`` may be a path (either trace format, auto-detected), an
    open :class:`TraceReader`, or an in-memory :class:`LoadedTrace`.
    ``dispatch="file"`` requires a path-backed source.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    if dispatch not in ("queue", "file"):
        raise ValueError(f"unknown dispatch mode {dispatch!r}")
    events, nranks, path = _as_stream(source)
    jobs = max(1, min(jobs, nranks))
    if jobs == 1:
        return _serial(events, nranks, detector)
    if dispatch == "file" and path is None:
        raise ValueError("dispatch='file' needs a path-backed trace source")
    _make_detector(detector)  # validate the name before forking

    ctx = _mp_context()
    out_q = ctx.Queue()
    worker_shards = [list(range(w, nranks, jobs)) for w in range(jobs)]
    t0 = time.perf_counter()

    if dispatch == "file":
        procs = [
            ctx.Process(
                target=_worker_file,
                args=(w, worker_shards[w], detector, nranks, path, out_q),
                daemon=True,
            )
            for w in range(jobs)
        ]
        for p in procs:
            p.start()
        # count events once in the parent for the throughput metric
        events_total = sum(1 for _ in events)
        all_stats = _collect(out_q, procs, jobs)
        queue_peak = [0] * jobs
    else:
        in_qs = [ctx.Queue(queue_depth) for _ in range(jobs)]
        procs = [
            ctx.Process(
                target=_worker_queue,
                args=(w, worker_shards[w], detector, nranks, in_qs[w], out_q),
                daemon=True,
            )
            for w in range(jobs)
        ]
        for p in procs:
            p.start()
        queue_peak = [0] * jobs
        buffers: List[List[TraceEvent]] = [[] for _ in range(nranks)]
        events_total = 0

        def ship(shard: int) -> None:
            worker = shard % jobs
            try:  # qsize is advisory; not implemented on some platforms
                queue_peak[worker] = max(queue_peak[worker],
                                         in_qs[worker].qsize() + 1)
            except NotImplementedError:  # pragma: no cover
                pass
            in_qs[worker].put((shard, buffers[shard]))
            buffers[shard] = []

        for event in events:
            events_total += 1
            for shard in shards_of(event, nranks):
                buffers[shard].append(event)
                if len(buffers[shard]) >= batch_size:
                    ship(shard)
        for shard in range(nranks):
            if buffers[shard]:
                ship(shard)
        for q in in_qs:
            q.put(None)
        all_stats = _collect(out_q, procs, jobs)

    wall = time.perf_counter() - t0
    merged = canonical_verdicts(
        r for s in all_stats for r in s.reports
    )
    return PipelineResult(
        detector=detector, nranks=nranks, jobs=jobs, dispatch=dispatch,
        events_total=events_total, wall_seconds=wall, verdicts=merged,
        shard_stats=sorted(all_stats, key=lambda s: s.shard),
        queue_peak=queue_peak,
    )

"""Crash-consistent checkpoints of in-flight analysis state.

The paper's detector state (the per-window BST) grows with dynamic
accesses; on a long trace, losing a worker to a crash — or the whole run
to a deadline or an OOM kill — costs re-analysis *from byte zero*.  This
module bounds that cost: at chunk boundaries the analysis serializes its
detector state (structure-preserving tree snapshots, see
:meth:`repro.detectors.base.Detector.snapshot`), its obs registry and
timeline rings, and the trace cursor of the last fully-applied chunk
into a ``repro-ckpt-v1`` file, so recovery replays only the events since
the newest checkpoint.

Format (one file per checkpoint, little-endian)::

    8s  magic    "REPROCK1"
    u32 header length
    ...  JSON header: {"schema", "lane", "seq", "meta": {...}}
    u32 payload length
    u32 payload crc32
    ...  pickled state payload

The header is JSON so validity and provenance checks never unpickle an
untrusted blob; the payload crc turns a torn write into a detected —
quarantined — checkpoint rather than silent state corruption.  Files are
written with the same atomic pattern as trace finalize (``<name>.tmp`` +
``os.replace``), so a crash mid-write never shadows the previous good
checkpoint.

A :class:`CheckpointStore` manages one *lane* (``serial``, or ``w3`` for
worker 3) inside the checkpoint directory: monotonically numbered files,
newest-first recovery with corrupt files renamed to ``*.bad`` (and
reported — falling back silently would make "resumed" claims a lie), and
pruning of superseded generations.
"""

from __future__ import annotations

import io
import json
import os
import pickle
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple, Union

__all__ = [
    "CKPT_MAGIC",
    "CKPT_SCHEMA",
    "CheckpointError",
    "CheckpointPlan",
    "CheckpointStore",
    "TraceDivergedError",
    "add_write_hook",
    "current_rss_mb",
    "drain_requested",
    "install_drain_event",
    "remove_write_hook",
]

CKPT_MAGIC = b"REPROCK1"
CKPT_SCHEMA = "repro-ckpt-v1"

_U32 = struct.Struct("<I")

#: pickle protocol 4 reads back on every supported interpreter
_PICKLE_PROTO = 4


class CheckpointError(Exception):
    """A checkpoint file is unusable, or resume preconditions fail."""


class TraceDivergedError(CheckpointError):
    """The trace is not an append-only extension of the analyzed prefix.

    Raised when a resume (or ``--follow`` re-poll) finds the rolling
    hash chain recorded in the checkpoint cursor disagrees with the
    bytes now on disk: something rewrote or replaced the prefix the
    detector state was built from, so continuing would emit confidently
    wrong verdicts.  Subclasses :class:`CheckpointError` so existing
    no-retry handling applies, but carries its own identity (and a
    dedicated CLI exit code) because the remedy differs — re-analyze
    from scratch, don't retry the resume.
    """

    def __init__(self, message: str, *, path: Optional[str] = None,
                 chunk: Optional[int] = None) -> None:
        super().__init__(message)
        self.path = path
        self.chunk = chunk


@dataclass(frozen=True)
class CheckpointPlan:
    """Everything a worker needs to checkpoint and guard itself.

    Crosses the fork into worker processes, so it stays a frozen bag of
    primitives.  ``deadline_at`` is an *absolute* ``time.time()`` value
    computed once by the parent — forked workers share the clock, so
    every lane observes the same deadline regardless of spawn jitter.
    """

    dir: str
    every: int = 4
    deadline_at: Optional[float] = None
    max_rss_mb: Optional[int] = None
    resume: bool = False
    keep: int = 2


_rss_unavailable_warned = False


def current_rss_mb() -> Optional[float]:
    """Resident-set high-water mark of this process, in MiB.

    ``ru_maxrss`` is kibibytes on Linux and bytes on macOS.  Module-level
    indirection on purpose: tests monkeypatch this to drive the memory
    guard deterministically.

    On platforms without a working :mod:`resource` probe this returns
    ``None`` — callers treat that as "guard unavailable" and keep
    analyzing (with a one-line warning, once per process) rather than
    dying on a telemetry read.
    """
    global _rss_unavailable_warned
    import sys

    try:
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    except (ImportError, OSError, ValueError):
        if not _rss_unavailable_warned:
            _rss_unavailable_warned = True
            import warnings

            warnings.warn(
                "RSS probe unavailable on this platform; the "
                "--max-rss-mb memory guard is disabled for this run",
                RuntimeWarning, stacklevel=2,
            )
        return None
    if sys.platform == "darwin":
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


# -- service hooks ------------------------------------------------------------
#
# ``repro serve`` runs analyses on worker threads inside one long-lived
# process.  Two tiny, optional hook points let the daemon cooperate with
# the engine without the engine knowing about the daemon:
#
# * a *drain event*: when set (SIGTERM drain), every checkpointed serial
#   analysis stops at its next chunk boundary exactly like a deadline —
#   checkpoint written, ``partial`` result, resumable;
# * *write hooks*: called after each checkpoint file lands on disk.
#   The chaos injectors use this to kill or stall the daemon at a
#   deterministic point ("after the job's 2nd checkpoint"), which is
#   what makes the crash-recovery certification reproducible.

_drain_event = None
_write_hooks: List = []


def install_drain_event(event) -> None:
    """Install (or clear, with ``None``) the process drain event."""
    global _drain_event
    _drain_event = event


def drain_requested() -> bool:
    """True when a drain event is installed and set."""
    return _drain_event is not None and _drain_event.is_set()


def add_write_hook(hook) -> None:
    """Register ``hook(lane, seq, path)`` to run after checkpoint writes."""
    _write_hooks.append(hook)


def remove_write_hook(hook) -> None:
    try:
        _write_hooks.remove(hook)
    except ValueError:
        pass


class CheckpointStore:
    """One lane's numbered checkpoint files in a shared directory."""

    def __init__(self, directory: Union[str, Path], lane: str) -> None:
        self.dir = Path(directory)
        self.lane = lane
        self.dir.mkdir(parents=True, exist_ok=True)
        #: files found corrupt/truncated during recovery, newest first
        self.quarantined: List[str] = []

    # -- naming ---------------------------------------------------------------

    def _path(self, seq: int) -> Path:
        return self.dir / f"{self.lane}-{seq:08d}.ckpt"

    def _existing(self) -> List[Tuple[int, Path]]:
        out = []
        prefix = self.lane + "-"
        for p in self.dir.glob(f"{self.lane}-*.ckpt"):
            stem = p.name[len(prefix):-len(".ckpt")]
            if stem.isdigit():
                out.append((int(stem), p))
        out.sort()
        return out

    def next_seq(self) -> int:
        existing = self._existing()
        return existing[-1][0] + 1 if existing else 1

    # -- writing --------------------------------------------------------------

    def write(self, meta: dict, state: dict) -> Path:
        """Atomically persist one checkpoint; returns its path.

        ``meta`` must be JSON-able (it lands in the header and is
        checked *before* any unpickling on recovery); ``state`` is
        pickled, so it may carry live detector snapshots.
        """
        seq = self.next_seq()
        header = {"schema": CKPT_SCHEMA, "lane": self.lane, "seq": seq,
                  "meta": meta}
        header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
        payload = pickle.dumps(state, protocol=_PICKLE_PROTO)
        path = self._path(seq)
        tmp = path.with_suffix(".tmp")
        with open(tmp, "wb") as fh:
            fh.write(CKPT_MAGIC)
            fh.write(_U32.pack(len(header_bytes)))
            fh.write(header_bytes)
            fh.write(_U32.pack(len(payload)))
            fh.write(_U32.pack(zlib.crc32(payload)))
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        self.prune()
        for hook in list(_write_hooks):
            hook(self.lane, seq, path)
        return path

    def prune(self, keep: Optional[int] = None) -> None:
        """Drop superseded generations, keeping the newest ``keep``.

        At least two generations stay on disk so a checkpoint that turns
        out torn on recovery still has a predecessor to fall back to.
        """
        keep = 2 if keep is None else max(1, keep)
        existing = self._existing()
        for _seq, path in existing[:-keep]:
            try:
                path.unlink()
            except OSError:
                pass

    # -- recovery -------------------------------------------------------------

    def load_latest(self, expect: Optional[dict] = None
                    ) -> Optional[Tuple[dict, dict]]:
        """Newest valid ``(header, state)``, or None when the lane is empty.

        Corrupt or truncated files are renamed to ``*.bad`` and recorded
        in :attr:`quarantined`, then the previous generation is tried —
        recovery degrades one checkpoint at a time, never silently to
        from-scratch.  ``expect`` pins header meta fields (detector,
        nranks, trace identity): a mismatch is a hard
        :class:`CheckpointError`, because resuming someone else's
        checkpoint would produce confidently wrong verdicts.
        """
        for seq, path in reversed(self._existing()):
            try:
                header, state = self._read(path)
            except CheckpointError:
                self._quarantine(path)
                continue
            if expect:
                for key, want in expect.items():
                    got = header["meta"].get(key)
                    if got != want:
                        raise CheckpointError(
                            f"{path.name}: checkpoint {key}={got!r} does "
                            f"not match this analysis ({want!r})")
            return header, state
        return None

    def _quarantine(self, path: Path) -> None:
        bad = path.with_suffix(".ckpt.bad")
        try:
            os.replace(path, bad)
        except OSError:
            bad = path
        self.quarantined.append(bad.name)

    def _read(self, path: Path) -> Tuple[dict, dict]:
        try:
            blob = path.read_bytes()
        except OSError as exc:
            raise CheckpointError(f"{path.name}: unreadable: {exc}")
        fh = io.BytesIO(blob)
        if fh.read(len(CKPT_MAGIC)) != CKPT_MAGIC:
            raise CheckpointError(f"{path.name}: bad magic")
        header = self._read_header(path, fh)
        if header.get("schema") != CKPT_SCHEMA:
            raise CheckpointError(
                f"{path.name}: unknown schema {header.get('schema')!r}")
        raw = fh.read(_U32.size * 2)
        if len(raw) != _U32.size * 2:
            raise CheckpointError(f"{path.name}: truncated payload frame")
        nbytes = _U32.unpack_from(raw, 0)[0]
        crc = _U32.unpack_from(raw, _U32.size)[0]
        payload = fh.read(nbytes)
        if len(payload) != nbytes:
            raise CheckpointError(f"{path.name}: truncated payload")
        if zlib.crc32(payload) != crc:
            raise CheckpointError(f"{path.name}: payload crc mismatch")
        try:
            state = pickle.loads(payload)
        except Exception as exc:
            raise CheckpointError(f"{path.name}: undecodable state: {exc}")
        return header, state

    @staticmethod
    def _read_header(path: Path, fh: io.BytesIO) -> dict:
        raw = fh.read(_U32.size)
        if len(raw) != _U32.size:
            raise CheckpointError(f"{path.name}: truncated header frame")
        hlen = _U32.unpack(raw)[0]
        if hlen > 1 << 20:
            raise CheckpointError(f"{path.name}: implausible header size")
        hbytes = fh.read(hlen)
        if len(hbytes) != hlen:
            raise CheckpointError(f"{path.name}: truncated header")
        try:
            header = json.loads(hbytes.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"{path.name}: bad header json: {exc}")
        if not isinstance(header, dict):
            raise CheckpointError(f"{path.name}: header is not an object")
        return header

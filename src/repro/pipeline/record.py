"""Recording side of the pipeline: run an app, stream its trace to disk.

``repro record <app>`` drives one of the simulated applications with
tracing enabled and no detector attached — the cheapest possible
recording run, matching the MC-Checker-style split where the profiling
layer only logs and every analysis happens post mortem.  Events are
streamed straight through a trace writer (binary v2 by default) via
:class:`~repro.mpi.trace.StreamingTraceLog`, so recording memory stays
constant no matter how long the run is.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple, Union

from ..mpi import World
from ..mpi.trace import StreamingTraceLog
from .format import make_trace_writer

__all__ = ["RECORDABLE_APPS", "AppSpec", "RecordResult", "record_app"]


@dataclass(frozen=True)
class AppSpec:
    """One recordable application: how to build its program + arguments."""

    name: str
    help: str
    default_ranks: int
    default_size: int
    #: ``builder(nranks, size, inject_race) -> (program, args)``
    builder: Callable[[int, int, bool], Tuple[Callable, tuple]]
    supports_race_injection: bool = False


def _minivite(nranks: int, size: int, inject_race: bool):
    from ..apps import (MiniViteConfig, MiniViteResult, default_graph,
                        make_comm_plan, minivite_program)

    config = MiniViteConfig(nvertices=size, inject_put_race=inject_race)
    graph = default_graph(config)
    plan = make_comm_plan(graph, nranks)
    return minivite_program, (graph, plan, config, MiniViteResult())


def _cfd(nranks: int, size: int, inject_race: bool):
    from ..apps import CfdConfig, CfdResult, cfd_program, default_partitions

    config = CfdConfig(iterations=size)
    parts = default_partitions(nranks, config)
    return cfd_program, (parts, config, CfdResult())


def _histogram(nranks: int, size: int, inject_race: bool):
    from ..apps import HistogramConfig, HistogramResult, histogram_program

    config = HistogramConfig(samples_per_rank=size)
    return histogram_program, (config, HistogramResult())


RECORDABLE_APPS: Dict[str, AppSpec] = {
    "minivite": AppSpec(
        "minivite", "single-phase distributed Louvain (size = vertices)",
        4, 1024, _minivite, supports_race_injection=True,
    ),
    "cfd": AppSpec(
        "cfd", "iterated halo exchange, two windows (size = iterations)",
        4, 10, _cfd,
    ),
    "histogram": AppSpec(
        "histogram", "accumulate-based histogram (size = samples/rank)",
        4, 256, _histogram,
    ),
}


@dataclass
class RecordResult:
    """What one recording run produced."""

    app: str
    nranks: int
    events: int
    path: Optional[Path] = None
    #: set only for in-memory recordings (``out=None``)
    trace_log: Optional[object] = None


def record_app(
    app: str,
    *,
    nranks: Optional[int] = None,
    size: Optional[int] = None,
    inject_race: bool = False,
    out: Optional[Union[str, Path]] = None,
    format: str = "binary",
) -> RecordResult:
    """Run ``app`` on ``nranks`` simulated ranks and record its trace.

    With ``out`` set the trace streams to that file in the requested
    format and never accumulates in memory; without it the (small) run's
    :class:`~repro.mpi.trace.TraceLog` is returned for direct replay.
    """
    spec = RECORDABLE_APPS.get(app)
    if spec is None:
        raise ValueError(
            f"unknown app {app!r}; have {sorted(RECORDABLE_APPS)}"
        )
    if inject_race and not spec.supports_race_injection:
        raise ValueError(f"--inject-race is not supported for {app!r}")
    nranks = nranks or spec.default_ranks
    size = size or spec.default_size
    program, args = spec.builder(nranks, size, inject_race)

    if out is None:
        world = World(nranks, [], trace=True)
        world.run(program, *args)
        return RecordResult(app, nranks, len(world.trace_log),
                            trace_log=world.trace_log)

    path = Path(out)
    with make_trace_writer(path, nranks=nranks, format=format) as writer:
        log = StreamingTraceLog(writer.write)
        world = World(nranks, [], trace=log)
        world.run(program, *args)
    return RecordResult(app, nranks, writer.events_written, path=path)

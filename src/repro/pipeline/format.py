"""``repro-trace-v2`` — compact chunked binary traces, streamed both ways.

The v1 JSON-lines format (:mod:`repro.mpi.trace_io`) is convenient but
verbose, and both its writer and reader materialize the whole event list
in memory.  For the analysis pipeline we want the recording side to run
in constant memory next to the simulation, and the analysis side to
stream events into the sharder without ever holding the trace — the
MC-Checker lesson that "the recorded trace grows with the execution"
must not apply to the *analyzer's* footprint.

Layout of a v2 file::

    magic    8 bytes   b"REPROTR2"
    header   u32 length + JSON   {"format": "repro-trace-v2",
                                  "nranks": N, "enums": {...},
                                  "chunk_crc32": true,
                                  "chunk_chain": "sha256"}
    chunk*   b"CHNK" + u32 payload bytes + u32 event count
             [+ u32 crc32(payload), when the header flags it]
             [+ 32-byte rolling sha256 chain, when the header flags it]
             + payload
    trailer  b"TEND" + u64 total event count

The *chain* turns the chunk sequence into a hash chain: ``chain[0] =
sha256(magic + u32(header length) + header bytes)`` and ``chain[k] =
sha256(chain[k-1] + payload[k])``.  Two traces share chain value k iff
they are byte-identical through chunk k, so a reader can prove "this
file is an append-only extension of that one" — or name the exact
chunk where they diverge — by comparing one 32-byte value per file
(:func:`trace_chain` / :func:`compare_chain`).  The chain is computed
for any v2 file; new writers additionally *store* it per frame so
single-file prefix rewrites are self-detecting.  Files from before
either flag are still read.

Each chunk payload starts with the strings *first seen* in that chunk
(file names, op names, accumulate ops); readers grow the same string
table in lockstep, so strings are written once per file.  Events are
fixed little-endian ``struct`` records plus string ids.  Enum members
are encoded as indexes into tables spelled out in the header, so a file
survives enum reordering in future versions of the package.  Files
written before the checksum existed carry no ``chunk_crc32`` header
flag and are still read.

Robustness:

* Writers stream to ``<path>.tmp`` and :func:`os.replace` into place on
  :meth:`close`, so a crashed recording can never leave a final path
  that passes the trailer check; :meth:`abort` (called automatically
  when the ``with`` block exits on an exception) removes the temp file.
* :class:`TraceReader` auto-detects and streams v1 JSON-lines files
  too: open one path, iterate events, never care which format it was.
* In the default ``strict=True`` mode, malformed input of either format
  raises :class:`~repro.mpi.errors.TraceFormatError` naming the file
  and (where meaningful) the line.  With ``strict=False`` the reader
  *salvages*: corrupt or truncated chunks are quarantined using the
  chunk framing + checksum and iteration continues with the remaining
  chunks, with the damage accounted in :attr:`TraceReader.salvage_report`
  (quarantined chunk numbers, events lost, truncation flag).  One
  caveat is inherent to the incremental string table: if a quarantined
  chunk was the first to intern a string, later chunks referencing it
  decode against a shorter table and are quarantined in turn — the
  accounting stays exact (the trailer reconciles the loss), but a
  corrupt *early* chunk can shadow later ones.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import zlib
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Tuple, Union

from ..intervals import AccessType, DebugInfo, Interval, MemoryAccess
from ..mpi.errors import TraceChainMismatch, TraceFormatError
from ..mpi.memory import RegionInfo, RegionKind
from ..mpi.trace import LocalEvent, RmaEvent, SyncEvent, SyncKind, TraceEvent

__all__ = [
    "FORMAT_V1",
    "FORMAT_V2",
    "MAGIC_V2",
    "BinaryTraceWriter",
    "JsonTraceWriter",
    "TraceReader",
    "WireStream",
    "compare_chain",
    "make_trace_writer",
    "trace_chain",
]

FORMAT_V1 = "repro-trace-v1"
FORMAT_V2 = "repro-trace-v2"
MAGIC_V2 = b"REPROTR2"

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_I64 = struct.Struct("<q")
# lo, hi, type id, file id, line, origin, flush_gen
_ACCESS = struct.Struct("<qqBIIii")
_LOCAL = struct.Struct("<qi")        # seq, rank
_RMA = struct.Struct("<qiii")        # seq, rank, target, wid
_SYNC = struct.Struct("<qiBi")       # seq, rank, kind id, wid

_TAG_LOCAL, _TAG_RMA, _TAG_SYNC = 0, 1, 2
_FLAG_ACCUM, _FLAG_EXCL = 1, 2

#: rolling-chain algorithm flagged in v2 headers and its digest size
CHAIN_ALGO = "sha256"
_CHAIN_BYTES = 32


def _chain_seed(hlen_raw: bytes, header_bytes: bytes) -> bytes:
    """Chain value 0: binds the chain to this file's exact header."""
    return hashlib.sha256(MAGIC_V2 + hlen_raw + header_bytes).digest()


def _chain_next(prev: bytes, payload: bytes) -> bytes:
    return hashlib.sha256(prev + payload).digest()

# enum member order as written into the header; readers map ids through
# the header tables, not through these lists
_ACCESS_TYPES = list(AccessType)
_SYNC_KINDS = list(SyncKind)
_REGION_KINDS = list(RegionKind)


# -- writing -----------------------------------------------------------------


class _StringTable:
    """Write-side interning: ids are assignment order, new strings pend."""

    def __init__(self) -> None:
        self._ids: Dict[str, int] = {}
        self._pending: List[str] = []

    def intern(self, s: str) -> int:
        sid = self._ids.get(s)
        if sid is None:
            sid = len(self._ids)
            self._ids[s] = sid
            self._pending.append(s)
        return sid

    def take_pending(self) -> List[str]:
        pending, self._pending = self._pending, []
        return pending


class BinaryTraceWriter:
    """Streaming v2 writer: ``write`` events one at a time, constant memory.

    Events are buffered into chunks of ``events_per_chunk`` and flushed
    as framed, crc32-checksummed records; :meth:`close` (or a clean
    context-manager exit) appends the trailer that lets readers prove
    the file was not truncated, then atomically renames the temp file
    into ``path``.  An exceptional ``with``-block exit calls
    :meth:`abort` instead, which removes the temp file — an interrupted
    recording never leaves a file that looks complete.

    ``fault_hook``, if given, is called as ``hook(stage, n)`` at
    ``("chunk", chunk_no)`` after each chunk flush and ``("close",
    chunks_flushed)`` on finalize — the seam the fault-injection harness
    uses to simulate recorder crashes deterministically.

    ``live=True`` targets the *follow* workflow: the writer streams
    straight to ``path`` (no temp file, each chunk flushed as written)
    so a tail-mode reader can analyze the trace while it grows.  The
    price is that atomic finalize is off — an interrupted live
    recording leaves a trailerless file, which tail readers classify
    as "in progress" and strict readers as truncated.
    """

    def __init__(
        self,
        path: Union[str, Path],
        *,
        nranks: int,
        events_per_chunk: int = 2048,
        fault_hook: Optional[Callable[[str, int], None]] = None,
        chain: bool = True,
        live: bool = False,
    ) -> None:
        if events_per_chunk < 1:
            raise ValueError("events_per_chunk must be positive")
        self.path = Path(path)
        self.nranks = nranks
        self.events_written = 0
        self.chunks_written = 0
        self._per_chunk = events_per_chunk
        self._fault_hook = fault_hook
        self._strings = _StringTable()
        self._buf = bytearray()
        self._chunk_events = 0
        self._done = False
        self._live = bool(live)
        if self._live:
            self._tmp = self.path
        else:
            self._tmp = self.path.with_name(self.path.name + ".tmp")
        self._fh = self._tmp.open("wb")
        head: dict = {
            "format": FORMAT_V2,
            "nranks": nranks,
            "chunk_crc32": True,
            "enums": {
                "access": [t.name for t in _ACCESS_TYPES],
                "sync": [k.value for k in _SYNC_KINDS],
                "region": [k.value for k in _REGION_KINDS],
            },
        }
        if chain:
            head["chunk_chain"] = CHAIN_ALGO
        header = json.dumps(head).encode("utf-8")
        hlen_raw = _U32.pack(len(header))
        self._chain: Optional[bytes] = (
            _chain_seed(hlen_raw, header) if chain else None)
        self._fh.write(MAGIC_V2)
        self._fh.write(hlen_raw)
        self._fh.write(header)
        if self._live:
            self._fh.flush()

    @classmethod
    def open_append(
        cls,
        path: Union[str, Path],
        *,
        events_per_chunk: Optional[int] = None,
        fault_hook: Optional[Callable[[str, int], None]] = None,
    ) -> "BinaryTraceWriter":
        """Reopen a v2 trace for appending more chunks (live mode).

        The existing chunks are scanned (framing and checksums
        verified, the incremental string table and the rolling chain
        replayed) and the file is truncated back to the end of its last
        complete chunk — dropping the trailer of a finalized trace, or
        the torn tail of an interrupted live recording.  Writing then
        continues exactly as if the original recorder had never
        stopped: the extended file is byte-for-byte an append-only
        extension, which is what lets chain-aware readers resume from a
        prefix cursor instead of re-analyzing from chunk zero.
        """
        path = Path(path)
        with path.open("rb") as fh:
            magic = fh.read(len(MAGIC_V2))
            if magic != MAGIC_V2:
                raise TraceFormatError(
                    "open_append needs a repro-trace-v2 file", path=path)
            hlen_raw = fh.read(_U32.size)
            if len(hlen_raw) < _U32.size:
                raise TraceFormatError("truncated v2 header length",
                                       path=path)
            (hlen,) = _U32.unpack(hlen_raw)
            header_bytes = fh.read(hlen)
            if len(header_bytes) < hlen:
                raise TraceFormatError("truncated v2 header", path=path)
            try:
                header = json.loads(header_bytes)
            except json.JSONDecodeError as exc:
                raise TraceFormatError(f"corrupt v2 header: {exc}",
                                       path=path) from exc
            if header.get("format") != FORMAT_V2:
                raise TraceFormatError("not a repro-trace-v2 file", path=path)
            want_enums = {
                "access": [t.name for t in _ACCESS_TYPES],
                "sync": [k.value for k in _SYNC_KINDS],
                "region": [k.value for k in _REGION_KINDS],
            }
            if header.get("enums") != want_enums:
                raise TraceFormatError(
                    "cannot append: trace was written with different enum "
                    "tables", path=path)
            has_crc = bool(header.get("chunk_crc32"))
            has_chain = bool(header.get("chunk_chain"))
            if has_chain and not has_crc:
                raise TraceFormatError(
                    "malformed header: chunk_chain without chunk_crc32",
                    path=path)
            chain = _chain_seed(hlen_raw, header_bytes) if has_chain else None
            frame = struct.Struct("<III") if has_crc else struct.Struct("<II")
            extra = _CHAIN_BYTES if has_chain else 0
            strings = _StringTable()
            total = 0
            chunks = 0
            first_chunk_events: Optional[int] = None
            good_end = fh.tell()
            while True:
                tag = fh.read(4)
                if tag == b"CHNK":
                    raw = fh.read(frame.size + extra)
                    if len(raw) < frame.size + extra:
                        break  # torn tail of an interrupted append
                    if has_crc:
                        nbytes, nevents, crc = frame.unpack_from(raw, 0)
                    else:
                        (nbytes, nevents), crc = frame.unpack_from(raw, 0), \
                            None
                    stored = raw[frame.size:frame.size + extra]
                    payload = fh.read(nbytes)
                    if len(payload) < nbytes:
                        break  # torn tail
                    if crc is not None and zlib.crc32(payload) != crc:
                        raise TraceFormatError(
                            f"chunk {chunks + 1}: checksum mismatch — "
                            f"cannot append to a corrupt trace", path=path)
                    if chain is not None:
                        chain = _chain_next(chain, payload)
                        if stored != chain:
                            raise TraceChainMismatch(
                                f"chunk {chunks + 1}: stored chain mismatch "
                                f"— cannot append to a rewritten trace",
                                path=path, chunk=chunks + 1)
                    # replay the incremental string table so new chunks
                    # intern against the same ids the file already uses
                    (nstrings,) = _U32.unpack_from(payload, 0)
                    off = _U32.size
                    for _ in range(nstrings):
                        (slen,) = _U32.unpack_from(payload, off)
                        off += _U32.size
                        strings.intern(payload[off:off + slen].decode("utf-8"))
                        off += slen
                    strings.take_pending()  # already on disk, not pending
                    chunks += 1
                    total += nevents
                    if first_chunk_events is None:
                        first_chunk_events = nevents
                    good_end = fh.tell()
                elif tag in (b"TEND", b""):
                    break  # finalized (drop trailer) or clean live tail
                else:
                    raise TraceFormatError(
                        f"bad chunk tag {tag!r} after chunk {chunks} — "
                        f"cannot append to a corrupt trace", path=path)
        per_chunk = events_per_chunk or first_chunk_events or 2048
        self = cls.__new__(cls)
        self.path = path
        self.nranks = header["nranks"]
        self.events_written = total
        self.chunks_written = chunks
        self._per_chunk = per_chunk
        self._fault_hook = fault_hook
        self._strings = strings
        self._buf = bytearray()
        self._chunk_events = 0
        self._done = False
        self._live = True
        self._tmp = path
        self._chain = chain
        self._fh = path.open("r+b")
        self._fh.seek(good_end)
        self._fh.truncate(good_end)
        return self

    # -- encoding ------------------------------------------------------------

    def _put_access(self, acc: MemoryAccess) -> None:
        buf = self._buf
        flags = 0
        if acc.accum_op is not None:
            flags |= _FLAG_ACCUM
        if acc.excl_epoch is not None:
            flags |= _FLAG_EXCL
        buf.append(flags)
        buf += _ACCESS.pack(
            acc.interval.lo, acc.interval.hi,
            _ACCESS_TYPES.index(acc.type),
            self._strings.intern(acc.debug.filename), acc.debug.line,
            acc.origin, acc.flush_gen,
        )
        if flags & _FLAG_ACCUM:
            buf += _U32.pack(self._strings.intern(acc.accum_op))
        if flags & _FLAG_EXCL:
            buf += struct.pack("<q", acc.excl_epoch)

    def _put_region(self, info: RegionInfo) -> None:
        self._buf.append(_REGION_KINDS.index(info.kind))
        self._buf.append(1 if info.may_alias_rma else 0)

    def write(self, event: TraceEvent) -> None:
        buf = self._buf
        if isinstance(event, LocalEvent):
            buf.append(_TAG_LOCAL)
            buf += _LOCAL.pack(event.seq, event.rank)
            self._put_access(event.access)
            self._put_region(event.region)
        elif isinstance(event, RmaEvent):
            buf.append(_TAG_RMA)
            buf += _RMA.pack(event.seq, event.rank, event.target, event.wid)
            buf += _U32.pack(self._strings.intern(event.op))
            buf += struct.pack("<q", event.nbytes)
            self._put_access(event.origin_access)
            self._put_access(event.target_access)
            self._put_region(event.origin_region)
            self._put_region(event.target_region)
        elif isinstance(event, SyncEvent):
            buf.append(_TAG_SYNC)
            buf += _SYNC.pack(
                event.seq, event.rank, _SYNC_KINDS.index(event.kind), event.wid
            )
        else:
            raise TypeError(f"unknown trace event {event!r}")
        self.events_written += 1
        self._chunk_events += 1
        if self._chunk_events >= self._per_chunk:
            self._flush_chunk()

    def _flush_chunk(self) -> None:
        if not self._chunk_events:
            return
        head = bytearray()
        new_strings = self._strings.take_pending()
        head += _U32.pack(len(new_strings))
        for s in new_strings:
            raw = s.encode("utf-8")
            head += _U32.pack(len(raw))
            head += raw
        payload = bytes(head) + bytes(self._buf)
        self._fh.write(b"CHNK")
        self._fh.write(_U32.pack(len(payload)))
        self._fh.write(_U32.pack(self._chunk_events))
        self._fh.write(_U32.pack(zlib.crc32(payload)))
        if self._chain is not None:
            self._chain = _chain_next(self._chain, payload)
            self._fh.write(self._chain)
        self._fh.write(payload)
        if self._live:
            self._fh.flush()
        self._buf.clear()
        self._chunk_events = 0
        self.chunks_written += 1
        if self._fault_hook is not None:
            self._fault_hook("chunk", self.chunks_written)

    def close(self) -> None:
        if self._done:
            return
        if self._fault_hook is not None:
            self._fault_hook("close", self.chunks_written)
        self._flush_chunk()
        self._fh.write(b"TEND")
        self._fh.write(_U64.pack(self.events_written))
        self._fh.close()
        if not self._live:
            os.replace(self._tmp, self.path)
        self._done = True

    def abort(self) -> None:
        """Discard the recording: close and remove the temp file.

        A *live* writer cannot un-publish chunks already flushed to the
        final path; abort just closes the handle, leaving a trailerless
        file that tail readers treat as in-progress and strict readers
        as truncated.
        """
        if self._done:
            return
        self._done = True
        self._fh.close()
        if self._live:
            return
        try:
            self._tmp.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def __enter__(self) -> "BinaryTraceWriter":
        return self

    def __exit__(self, exc_type, *exc) -> None:
        if exc_type is not None:
            self.abort()
        else:
            self.close()


class JsonTraceWriter:
    """Streaming v1 JSON-lines writer (one header line + one line/event).

    Finalization is atomic like the binary writer's: the stream goes to
    ``<path>.tmp`` and is renamed into place on :meth:`close`; an
    exceptional ``with``-block exit :meth:`abort`\\ s instead.
    """

    def __init__(self, path: Union[str, Path], *, nranks: int) -> None:
        from ..mpi.trace_io import _event_to_dict  # lazy: avoids a cycle

        self._to_dict = _event_to_dict
        self.path = Path(path)
        self.nranks = nranks
        self.events_written = 0
        self._done = False
        self._tmp = self.path.with_name(self.path.name + ".tmp")
        self._fh = self._tmp.open("w")
        json.dump({"format": FORMAT_V1, "nranks": nranks}, self._fh)
        self._fh.write("\n")

    def write(self, event: TraceEvent) -> None:
        json.dump(self._to_dict(event), self._fh, separators=(",", ":"))
        self._fh.write("\n")
        self.events_written += 1

    def close(self) -> None:
        if self._done:
            return
        self._fh.close()
        os.replace(self._tmp, self.path)
        self._done = True

    def abort(self) -> None:
        """Discard the recording: close and remove the temp file."""
        if self._done:
            return
        self._done = True
        self._fh.close()
        try:
            self._tmp.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def __enter__(self) -> "JsonTraceWriter":
        return self

    def __exit__(self, exc_type, *exc) -> None:
        if exc_type is not None:
            self.abort()
        else:
            self.close()


def make_trace_writer(
    path: Union[str, Path], *, nranks: int, format: str = "binary"
):
    """Writer factory keyed by the CLI's ``--format {json,binary}``."""
    if format in ("binary", FORMAT_V2):
        return BinaryTraceWriter(path, nranks=nranks)
    if format in ("json", FORMAT_V1):
        return JsonTraceWriter(path, nranks=nranks)
    raise ValueError(f"unknown trace format {format!r} (json or binary)")


# -- reading -----------------------------------------------------------------


class _Cursor:
    """Bounds-checked little helper over one chunk's payload."""

    __slots__ = ("view", "pos", "path", "chunk")

    def __init__(self, payload: bytes, path: Path, chunk: int) -> None:
        self.view = payload
        self.pos = 0
        self.path = path
        self.chunk = chunk

    def take(self, fmt: struct.Struct):
        try:
            values = fmt.unpack_from(self.view, self.pos)
        except struct.error as exc:
            raise TraceFormatError(
                f"chunk {self.chunk} ends mid-record ({exc})", path=self.path
            ) from exc
        self.pos += fmt.size
        return values

    def take_byte(self) -> int:
        if self.pos >= len(self.view):
            raise TraceFormatError(
                f"chunk {self.chunk} ends mid-record", path=self.path
            )
        b = self.view[self.pos]
        self.pos += 1
        return b

    def take_bytes(self, n: int) -> bytes:
        end = self.pos + n
        if end > len(self.view):
            raise TraceFormatError(
                f"chunk {self.chunk} ends mid-string", path=self.path
            )
        raw = self.view[self.pos:end]
        self.pos = end
        return raw


class TraceReader:
    """Streaming reader for both trace formats, auto-detected.

    Iterating a reader opens the file anew each time, so one reader can
    drive several passes (and several worker processes can each hold
    their own iterator over the same path).  Memory use is bounded by
    one chunk (v2) or one line (v1).

    ``strict=False`` turns on *salvage* mode: instead of raising on the
    first corrupt or truncated chunk, the reader quarantines it (the
    chunk framing and per-chunk checksum bound the damage), keeps
    iterating the rest of the file, and accounts the loss — afterwards
    :attr:`quarantined_chunks`, :attr:`events_lost` and
    :attr:`truncated` (or :meth:`salvage_report`) say exactly what was
    skipped.  Damage that predates iteration (bad magic, unreadable
    header) still raises: there is nothing to salvage without a header.

    Setting :attr:`tail` to True turns on *tail* mode for v2 traces
    that are still being appended to: an incomplete final frame, a
    short payload, or a missing trailer at end-of-file stops iteration
    cleanly (``tail_pending=True``) instead of raising or flagging
    truncation — the caller polls and re-enters from the last cursor.
    Genuine corruption (a checksum or chain mismatch on a *complete*
    payload) is still reported normally: a torn append grows back, a
    corrupt chunk never does.  :attr:`complete` says whether the last
    iteration reached a valid trailer.
    """

    def __init__(self, path: Union[str, Path], *, strict: bool = True) -> None:
        self.path = Path(path)
        self.strict = strict
        #: treat end-of-file as "in-progress append", not truncation
        self.tail = False
        #: last iteration reached the trailer (the file is finalized)
        self.complete = False
        #: last (tail-mode) iteration stopped at an unfinished tail
        self.tail_pending = False
        #: chunk numbers (v2) / line numbers (v1) skipped by salvage mode
        self.quarantined_chunks: List[int] = []
        #: events known lost to quarantined chunks (trailer-reconciled)
        self.events_lost = 0
        #: True when the file ends before its trailer (mid-write crash)
        self.truncated = False
        try:
            with self.path.open("rb") as fh:
                head = fh.read(len(MAGIC_V2))
                if head == MAGIC_V2:
                    self.format = FORMAT_V2
                    self._header = self._read_v2_header(fh)
                elif head[:1] == b"{":
                    self.format = FORMAT_V1
                    self._header = self._read_v1_header(fh, head)
                elif len(head) == 0:
                    raise TraceFormatError("empty file", path=self.path)
                else:
                    raise TraceFormatError(
                        "not a repro trace (bad magic and not JSON lines)",
                        path=self.path,
                    )
        except OSError as exc:
            raise TraceFormatError(f"cannot read trace: {exc}",
                                   path=self.path) from exc
        self.nranks = self._header["nranks"]

    # -- headers -------------------------------------------------------------

    def _read_v2_header(self, fh) -> dict:
        raw = fh.read(_U32.size)
        if len(raw) < _U32.size:
            raise TraceFormatError("truncated v2 header length", path=self.path)
        (length,) = _U32.unpack(raw)
        blob = fh.read(length)
        if len(blob) < length:
            raise TraceFormatError("truncated v2 header", path=self.path)
        try:
            header = json.loads(blob)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(f"corrupt v2 header: {exc}",
                                   path=self.path) from exc
        if header.get("format") != FORMAT_V2:
            raise TraceFormatError(
                f"not a {FORMAT_V2} file (header says "
                f"{header.get('format')!r})", path=self.path,
            )
        if not isinstance(header.get("nranks"), int):
            raise TraceFormatError("v2 header missing 'nranks'", path=self.path)
        try:
            header["access_table"] = [
                AccessType[n] for n in header["enums"]["access"]
            ]
            header["sync_table"] = [
                SyncKind(v) for v in header["enums"]["sync"]
            ]
            header["region_table"] = [
                RegionKind(v) for v in header["enums"]["region"]
            ]
        except (KeyError, ValueError) as exc:
            raise TraceFormatError(f"bad v2 enum tables: {exc!r}",
                                   path=self.path) from exc
        # files from before the per-chunk checksum carry no flag
        header["chunk_crc"] = bool(header.get("chunk_crc32"))
        # likewise for the rolling chain; the seed binds cursors' chain
        # values to this exact header, and is computable for any v2
        # file — only the *stored* per-frame digests need the flag
        header["chunk_chain_stored"] = bool(header.get("chunk_chain"))
        header["chain_seed"] = _chain_seed(raw, blob)
        return header

    def _read_v1_header(self, fh, head: bytes) -> dict:
        line = head + fh.readline()
        try:
            header = json.loads(line.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise TraceFormatError(f"corrupt v1 header: {exc}",
                                   path=self.path, line=1) from exc
        if header.get("format") != FORMAT_V1:
            raise TraceFormatError(
                f"not a {FORMAT_V1} file (header says "
                f"{header.get('format')!r})", path=self.path, line=1,
            )
        if not isinstance(header.get("nranks"), int):
            raise TraceFormatError("v1 header missing 'nranks'",
                                   path=self.path, line=1)
        return header

    # -- iteration -----------------------------------------------------------

    def __iter__(self) -> Iterator[TraceEvent]:
        self.quarantined_chunks = []
        self.events_lost = 0
        self.truncated = False
        self.complete = False
        self.tail_pending = False
        if self.format == FORMAT_V2:
            return self._iter_v2()
        return self._iter_v1()

    def wire_stream(self) -> Optional["WireStream"]:
        """Raw-chunk access for the flat core's fused decode, if eligible.

        Only strict v2 binary readers qualify: the wire path does no
        salvage bookkeeping (any damage raises), and v1 JSON traces
        have no binary chunks to hand over.  Returns ``None`` when the
        caller should fall back to decoded-event iteration.
        """
        if not self.strict or self.format != FORMAT_V2:
            return None
        return WireStream(self)

    def salvage_report(self) -> dict:
        """What the last (salvage-mode) iteration had to skip.

        When the iteration was resumed from a checkpoint cursor
        (:meth:`iter_chunks` with ``start``), the counts include the
        losses recorded before the checkpoint — resume must not launder
        away salvage accounting.
        """
        return {
            "quarantined_chunks": list(self.quarantined_chunks),
            "events_lost": self.events_lost,
            "truncated": self.truncated,
        }

    # -- chunk-wise iteration (checkpoint/resume) -----------------------------

    #: v1 JSON-lines traces have no physical chunks; group this many
    #: events into one *virtual* chunk so checkpoint cadence is
    #: comparable across formats (matches the v2 writer's default)
    VIRTUAL_CHUNK_EVENTS = 2048

    def iter_chunks(self, start: Optional[dict] = None
                    ) -> Iterator[Tuple[List[TraceEvent], dict]]:
        """Iterate ``(events, cursor)`` one fully-decoded chunk at a time.

        ``cursor`` resumes iteration *after* that chunk: pass it back as
        ``start`` (possibly in another process, days later) and the
        remaining chunks decode exactly as they would have — the cursor
        carries the incremental string table, the cumulative event
        count, the rolling chain value (v2), and the salvage
        accounting, so loss statistics survive the hop.  Cursors are
        plain picklable dicts; they are only valid against the same
        trace file — or, when they carry a chain value, against any
        append-only extension of it (checkpoint metadata pins
        identity either way).
        """
        self.complete = False
        self.tail_pending = False
        if start is not None:
            expect = "v2" if self.format == FORMAT_V2 else "v1"
            if start.get("kind") != expect:
                raise TraceFormatError(
                    f"resume cursor kind {start.get('kind')!r} does not "
                    f"match a {expect} trace", path=self.path)
            salvage = start.get("salvage") or {}
            self.quarantined_chunks = list(
                salvage.get("quarantined_chunks", []))
            self.events_lost = int(salvage.get("events_lost", 0))
            self.truncated = bool(salvage.get("truncated", False))
        else:
            self.quarantined_chunks = []
            self.events_lost = 0
            self.truncated = False
        if self.format == FORMAT_V2:
            return self._chunks_v2(start)
        return self._chunks_v1(start)

    def _salvage_state(self, claimed_lost: int) -> dict:
        return {
            "quarantined_chunks": list(self.quarantined_chunks),
            "events_lost": claimed_lost,
            "truncated": self.truncated,
        }

    def total_events(self) -> Optional[int]:
        """Total events the trace claims to hold, or None when unknowable.

        v2 files are answered from the 12-byte trailer without scanning
        the body (``analyzed_fraction`` needs this on multi-GB traces);
        a missing/torn trailer returns None.  v1 counts event lines.
        """
        if self.format == FORMAT_V2:
            try:
                with self.path.open("rb") as fh:
                    fh.seek(0, 2)
                    size = fh.tell()
                    if size < 4 + _U64.size:
                        return None
                    fh.seek(size - (4 + _U64.size))
                    tail = fh.read(4 + _U64.size)
            except OSError:
                return None
            if tail[:4] != b"TEND":
                return None
            return _U64.unpack(tail[4:])[0]
        try:
            with self.path.open() as fh:
                fh.readline()  # header
                return sum(1 for line in fh if line.strip())
        except OSError:
            return None

    def _iter_v1(self) -> Iterator[TraceEvent]:
        for events, _cursor in self._chunks_v1(None):
            yield from events

    def _chunks_v1(self, start: Optional[dict]
                   ) -> Iterator[Tuple[List[TraceEvent], dict]]:
        from ..mpi.trace_io import _event_from_dict  # lazy: avoids a cycle

        with self.path.open() as fh:
            fh.readline()  # header, validated in __init__
            if start is not None:
                fh.seek(start["pos"])
                lineno = start["line"]
                total = start["events_applied"]
            else:
                lineno = 1
                total = 0
            batch: List[TraceEvent] = []

            def cursor() -> dict:
                return {
                    "kind": "v1",
                    "pos": fh.tell(),
                    "line": lineno,
                    "events_applied": total,
                    "salvage": self._salvage_state(self.events_lost),
                }

            while True:
                # readline (not file iteration) keeps fh.tell() legal,
                # which is what makes v1 cursors byte-resumable
                line = fh.readline()
                if not line:
                    break
                lineno += 1
                if not line.strip():
                    continue
                try:
                    event = _event_from_dict(json.loads(line))
                except json.JSONDecodeError as exc:
                    if self.strict:
                        raise TraceFormatError(
                            f"corrupt or truncated event record: {exc}",
                            path=self.path, line=lineno,
                        ) from exc
                    self.quarantined_chunks.append(lineno)
                    self.events_lost += 1
                    continue
                except (KeyError, ValueError, TypeError) as exc:
                    if self.strict:
                        raise TraceFormatError(
                            f"malformed event record: {exc!r}",
                            path=self.path, line=lineno,
                        ) from exc
                    self.quarantined_chunks.append(lineno)
                    self.events_lost += 1
                    continue
                batch.append(event)
                if len(batch) >= self.VIRTUAL_CHUNK_EVENTS:
                    total += len(batch)
                    yield batch, cursor()
                    batch = []
            if batch:
                total += len(batch)
                yield batch, cursor()

    def _bad(self, message: str) -> None:
        """Raise in strict mode; in salvage mode the caller quarantines."""
        if self.strict:
            raise TraceFormatError(message, path=self.path)

    def _resync(self, fh, from_pos: int) -> bool:
        """Scan forward for the next frame tag and seek the file to it."""
        fh.seek(from_pos)
        overlap = b""
        while True:
            block = fh.read(1 << 16)
            if not block:
                return False
            hay = overlap + block
            hits = [i for i in (hay.find(b"CHNK"), hay.find(b"TEND"))
                    if i != -1]
            if hits:
                fh.seek(fh.tell() - len(hay) + min(hits))
                return True
            overlap = hay[-3:]

    def _iter_v2(self) -> Iterator[TraceEvent]:
        for events, _cursor in self._chunks_v2(None):
            yield from events

    def _chunks_v2(self, start: Optional[dict]
                   ) -> Iterator[Tuple[List[TraceEvent], dict]]:
        header = self._header
        access_table: List[AccessType] = header["access_table"]
        sync_table: List[SyncKind] = header["sync_table"]
        region_table: List[RegionKind] = header["region_table"]
        frame = struct.Struct("<III") if header["chunk_crc"] \
            else struct.Struct("<II")
        chain_extra = _CHAIN_BYTES if header["chunk_chain_stored"] else 0
        if start is not None:
            strings = list(start["strings"])
            total = start["events_applied"]
            claimed_lost = self.events_lost
            start_chain = start.get("chain")
            chain: Optional[bytes] = (
                bytes.fromhex(start_chain) if start_chain else None)
        else:
            strings = []
            total = 0
            claimed_lost = 0
            chain = header["chain_seed"]
        with self.path.open("rb") as fh:
            if start is not None:
                fh.seek(start["pos"])
                chunk_no = start["chunk"]
            else:
                fh.seek(len(MAGIC_V2))
                (hlen,) = _U32.unpack(fh.read(_U32.size))
                fh.seek(hlen, 1)
                chunk_no = 0
            while True:
                tag_pos = fh.tell()
                tag = fh.read(4)
                if tag == b"CHNK":
                    chunk_no += 1
                    raw = fh.read(frame.size + chain_extra)
                    if len(raw) < frame.size + chain_extra:
                        if self.tail:
                            self.tail_pending = True
                            return
                        self._bad(f"truncated chunk {chunk_no} frame")
                        self.quarantined_chunks.append(chunk_no)
                        self.truncated = True
                        break
                    if header["chunk_crc"]:
                        nbytes, nevents, crc = frame.unpack_from(raw, 0)
                    else:
                        (nbytes, nevents), crc = frame.unpack_from(raw, 0), \
                            None
                    stored_chain = raw[frame.size:] if chain_extra else None
                    if not self.strict and nbytes > (1 << 30):
                        # a frame this large is corruption, not data
                        self.quarantined_chunks.append(chunk_no)
                        chain = None
                        if not self._resync(fh, tag_pos + 1):
                            self.truncated = True
                            break
                        continue
                    payload = fh.read(nbytes)
                    if len(payload) < nbytes:
                        if self.tail:
                            self.tail_pending = True
                            return
                        self._bad(
                            f"truncated chunk {chunk_no}: expected {nbytes} "
                            f"bytes, got {len(payload)}"
                        )
                        self.quarantined_chunks.append(chunk_no)
                        claimed_lost += nevents
                        self.truncated = True
                        break
                    if crc is not None and zlib.crc32(payload) != crc:
                        self._bad(
                            f"chunk {chunk_no}: checksum mismatch "
                            f"(payload corrupt)"
                        )
                        self.quarantined_chunks.append(chunk_no)
                        claimed_lost += nevents
                        chain = None
                        continue
                    if chain is not None:
                        chain = _chain_next(chain, payload)
                        if stored_chain is not None and stored_chain != chain:
                            if self.strict:
                                raise TraceChainMismatch(
                                    f"chunk {chunk_no}: chain mismatch "
                                    f"(trace prefix was rewritten)",
                                    path=self.path, chunk=chunk_no)
                            self.quarantined_chunks.append(chunk_no)
                            claimed_lost += nevents
                            chain = None
                            continue
                    try:
                        events = self._decode_chunk(
                            payload, nevents, chunk_no, strings,
                            access_table, sync_table, region_table,
                        )
                    except TraceFormatError:
                        if self.strict:
                            raise
                        self.quarantined_chunks.append(chunk_no)
                        claimed_lost += nevents
                        continue
                    total += nevents
                    yield events, {
                        "kind": "v2",
                        "chunk": chunk_no,
                        "pos": fh.tell(),
                        "strings": list(strings),
                        "events_applied": total,
                        "chain": chain.hex() if chain is not None else None,
                        "salvage": self._salvage_state(claimed_lost),
                    }
                elif tag == b"TEND":
                    raw = fh.read(_U64.size)
                    if len(raw) < _U64.size:
                        if self.tail:
                            self.tail_pending = True
                            return
                        self._bad("truncated trailer")
                        self.truncated = True
                        break
                    (expected,) = _U64.unpack(raw)
                    if expected != total:
                        self._bad(
                            f"event count mismatch: trailer says {expected}, "
                            f"file holds {total}"
                        )
                        # the trailer is the authoritative loss count
                        self.events_lost = max(0, expected - total)
                    if fh.read(1):
                        self._bad("junk after trailer")
                    self.complete = True
                    return
                elif tag == b"":
                    if self.tail:
                        self.tail_pending = True
                        return
                    self._bad(
                        f"truncated file: no trailer after chunk {chunk_no}"
                    )
                    self.truncated = True
                    break
                else:
                    if self.tail and len(tag) < 4:
                        # a partial tag at EOF is a write in flight
                        self.tail_pending = True
                        return
                    self._bad(f"bad chunk tag {tag!r} after chunk {chunk_no}")
                    chunk_no += 1
                    self.quarantined_chunks.append(chunk_no)
                    chain = None
                    if not self._resync(fh, tag_pos + 1):
                        self.truncated = True
                        break
                    continue
            # salvage-only exit: the file ended without a (sound) trailer,
            # so the per-frame claims are the best available loss count
            self.events_lost = claimed_lost

    def _decode_chunk(
        self, payload, nevents, chunk_no, strings,
        access_table, sync_table, region_table,
    ) -> List[TraceEvent]:
        cur = _Cursor(payload, self.path, chunk_no)
        (nstrings,) = cur.take(_U32)
        fresh: List[str] = []
        for _ in range(nstrings):
            (slen,) = cur.take(_U32)
            try:
                fresh.append(cur.take_bytes(slen).decode("utf-8"))
            except UnicodeDecodeError as exc:
                raise TraceFormatError(
                    f"chunk {chunk_no}: corrupt string table: {exc}",
                    path=self.path,
                ) from exc
        # commit all-or-nothing so a quarantined chunk cannot leave the
        # shared table half-grown (later chunks decode against it)
        strings.extend(fresh)

        def lookup(table, idx, what):
            try:
                return table[idx]
            except IndexError:
                raise TraceFormatError(
                    f"chunk {chunk_no}: {what} id {idx} out of range",
                    path=self.path,
                ) from None

        def take_access() -> MemoryAccess:
            flags = cur.take_byte()
            lo, hi, tid, fid, line, origin, flush_gen = cur.take(_ACCESS)
            accum = None
            excl = None
            if flags & _FLAG_ACCUM:
                (aid,) = cur.take(_U32)
                accum = lookup(strings, aid, "string")
            if flags & _FLAG_EXCL:
                (excl,) = cur.take(_I64)
            return MemoryAccess(
                Interval(lo, hi),
                lookup(access_table, tid, "access type"),
                DebugInfo(lookup(strings, fid, "string"), line),
                origin, 0, flush_gen, accum, excl,
            )

        def take_region() -> RegionInfo:
            kid = cur.take_byte()
            rma = cur.take_byte()
            return RegionInfo(lookup(region_table, kid, "region kind"),
                              bool(rma))

        out: List[TraceEvent] = []
        for _ in range(nevents):
            tag = cur.take_byte()
            if tag == _TAG_LOCAL:
                seq, rank = cur.take(_LOCAL)
                out.append(LocalEvent(seq, rank, take_access(), take_region()))
            elif tag == _TAG_RMA:
                seq, rank, target, wid = cur.take(_RMA)
                (oid,) = cur.take(_U32)
                (nbytes,) = cur.take(_I64)
                origin_access = take_access()
                target_access = take_access()
                origin_region = take_region()
                target_region = take_region()
                out.append(RmaEvent(
                    seq, rank, lookup(strings, oid, "string"), target, wid,
                    origin_access, target_access,
                    origin_region, target_region, nbytes,
                ))
            elif tag == _TAG_SYNC:
                seq, rank, kid, wid = cur.take(_SYNC)
                out.append(SyncEvent(
                    seq, rank, lookup(sync_table, kid, "sync kind"), wid
                ))
            else:
                raise TraceFormatError(
                    f"chunk {chunk_no}: unknown event tag {tag}",
                    path=self.path,
                )
        if cur.pos != len(cur.view):
            raise TraceFormatError(
                f"chunk {chunk_no}: {len(cur.view) - cur.pos} trailing bytes",
                path=self.path,
            )
        return out


class WireStream:
    """Raw v2 chunk payloads plus the decode context the flat core needs.

    Iterating yields ``(payload, offset, nevents)`` triples: ``payload``
    is a checksum-verified chunk body, ``offset`` points just past the
    chunk's string-table prefix (already folded into :attr:`strings`),
    and ``nevents`` is the frame's event count.  Framing, checksums and
    the trailer are verified exactly as strict decoded iteration does,
    but no event objects are constructed — that is the consumer's job
    (the flat core's ``ingest_wire``).

    The stream also carries the enum tables from the header and two
    decode caches (wire site/accum ids → detector interned ids).  The
    caches are sound per stream because the wire string table is
    append-only: a given ``(file id, line)`` or accum-op id means the
    same string for the life of the stream.
    """

    def __init__(self, reader: TraceReader) -> None:
        header = reader._header
        self.path = reader.path
        self.nranks: int = header["nranks"]
        self.access_table: List[AccessType] = header["access_table"]
        self.sync_table: List[SyncKind] = header["sync_table"]
        self.region_table: List[RegionKind] = header["region_table"]
        self.chunk_crc: bool = header["chunk_crc"]
        self.chunk_chain_stored: bool = header["chunk_chain_stored"]
        self._chain_seed: bytes = header["chain_seed"]
        #: shared wire string table, grown chunk by chunk (append-only)
        self.strings: List[str] = []
        #: (wire file id << 32 | line) -> interned SITES id
        self.site_ids: Dict[int, int] = {}
        #: wire accum-op string id -> interned ACCUMS id
        self.accum_ids: Dict[int, int] = {}

    def _bad(self, message: str) -> None:
        raise TraceFormatError(message, path=self.path)

    def __iter__(self) -> Iterator[Tuple[bytes, int, int]]:
        frame = struct.Struct("<III") if self.chunk_crc \
            else struct.Struct("<II")
        chain_extra = _CHAIN_BYTES if self.chunk_chain_stored else 0
        chain = self._chain_seed
        u32 = _U32
        strings = self.strings
        total = 0
        chunk_no = 0
        with self.path.open("rb") as fh:
            fh.seek(len(MAGIC_V2))
            (hlen,) = u32.unpack(fh.read(u32.size))
            fh.seek(hlen, 1)
            while True:
                tag = fh.read(4)
                if tag == b"CHNK":
                    chunk_no += 1
                    raw = fh.read(frame.size + chain_extra)
                    if len(raw) < frame.size + chain_extra:
                        self._bad(f"truncated chunk {chunk_no} frame")
                    if self.chunk_crc:
                        nbytes, nevents, crc = frame.unpack_from(raw, 0)
                    else:
                        (nbytes, nevents), crc = frame.unpack_from(raw, 0), \
                            None
                    payload = fh.read(nbytes)
                    if len(payload) < nbytes:
                        self._bad(
                            f"truncated chunk {chunk_no}: expected {nbytes} "
                            f"bytes, got {len(payload)}"
                        )
                    if crc is not None and zlib.crc32(payload) != crc:
                        self._bad(
                            f"chunk {chunk_no}: checksum mismatch "
                            f"(payload corrupt)"
                        )
                    chain = _chain_next(chain, payload)
                    if chain_extra and raw[frame.size:] != chain:
                        raise TraceChainMismatch(
                            f"chunk {chunk_no}: chain mismatch (trace "
                            f"prefix was rewritten)",
                            path=self.path, chunk=chunk_no)
                    try:
                        (nstrings,) = u32.unpack_from(payload, 0)
                        off = u32.size
                        for _ in range(nstrings):
                            (slen,) = u32.unpack_from(payload, off)
                            off += u32.size
                            if off + slen > len(payload):
                                self._bad(
                                    f"chunk {chunk_no}: truncated string "
                                    f"table"
                                )
                            strings.append(
                                payload[off:off + slen].decode("utf-8"))
                            off += slen
                    except (struct.error, UnicodeDecodeError) as exc:
                        raise TraceFormatError(
                            f"chunk {chunk_no}: corrupt string table: {exc}",
                            path=self.path,
                        ) from exc
                    total += nevents
                    yield payload, off, nevents
                elif tag == b"TEND":
                    raw = fh.read(_U64.size)
                    if len(raw) < _U64.size:
                        self._bad("truncated trailer")
                    (expected,) = _U64.unpack(raw)
                    if expected != total:
                        self._bad(
                            f"event count mismatch: trailer says {expected}, "
                            f"file holds {total}"
                        )
                    if fh.read(1):
                        self._bad("junk after trailer")
                    return
                elif tag == b"":
                    self._bad(
                        f"truncated file: no trailer after chunk {chunk_no}"
                    )
                else:
                    self._bad(f"bad chunk tag {tag!r} after chunk {chunk_no}")


# -- chain helpers (incremental analysis) ------------------------------------


def trace_chain(path: Union[str, Path], upto: Optional[int] = None) -> dict:
    """Rolling hash chain of a v2 trace, computed without decoding events.

    Walks the chunk framing only — one crc verify and one sha256 update
    per chunk — so it is cheap enough to run at serve admission on every
    upload.  Returns::

        {"algo": "sha256",
         "chunks": [hex chain value after chunk 1, 2, ...],
         "offsets": [file offset just past chunk 1, 2, ...],
         "events": [cumulative event count after chunk 1, 2, ...],
         "complete": bool,            # reached a valid trailer
         "stored_mismatch": int|None} # first chunk whose *stored* chain
                                      # digest disagrees (prefix rewrite)

    ``upto`` stops after that many chunks (``complete`` is then about
    the trailer only if it was reached, i.e. normally False).  The
    chain is computed for any v2 file, with or without stored per-frame
    digests; a torn tail simply ends the walk (``complete=False``),
    matching tail-reader semantics.  Genuinely corrupt framing — a bad
    tag mid-file or a checksum mismatch on a complete payload — raises
    :class:`~repro.mpi.errors.TraceFormatError`.
    """
    path = Path(path)
    chunks: List[str] = []
    offsets: List[int] = []
    events: List[int] = []
    complete = False
    stored_mismatch: Optional[int] = None
    with path.open("rb") as fh:
        if fh.read(len(MAGIC_V2)) != MAGIC_V2:
            raise TraceFormatError("not a repro-trace-v2 file", path=path)
        hlen_raw = fh.read(_U32.size)
        if len(hlen_raw) < _U32.size:
            raise TraceFormatError("truncated v2 header length", path=path)
        (hlen,) = _U32.unpack(hlen_raw)
        header_bytes = fh.read(hlen)
        if len(header_bytes) < hlen:
            raise TraceFormatError("truncated v2 header", path=path)
        try:
            header = json.loads(header_bytes)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(f"corrupt v2 header: {exc}",
                                   path=path) from exc
        has_crc = bool(header.get("chunk_crc32"))
        has_stored = bool(header.get("chunk_chain"))
        frame = struct.Struct("<III") if has_crc else struct.Struct("<II")
        extra = _CHAIN_BYTES if has_stored else 0
        chain = _chain_seed(hlen_raw, header_bytes)
        total = 0
        chunk_no = 0
        while upto is None or chunk_no < upto:
            tag = fh.read(4)
            if tag == b"CHNK":
                chunk_no += 1
                raw = fh.read(frame.size + extra)
                if len(raw) < frame.size + extra:
                    break  # torn tail
                if has_crc:
                    nbytes, nevents, crc = frame.unpack_from(raw, 0)
                else:
                    (nbytes, nevents), crc = frame.unpack_from(raw, 0), None
                payload = fh.read(nbytes)
                if len(payload) < nbytes:
                    break  # torn tail
                if crc is not None and zlib.crc32(payload) != crc:
                    raise TraceFormatError(
                        f"chunk {chunk_no}: checksum mismatch "
                        f"(payload corrupt)", path=path)
                chain = _chain_next(chain, payload)
                if extra and stored_mismatch is None \
                        and raw[frame.size:] != chain:
                    stored_mismatch = chunk_no
                total += nevents
                chunks.append(chain.hex())
                offsets.append(fh.tell())
                events.append(total)
            elif tag == b"TEND":
                raw = fh.read(_U64.size)
                if len(raw) == _U64.size:
                    complete = True
                break
            elif len(tag) < 4:
                break  # torn tail
            else:
                raise TraceFormatError(
                    f"bad chunk tag {tag!r} after chunk {chunk_no}",
                    path=path)
    return {
        "algo": CHAIN_ALGO,
        "chunks": chunks,
        "offsets": offsets,
        "events": events,
        "complete": complete,
        "stored_mismatch": stored_mismatch,
    }


def compare_chain(old: dict, new: dict) -> dict:
    """Relate two :func:`trace_chain` results.

    Returns ``{"relation", "common", "diverged_at"}`` where relation is
    one of ``identical`` (same chunks), ``extension`` (``new`` extends
    ``old`` append-only), ``truncated`` (``new`` is a proper prefix of
    ``old``) or ``diverged``; ``common`` counts the shared prefix
    chunks and ``diverged_at`` names the first differing chunk (1-based)
    for ``diverged``, else None.

    Because each value hashes the whole prefix, one equal chain value
    at index k proves byte-identity of chunks 1..k — the list compare
    here is belt and braces, not a per-chunk requirement.
    """
    a, b = old["chunks"], new["chunks"]
    common = 0
    for x, y in zip(a, b):
        if x != y:
            break
        common += 1
    if common == len(a) == len(b):
        relation = "identical"
    elif common == len(a):
        relation = "extension"
    elif common == len(b):
        relation = "truncated"
    else:
        relation = "diverged"
    return {
        "relation": relation,
        "common": common,
        "diverged_at": common + 1 if relation == "diverged" else None,
    }

"""Worker supervision for the sharded analysis engine.

PR 1's collector called ``out_q.get()`` blind: a worker that segfaulted
or wedged left the whole analysis hung forever.  This module is the
layer that makes the pipeline survivable:

* **Heartbeats** — workers piggyback ``("hb", worker, attempt, ticks)``
  messages on the result queue every :data:`HEARTBEAT_INTERVAL`
  seconds of dispatch work, so the supervisor can tell *slow* from
  *wedged* without any extra channel.
* **Liveness** — :func:`collect_results` polls the queue with a short
  timeout and, between messages, checks ``Process.is_alive()`` /
  ``exitcode``.  A nonzero exitcode is an immediate failure; a worker
  that exited 0 without reporting gets a short grace period for its
  final message to drain the queue, then fails too.
* **Stall timeouts** — with ``timeout`` set, a worker whose last
  heartbeat is older than ``timeout`` seconds is terminated and
  recorded as stalled.  Every wait in the collector is bounded, so the
  engine can *never* hang, whatever the workers do.

The collector itself never retries: it reports
:class:`~repro.pipeline.resilience.WorkerFailure` records and lets the
engine decide — raise :class:`~repro.mpi.errors.WorkerCrashedError`
(recovery disabled), re-run the dead worker's shard-group with
capped-exponential backoff (file dispatch: replay is deterministic, so
retried verdicts are byte-identical), or degrade to serial in-process
replay of the missing shards.
"""

from __future__ import annotations

import queue as _queue
import time
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

__all__ = [
    "HEARTBEAT_INTERVAL",
    "CollectOutcome",
    "WorkerFailure",
    "backoff_delay",
    "collect_results",
    "reap_processes",
]

#: seconds of dispatch work between worker heartbeats on the result queue
HEARTBEAT_INTERVAL = 0.25

#: collector poll granularity — bounds every single wait
_POLL = 0.1

#: grace for a 0-exit worker's final message to drain the queue feeder
_EXIT_GRACE = 1.5


@dataclass
class WorkerFailure:
    """One worker attempt that did not produce a result."""

    worker: int
    shards: List[int]
    #: "crashed" | "stalled" | "exited without result" | "recycle limit"
    reason: str
    exitcode: object = None
    attempt: int = 0

    def to_dict(self) -> dict:
        return {
            "worker": self.worker,
            "shards": list(self.shards),
            "reason": self.reason,
            "exitcode": self.exitcode,
            "attempt": self.attempt,
        }


@dataclass
class CollectOutcome:
    """What one supervised collection pass gathered."""

    payloads: Dict[int, list] = field(default_factory=dict)
    failures: List[WorkerFailure] = field(default_factory=list)
    #: workers whose payload is a *partial* result (deadline guard hit;
    #: they checkpointed, stopped cleanly, and are resumable)
    partial_workers: set = field(default_factory=set)
    #: memory-guard recycle requests: the worker checkpointed and exited
    #: voluntarily; respawning it is *not* a retry (no backoff, no retry
    #: budget) — entries are {"worker", "attempt", "info"} dicts
    recycled: List[dict] = field(default_factory=list)


def backoff_delay(attempt: int, *, base: float, cap: float) -> float:
    """Capped exponential backoff before retry round ``attempt`` (>= 1)."""
    return min(base * (2 ** (attempt - 1)), cap)


def _terminate(proc, patience: float = 1.0) -> None:
    """Stop one process for sure, escalating terminate -> kill."""
    if not proc.is_alive():
        proc.join(patience)
        return
    proc.terminate()
    proc.join(patience)
    if proc.is_alive():  # pragma: no cover - SIGTERM normally suffices
        proc.kill()
        proc.join(patience)


def reap_processes(procs: Sequence) -> None:
    """Terminate and join every process — the engine's cleanup path.

    Safe on already-exited processes; bounded waits throughout, so an
    interrupt (KeyboardInterrupt, SIGTERM) in the producer loop leaves
    no orphans behind.
    """
    for proc in procs:
        if proc.is_alive():
            proc.terminate()
    for proc in procs:
        _terminate(proc)


def collect_results(
    out_q,
    procs: Dict[int, object],
    worker_shards: Sequence[Sequence[int]],
    *,
    timeout: float = None,
    attempt: int = 0,
    attempts: Dict[int, int] = None,
    poll: float = _POLL,
    grace: float = _EXIT_GRACE,
) -> CollectOutcome:
    """Drain worker results with liveness checks and bounded waits.

    ``procs`` maps worker id -> live ``multiprocessing.Process`` for
    this attempt; ``timeout`` is the per-worker no-heartbeat stall
    limit (``None`` disables stall detection but crash detection always
    runs).  Returns payloads for workers that finished and a
    :class:`WorkerFailure` per worker that did not; stalled workers are
    terminated before being reported.

    ``attempts`` maps worker id -> its current attempt number when
    workers in one pass run different attempts (checkpoint resume mixes
    retried and recycled workers); ``attempt`` is the uniform fallback.
    Messages tagged with any other attempt are dropped — a stale
    attempt's payload merging twice is exactly the double-count bug the
    per-attempt registry scoping exists to prevent.
    """
    outcome = CollectOutcome()
    pending = set(procs)
    expected = ({w: attempt for w in pending} if attempts is None
                else {w: attempts[w] for w in pending})
    now = time.monotonic()
    last_progress = {w: now for w in pending}
    dead_since: Dict[int, float] = {}

    def check_liveness() -> None:
        now = time.monotonic()
        for w in sorted(pending):
            proc = procs[w]
            if not proc.is_alive():
                code = proc.exitcode
                if code == 0:
                    # its final message may still be in the queue feeder
                    if w not in dead_since:
                        dead_since[w] = now
                        continue
                    if now - dead_since[w] < grace:
                        continue
                    reason = "exited without result"
                else:
                    reason = "crashed"
                pending.discard(w)
                outcome.failures.append(WorkerFailure(
                    w, list(worker_shards[w]), reason,
                    exitcode=code, attempt=expected[w],
                ))
            elif timeout is not None and now - last_progress[w] > timeout:
                _terminate(proc)
                pending.discard(w)
                outcome.failures.append(WorkerFailure(
                    w, list(worker_shards[w]), "stalled",
                    exitcode=None, attempt=expected[w],
                ))

    while pending:
        try:
            kind, worker, msg_attempt, payload = out_q.get(timeout=poll)
        except _queue.Empty:
            check_liveness()
            continue
        if worker not in pending or msg_attempt != expected[worker]:
            continue  # stale message from a previous, failed attempt
        if kind == "hb":
            last_progress[worker] = time.monotonic()
        elif kind in ("done", "partial"):
            outcome.payloads[worker] = payload
            if kind == "partial":
                outcome.partial_workers.add(worker)
            pending.discard(worker)
        elif kind == "recycle":
            # the worker checkpointed and is exiting on purpose; hand
            # the respawn decision to the engine (not a failure)
            outcome.recycled.append({
                "worker": worker, "attempt": msg_attempt, "info": payload,
            })
            pending.discard(worker)
        check_liveness()

    for worker in outcome.payloads:
        procs[worker].join()
    for rec in outcome.recycled:
        procs[rec["worker"]].join()
    return outcome

"""Sharded parallel trace-analysis pipeline.

The paper's detector is on-the-fly and per-window: every access is
checked against one window's BST.  Analysis of a *recorded* execution is
therefore embarrassingly parallel across per-rank shards, which this
subsystem exploits end to end:

* :mod:`repro.pipeline.format` — the ``repro-trace-v2`` chunked binary
  format with streaming writer/reader (auto-detects and still reads the
  v1 JSON-lines format),
* :mod:`repro.pipeline.shard` — event routing by memory rank, with sync
  events replicated so every shard sees the full ordering skeleton,
* :mod:`repro.pipeline.engine` — the multiprocessing worker pool
  (batched dispatch, bounded queues) and the deterministic aggregator,
* :mod:`repro.pipeline.resilience` — worker supervision: heartbeats,
  stall timeouts, crash detection, and the retry/degrade machinery
  that keeps a crashed or wedged worker from sinking the analysis,
* :mod:`repro.pipeline.checkpoint` — crash-consistent ``repro-ckpt-v1``
  checkpoints of in-flight detector state, so retries resume mid-trace
  and the deadline/memory guards leave resumable partial runs,
* :mod:`repro.pipeline.record` — ``repro record``: run an app with a
  constant-memory streaming recorder attached.

Quickstart::

    from repro.pipeline import analyze_trace, record_app

    record_app("minivite", nranks=8, out="mv.trace")
    result = analyze_trace("mv.trace", detector="our", jobs=4)
    print(result.races, round(result.events_per_sec), "events/s")

Any existing :class:`~repro.mpi.interposition.DetectorProtocol` detector
runs unchanged — the pipeline instantiates one per shard and merges
verdicts afterwards.
"""

from .checkpoint import (
    CKPT_MAGIC,
    CKPT_SCHEMA,
    CheckpointError,
    CheckpointPlan,
    CheckpointStore,
    TraceDivergedError,
)
from .engine import (
    DETECTOR_SPECS,
    PipelineResult,
    ShardStats,
    analyze_trace,
    canonical_verdicts,
    detector_display_name,
)
from .format import (
    CHAIN_ALGO,
    FORMAT_V1,
    FORMAT_V2,
    MAGIC_V2,
    BinaryTraceWriter,
    JsonTraceWriter,
    TraceReader,
    compare_chain,
    make_trace_writer,
    trace_chain,
)
from .record import RECORDABLE_APPS, AppSpec, RecordResult, record_app
from .resilience import (
    HEARTBEAT_INTERVAL,
    CollectOutcome,
    WorkerFailure,
    backoff_delay,
    collect_results,
)
from .shard import ReplayWindow, dispatch_event, own_reports, shards_of

__all__ = [
    "AppSpec",
    "BinaryTraceWriter",
    "CHAIN_ALGO",
    "CKPT_MAGIC",
    "CKPT_SCHEMA",
    "CheckpointError",
    "CheckpointPlan",
    "CheckpointStore",
    "CollectOutcome",
    "DETECTOR_SPECS",
    "FORMAT_V1",
    "FORMAT_V2",
    "HEARTBEAT_INTERVAL",
    "JsonTraceWriter",
    "MAGIC_V2",
    "PipelineResult",
    "RECORDABLE_APPS",
    "RecordResult",
    "ReplayWindow",
    "ShardStats",
    "TraceDivergedError",
    "TraceReader",
    "WorkerFailure",
    "analyze_trace",
    "backoff_delay",
    "canonical_verdicts",
    "collect_results",
    "compare_chain",
    "detector_display_name",
    "dispatch_event",
    "make_trace_writer",
    "own_reports",
    "record_app",
    "shards_of",
    "trace_chain",
]

"""Simulated LLVM alias-analysis instrumentation filter.

RMA-Analyzer's compile pass "uses the LLVM alias analysis to reduce the
number of Load/Store instrumentations" (§5.1): a local access that
provably cannot alias any memory involved in one-sided communication is
never instrumented, so it costs nothing at runtime.  MUST-RMA has no
such filter — "ThreadSanitizer instruments all memory accesses in the
program" — which is the paper's explanation for its much larger
overhead (Fig. 10).

Our stand-in works on region provenance instead of LLVM IR: a region
*may alias RMA memory* when it is (part of) a window or has been used as
the local buffer of a Put/Get.  The simulator maintains that bit
(:attr:`repro.mpi.memory.Region.may_alias_rma`); the filter's verdict is
a pure function of it, mirroring a flow-insensitive points-to result.
"""

from .filter import AliasFilter, FilterPolicy

__all__ = ["AliasFilter", "FilterPolicy"]

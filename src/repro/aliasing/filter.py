"""The instrumentation filter policies.

Three policies cover the tools of the paper:

* ``ALIAS`` — RMA-Analyzer and our contribution: a local access is
  instrumented only when the accessed region may alias RMA memory
  (window memory or a buffer that is/will be passed to Put/Get).  This
  is the LLVM-alias-analysis filtering of §5.1.
* ``TSAN`` — the MUST-RMA model: *everything* is instrumented except
  stack arrays, which ThreadSanitizer skips (the cause of its false
  negatives, §5.2).
* ``ALL`` — instrument every local access (used by ablations to measure
  what the alias filter saves).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..mpi.memory import RegionInfo

__all__ = ["FilterPolicy", "AliasFilter"]


class FilterPolicy(enum.Enum):
    ALIAS = "alias"
    TSAN = "tsan"
    ALL = "all"


@dataclass
class AliasFilter:
    """Decides, per local access, whether a detector observes it.

    Tracks how many accesses it saw and kept so that experiments can
    report instrumentation ratios (MUST-RMA's over-instrumentation is
    the paper's main explanation for Fig. 10's slowdown).
    """

    policy: FilterPolicy = FilterPolicy.ALIAS
    seen: int = 0
    kept: int = 0

    def instrument(self, region: RegionInfo) -> bool:
        self.seen += 1
        if self.policy is FilterPolicy.ALL:
            keep = True
        elif self.policy is FilterPolicy.TSAN:
            keep = not region.is_stack
        else:  # ALIAS
            keep = region.is_window or region.may_alias_rma
        if keep:
            self.kept += 1
        return keep

    @property
    def filtered(self) -> int:
        return self.seen - self.kept

    def reset(self) -> None:
        self.seen = 0
        self.kept = 0

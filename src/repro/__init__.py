"""repro — reproduction of "Rethinking Data Race Detection in MPI-RMA
Programs" (Vinayagame et al., Correctness @ SC-W 2023).

Layering (bottom up):

* :mod:`repro.intervals` — interval/access algebra, Table 1, Fig. 3,
* :mod:`repro.bst` — from-scratch balanced interval BST (+ the legacy
  unsound search),
* :mod:`repro.core` — the paper's new insertion algorithm and detector,
* :mod:`repro.tsan` — vector clocks / shadow memory substrate,
* :mod:`repro.detectors` — RMA-Analyzer, MUST-RMA, Park, MC-CChecker,
* :mod:`repro.mpi` — the simulated MPI-RMA runtime,
* :mod:`repro.aliasing` — the instrumentation filter,
* :mod:`repro.microbench` — the 154-code validation suite,
* :mod:`repro.apps` — MiniVite-like and CFD-Proxy-like applications,
* :mod:`repro.experiments` — one driver per paper table/figure.

Quickstart::

    from repro import OurDetector, World

    def program(ctx):
        win = yield ctx.win_allocate("w", 64)
        buf = ctx.alloc("buf", 64, rma_hint=True)
        ctx.win_lock_all(win)
        if ctx.rank == 0:
            ctx.get(win, target=1, disp=0, buf=buf, count=8)
            ctx.load(buf, 0)          # races with the async MPI_Get!
        ctx.win_unlock_all(win)
        yield ctx.win_free(win)

    det = OurDetector()
    world = World(2, [det])
    world.run(program)
    print(det.reports[0].message)
"""

from .core import DataRaceError, OurDetector, RaceReport
from .detectors import McCChecker, MustRma, ParkMirror, RmaAnalyzerLegacy
from .intervals import AccessType, DebugInfo, Interval, MemoryAccess
from .mpi import World, run_spmd

__version__ = "1.0.0"

__all__ = [
    "AccessType",
    "DataRaceError",
    "DebugInfo",
    "Interval",
    "McCChecker",
    "MemoryAccess",
    "MustRma",
    "OurDetector",
    "ParkMirror",
    "RaceReport",
    "RmaAnalyzerLegacy",
    "World",
    "run_spmd",
    "__version__",
]
